//! Socket cluster: the same unified cluster API, but every server rank is a
//! *separate OS process* talking to the driver over Unix-domain sockets —
//! the deployment model described in README.md's "Deployment model" section.
//!
//! ```text
//! cargo build            # builds the tc-socket-server binary the driver spawns
//! cargo run --example socket_cluster
//! ```
//!
//! The driver binds a listener, spawns one `tc-socket-server` process per
//! rank (found next to this example in `target/<profile>/`), handshakes, and
//! then the exact scenario from the quickstart runs across real process
//! boundaries: bitcode ships over the socket, each server JIT-compiles it in
//! its own address space, and the sender cache still truncates the second
//! frame.  Flip `Backend::Socket` to `Backend::Threads` or use
//! `build_sim()` and nothing else changes.

use tc_bitir::{BinOp, ModuleBuilder, ScalarType};
use tc_core::layout::{DATA_REGION_BASE, TARGET_REGION_BASE};
use tc_core::{build_ifunc_library, Cluster, ClusterBuilder, ToolchainOptions, Transport};
use tc_simnet::Platform;

/// The quickstart counter ifunc: add the payload's first byte to a counter
/// behind the target pointer.
fn counter_module() -> tc_bitir::Module {
    let mut mb = ModuleBuilder::new("socket_counter");
    {
        let mut f = mb.entry_function();
        let payload = f.param(0);
        let target = f.param(2);
        let delta = f.load(ScalarType::U8, payload, 0);
        let counter = f.load(ScalarType::U64, target, 0);
        let sum = f.bin(BinOp::Add, ScalarType::U64, counter, delta);
        f.store(ScalarType::U64, sum, target, 0);
        let zero = f.const_i64(0);
        f.ret(zero);
        f.finish();
    }
    mb.build()
}

fn run<T: Transport>(cluster: &mut Cluster<T>) -> (usize, usize, u64) {
    let library =
        build_ifunc_library(&counter_module(), &ToolchainOptions::default()).expect("toolchain");
    let handle = cluster.register_ifunc(library);
    let message = cluster.bitcode_message(handle, vec![5]).expect("message");

    let first = cluster.send_ifunc(&message, 1).unwrap();
    cluster.run_until_idle(10_000).unwrap();
    let cached = cluster.send_ifunc(&message, 1).unwrap();
    cluster.run_until_idle(10_000).unwrap();

    let counter = cluster.read_u64(1, TARGET_REGION_BASE).unwrap();
    (first, cached, counter)
}

fn main() {
    // Spawns one tc-socket-server process per server rank; the binary is
    // resolved from the directory next to this example (or set
    // TC_SOCKET_SERVER_BIN / `.server_bin(path)` explicitly).
    let mut cluster = ClusterBuilder::new()
        .platform(Platform::thor_bf2())
        .servers(2)
        .build_socket()
        .expect("socket cluster starts");

    println!(
        "driver listening on {}",
        cluster
            .transport()
            .local_spec()
            .map(|s| s.to_string())
            .unwrap_or_default()
    );

    let (first, cached, counter) = run(&mut cluster);
    println!("socket  : first send {first} B, cached send {cached} B, counter {counter}");
    assert_eq!(counter, 10, "both deltas landed, exactly once");
    assert!(
        cached < first,
        "the sender cache truncates across process boundaries too"
    );

    // The data plane works the same: bulk PUT/GET against a server process.
    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    cluster.put(2, DATA_REGION_BASE, payload.clone()).unwrap();
    let h = cluster
        .get(2, DATA_REGION_BASE, payload.len() as u64)
        .unwrap();
    let echoed = cluster.wait(&h).unwrap();
    assert_eq!(&echoed[..], &payload[..]);
    println!("socket  : 4 KiB PUT/GET round trip through a server process ok");

    // Clean teardown: SHUTDOWN to every server, children reaped.
    let mut transport = cluster.shutdown();
    assert_eq!(transport.live_children(), 0);
    println!("socket  : all server processes exited cleanly");
}
