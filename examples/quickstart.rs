//! Quickstart: ship a tiny ifunc (code + data) to a simulated DPU and watch
//! the caching protocol at work.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tc_bitir::{BinOp, ModuleBuilder, ScalarType};
use tc_core::layout::TARGET_REGION_BASE;
use tc_core::{build_ifunc_library, ClusterSim, ToolchainOptions};
use tc_jit::MemoryExt;
use tc_simnet::Platform;

fn main() {
    // 1. Write an ifunc library with the builder API (the "C path"): add the
    //    payload's first byte to a counter behind the target pointer.
    let mut mb = ModuleBuilder::new("quickstart_counter");
    {
        let mut f = mb.entry_function();
        let payload = f.param(0);
        let target = f.param(2);
        let delta = f.load(ScalarType::U8, payload, 0);
        let counter = f.load(ScalarType::U64, target, 0);
        let sum = f.bin(BinOp::Add, ScalarType::U64, counter, delta);
        f.store(ScalarType::U64, sum, target, 0);
        let zero = f.const_i64(0);
        f.ret(zero);
        f.finish();
    }
    let module = mb.build();

    // 2. Run the toolchain: fat-bitcode for every default target plus binary
    //    objects, and register the library with the client runtime.
    let library = build_ifunc_library(&module, &ToolchainOptions::default())
        .expect("toolchain");
    println!(
        "built ifunc `{}`: fat-bitcode {} B across {} targets",
        library.name,
        library.bitcode_size(),
        library.fat_bitcode.triples().len()
    );

    // 3. Simulate the Thor platform: a Xeon client and two BlueField-2 DPU
    //    server processes on a 100 Gb/s fabric.
    let mut sim = ClusterSim::new(Platform::thor_bf2(), 2);
    let handle = sim.register_on_client(library);
    let message = sim
        .client_mut()
        .create_bitcode_message(handle, vec![5])
        .expect("message");

    // 4. First send: the full frame travels, the DPU JIT-compiles the bitcode.
    let bytes = sim.client_send_ifunc(&message, 1);
    sim.run_until_idle(10_000);
    let first = sim
        .timings
        .last_of_kind(tc_core::OutcomeKind::IfuncExecutedFirstArrival)
        .unwrap();
    println!(
        "first send : {bytes} B on the wire, transmission {}, JIT {}, exec {}",
        first.transmission, first.jit, first.exec
    );

    // 5. Second send: the sender cache truncates the frame, the DPU reuses
    //    the compiled code.
    let bytes = sim.client_send_ifunc(&message, 1);
    sim.run_until_idle(10_000);
    let cached = sim
        .timings
        .last_of_kind(tc_core::OutcomeKind::IfuncExecutedCached)
        .unwrap();
    println!(
        "second send: {bytes} B on the wire, transmission {}, lookup {}, exec {}",
        cached.transmission, cached.lookup, cached.exec
    );

    let counter = sim.node(1).memory.read_u64(TARGET_REGION_BASE).unwrap();
    println!("DPU counter after two increments of 5: {counter}");
    assert_eq!(counter, 10);
    println!("virtual time elapsed: {}", sim.now());
}
