//! Quickstart: ship a tiny ifunc (code + data) to a simulated DPU and watch
//! the caching protocol at work — then run the exact same scenario on real
//! threads by flipping the backend.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tc_bitir::{BinOp, ModuleBuilder, ScalarType};
use tc_core::layout::TARGET_REGION_BASE;
use tc_core::{build_ifunc_library, Backend, Cluster, ClusterBuilder, ToolchainOptions, Transport};
use tc_simnet::Platform;

/// The counter ifunc, written with the builder API (the "C path"): add the
/// payload's first byte to a counter behind the target pointer.
fn counter_module() -> tc_bitir::Module {
    let mut mb = ModuleBuilder::new("quickstart_counter");
    {
        let mut f = mb.entry_function();
        let payload = f.param(0);
        let target = f.param(2);
        let delta = f.load(ScalarType::U8, payload, 0);
        let counter = f.load(ScalarType::U64, target, 0);
        let sum = f.bin(BinOp::Add, ScalarType::U64, counter, delta);
        f.store(ScalarType::U64, sum, target, 0);
        let zero = f.const_i64(0);
        f.ret(zero);
        f.finish();
    }
    mb.build()
}

/// The scenario, written once against the unified cluster API: two sends of
/// five, so the second rides the sender cache.  Returns (first_bytes,
/// cached_bytes, counter).
fn run<T: Transport>(cluster: &mut Cluster<T>) -> (usize, usize, u64) {
    let library =
        build_ifunc_library(&counter_module(), &ToolchainOptions::default()).expect("toolchain");
    let handle = cluster.register_ifunc(library);
    let message = cluster.bitcode_message(handle, vec![5]).expect("message");

    // First send: the full frame travels, the DPU JIT-compiles the bitcode.
    let first = cluster.send_ifunc(&message, 1).unwrap();
    cluster.run_until_idle(10_000).unwrap();
    // Second send: the sender cache truncates the frame, the DPU reuses the
    // compiled code.
    let cached = cluster.send_ifunc(&message, 1).unwrap();
    cluster.run_until_idle(10_000).unwrap();

    let counter = cluster.read_u64(1, TARGET_REGION_BASE).unwrap();
    (first, cached, counter)
}

fn main() {
    let builder = || {
        ClusterBuilder::new()
            .platform(Platform::thor_bf2())
            .servers(2)
    };

    // 1. Simulated backend: a Xeon client and two BlueField-2 DPU server
    //    processes on a calibrated 100 Gb/s fabric, in virtual time.
    let mut sim = builder().build_sim();
    let (first, cached, counter) = run(&mut sim);
    println!("simnet  : first send {first} B, cached send {cached} B, counter {counter}");
    assert_eq!(counter, 10);

    let timings = sim.transport().timings();
    let jit = timings
        .last_of_kind(tc_core::OutcomeKind::IfuncExecutedFirstArrival)
        .unwrap();
    let hot = timings
        .last_of_kind(tc_core::OutcomeKind::IfuncExecutedCached)
        .unwrap();
    println!(
        "simnet  : first arrival transmission {} + JIT {}, cached end-to-end {}",
        jit.transmission,
        jit.jit,
        hot.end_to_end()
    );
    println!("simnet  : virtual time elapsed {}", sim.transport().now());

    // 2. Same scenario, real threads: node runtimes on OS threads exchanging
    //    the same frames over channels (wall-clock, no timing model).
    let mut threaded = builder().build(Backend::Threads);
    let (first_t, cached_t, counter_t) = run(&mut threaded);
    println!("threads : first send {first_t} B, cached send {cached_t} B, counter {counter_t}");
    assert_eq!((first_t, cached_t, counter_t), (first, cached, counter));
    threaded.shutdown();

    println!("both backends agree — one builder, pluggable transports");
}
