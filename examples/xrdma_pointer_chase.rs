//! X-RDMA pointer chase: the paper's headline application.  A chaser ifunc is
//! injected into a cluster of DPU servers, hops from shard to shard by
//! recursively forwarding itself, and returns the final value to the client
//! through the one-sided result mailbox.  The same chase is also run with the
//! RDMA-GET baseline so the speedup is visible.
//!
//! ```text
//! cargo run --release --example xrdma_pointer_chase
//! ```

use tc_simnet::Platform;
use tc_workloads::{ChaseConfig, ChaseMode, DapcExperiment};

fn main() {
    let config = ChaseConfig {
        servers: 8,
        shard_size: 512,
        depth: 1024,
        chases: 3,
        seed: 42,
    };
    println!(
        "Thor platform, {} BlueField-2 servers, {} entries/server, chase depth {}",
        config.servers, config.shard_size, config.depth
    );

    let mut experiment = DapcExperiment::new(Platform::thor_bf2(), &config);
    println!(
        "pointer table: {} entries, {:.1}% of successors remote",
        experiment.table().total_entries(),
        experiment.table().remote_fraction() * 100.0
    );

    for mode in [
        ChaseMode::Get,
        ChaseMode::ActiveMessage,
        ChaseMode::CachedBitcode,
        ChaseMode::CachedBinary,
    ] {
        let result = experiment.measure(mode, config.depth, config.chases);
        println!(
            "{:<28} {:>10.1} chases/s   ({:>10.1} µs per chase)",
            mode.label(),
            result.chases_per_second,
            result.chase_latency_us
        );
    }

    let get = experiment.measure(ChaseMode::Get, config.depth, 1);
    let dapc = experiment.measure(ChaseMode::CachedBitcode, config.depth, 1);
    println!(
        "\nX-RDMA DAPC vs GET baseline: {:+.1}%",
        (dapc.chases_per_second / get.chases_per_second - 1.0) * 100.0
    );
}
