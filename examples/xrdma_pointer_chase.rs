//! X-RDMA pointer chase: the paper's headline application.  A chaser ifunc is
//! injected into a cluster of DPU servers, hops from shard to shard by
//! recursively forwarding itself, and returns the final value to the client
//! through the one-sided result mailbox.  The same chase is also run with the
//! RDMA-GET baseline so the speedup is visible.
//!
//! ```text
//! cargo run --release --example xrdma_pointer_chase
//! ```

use tc_core::{build_ifunc_library, ClusterBuilder};
use tc_simnet::Platform;
use tc_workloads::{
    chaser_module, platform_toolchain, run_pipelined_chases, ChaseConfig, ChaseMode,
    DapcExperiment, PointerTable, Window,
};

/// Drive `chases` independent chases through the async completion plane with
/// a bounded window of X-RDMA results in flight, returning virtual seconds.
fn pipelined_virtual_secs(
    platform: Platform,
    table: &PointerTable,
    depth: u64,
    chases: usize,
    window: usize,
) -> f64 {
    let mut cluster = ClusterBuilder::new()
        .platform(platform)
        .servers(table.num_servers)
        .build_sim();
    table.install_cluster(&mut cluster).expect("table installs");
    let lib = build_ifunc_library(
        &chaser_module("pipelined_chaser"),
        &platform_toolchain(&platform),
    )
    .expect("chaser library builds");
    let handle = cluster.register_ifunc(lib);
    let mut mk = move |c: &mut tc_core::Cluster<tc_core::SimTransport>, payload: Vec<u8>| {
        c.bitcode_message(handle, payload)
    };
    let starts: Vec<u64> = (0..chases as u64)
        .map(|i| (i * 7919) % table.total_entries() as u64)
        .collect();
    // Warm every server's code cache, then measure steady state.
    let warm: Vec<u64> = (0..table.num_servers as u64)
        .map(|s| s * table.shard_size as u64)
        .collect();
    run_pipelined_chases(&mut cluster, &mut mk, table, &warm, 1, Window::new(1))
        .expect("warm-up chases");
    let t0 = cluster.transport().now();
    let values = run_pipelined_chases(
        &mut cluster,
        &mut mk,
        table,
        &starts,
        depth,
        Window::new(window),
    )
    .expect("pipelined chases");
    for (i, &start) in starts.iter().enumerate() {
        assert_eq!(values[i], table.chase(start, depth), "chase from {start}");
    }
    (cluster.transport().now() - t0).as_secs_f64()
}

fn main() {
    let config = ChaseConfig {
        servers: 8,
        shard_size: 512,
        depth: 1024,
        chases: 3,
        seed: 42,
    };
    println!(
        "Thor platform, {} BlueField-2 servers, {} entries/server, chase depth {}",
        config.servers, config.shard_size, config.depth
    );

    let mut experiment = DapcExperiment::new(Platform::thor_bf2(), &config);
    println!(
        "pointer table: {} entries, {:.1}% of successors remote",
        experiment.table().total_entries(),
        experiment.table().remote_fraction() * 100.0
    );

    for mode in [
        ChaseMode::Get,
        ChaseMode::ActiveMessage,
        ChaseMode::CachedBitcode,
        ChaseMode::CachedBinary,
    ] {
        let result = experiment.measure(mode, config.depth, config.chases);
        println!(
            "{:<28} {:>10.1} chases/s   ({:>10.1} µs per chase)",
            mode.label(),
            result.chases_per_second,
            result.chase_latency_us
        );
    }

    let get = experiment.measure(ChaseMode::Get, config.depth, 1);
    let dapc = experiment.measure(ChaseMode::CachedBitcode, config.depth, 1);
    println!(
        "\nX-RDMA DAPC vs GET baseline: {:+.1}%",
        (dapc.chases_per_second / get.chases_per_second - 1.0) * 100.0
    );

    // The async completion plane: the same chaser, but 256 independent
    // chases in flight at once, each reporting through its own result
    // mailbox slot and multiplexed with `wait_any`.
    let table = PointerTable::generate(config.servers, config.shard_size, config.seed);
    let chases = 256usize;
    let depth = 64u64;
    let sequential = pipelined_virtual_secs(Platform::thor_bf2(), &table, depth, chases, 1);
    let pipelined = pipelined_virtual_secs(Platform::thor_bf2(), &table, depth, chases, chases);
    println!(
        "\npipelined driver ({chases} chases of depth {depth}, window 1 vs {chases}):\n  \
         sequential {:>8.1} ms   pipelined {:>8.1} ms   speedup {:.1}x",
        sequential * 1e3,
        pipelined * 1e3,
        sequential / pipelined
    );
}
