//! The high-level-language path (the paper's Julia integration): write the
//! ifunc in Chainlang source text, compile it to portable IR with the
//! restriction-checked front-end, and ship it through the exact same pipeline
//! as the builder-API ifuncs — including to servers of a different ISA.
//!
//! ```text
//! cargo run --example chainlang_frontend
//! ```

use tc_core::layout::TARGET_REGION_BASE;
use tc_core::{build_ifunc_library, ClusterBuilder, ToolchainOptions};
use tc_simnet::Platform;

const HISTOGRAM_SRC: &str = r#"
    // Count how many payload bytes fall into each of four buckets and store
    // the four counters behind the target pointer.
    fn bucket(value: u64) -> u64 {
        if value < 64 { return 0; }
        if value < 128 { return 1; }
        if value < 192 { return 2; }
        return 3;
    }

    fn main(payload: u64, len: u64, target: u64) -> i64 {
        let i: u64 = 0;
        while i < len {
            let b: u64 = bucket(load_u8(payload, i));
            let addr: u64 = target + b * 8;
            store_u64(addr, 0, load_u64(addr, 0) + 1);
            i = i + 1;
        }
        return 0;
    }
"#;

fn main() {
    // Front-end: parse, restriction-check and lower to portable IR.
    let module = tc_chainlang::compile_source("histogram", HISTOGRAM_SRC)
        .expect("Chainlang program compiles");
    println!(
        "compiled Chainlang module `{}`: {} functions, {} IR instructions",
        module.name,
        module.functions.len(),
        module.inst_count()
    );

    // Toolchain + cluster: an A64FX client shipping to A64FX servers (Ookami).
    let library = build_ifunc_library(&module, &ToolchainOptions::default()).unwrap();
    let mut cluster = ClusterBuilder::new()
        .platform(Platform::ookami())
        .servers(1)
        .build_sim();
    let handle = cluster.register_ifunc(library);

    // Payload: 256 bytes spanning all buckets.
    let payload: Vec<u8> = (0..=255u8).collect();
    let msg = cluster.bitcode_message(handle, payload).unwrap();
    cluster.send_ifunc(&msg, 1).unwrap();
    cluster.run_until_idle(100_000).unwrap();

    let counts: Vec<u64> = (0..4)
        .map(|b| cluster.read_u64(1, TARGET_REGION_BASE + b * 8).unwrap())
        .collect();
    println!("bucket counts on the server: {counts:?}");
    assert_eq!(counts, vec![64, 64, 64, 64]);

    // Show the restriction checker doing its job: dynamic calls are rejected.
    let dynamic = "fn main(p: u64, l: u64, t: u64) -> i64 { let x: u64 = whatever(p); return 0; }";
    match tc_chainlang::compile_source("bad", dynamic) {
        Err(e) => println!("restriction checker rejected dynamic program: {e}"),
        Ok(_) => unreachable!("dynamic dispatch must be rejected"),
    }
}
