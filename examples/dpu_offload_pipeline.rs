//! DPU offload pipeline: a host application pushes a small analytics kernel
//! to the DPUs attached to its peers, each DPU scans its local data region
//! and returns a partial aggregate through the X-RDMA result mailbox, and the
//! host combines the partials — all without predeploying any code on the
//! DPUs.  This is the "move compute to the data" scenario that motivates the
//! paper's introduction, driven through the unified cluster API with typed
//! result handles.
//!
//! ```text
//! cargo run --example dpu_offload_pipeline
//! ```

use tc_bitir::{BinOp, ModuleBuilder, ScalarType};
use tc_core::layout::DATA_REGION_BASE;
use tc_core::{build_ifunc_library, ClusterBuilder, ToolchainOptions};
use tc_simnet::Platform;

/// Build the aggregation ifunc: sum `count` u64 records starting at the data
/// region, then return the partial sum to the client's mailbox slot.
/// Payload: `[client u64][slot u64][count u64]`.
fn build_aggregator() -> tc_bitir::Module {
    let mut mb = ModuleBuilder::new("dpu_sum");
    {
        let mut f = mb.entry_function();
        let payload = f.param(0);
        let client = f.load(ScalarType::U64, payload, 0);
        let slot = f.load(ScalarType::U64, payload, 8);
        let count = f.load(ScalarType::U64, payload, 16);
        let base = f.const_u64(DATA_REGION_BASE);
        let eight = f.const_u64(8);
        let one = f.const_u64(1);
        let i = f.const_u64(0);
        let acc = f.const_u64(0);

        let header = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        f.br(header);
        f.switch_to(header);
        let cond = f.cmp(BinOp::CmpLt, ScalarType::U64, i, count);
        f.br_if(cond, body, done);
        f.switch_to(body);
        let off = f.bin(BinOp::Mul, ScalarType::U64, i, eight);
        let addr = f.bin(BinOp::Add, ScalarType::U64, base, off);
        let v = f.load(ScalarType::U64, addr, 0);
        let new_acc = f.bin(BinOp::Add, ScalarType::U64, acc, v);
        f.assign(acc, new_acc);
        let new_i = f.bin(BinOp::Add, ScalarType::U64, i, one);
        f.assign(i, new_i);
        f.br(header);
        f.switch_to(done);
        f.call_ext("tc_return_result", vec![client, slot, acc], true);
        let zero = f.const_i64(0);
        f.ret(zero);
        f.finish();
    }
    mb.build()
}

fn main() {
    const SERVERS: usize = 4;
    const RECORDS_PER_DPU: u64 = 2_000;

    let mut cluster = ClusterBuilder::new()
        .platform(Platform::thor_bf2())
        .servers(SERVERS)
        .build_sim();

    // Each DPU's data region holds a block of records (here: the values
    // 1..=RECORDS_PER_DPU scaled by the server rank).
    let mut expected_total = 0u64;
    for rank in 1..=SERVERS {
        for i in 0..RECORDS_PER_DPU {
            let value = (i + 1) * rank as u64;
            expected_total += value;
            cluster
                .write_u64(rank, DATA_REGION_BASE + i * 8, value)
                .unwrap();
        }
    }

    // Ship the aggregation kernel to every DPU (first send pays the JIT; the
    // code is never installed ahead of time).  Each send gets a typed handle
    // for its mailbox slot.
    let library = build_ifunc_library(&build_aggregator(), &ToolchainOptions::default()).unwrap();
    let handle = cluster.register_ifunc(library);
    let mut outstanding = Vec::new();
    for rank in 1..=SERVERS {
        let slot = cluster.result_slot();
        let mut payload = Vec::new();
        payload.extend_from_slice(&0u64.to_le_bytes()); // client rank
        payload.extend_from_slice(&slot.slot().to_le_bytes());
        payload.extend_from_slice(&RECORDS_PER_DPU.to_le_bytes());
        let msg = cluster.bitcode_message(handle, payload).unwrap();
        cluster.send_ifunc(&msg, rank).unwrap();
        outstanding.push((rank, slot));
    }

    // Collect the partial sums by waiting on the typed handles — no manual
    // completion decoding.
    let mut total = 0u64;
    for (rank, slot) in outstanding {
        let partial = cluster.wait(&slot).unwrap();
        println!("DPU {rank}: partial sum = {partial}");
        total += partial;
    }
    println!("host-side combined total = {total} (expected {expected_total})");
    assert_eq!(total, expected_total);

    let jits: u64 = (1..=SERVERS)
        .map(|r| cluster.stats(r).unwrap().jit_compilations)
        .sum();
    println!(
        "virtual time: {}   (JIT compilations on DPUs: {jits})",
        cluster.transport().now()
    );
}
