//! Cross-process socket backend: lifecycle, pipelined data plane, TCP,
//! externally launched servers, and peer-death error mapping.
//!
//! Every test spawns real OS processes (the `tc-socket-server` binary this
//! package builds) and talks to them over Unix-domain or TCP sockets, so
//! this suite is the proof that the deployment model in README.md actually
//! works end to end — including the part where things die.

use std::collections::HashMap;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};
use tc_core::cluster::{CompletionSet, SocketSpec, SocketTuning};
use tc_core::layout::DATA_REGION_BASE;
use tc_core::{ClusterBuilder, CoreError, FaultPlan, Ready};

fn server_bin() -> &'static str {
    env!("CARGO_BIN_EXE_tc-socket-server")
}

fn builder(servers: usize) -> ClusterBuilder {
    ClusterBuilder::new()
        .platform(tc_simnet::Platform::thor_xeon())
        .servers(servers)
        .server_bin(server_bin())
}

/// The acceptance workload: a driver plus four server processes over
/// Unix-domain sockets complete a 256-operation pipelined GET stream
/// (window 16) and shut down without leaving a single orphan process.
#[test]
fn four_server_processes_complete_a_pipelined_get_workload() {
    const OPS: usize = 256;
    const SIZE: usize = 1024;
    const SERVERS: usize = 4;
    const WINDOW: usize = 16;

    let mut cluster = builder(SERVERS).build_socket().expect("cluster starts");
    let addr = DATA_REGION_BASE;
    for s in 0..SERVERS {
        let rank = cluster.server_rank(s);
        let pattern = vec![0xA0 + s as u8; SIZE];
        cluster.write_memory(rank, addr, &pattern).unwrap();
    }

    let mut set = CompletionSet::new();
    let mut issued = 0usize;
    let mut done = 0usize;
    while done < OPS {
        let mut posted = false;
        while issued < OPS && set.len() < WINDOW {
            let rank = cluster.server_rank(issued % SERVERS);
            set.add_get(cluster.post_get(rank, addr, SIZE as u64));
            issued += 1;
            posted = true;
        }
        if posted {
            cluster.flush().unwrap();
        }
        let (_, ready) = cluster.wait_any(&mut set).unwrap();
        match ready {
            Ready::Get(data) => {
                assert_eq!(data.len(), SIZE);
                assert!(
                    data.iter()
                        .all(|&b| (0xA0..0xA0 + SERVERS as u8).contains(&b)),
                    "payload bytes must come from a server's pattern"
                );
            }
            other => panic!("unexpected readiness {other:?}"),
        }
        done += 1;
    }

    // Clean teardown: every spawned process must be gone.
    let mut transport = cluster.shutdown();
    assert_eq!(transport.live_children(), 0, "no orphaned server processes");
}

/// Byte-level round trips over real TCP (loopback, ephemeral port), both
/// directions, both sizes of the wire codec (inline and scatter-gather).
#[test]
fn tcp_transport_round_trips_puts_and_gets() {
    let mut cluster = builder(1)
        .socket_addr(SocketSpec::Tcp("127.0.0.1:0".into()))
        .build_socket()
        .expect("TCP cluster starts");
    let rank = cluster.server_rank(0);
    let addr = DATA_REGION_BASE;

    // Small (inline) and large (vectored scatter-gather ≥ 512 B) payloads.
    for size in [64usize, 64 * 1024] {
        let payload: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        cluster.put(rank, addr, payload.clone()).unwrap();
        let handle = cluster.get(rank, addr, size as u64).unwrap();
        let data = cluster.wait(&handle).unwrap();
        assert_eq!(&data[..], &payload[..], "TCP round trip of {size} bytes");
    }
    cluster.shutdown();
}

/// The external-deployment path: the driver binds a known endpoint and does
/// NOT spawn anything; server processes launched by "the operator" (this
/// test, standing in for a scheduler or a shell on another host) dial in
/// and the cluster works identically.
#[test]
fn externally_launched_servers_join_a_waiting_driver() {
    let sock = std::env::temp_dir().join(format!("tc-ext-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let spec = format!("unix:{}", sock.display());

    // Launch the servers first: connect_with_retry lets them out-wait the
    // driver's bind.
    let mut children: Vec<_> = (1..=2)
        .map(|rank| {
            Command::new(server_bin())
                .args(["--connect", &spec, "--rank", &rank.to_string()])
                .stdin(Stdio::null())
                .spawn()
                .expect("spawn external server")
        })
        .collect();

    let mut cluster = ClusterBuilder::new()
        .platform(tc_simnet::Platform::thor_xeon())
        .servers(2)
        .socket_addr(SocketSpec::parse(&spec).unwrap())
        .socket_external()
        .build_socket()
        .expect("driver accepts external servers");

    let addr = DATA_REGION_BASE;
    for s in 0..2 {
        let rank = cluster.server_rank(s);
        cluster.write_u64(rank, addr, 777 + s as u64).unwrap();
        assert_eq!(cluster.read_u64(rank, addr).unwrap(), 777 + s as u64);
    }
    cluster.shutdown();

    // SHUTDOWN (or driver close) must reach the external processes too.
    let deadline = Instant::now() + Duration::from_secs(10);
    for child in &mut children {
        loop {
            match child.try_wait().unwrap() {
                Some(status) => {
                    assert!(status.success(), "external server exits cleanly");
                    break;
                }
                None if Instant::now() >= deadline => {
                    let _ = child.kill();
                    let _ = child.wait();
                    panic!("external server did not exit after driver shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

/// Satellite: a server process dying mid-run must surface as a *typed*
/// error on the driver — never a panic, never a hang.  A GET against the
/// dead rank fails with `PeerDisconnected`/`ShortRead` (the socket saw the
/// death) or `WaitTimeout` (the transport went quiescent without the
/// reply); healthy ranks keep serving afterwards.
#[test]
fn killed_server_surfaces_typed_error_and_peers_keep_serving() {
    let mut cluster = builder(2).build_socket().expect("cluster starts");
    let addr = DATA_REGION_BASE;
    for s in 0..2 {
        let rank = cluster.server_rank(s);
        cluster.write_u64(rank, addr, 41 + s as u64).unwrap();
    }

    // Kill server index 0 (rank 1) dead, SIGKILL, no goodbye.
    cluster.transport_mut().kill_server(0);
    // Give the OS a moment to tear the socket down.
    std::thread::sleep(Duration::from_millis(50));

    let started = Instant::now();
    let dead_rank = cluster.server_rank(0);
    let err = match cluster.get(dead_rank, addr, 8) {
        Err(e) => e,
        Ok(handle) => cluster
            .wait(&handle)
            .expect_err("a GET against a killed server process must fail"),
    };
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "the failure must be detected, not waited out forever"
    );
    match &err {
        CoreError::PeerDisconnected { rank, .. } => assert_eq!(*rank, dead_rank),
        CoreError::ShortRead { rank, .. } => assert_eq!(*rank, dead_rank),
        CoreError::WaitTimeout { .. } => {}
        other => panic!("expected a typed peer-death error, got {other:?}"),
    }

    // The surviving rank still answers on both planes.
    let live_rank = cluster.server_rank(1);
    assert_eq!(cluster.read_u64(live_rank, addr).unwrap(), 42);
    let handle = cluster.get(live_rank, addr, 8).unwrap();
    assert_eq!(cluster.wait(&handle).unwrap().len(), 8);

    let mut transport = cluster.shutdown();
    assert_eq!(transport.live_children(), 0, "shutdown reaps everything");
}

/// The self-healing acceptance test: SIGKILL one server rank mid-workload
/// with recovery enabled.  The driver must detect the death, respawn the
/// process, re-handshake, restore control-plane state (recorded memory
/// writes), replay the in-flight reliable frames — and the workload must
/// complete byte-identical with no other rank's operations failing.
#[test]
fn sigkill_mid_workload_heals_and_completes_byte_identical() {
    const OPS: usize = 96;
    const SIZE: usize = 512;
    const SERVERS: usize = 3;
    const WINDOW: usize = 8;

    // A zero-rate seeded plan: the reliable layer (which recovery replays
    // through) is active, but no probabilistic fault can eat the replayed
    // frames — the heal itself is the only disturbance.
    let mut cluster = builder(SERVERS)
        .fault_plan(FaultPlan::seeded(0xB007))
        .socket_recovery()
        .build_socket()
        .expect("cluster starts");
    let addr = DATA_REGION_BASE;
    for s in 0..SERVERS {
        let rank = cluster.server_rank(s);
        let pattern = vec![0xC0 + s as u8; SIZE];
        // write_memory is recorded by the recovery log: the respawned
        // process must serve the same bytes.
        cluster.write_memory(rank, addr, &pattern).unwrap();
    }

    let mut set = CompletionSet::new();
    let mut owner: HashMap<_, usize> = HashMap::new();
    let mut issued = 0usize;
    let mut done = 0usize;
    let mut killed = false;
    while done < OPS {
        let mut posted = false;
        while issued < OPS && set.len() < WINDOW {
            let s = issued % SERVERS;
            let rank = cluster.server_rank(s);
            owner.insert(set.add_get(cluster.post_get(rank, addr, SIZE as u64)), s);
            issued += 1;
            posted = true;
        }
        if posted {
            cluster.flush().unwrap();
        }
        if !killed && done >= OPS / 3 {
            // SIGKILL, no goodbye, with a full window in flight.
            cluster.transport_mut().kill_server(0);
            killed = true;
        }
        let (token, ready) = cluster.wait_any(&mut set).unwrap();
        let s = owner.remove(&token).unwrap();
        match ready {
            Ready::Get(data) => {
                assert_eq!(data.len(), SIZE);
                assert!(
                    data.iter().all(|&b| b == 0xC0 + s as u8),
                    "server {s}: payload must be byte-identical across the heal"
                );
            }
            other => panic!("operation on server {s} resolved as {other:?}"),
        }
        done += 1;
    }

    assert!(
        cluster.failed_ranks().is_empty(),
        "the killed rank must be healed, not terminally failed"
    );
    let healed_rank = cluster.server_rank(0) as u32;
    let health = cluster.link_health();
    let table = tc_workloads::render_link_health("post-heal link health", &health);
    assert!(
        health
            .iter()
            .any(|(rank, h)| *rank == 0 && h.peer == healed_rank && h.unacked == 0),
        "client link to the healed rank must have drained:\n{table}"
    );

    let mut transport = cluster.shutdown();
    assert_eq!(transport.heals(), 1, "exactly one heal cycle");
    assert_eq!(transport.live_children(), 0, "shutdown reaps everything");
}

/// With recovery on but a zero respawn budget, a killed rank becomes
/// *terminally* failed — and `wait_any` must resolve handles pinned to it
/// as `Ready::PeerLost` eagerly instead of riding out the quiescence
/// timeout.  Other ranks keep serving.
#[test]
fn wait_any_resolves_peer_lost_when_the_respawn_budget_is_exhausted() {
    let mut cluster = builder(2)
        .fault_plan(FaultPlan::seeded(7))
        .socket_recovery()
        .socket_tuning(SocketTuning {
            max_respawns: 0,
            ..SocketTuning::default()
        })
        .build_socket()
        .expect("cluster starts");
    let addr = DATA_REGION_BASE;
    for s in 0..2 {
        let rank = cluster.server_rank(s);
        cluster.write_u64(rank, addr, 9 + s as u64).unwrap();
    }

    cluster.transport_mut().kill_server(0);
    std::thread::sleep(Duration::from_millis(50));

    let dead = cluster.server_rank(0);
    let mut set = CompletionSet::new();
    let token = set.add_get(cluster.post_get(dead, addr, 8));
    let _ = cluster.flush();
    let started = Instant::now();
    let (got, ready) = cluster.wait_any(&mut set).unwrap();
    assert_eq!(got, token);
    assert_eq!(ready, Ready::PeerLost(dead as u32));
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "PeerLost must surface eagerly, not as a quiescence timeout"
    );
    assert_eq!(cluster.failed_ranks(), vec![dead]);

    // The surviving rank still answers on both planes.
    let live = cluster.server_rank(1);
    assert_eq!(cluster.read_u64(live, addr).unwrap(), 10);
    let handle = cluster.get(live, addr, 8).unwrap();
    assert_eq!(cluster.wait(&handle).unwrap().len(), 8);
    cluster.shutdown();
}

/// Control-plane reads against a rank whose process died also come back as
/// typed errors (the link error is sticky and replayed, not panicked on).
#[test]
fn dead_link_errors_are_sticky_and_typed_on_the_control_plane() {
    let mut cluster = builder(1).build_socket().expect("cluster starts");
    let rank = cluster.server_rank(0);
    cluster.write_u64(rank, DATA_REGION_BASE, 7).unwrap();

    cluster.transport_mut().kill_server(0);
    std::thread::sleep(Duration::from_millis(50));

    let first = cluster.read_u64(rank, DATA_REGION_BASE);
    let second = cluster.read_u64(rank, DATA_REGION_BASE);
    for (which, res) in [("first", first), ("second", second)] {
        match res {
            Err(CoreError::PeerDisconnected { .. })
            | Err(CoreError::ShortRead { .. })
            | Err(CoreError::WaitTimeout { .. })
            | Err(CoreError::Transport(_)) => {}
            other => panic!("{which} read after peer death: expected a typed error, got {other:?}"),
        }
    }
    cluster.shutdown();
}
