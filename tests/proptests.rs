//! Property-based tests over the reproduction's core invariants.

use proptest::prelude::*;
use tc_core::{CodeRepr, MessageFrame, SendDecision, SenderCache};
use tc_ucx::WorkerAddr;
use tc_workloads::PointerTable;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full frames roundtrip for arbitrary names, payloads, code and deps.
    #[test]
    fn frame_full_roundtrip(
        name in "[a-z][a-z0-9_]{0,24}",
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        code in proptest::collection::vec(any::<u8>(), 0..4096),
        deps in proptest::collection::vec("[a-z]{1,12}\\.so", 0..4),
        binary in any::<bool>(),
    ) {
        let repr = if binary { CodeRepr::Binary } else { CodeRepr::Bitcode };
        let frame = MessageFrame::new(name.clone(), repr, payload.clone(), code.clone(), deps.clone());
        let decoded = MessageFrame::decode(&frame.encode_full()).unwrap();
        prop_assert_eq!(decoded.ifunc_name, name);
        prop_assert_eq!(decoded.repr, repr);
        prop_assert_eq!(decoded.payload, payload);
        prop_assert_eq!(decoded.code.unwrap(), code);
        prop_assert_eq!(decoded.deps, deps);
    }

    /// Truncated frames always decode as truncated, carry the payload, and
    /// are never larger than the full frame.
    #[test]
    fn frame_truncation_invariants(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        code in proptest::collection::vec(any::<u8>(), 1..2048),
    ) {
        let frame = MessageFrame::new("f", CodeRepr::Bitcode, payload.clone(), code, vec![]);
        let truncated = frame.encode_truncated();
        let full = frame.encode_full();
        prop_assert!(truncated.len() < full.len());
        let decoded = MessageFrame::decode(&truncated).unwrap();
        prop_assert!(decoded.is_truncated());
        prop_assert_eq!(decoded.payload, payload);
    }

    /// Decoding never panics on arbitrary bytes.
    #[test]
    fn frame_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = MessageFrame::decode(&bytes);
    }

    /// The sender cache sends the full frame exactly once per (ifunc,
    /// endpoint) pair regardless of the send order.
    #[test]
    fn sender_cache_full_once_per_pair(
        sends in proptest::collection::vec((0u32..4, 0u32..6), 1..64)
    ) {
        let mut cache = SenderCache::new();
        let mut seen = std::collections::HashSet::new();
        for (ifunc, ep) in sends {
            let name = format!("ifunc{ifunc}");
            let decision = cache.on_send(&name, WorkerAddr(ep));
            let first_time = seen.insert((ifunc, ep));
            if first_time {
                prop_assert_eq!(decision, SendDecision::SendFull);
            } else {
                prop_assert_eq!(decision, SendDecision::SendTruncated);
            }
        }
        prop_assert_eq!(cache.len(), seen.len());
        prop_assert_eq!(cache.full_sends as usize, seen.len());
    }

    /// Generated pointer tables are always a single cycle covering every
    /// entry, whatever the shape and seed.
    #[test]
    fn pointer_table_is_single_cycle(
        servers in 1usize..9,
        shard in 1usize..65,
        seed in any::<u64>(),
    ) {
        let table = PointerTable::generate(servers, shard, seed);
        let total = table.total_entries();
        let mut visited = vec![false; total];
        let mut idx = 0u64;
        for _ in 0..total {
            prop_assert!(!visited[idx as usize]);
            visited[idx as usize] = true;
            idx = table.next(idx);
            prop_assert!((idx as usize) < total);
        }
        prop_assert_eq!(idx, 0);
        prop_assert!(visited.into_iter().all(|v| v));
    }

    /// Ownership maps every index to a valid server rank and chase ground
    /// truth is consistent with repeated single steps.
    #[test]
    fn pointer_table_ownership_and_chase(
        servers in 1usize..6,
        shard in 1usize..33,
        start_raw in any::<u64>(),
        depth in 0u64..64,
    ) {
        let table = PointerTable::generate(servers, shard, 7);
        let total = table.total_entries() as u64;
        let start = start_raw % total;
        let owner = table.owner_rank(start);
        prop_assert!(owner >= 1 && owner <= servers);
        let mut idx = start;
        for _ in 0..depth {
            idx = table.next(idx);
        }
        prop_assert_eq!(idx, table.chase(start, depth));
    }

    /// Bitcode encode/decode roundtrips for modules with arbitrary payload
    /// constants (structural fuzz of the encoder's varint paths).
    #[test]
    fn bitcode_roundtrip_with_arbitrary_constants(
        consts in proptest::collection::vec(any::<u64>(), 1..32)
    ) {
        use tc_bitir::{ModuleBuilder, ScalarType, BinOp};
        let mut mb = ModuleBuilder::new("fuzzed");
        {
            let mut f = mb.entry_function();
            let target = f.param(2);
            let mut acc = f.const_u64(0);
            for &c in &consts {
                let k = f.const_u64(c);
                acc = f.bin(BinOp::Add, ScalarType::U64, acc, k);
            }
            f.store(ScalarType::U64, acc, target, 0);
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        let module = mb.build();
        let bytes = tc_bitir::encode_module(&module);
        let decoded = tc_bitir::decode_module(&bytes).unwrap();
        prop_assert_eq!(module, decoded);
    }

    /// The interpreter computes the same wrapping sum the host would.
    #[test]
    fn interpreter_matches_host_arithmetic(values in proptest::collection::vec(any::<u64>(), 1..16)) {
        use tc_bitir::{ModuleBuilder, ScalarType, BinOp};
        use tc_jit::{Engine, NoExternals, VecMemory, MemoryExt, CompileOptions};
        let mut mb = ModuleBuilder::new("sum");
        {
            let mut f = mb.function("sum", vec![], Some(ScalarType::U64));
            let mut acc = f.const_u64(0);
            for &v in &values {
                let k = f.const_u64(v);
                acc = f.bin(BinOp::Add, ScalarType::U64, acc, k);
            }
            f.ret(acc);
            f.finish();
        }
        let compiled = tc_jit::compile_module(&mb.build(), CompileOptions {
            opt_level: tc_jit::OptLevel::O0,
            verify: true,
        }).unwrap();
        let mut mem = VecMemory::new(0, 8);
        let out = Engine::new()
            .run(&compiled.module, "sum", &[], &[], &mut mem, &mut NoExternals)
            .unwrap();
        let expected = values.iter().fold(0u64, |a, &b| a.wrapping_add(b));
        prop_assert_eq!(out.return_value, expected);
        let _ = mem.read_u64(0);
    }
}
