//! Property-based tests over the reproduction's core invariants.
//!
//! The build environment has no access to crates.io, so instead of `proptest`
//! these use a small deterministic generator (splitmix64) and run each
//! property over many seeded cases.  Failures print the case seed so a run
//! can be reproduced by fixing `CASE_SEED_BASE`.

use tc_core::{CodeRepr, MessageFrame, SendDecision, SenderCache};
use tc_ucx::WorkerAddr;
use tc_workloads::PointerTable;

const CASES: u64 = 64;
const CASE_SEED_BASE: u64 = 0x3C3C_0001;

/// Deterministic case generator over the shared splitmix64 stream.
struct Gen(tc_simnet::SplitMix64);

impl Gen {
    fn for_case(case: u64) -> Self {
        Gen(tc_simnet::SplitMix64::new(
            CASE_SEED_BASE.wrapping_add(case.wrapping_mul(0x9e37_79b9)),
        ))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform value in `lo..hi` (hi > lo).
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.0.range(lo, hi)
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        self.0.bytes(max_len)
    }

    /// A lowercase identifier of 1..=max_len characters.
    fn ident(&mut self, max_len: usize) -> String {
        let len = self.range(1, max_len as u64 + 1) as usize;
        (0..len)
            .map(|i| {
                let alphabet = if i == 0 {
                    b"abcdefghijklmnopqrstuvwxyz".as_slice()
                } else {
                    b"abcdefghijklmnopqrstuvwxyz0123456789_".as_slice()
                };
                alphabet[self.range(0, alphabet.len() as u64) as usize] as char
            })
            .collect()
    }
}

/// Full frames roundtrip for arbitrary names, payloads, code and deps.
#[test]
fn frame_full_roundtrip() {
    for case in 0..CASES {
        let mut g = Gen::for_case(case);
        let name = g.ident(25);
        let payload = g.bytes(512);
        let code = g.bytes(4096);
        let deps: Vec<String> = (0..g.range(0, 4))
            .map(|_| format!("{}.so", g.ident(12)))
            .collect();
        let repr = if g.bool() {
            CodeRepr::Binary
        } else {
            CodeRepr::Bitcode
        };
        let frame = MessageFrame::new(
            name.clone(),
            repr,
            payload.clone(),
            code.clone(),
            deps.clone(),
        );
        let decoded = MessageFrame::decode(&frame.encode_full()).unwrap();
        assert_eq!(decoded.ifunc_name, name, "case {case}");
        assert_eq!(decoded.repr, repr, "case {case}");
        assert_eq!(decoded.payload, payload, "case {case}");
        assert_eq!(decoded.code.as_deref(), Some(&code[..]), "case {case}");
        assert_eq!(decoded.deps, deps, "case {case}");
    }
}

/// Truncated frames always decode as truncated, carry the payload, and are
/// never larger than the full frame.
#[test]
fn frame_truncation_invariants() {
    for case in 0..CASES {
        let mut g = Gen::for_case(case);
        let payload = g.bytes(256);
        let mut code = g.bytes(2047);
        code.push(g.next_u64() as u8); // at least one code byte
        let frame = MessageFrame::new("f", CodeRepr::Bitcode, payload.clone(), code, vec![]);
        let truncated = frame.encode_truncated();
        let full = frame.encode_full();
        assert!(truncated.len() < full.len(), "case {case}");
        let decoded = MessageFrame::decode(&truncated).unwrap();
        assert!(decoded.is_truncated(), "case {case}");
        assert_eq!(decoded.payload, payload, "case {case}");
    }
}

/// Decoding never panics on arbitrary bytes.
#[test]
fn frame_decode_never_panics() {
    for case in 0..CASES * 4 {
        let mut g = Gen::for_case(case);
        let bytes = g.bytes(512);
        let _ = MessageFrame::decode(&bytes);
    }
}

/// The sender cache sends the full frame exactly once per (ifunc, endpoint)
/// pair regardless of the send order.
#[test]
fn sender_cache_full_once_per_pair() {
    for case in 0..CASES {
        let mut g = Gen::for_case(case);
        let mut cache = SenderCache::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..g.range(1, 64) {
            let ifunc = g.range(0, 4) as u32;
            let ep = g.range(0, 6) as u32;
            let name = format!("ifunc{ifunc}");
            let decision = cache.on_send(&name, WorkerAddr(ep));
            let first_time = seen.insert((ifunc, ep));
            if first_time {
                assert_eq!(decision, SendDecision::SendFull, "case {case}");
            } else {
                assert_eq!(decision, SendDecision::SendTruncated, "case {case}");
            }
        }
        assert_eq!(cache.len(), seen.len(), "case {case}");
        assert_eq!(cache.full_sends as usize, seen.len(), "case {case}");
    }
}

/// Generated pointer tables are always a single cycle covering every entry,
/// whatever the shape and seed.
#[test]
fn pointer_table_is_single_cycle() {
    for case in 0..CASES {
        let mut g = Gen::for_case(case);
        let servers = g.range(1, 9) as usize;
        let shard = g.range(1, 65) as usize;
        let seed = g.next_u64();
        let table = PointerTable::generate(servers, shard, seed);
        let total = table.total_entries();
        let mut visited = vec![false; total];
        let mut idx = 0u64;
        for _ in 0..total {
            assert!(!visited[idx as usize], "case {case}");
            visited[idx as usize] = true;
            idx = table.next(idx);
            assert!((idx as usize) < total, "case {case}");
        }
        assert_eq!(idx, 0, "case {case}");
        assert!(visited.into_iter().all(|v| v), "case {case}");
    }
}

/// Ownership maps every index to a valid server rank and chase ground truth
/// is consistent with repeated single steps.
#[test]
fn pointer_table_ownership_and_chase() {
    for case in 0..CASES {
        let mut g = Gen::for_case(case);
        let servers = g.range(1, 6) as usize;
        let shard = g.range(1, 33) as usize;
        let table = PointerTable::generate(servers, shard, 7);
        let total = table.total_entries() as u64;
        let start = g.next_u64() % total;
        let depth = g.range(0, 64);
        let owner = table.owner_rank(start);
        assert!(owner >= 1 && owner <= servers, "case {case}");
        let mut idx = start;
        for _ in 0..depth {
            idx = table.next(idx);
        }
        assert_eq!(idx, table.chase(start, depth), "case {case}");
    }
}

/// Bitcode encode/decode roundtrips for modules with arbitrary payload
/// constants (structural fuzz of the encoder's varint paths).
#[test]
fn bitcode_roundtrip_with_arbitrary_constants() {
    use tc_bitir::{BinOp, ModuleBuilder, ScalarType};
    for case in 0..CASES {
        let mut g = Gen::for_case(case);
        let consts: Vec<u64> = (0..g.range(1, 32)).map(|_| g.next_u64()).collect();
        let mut mb = ModuleBuilder::new("fuzzed");
        {
            let mut f = mb.entry_function();
            let target = f.param(2);
            let mut acc = f.const_u64(0);
            for &c in &consts {
                let k = f.const_u64(c);
                acc = f.bin(BinOp::Add, ScalarType::U64, acc, k);
            }
            f.store(ScalarType::U64, acc, target, 0);
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        let module = mb.build();
        let bytes = tc_bitir::encode_module(&module);
        let decoded = tc_bitir::decode_module(&bytes).unwrap();
        assert_eq!(module, decoded, "case {case}");
    }
}

/// The interpreter computes the same wrapping sum the host would.
#[test]
fn interpreter_matches_host_arithmetic() {
    use tc_bitir::{BinOp, ModuleBuilder, ScalarType};
    use tc_jit::{CompileOptions, Engine, MemoryExt, NoExternals, VecMemory};
    for case in 0..CASES {
        let mut g = Gen::for_case(case);
        let values: Vec<u64> = (0..g.range(1, 16)).map(|_| g.next_u64()).collect();
        let mut mb = ModuleBuilder::new("sum");
        {
            let mut f = mb.function("sum", vec![], Some(ScalarType::U64));
            let mut acc = f.const_u64(0);
            for &v in &values {
                let k = f.const_u64(v);
                acc = f.bin(BinOp::Add, ScalarType::U64, acc, k);
            }
            f.ret(acc);
            f.finish();
        }
        let compiled = tc_jit::compile_module(
            &mb.build(),
            CompileOptions {
                opt_level: tc_jit::OptLevel::O0,
                verify: true,
            },
        )
        .unwrap();
        let mut mem = VecMemory::new(0, 8);
        let out = Engine::new()
            .run(
                &compiled.module,
                "sum",
                &[],
                &[],
                &mut mem,
                &mut NoExternals,
            )
            .unwrap();
        let expected = values.iter().fold(0u64, |a, &b| a.wrapping_add(b));
        assert_eq!(out.return_value, expected, "case {case}");
        let _ = mem.read_u64(0);
    }
}
