//! Cross-backend multi-client parity suite.
//!
//! `C ∈ {1, 2, 4}` driver-side clients, same seed, each running an
//! independent gather + pointer-chase stream through one merged completion
//! set: the per-client artifacts must be byte-identical across
//! `SimTransport` and `ThreadTransport`, equal to ground truth, and must
//! never leak across clients (client *i*'s mailbox only ever holds client
//! *i*'s completions — exercised deliberately, since every client allocates
//! the *same* numeric request ids and mailbox slots).
//!
//! Also the regression half of the satellite "audit every rank-0
//! assumption": each latent single-client assumption found during the
//! refactor (results hardwired to client rank 0, servers addressed as
//! `owner + 1`, chaser hops computed as `idx/shard + 1`) has a test here
//! that fails against the pre-fix behaviour on a multi-client layout.

use tc_core::layout::{DATA_REGION_BASE, TARGET_REGION_BASE};
use tc_core::{Backend, ClientId, Cluster, ClusterBuilder, CompletionSet, Ready, Transport};
use tc_workloads::{
    chase_starts, gather_entries_from, multi_client_get_burst, run_multi_client_streams,
    run_pipelined_chases_from, run_reporting_tsi_from, MultiClientReport, PointerTable, Window,
};

const SEED: u64 = 0x5EED_C11E;

fn builder(clients: usize, servers: usize) -> ClusterBuilder {
    ClusterBuilder::new()
        .platform(tc_simnet::Platform::thor_xeon())
        .clients(clients)
        .servers(servers)
}

/// Same layout on the cross-process backend: servers are spawned OS
/// processes (`tc-socket-server`) over a Unix-domain socket.
fn socket_builder(clients: usize, servers: usize) -> ClusterBuilder {
    builder(clients, servers).server_bin(env!("CARGO_BIN_EXE_tc-socket-server"))
}

/// The shared scenario: every client gathers the table and chases pointers.
fn run_streams(
    cluster: &mut Cluster<Box<dyn Transport>>,
    table: &PointerTable,
) -> MultiClientReport {
    table.install_cluster(cluster).unwrap();
    run_multi_client_streams(
        cluster,
        &tc_simnet::Platform::thor_xeon(),
        table,
        5,
        12,
        Window::new(6),
        SEED,
    )
    .unwrap()
}

fn assert_report_matches_ground_truth(
    report: &MultiClientReport,
    table: &PointerTable,
    clients: usize,
) {
    let expected: Vec<u8> = (0..table.num_servers)
        .flat_map(|s| table.shard_image(s))
        .collect();
    assert_eq!(report.gathered.len(), clients);
    for c in 0..clients {
        assert_eq!(report.gathered[c], expected, "client {c} gathered image");
        let starts = chase_starts(table, ClientId(c), 5, SEED);
        for (i, &start) in starts.iter().enumerate() {
            assert_eq!(
                report.chased[c][i],
                table.chase(start, 12),
                "client {c} chase {i}"
            );
        }
    }
}

fn parity_for_clients(clients: usize) {
    let table = PointerTable::generate(2, 24, 0xAB + clients as u64);

    let mut sim = builder(clients, 2).build(Backend::Simnet);
    let sim_report = run_streams(&mut sim, &table);

    let mut threaded = builder(clients, 2).build(Backend::Threads);
    let threaded_report = run_streams(&mut threaded, &table);
    threaded.shutdown();

    let mut socket = socket_builder(clients, 2).build(Backend::Socket);
    let socket_report = run_streams(&mut socket, &table);
    socket.shutdown();

    assert_eq!(
        sim_report, threaded_report,
        "{clients}-client run must be byte-identical across backends"
    );
    assert_eq!(
        sim_report, socket_report,
        "{clients}-client run must be byte-identical on the cross-process backend"
    );
    assert_report_matches_ground_truth(&sim_report, &table, clients);
}

#[test]
fn one_client_streams_identical_across_backends() {
    parity_for_clients(1);
}

#[test]
fn two_client_streams_identical_across_backends() {
    parity_for_clients(2);
}

#[test]
fn four_client_streams_identical_across_backends() {
    parity_for_clients(4);
}

#[test]
fn sim_multi_client_run_is_deterministic_under_a_fixed_seed() {
    let table = PointerTable::generate(3, 16, 99);
    let run = |_: u32| {
        let mut cluster = builder(4, 3).build_sim();
        table.install_cluster(&mut cluster).unwrap();
        run_multi_client_streams(
            &mut cluster,
            &tc_simnet::Platform::thor_xeon(),
            &table,
            4,
            9,
            Window::new(5),
            SEED,
        )
        .unwrap()
    };
    assert_eq!(run(0), run(1), "same seed ⇒ identical virtual-time run");
}

/// Completions never leak across clients: both clients post GETs whose
/// request ids collide numerically, against *different* servers; claiming
/// with the wrong client's handle must find nothing, and each handle must
/// deliver its own client's bytes.
#[test]
fn completions_never_leak_across_clients() {
    for backend in [Backend::Simnet, Backend::Threads] {
        let mut cluster = builder(2, 2).build(backend);
        let addr = DATA_REGION_BASE;
        cluster
            .write_memory(cluster.server_rank(0), addr, &[0x11; 8])
            .unwrap();
        cluster
            .write_memory(cluster.server_rank(1), addr, &[0x22; 8])
            .unwrap();

        // Same per-client request-id space: both handles carry request 0.
        let h0 = cluster
            .get_from(ClientId(0), cluster.server_rank(0), addr, 8)
            .unwrap();
        let h1 = cluster
            .get_from(ClientId(1), cluster.server_rank(1), addr, 8)
            .unwrap();
        assert_eq!(h0.request(), h1.request(), "ids collide by construction");

        // Wait for client 1's reply first.
        let d1 = cluster.wait(&h1).unwrap();
        assert_eq!(&d1[..], &[0x22; 8], "{backend}: client 1 got its bytes");

        // Client 1's completion is claimed; re-claiming with client 1's
        // identity must find nothing even when client 0's completion (the
        // same numeric request id!) is already buffered — the pre-refactor
        // table, keyed on the bare id, would hand it over here.
        assert!(
            cluster.try_claim(&h1).is_none(),
            "{backend}: client 0's completion must not satisfy client 1"
        );

        let d0 = cluster.wait(&h0).unwrap();
        assert_eq!(&d0[..], &[0x11; 8], "{backend}: client 0 got its bytes");
        cluster.shutdown();
    }
}

/// Result mailboxes are per-client: equal slot numbers on different clients
/// hold different values, and a wrong-client result handle never claims.
#[test]
fn result_mailboxes_are_per_client() {
    let mut cluster = builder(2, 2).build_sim();
    let table = PointerTable::generate(2, 16, 5);
    table.install_cluster(&mut cluster).unwrap();

    // Both clients run a one-chase stream; slot allocators both hand out
    // slot 0.
    let report = run_multi_client_streams(
        &mut cluster,
        &tc_simnet::Platform::thor_xeon(),
        &table,
        1,
        7,
        Window::new(1),
        SEED,
    )
    .unwrap();
    let s0 = chase_starts(&table, ClientId(0), 1, SEED)[0];
    let s1 = chase_starts(&table, ClientId(1), 1, SEED)[0];
    assert_eq!(report.chased[0][0], table.chase(s0, 7));
    assert_eq!(report.chased[1][0], table.chase(s1, 7));

    // The values landed in each client's own mailbox memory (slot 0 of rank
    // 0 vs slot 0 of rank 1).
    let addr = tc_core::ResultHandle::for_slot(0).mailbox_addr();
    let m0 = cluster.read_memory(0, addr, 16).unwrap();
    let m1 = cluster.read_memory(1, addr, 16).unwrap();
    assert_ne!(m0, vec![0u8; 16], "client 0 slot 0 was written");
    assert_ne!(m1, vec![0u8; 16], "client 1 slot 0 was written");
    if report.chased[0][0] != report.chased[1][0] {
        assert_ne!(m0, m1, "distinct results in the per-client mailboxes");
    }
}

/// A merged completion set over two clients resolves each registration with
/// its own client's payload, in arrival order, on both backends.
#[test]
fn merged_completion_set_routes_by_client() {
    for backend in [Backend::Simnet, Backend::Threads] {
        let mut cluster = builder(2, 1).build(backend);
        let addr = DATA_REGION_BASE;
        cluster
            .write_memory(cluster.server_rank(0), addr, &[0x7A; 8])
            .unwrap();
        let mut set = CompletionSet::new();
        let mut tokens = Vec::new();
        for c in 0..2 {
            for _ in 0..4 {
                let h = cluster.post_get_from(ClientId(c), cluster.server_rank(0), addr, 8);
                tokens.push((set.add_get(h), c));
            }
            cluster.flush_from(ClientId(c)).unwrap();
        }
        let mut resolved = 0;
        while !set.is_empty() {
            let (_token, ready) = cluster.wait_any(&mut set).unwrap();
            match ready {
                Ready::Get(data) => assert_eq!(&data[..], &[0x7A; 8]),
                other => panic!("{backend}: unexpected readiness {other:?}"),
            }
            resolved += 1;
        }
        assert_eq!(resolved, 8, "{backend}: all 8 registrations resolve");
        cluster.shutdown();
    }
}

// --- regressions for latent single-client assumptions ----------------------

/// REGRESSION: `run_reporting_tsi` hardwired client rank 0 into the kernel
/// payload, so on a multi-client cluster every result (and every prefix sum)
/// of a non-primary client was delivered to the wrong mailbox.  Driving the
/// stream from client 1 must work and return exact per-server sums.
#[test]
fn reporting_tsi_from_a_secondary_client_routes_results_home() {
    let platform = tc_simnet::Platform::thor_xeon();
    let mut cluster = builder(2, 2).build_sim();
    let lib = tc_core::build_ifunc_library(
        &tc_workloads::tsi_reporting_module("mc_rtsi"),
        &tc_workloads::platform_toolchain(&platform),
    )
    .unwrap();
    let client = ClientId(1);
    let handle = cluster.register_ifunc_on(client, lib);
    let mut mk = move |c: &mut Cluster<tc_core::SimTransport>, payload: Vec<u8>| {
        c.bitcode_message_on(client, handle, payload)
    };
    let out = run_reporting_tsi_from(&mut cluster, client, &mut mk, 20, Window::new(4), 2).unwrap();
    let mut expect = vec![0u64; 2];
    for op in 0..20usize {
        expect[op % 2] += 1 + (op as u64 % 7);
    }
    assert_eq!(out.counters, expect, "per-server sums exact from client 1");
    // In-order per link: the last report per server equals the final sum.
    assert_eq!(out.reported[18], expect[0]);
    assert_eq!(out.reported[19], expect[1]);
    // Nothing ever landed in client 0's mailbox.
    let addr = tc_core::ResultHandle::for_slot(0).mailbox_addr();
    assert_eq!(
        cluster.read_memory(0, addr, 16).unwrap(),
        vec![0u8; 16],
        "client 0's mailbox stays untouched"
    );
}

/// REGRESSION: the chaser kernel computed hop owners as `idx/shard + 1` —
/// on a 2-client cluster that addresses *client 1* for shard 0, so a chase
/// issued from client 1 either errored or never completed.  The first-server
/// rank now travels in the payload.
#[test]
fn pipelined_chases_from_a_secondary_client_hop_correct_servers() {
    let platform = tc_simnet::Platform::thor_xeon();
    let table = PointerTable::generate(2, 16, 21);
    let mut cluster = builder(2, 2).build_sim();
    table.install_cluster(&mut cluster).unwrap();
    let lib = tc_core::build_ifunc_library(
        &tc_workloads::chaser_module("mc_reg_chaser"),
        &tc_workloads::platform_toolchain(&platform),
    )
    .unwrap();
    let client = ClientId(1);
    let handle = cluster.register_ifunc_on(client, lib);
    let mut mk = move |c: &mut Cluster<tc_core::SimTransport>, payload: Vec<u8>| {
        c.bitcode_message_on(client, handle, payload)
    };
    let starts: Vec<u64> = (0..8).map(|i| (i * 3) % 32).collect();
    let values = run_pipelined_chases_from(
        &mut cluster,
        client,
        &mut mk,
        &table,
        &starts,
        10,
        Window::new(4),
    )
    .unwrap();
    for (i, &start) in starts.iter().enumerate() {
        assert_eq!(values[i], table.chase(start, 10), "chase from {start}");
    }
    // Multi-hop chases really crossed servers (the kernel's owner
    // arithmetic was exercised, not just the first send).
    let hops: u64 = (0..2)
        .map(|s| {
            cluster
                .stats(cluster.server_rank(s))
                .unwrap()
                .ifuncs_executed
        })
        .sum();
    assert!(hops > 8, "chases must hop between servers, saw {hops}");
}

/// REGRESSION: `gather_entries` addressed servers as `owner_index + 1`; on a
/// multi-client cluster rank 1 is a *client*, so a gather from any client
/// read zeroes out of another client's empty memory instead of the shard.
#[test]
fn gather_from_secondary_client_reads_servers_not_clients() {
    let table = PointerTable::generate(2, 16, 31);
    let expected: Vec<u8> = (0..2).flat_map(|s| table.shard_image(s)).collect();
    let mut cluster = builder(3, 2).build_sim();
    table.install_cluster(&mut cluster).unwrap();
    for c in 0..3 {
        let image = gather_entries_from(&mut cluster, ClientId(c), &table, Window::new(8)).unwrap();
        assert_eq!(image, expected, "client {c} image");
    }
}

/// REGRESSION: `PointerTable::install_cluster` wrote shard `s` to rank
/// `s + 1`; with clients at ranks 0..C that poked shard images into client
/// memory.  Install on a 2-client cluster must leave client 1's data region
/// untouched and populate the true server ranks.
#[test]
fn install_cluster_targets_server_ranks() {
    let table = PointerTable::generate(2, 8, 77);
    let mut cluster = builder(2, 2).build_sim();
    table.install_cluster(&mut cluster).unwrap();
    assert_eq!(
        cluster.read_memory(1, DATA_REGION_BASE, 64).unwrap(),
        vec![0u8; 64],
        "client 1's data region must stay empty"
    );
    for s in 0..2 {
        assert_eq!(
            cluster
                .read_memory(cluster.server_rank(s), DATA_REGION_BASE, 64)
                .unwrap(),
            table.shard_image(s),
            "server {s} shard image"
        );
    }
}

/// Per-client result-slot allocators are independent, and reservations on
/// one client never shift another client's allocation stream.
#[test]
fn result_slot_allocators_are_per_client() {
    let mut cluster = builder(3, 1).build_sim();
    let r = cluster.reserve_result_slot_on(ClientId(1), 0);
    assert_eq!(r.slot(), 0);
    assert_eq!(r.client(), ClientId(1));
    // Client 0 and 2 still allocate from 0; client 1 skips its reservation.
    assert_eq!(cluster.result_slot_on(ClientId(0)).slot(), 0);
    assert_eq!(cluster.result_slot_on(ClientId(1)).slot(), 1);
    assert_eq!(cluster.result_slot_on(ClientId(2)).slot(), 0);
    assert_eq!(cluster.result_slot_on(ClientId(0)).slot(), 1);
}

/// The aggregate burst driver completes every operation for every client
/// count on both backends (the exact driver behind the bench axis).
#[test]
fn get_burst_scales_across_client_counts_on_both_backends() {
    for backend in [Backend::Simnet, Backend::Threads] {
        for clients in [1usize, 2, 4] {
            let mut cluster = builder(clients, 2).build(backend);
            let addr = DATA_REGION_BASE;
            for s in 0..2 {
                cluster
                    .write_memory(cluster.server_rank(s), addr, &[0x5A; 256])
                    .unwrap();
            }
            let done = multi_client_get_burst(&mut cluster, 32, addr, 256, Window::new(8)).unwrap();
            assert_eq!(done, 32 * clients, "{backend}, {clients} clients");
            cluster.shutdown();
        }
    }
}

/// REGRESSION: client↔client traffic is loopback-class on the threaded
/// backend (all clients live on the driving thread, delivered locally) —
/// the simulated backend must exempt it from the fault model too, or the
/// backends' chaos schedules and metrics diverge.  Under a plan that drops
/// *everything*, a cross-client PUT still delivers exactly once on both
/// backends, with zero retransmits attributable to it.
#[test]
fn cross_client_traffic_bypasses_the_fault_plan_on_both_backends() {
    for backend in [Backend::Simnet, Backend::Threads] {
        let mut cluster = ClusterBuilder::new()
            .platform(tc_simnet::Platform::thor_xeon())
            .clients(2)
            .servers(1)
            .fault_plan(tc_core::FaultPlan::seeded(3).drop_rate(1.0))
            .build(backend);
        cluster
            .put_from(ClientId(0), 1, DATA_REGION_BASE, vec![0xEE; 8])
            .unwrap();
        cluster.run_until_idle(100_000).unwrap();
        assert_eq!(
            cluster.read_memory(1, DATA_REGION_BASE, 8).unwrap(),
            vec![0xEE; 8],
            "{backend}: client 0 → client 1 PUT must land despite 100% drop"
        );
        assert_eq!(
            cluster.metrics().retransmits,
            0,
            "{backend}: loopback-class traffic never enters the reliable layer"
        );
        cluster.shutdown();
    }
}

/// Layout sanity: `ClusterBuilder::clients(4)` on both backends yields the
/// documented rank layout and per-client runtimes at the right ranks.
#[test]
fn four_client_layout_is_consistent_on_both_backends() {
    for backend in [Backend::Simnet, Backend::Threads] {
        let mut cluster = builder(4, 3).build(backend);
        assert_eq!(cluster.client_count(), 4);
        assert_eq!(cluster.server_count(), 3);
        assert_eq!(cluster.node_count(), 7);
        assert_eq!(cluster.first_server_rank(), 4);
        assert_eq!(cluster.server_rank(2), 6);
        for c in 0..4 {
            assert_eq!(
                cluster.client_runtime(ClientId(c)).node_id().index(),
                c,
                "{backend}: client {c} rank"
            );
        }
        // TSI through every client against every server: counters add up.
        for s in 0..3 {
            cluster
                .write_u64(cluster.server_rank(s), TARGET_REGION_BASE, 0)
                .unwrap();
        }
        let platform = tc_simnet::Platform::thor_xeon();
        let lib = tc_core::build_ifunc_library(
            &tc_workloads::tsi_module(),
            &tc_workloads::platform_toolchain(&platform),
        )
        .unwrap();
        for c in 0..4 {
            let handle = cluster.register_ifunc_on(ClientId(c), lib.clone());
            let msg = cluster
                .bitcode_message_on(ClientId(c), handle, vec![c as u8 + 1])
                .unwrap();
            for s in 0..3 {
                cluster
                    .send_ifunc_from(ClientId(c), &msg, cluster.server_rank(s))
                    .unwrap();
            }
        }
        cluster.run_until_idle(1_000_000).unwrap();
        for s in 0..3 {
            assert_eq!(
                cluster
                    .read_u64(cluster.server_rank(s), TARGET_REGION_BASE)
                    .unwrap(),
                (1 + 2 + 3 + 4) as u64,
                "{backend}: server {s} saw all four clients"
            );
        }
        cluster.shutdown();
    }
}
