//! The async completion plane, end to end: `CompletionSet`/`wait_any`
//! multiplexing, pipelined drivers with hundreds of operations in flight,
//! per-handle deadlines, confirmed PUTs — plus the regression tests for the
//! completion-draining, quiescence-timeout and result-slot-collision bugs
//! this plane's design surfaced.

use std::time::Duration;
use tc_core::layout::DATA_REGION_BASE;
use tc_core::{
    build_ifunc_library, Backend, Cluster, ClusterBuilder, CompletionSet, FaultPlan, Ready,
    ResultHandle, ThreadTuning, Transport,
};
use tc_workloads::{
    chaser_module, gather_entries, platform_toolchain, run_reporting_tsi, tsi_reporting_module,
    PointerTable, Window,
};

const SERVERS: usize = 4;
const SHARD: usize = 128; // 4 × 128 = 512 entries ⇒ windows up to 512

fn builder() -> ClusterBuilder {
    ClusterBuilder::new()
        .platform(tc_simnet::Platform::thor_xeon())
        .servers(SERVERS)
}

fn reference_image(table: &PointerTable) -> Vec<u8> {
    (0..table.num_servers)
        .flat_map(|s| table.shard_image(s))
        .collect()
}

/// Acceptance criterion: a pipelined driver with ≥256 operations in flight
/// via `wait_any` produces byte-identical results to the sequential driver
/// on both backends, fault-free and under a 2% drop plan.
#[test]
fn pipelined_gather_is_byte_identical_across_backends_windows_and_faults() {
    let table = PointerTable::generate(SERVERS, SHARD, 0xFEED);
    let expected = reference_image(&table);
    for backend in [Backend::Simnet, Backend::Threads] {
        for plan in [None, Some(FaultPlan::seeded(42).drop_rate(0.02))] {
            for inflight in [1usize, 256] {
                // Sequential × pipelined × lossless × lossy: all identical.
                let mut b = builder();
                if let Some(plan) = plan.clone() {
                    b = b.fault_plan(plan);
                }
                let mut cluster = b.build(backend);
                table.install_cluster(&mut cluster).unwrap();
                let image = gather_entries(&mut cluster, &table, Window::new(inflight)).unwrap();
                assert_eq!(
                    image,
                    expected,
                    "gather on {backend} (inflight {inflight}, plan {:?})",
                    plan.is_some()
                );
                if plan.is_some() && inflight == 256 {
                    assert!(
                        cluster.metrics().faults_injected > 0,
                        "the 2% plan must actually have fired on {backend}"
                    );
                }
                cluster.shutdown();
            }
        }
    }
}

/// The reporting-TSI workload: identical counters and per-op prefix sums on
/// both backends at any window size.
#[test]
fn reporting_tsi_outcome_is_window_and_backend_invariant() {
    let platform = tc_simnet::Platform::thor_xeon();
    let lib = || {
        build_ifunc_library(
            &tsi_reporting_module("rtsi_par"),
            &platform_toolchain(&platform),
        )
        .unwrap()
    };
    let run = |backend: Backend, inflight: usize| {
        let mut cluster = builder().build(backend);
        let handle = cluster.register_ifunc(lib());
        let mut mk = move |c: &mut Cluster<Box<dyn Transport>>, payload: Vec<u8>| {
            c.bitcode_message(handle, payload)
        };
        let out = run_reporting_tsi(&mut cluster, &mut mk, 64, Window::new(inflight), 8).unwrap();
        cluster.shutdown();
        out
    };
    let baseline = run(Backend::Simnet, 1);
    for (backend, inflight) in [
        (Backend::Simnet, 64),
        (Backend::Threads, 1),
        (Backend::Threads, 64),
    ] {
        let out = run(backend, inflight);
        assert_eq!(out, baseline, "{backend} at window {inflight}");
    }
}

/// `wait_any` resolves mixed GET + X-RDMA result registrations in completion
/// arrival order, token by token.
#[test]
fn wait_any_orders_mixed_handles_by_arrival() {
    let platform = tc_simnet::Platform::thor_xeon();
    let mut cluster = builder().build_sim();
    cluster.write_u64(1, DATA_REGION_BASE, 0xABCD).unwrap();
    let lib = build_ifunc_library(
        &tsi_reporting_module("rtsi_mixed"),
        &platform_toolchain(&platform),
    )
    .unwrap();
    let handle = cluster.register_ifunc(lib);

    // The GET departs first and needs no JIT; the ifunc result requires
    // compile + execute + return PUT, so the GET completes first.
    let get = cluster.get(1, DATA_REGION_BASE, 8).unwrap();
    let slot = cluster.result_slot();
    let payload = tc_workloads::reporting_tsi_payload::encode(0, slot.slot(), 5, 0);
    let msg = cluster.bitcode_message(handle, payload).unwrap();
    cluster.send_ifunc(&msg, 2).unwrap();

    let mut set = CompletionSet::new();
    let t_result = set.add_result(slot);
    let t_get = set.add_get(get);

    let (first, ready) = cluster.wait_any(&mut set).unwrap();
    assert_eq!(first, t_get, "the earlier-arriving completion wins");
    assert!(matches!(ready, Ready::Get(d) if d.len() == 8));
    let (second, ready) = cluster.wait_any(&mut set).unwrap();
    assert_eq!(second, t_result);
    assert_eq!(ready, Ready::Result(5));
    assert!(set.is_empty());
}

/// Registering the same handle twice: exactly one token claims the
/// completion, the duplicate resolves through its deadline.
#[test]
fn duplicate_handle_claims_once_and_duplicate_deadlines() {
    let mut cluster = builder().build_sim();
    cluster.write_u64(1, DATA_REGION_BASE, 9).unwrap();
    let get = cluster.get(1, DATA_REGION_BASE, 8).unwrap();
    let mut set = CompletionSet::new();
    let t1 = set.add_get(get);
    let t2 = set.add_get(get);
    set.deadline(t2, 1_000_000_000);

    let (tok, ready) = cluster.wait_any(&mut set).unwrap();
    assert_eq!(tok, t1, "first registration claims");
    assert!(matches!(ready, Ready::Get(_)));
    let (tok, ready) = cluster.wait_any(&mut set).unwrap();
    assert_eq!(tok, t2, "duplicate cannot claim again");
    assert_eq!(ready, Ready::Deadline);
}

/// Per-handle deadlines expire on both backends: a result that never
/// arrives resolves as `Ready::Deadline` instead of hanging or erroring.
#[test]
fn deadline_expiry_resolves_never_completing_handles() {
    for backend in [Backend::Simnet, Backend::Threads] {
        let mut cluster = builder().build(backend);
        let mut set = CompletionSet::new();
        let t = set.add_result(cluster.reserve_result_slot(4000));
        set.deadline(t, 50_000_000); // 50 ms (wall or virtual)
        let (tok, ready) = cluster.wait_any(&mut set).unwrap();
        assert_eq!((tok, ready), (t, Ready::Deadline), "{backend}");
        cluster.shutdown();
    }
}

/// Confirmed PUTs complete on both backends — including with a payload
/// large enough for the scatter-gather path — and the bytes are visible
/// remotely once the handle resolves.
#[test]
fn put_confirmed_completes_and_bytes_are_visible() {
    let payload: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
    for backend in [Backend::Simnet, Backend::Threads] {
        let mut cluster = builder().build(backend);
        let handle = cluster
            .put_confirmed(2, DATA_REGION_BASE, payload.clone())
            .unwrap();
        cluster.wait(&handle).unwrap();
        let read = cluster
            .read_memory(2, DATA_REGION_BASE, payload.len())
            .unwrap();
        assert_eq!(read, payload, "{backend}");
        cluster.shutdown();
    }
}

/// Confirmed PUTs stay exactly-once under a fault plan: the ack may be
/// dropped and retransmitted, but the handle resolves and the data is
/// intact.
#[test]
fn put_confirmed_survives_a_lossy_fabric() {
    for backend in [Backend::Simnet, Backend::Threads] {
        let mut cluster = builder()
            .fault_plan(FaultPlan::seeded(7).drop_rate(0.05))
            .build(backend);
        let mut set = CompletionSet::new();
        for i in 0..8u64 {
            let h = cluster
                .put_confirmed(
                    1,
                    DATA_REGION_BASE + i * 8,
                    (100 + i).to_le_bytes().to_vec(),
                )
                .unwrap();
            set.add_put(h);
        }
        let resolved = cluster.wait_all(&mut set).unwrap();
        assert_eq!(resolved.len(), 8, "{backend}");
        assert!(resolved.iter().all(|(_, r)| *r == Ready::Put));
        for i in 0..8u64 {
            assert_eq!(
                cluster.read_u64(1, DATA_REGION_BASE + i * 8).unwrap(),
                100 + i,
                "{backend}"
            );
        }
        cluster.shutdown();
    }
}

/// REGRESSION (completion draining): `run_until_completions` used to
/// `mem::take` every pending completion, so a later `wait()` on a handle
/// whose completion had been drained timed out spuriously.  Returned
/// completions must stay claimable.
#[test]
fn run_until_completions_leaves_completions_claimable() {
    for backend in [Backend::Simnet, Backend::Threads] {
        let mut cluster = builder().build(backend);
        cluster.write_u64(1, DATA_REGION_BASE, 0xBEEF).unwrap();
        let handle = cluster.get(1, DATA_REGION_BASE, 8).unwrap();
        let drained = cluster.run_until_completions(1, 1_000_000).unwrap();
        assert!(
            !drained.is_empty(),
            "{backend}: the GET completion must have been returned"
        );
        // The drained completion must still satisfy the typed wait.
        let data = cluster.wait(&handle).unwrap_or_else(|e| {
            panic!("{backend}: wait() after run_until_completions failed: {e}")
        });
        assert_eq!(u64::from_le_bytes(data[..8].try_into().unwrap()), 0xBEEF);
        // Repeated calls return only *new* completions, not the old ones.
        let again = cluster.run_until_completions(1, 10).unwrap();
        assert!(again.is_empty(), "{backend}: stale completions re-returned");
        cluster.shutdown();
    }
}

/// REGRESSION (result-slot collisions): the allocator must skip reserved
/// slots so manually constructed `ResultHandle::for_slot` handles cannot
/// collide with allocated ones.
#[test]
fn result_slot_allocator_skips_reserved_slots() {
    let mut cluster = builder().build_sim();
    let manual = cluster.reserve_result_slot(0);
    assert_eq!(manual.slot(), ResultHandle::for_slot(0).slot());
    let a = cluster.result_slot();
    let b = cluster.result_slot();
    assert_ne!(a.slot(), 0, "allocator must not hand out the reserved slot");
    assert_ne!(b.slot(), 0);
    assert_ne!(a.slot(), b.slot());
    // Reserving ahead of the allocator cursor also works.
    let later = cluster.reserve_result_slot(b.slot() + 1);
    let c = cluster.result_slot();
    assert_ne!(c.slot(), later.slot());
}

/// REGRESSION (wait-timeout/RTO interplay, threaded backend): with a park
/// timeout and busy budget far below the reliable layer's 30 ms base RTO and
/// 480 ms backoff cap, a partition covering the first link traversals used
/// to make `wait()` report `WaitTimeout` while frames sat unacked with an
/// armed retransmission deadline.  Quiescence now out-waits the RTO backoff.
#[test]
fn threaded_wait_survives_partition_until_reliable_heal() {
    let plan = FaultPlan::seeded(11).partition(&[0], 0, 4);
    let tuning = ThreadTuning {
        step_timeout: Duration::from_millis(10),
        busy_step_timeout: Duration::from_millis(30),
        ..ThreadTuning::default()
    };
    let mut cluster = ClusterBuilder::new()
        .servers(1)
        .fault_plan(plan)
        .thread_tuning(tuning)
        .build_threaded();
    cluster.write_u64(1, DATA_REGION_BASE, 0x50AF).unwrap();
    let handle = cluster.get(1, DATA_REGION_BASE, 8).unwrap();
    let data = cluster
        .wait(&handle)
        .expect("wait must ride out the partition through retransmission");
    assert_eq!(u64::from_le_bytes(data[..8].try_into().unwrap()), 0x50AF);
    assert!(
        cluster.metrics().retransmits > 0,
        "the partition must have forced retransmits"
    );
    cluster.shutdown();
}

/// The same interplay at a high probabilistic drop rate, on both backends:
/// typed waits never spuriously time out while the reliable layer is still
/// retransmitting.
#[test]
fn waits_survive_high_drop_rates_on_both_backends() {
    for backend in [Backend::Simnet, Backend::Threads] {
        let mut cluster = builder()
            .fault_plan(FaultPlan::seeded(3).drop_rate(0.25))
            .build(backend);
        cluster.write_u64(1, DATA_REGION_BASE, 7).unwrap();
        for i in 0..12u64 {
            let handle = cluster.get(1, DATA_REGION_BASE, 8).unwrap();
            let data = cluster
                .wait(&handle)
                .unwrap_or_else(|e| panic!("{backend}: GET {i} timed out: {e}"));
            assert_eq!(u64::from_le_bytes(data[..8].try_into().unwrap()), 7);
        }
        assert!(cluster.metrics().retransmits > 0, "{backend}");
        cluster.shutdown();
    }
}

/// Pipelined chases on the threaded backend: 256 chases in flight with the
/// reporting chaser, values matching ground truth (the chaser hops between
/// real OS threads while the driver multiplexes mailbox slots).
#[test]
fn pipelined_chases_run_on_real_threads() {
    let platform = tc_simnet::Platform::thor_xeon();
    let table = PointerTable::generate(SERVERS, SHARD, 21);
    let mut cluster = builder().build_threaded();
    table.install_cluster(&mut cluster).unwrap();
    let lib =
        build_ifunc_library(&chaser_module("thr_chaser"), &platform_toolchain(&platform)).unwrap();
    let handle = cluster.register_ifunc(lib);
    let mut mk = move |c: &mut Cluster<tc_core::ThreadTransport>, payload: Vec<u8>| {
        c.bitcode_message(handle, payload)
    };
    let starts: Vec<u64> = (0..256u64).map(|i| (i * 31) % 512).collect();
    let values = tc_workloads::run_pipelined_chases(
        &mut cluster,
        &mut mk,
        &table,
        &starts,
        8,
        Window::new(256),
    )
    .unwrap();
    for (i, &start) in starts.iter().enumerate() {
        assert_eq!(values[i], table.chase(start, 8), "chase from {start}");
    }
    cluster.shutdown();
}
