//! Cross-crate integration tests: the full pipeline from IR (builder API and
//! Chainlang) through the toolchain, the simulated fabric, remote JIT /
//! binary load, recursive X-RDMA forwarding and result return.

use tc_core::layout::{DATA_REGION_BASE, TARGET_REGION_BASE};
use tc_core::{build_ifunc_library, ClusterSim, OutcomeKind, ToolchainOptions};
use tc_simnet::Platform;
use tc_workloads::{
    chaser_payload, platform_toolchain, run_tsi, ChaseConfig, ChaseMode, DapcExperiment,
    PointerTable,
};

#[test]
fn tsi_full_pipeline_on_all_platforms() {
    for platform in [
        Platform::ookami(),
        Platform::thor_bf2(),
        Platform::thor_xeon(),
    ] {
        let results = run_tsi(platform, 50);
        // Qualitative claims of Tables I–VI, per platform:
        // 1. the uncached path is much slower end-to-end than the cached one;
        assert!(
            results.uncached_rate.latency_us > 1.5 * results.cached_rate.latency_us,
            "{}: uncached {} vs cached {}",
            platform.name,
            results.uncached_rate.latency_us,
            results.cached_rate.latency_us
        );
        // 2. cached bitcode is within a few percent of Active Messages;
        let ratio = results.cached_rate.latency_us / results.am_rate.latency_us;
        assert!(
            ratio > 0.9 && ratio < 1.15,
            "{}: cached/AM ratio {ratio}",
            platform.name
        );
        // 3. cached bitcode sustains a higher message rate than AM;
        assert!(results.cached_rate.message_rate > results.am_rate.message_rate);
        // 4. JIT is a one-time, millisecond-scale cost.
        let jit = results.uncached_bitcode.jit_ms.unwrap();
        assert!(jit > 0.3 && jit < 10.0, "{}: jit {jit} ms", platform.name);
    }
}

#[test]
fn recursive_chaser_visits_many_servers_and_returns_correctly() {
    let config = ChaseConfig {
        servers: 8,
        shard_size: 64,
        depth: 200,
        chases: 1,
        seed: 3,
    };
    let mut exp = DapcExperiment::new(Platform::thor_bf2(), &config);
    let (value, elapsed_us) = exp.run_one_chase(ChaseMode::CachedBitcode, 0, 200);
    assert_eq!(value, exp.table().chase(0, 200));
    assert!(elapsed_us > 0.0);
    // The chase must actually have executed ifuncs on several servers.
    let servers_used = (1..=8)
        .filter(|&r| exp.sim().node(r).stats.ifuncs_executed > 0)
        .count();
    assert!(
        servers_used >= 4,
        "only {servers_used} servers executed ifuncs"
    );
    // Each server JIT-compiled the chaser at most once (propagated code is
    // cached on every hop).
    for r in 1..=8 {
        assert!(exp.sim().node(r).jit_stats().compilations <= 2);
    }
}

#[test]
fn binary_ifuncs_work_on_homogeneous_platform_and_match_bitcode_results() {
    let config = ChaseConfig {
        servers: 4,
        shard_size: 64,
        depth: 64,
        chases: 1,
        seed: 9,
    };
    let mut exp = DapcExperiment::new(Platform::thor_xeon(), &config);
    let (bin_value, _) = exp.run_one_chase(ChaseMode::CachedBinary, 5, 64);
    let (bc_value, _) = exp.run_one_chase(ChaseMode::CachedBitcode, 5, 64);
    assert_eq!(bin_value, bc_value);
}

#[test]
fn chainlang_ifunc_interoperates_with_builder_ifunc_on_heterogeneous_cluster() {
    let config = ChaseConfig {
        servers: 4,
        shard_size: 64,
        depth: 96,
        chases: 1,
        seed: 21,
    };
    let mut exp = DapcExperiment::new(Platform::thor_bf2(), &config);
    let (jl, _) = exp.run_one_chase(ChaseMode::CachedBitcodeChainlang, 7, 96);
    let (c, _) = exp.run_one_chase(ChaseMode::CachedBitcode, 7, 96);
    assert_eq!(jl, c, "Chainlang and builder chasers must agree");
}

#[test]
fn gbpc_reads_exactly_depth_entries_over_the_fabric() {
    let platform = Platform::thor_xeon();
    let mut sim = ClusterSim::new(platform, 2);
    let table = PointerTable::generate(2, 32, 4);
    table.install(&mut sim);
    let depth = 10u64;
    let mut idx = 0u64;
    for _ in 0..depth {
        let owner = table.owner_rank(idx);
        sim.client_get(owner, table.entry_addr(idx), 8);
        let completions = sim.run_until_client_completions(1, 100_000);
        let tc_core::Completion::Get { data, .. } = &completions[0] else {
            panic!("expected GET completion");
        };
        idx = u64::from_le_bytes(data[..8].try_into().unwrap());
    }
    assert_eq!(idx, table.chase(0, depth));
    let served: u64 = (1..=2).map(|r| sim.node(r).stats.gets_served).sum();
    assert_eq!(served, depth);
}

#[test]
fn ifunc_can_write_remote_memory_and_payload_roundtrips() {
    // An ifunc that copies its payload into the target region, byte-reversed,
    // built with the builder API and shipped to an A64FX server.
    use tc_bitir::{BinOp, ModuleBuilder, ScalarType};
    let mut mb = ModuleBuilder::new("reverse_copy");
    {
        let mut f = mb.entry_function();
        let payload = f.param(0);
        let len = f.param(1);
        let target = f.param(2);
        let one = f.const_u64(1);
        let i = f.const_u64(0);
        let header = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        f.br(header);
        f.switch_to(header);
        let cond = f.cmp(BinOp::CmpLt, ScalarType::U64, i, len);
        f.br_if(cond, body, done);
        f.switch_to(body);
        let src_addr = f.bin(BinOp::Add, ScalarType::U64, payload, i);
        let v = f.load(ScalarType::U8, src_addr, 0);
        let last = f.sub_i64(len, one);
        let rev = f.sub_i64(last, i);
        let dst_addr = f.bin(BinOp::Add, ScalarType::U64, target, rev);
        f.store(ScalarType::U8, v, dst_addr, 0);
        let ni = f.bin(BinOp::Add, ScalarType::U64, i, one);
        f.assign(i, ni);
        f.br(header);
        f.switch_to(done);
        let z = f.const_i64(0);
        f.ret(z);
        f.finish();
    }
    let platform = Platform::ookami();
    let lib = build_ifunc_library(&mb.build(), &platform_toolchain(&platform)).unwrap();
    let mut sim = ClusterSim::new(platform, 1);
    let handle = sim.register_on_client(lib);
    let msg = sim
        .client_mut()
        .create_bitcode_message(handle, b"bitcode!".to_vec())
        .unwrap();
    sim.client_send_ifunc(&msg, 1);
    sim.run_until_idle(100_000);
    let mut out = vec![0u8; 8];
    use tc_jit::Memory;
    sim.node(1)
        .memory
        .read(TARGET_REGION_BASE, &mut out)
        .unwrap();
    assert_eq!(&out, b"!edoctib");
    assert!(sim
        .timings()
        .last_of_kind(OutcomeKind::IfuncExecutedFirstArrival)
        .is_some());
}

#[test]
fn toolchain_options_match_paper_deployment_sizes() {
    // With exactly the client+server triples (as the paper's two-ISA TSI
    // archive), the uncached frame is kilobytes and the cached frame tens of
    // bytes — the 26 B / 5185 B split of Section V-A.
    let platform = Platform::thor_bf2();
    let lib =
        build_ifunc_library(&tc_workloads::tsi_module(), &platform_toolchain(&platform)).unwrap();
    assert_eq!(lib.fat_bitcode.triples().len(), 2);
    assert!(lib.bitcode_size() > 3_000 && lib.bitcode_size() < 12_000);

    let opts = ToolchainOptions::default();
    assert!(opts.targets.len() >= 4, "default toolchain is multi-target");
}

#[test]
fn dapc_payload_layout_is_stable() {
    let p = chaser_payload::encode(1, 2, 3, 4, 5, 6);
    assert_eq!(p.len(), chaser_payload::SIZE);
    assert_eq!(chaser_payload::decode(&p).unwrap(), [1, 2, 3, 4, 5, 6]);
    assert_eq!(DATA_REGION_BASE, 0x4000_0000);
}
