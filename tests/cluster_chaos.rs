//! Chaos parity: the `tests/cluster_parity.rs` TSI + X-RDMA scenario, run
//! under a seeded `FaultPlan` that drops, duplicates and reorders envelopes
//! and opens (then heals) a network partition mid-run — on BOTH backends.
//!
//! The reliable-delivery layer must make the run indistinguishable from a
//! fault-free one at the functional level: identical counters, execution
//! counts and result values on the simulated and the threaded transport,
//! with `TransportMetrics` proving the faults actually fired (retransmits,
//! dedup drops, injected-fault counts all nonzero).

use std::sync::Arc;
use tc_bitir::{BinOp, Module, ModuleBuilder, ScalarType};
use tc_core::layout::TARGET_REGION_BASE;
use tc_core::{
    build_ifunc_library, Backend, Cluster, ClusterBuilder, FaultPlan, NativeAmHandler, Transport,
};
use tc_workloads::{platform_toolchain, tsi_module};

const SERVERS: usize = 4;
const SENDS_PER_SERVER: u64 = 5;

/// The acceptance-criteria plan: ≥1% drop, reorder, duplication, and one
/// partition that cuts server 2 off mid-run and heals after a dozen
/// traversals of each crossing link (retransmissions burn through the
/// window, so the heal is reached deterministically).
fn chaos_plan() -> FaultPlan {
    FaultPlan::seeded(0x3C4A05)
        .drop_rate(0.02)
        .duplicate_rate(0.02)
        .reorder_rate(0.05)
        .partition(&[2], 4, 12)
}

/// What a scenario observed on one backend; compared across backends.
#[derive(Debug, PartialEq, Eq)]
struct ScenarioOutcome {
    counters: Vec<u64>,
    ifuncs_executed: Vec<u64>,
    jit_compilations: Vec<u64>,
    am_counter: u64,
    doubled: u64,
}

/// An ifunc that doubles a payload value and returns it through the X-RDMA
/// result mailbox.  Payload: `[client u64][slot u64][value u64]`.
fn doubler_module() -> Module {
    let mut mb = ModuleBuilder::new("chaos_doubler");
    {
        let mut f = mb.entry_function();
        let payload = f.param(0);
        let client = f.load(ScalarType::U64, payload, 0);
        let slot = f.load(ScalarType::U64, payload, 8);
        let value = f.load(ScalarType::U64, payload, 16);
        let two = f.const_u64(2);
        let doubled = f.bin(BinOp::Mul, ScalarType::U64, value, two);
        f.call_ext("tc_return_result", vec![client, slot, doubled], true);
        let z = f.const_i64(0);
        f.ret(z);
        f.finish();
    }
    mb.build()
}

fn tsi_am_handler() -> NativeAmHandler {
    Arc::new(|ctx, payload| {
        use tc_jit::MemoryExt;
        let delta = u64::from(payload.first().copied().unwrap_or(0));
        let old = ctx.memory.read_u64(TARGET_REGION_BASE).unwrap_or(0);
        let _ = ctx.memory.write_u64(TARGET_REGION_BASE, old + delta);
        24
    })
}

/// The shared scenario — the same shape as `cluster_parity.rs`, oblivious
/// to both the transport underneath and the faults being injected.
fn run_scenario<T: Transport>(cluster: &mut Cluster<T>) -> ScenarioOutcome {
    let platform = tc_simnet::Platform::thor_bf2();

    // 1. TSI over ifuncs: first send ships code and JITs, the rest ride the
    //    sender cache as truncated frames.  Under chaos, the reliability
    //    layer must keep them exactly-once and in order per link (a
    //    truncated frame overtaking its code-carrying predecessor would
    //    error out).
    let tsi = build_ifunc_library(&tsi_module(), &platform_toolchain(&platform)).unwrap();
    let tsi_handle = cluster.register_ifunc(tsi);
    let msg = cluster.bitcode_message(tsi_handle, vec![3]).unwrap();
    for _ in 0..SENDS_PER_SERVER {
        for server in 1..=SERVERS {
            cluster.send_ifunc(&msg, server).unwrap();
        }
    }

    // 2. The AM baseline next to it on server 1.
    cluster.deploy_am("chaos_tsi_am", tsi_am_handler()).unwrap();
    cluster.send_am("chaos_tsi_am", 1, vec![7]).unwrap();

    // 3. X-RDMA through the partitioned server: ship the doubler to server
    //    2 — the node the partition cuts off — and wait on the typed
    //    handle.  This only completes after the partition heals.
    let doubler = build_ifunc_library(&doubler_module(), &platform_toolchain(&platform)).unwrap();
    let doubler_handle = cluster.register_ifunc(doubler);
    let slot = cluster.result_slot();
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u64.to_le_bytes());
    payload.extend_from_slice(&slot.slot().to_le_bytes());
    payload.extend_from_slice(&21u64.to_le_bytes());
    let dmsg = cluster.bitcode_message(doubler_handle, payload).unwrap();
    cluster.send_ifunc(&dmsg, 2).unwrap();
    let doubled = cluster.wait(&slot).unwrap();

    // 4. Let retransmissions drain, then observe through the transport
    //    (the control plane is never faulted, so reads are exact).
    cluster.run_until_idle(10_000_000).unwrap();
    let mut outcome = ScenarioOutcome {
        counters: Vec::new(),
        ifuncs_executed: Vec::new(),
        jit_compilations: Vec::new(),
        am_counter: 0,
        doubled,
    };
    for server in 1..=SERVERS {
        let stats = cluster.stats(server).unwrap();
        outcome.ifuncs_executed.push(stats.ifuncs_executed);
        outcome.jit_compilations.push(stats.jit_compilations);
        outcome
            .counters
            .push(cluster.read_u64(server, TARGET_REGION_BASE).unwrap());
    }
    outcome.am_counter = outcome.counters[0];
    outcome
}

fn assert_analytic_expectation(outcome: &ScenarioOutcome) {
    assert_eq!(outcome.doubled, 42);
    for (rank0, &counter) in outcome.counters.iter().enumerate() {
        let expected = 3 * SENDS_PER_SERVER + if rank0 == 0 { 7 } else { 0 };
        assert_eq!(
            counter,
            expected,
            "server {} counter: exactly-once delivery must make the chaos \
             run equal the fault-free run",
            rank0 + 1
        );
    }
    for (rank0, &n) in outcome.ifuncs_executed.iter().enumerate() {
        let expected = SENDS_PER_SERVER + if rank0 == 1 { 1 } else { 0 }; // +doubler
        assert_eq!(n, expected, "server {} executions", rank0 + 1);
    }
    for (rank0, &n) in outcome.jit_compilations.iter().enumerate() {
        let expected = 1 + if rank0 == 1 { 1 } else { 0 }; // tsi (+doubler on 2)
        assert_eq!(
            n,
            expected,
            "server {} JITs (dedup must prevent re-JIT)",
            rank0 + 1
        );
    }
}

#[test]
fn chaos_scenario_identical_results_on_both_backends() {
    let builder = || {
        ClusterBuilder::new()
            .platform(tc_simnet::Platform::thor_bf2())
            .servers(SERVERS)
            .fault_plan(chaos_plan())
    };

    let mut sim = builder().build(Backend::Simnet);
    let sim_outcome = run_scenario(&mut sim);
    let sim_metrics = sim.metrics();
    let sim_chaos = sim.transport().chaos_stats().expect("chaos installed");

    let mut threaded = builder().build(Backend::Threads);
    let threaded_outcome = run_scenario(&mut threaded);
    let threaded_metrics = threaded.metrics();
    let threaded_chaos = threaded.transport().chaos_stats().expect("chaos installed");
    threaded.shutdown();

    // Functional parity: every observable agrees across backends despite
    // each backend realising the fault plan in its own time domain.
    assert_eq!(sim_outcome, threaded_outcome);
    assert_analytic_expectation(&sim_outcome);

    // The faults really fired, and the reliability layer really worked.
    for (name, metrics, chaos) in [
        ("simnet", sim_metrics, sim_chaos),
        ("threads", threaded_metrics, threaded_chaos),
    ] {
        assert!(
            chaos.total_injected() > 0,
            "{name}: the plan must inject faults"
        );
        assert!(
            chaos.partition_drops > 0,
            "{name}: the partition must actually cut traffic"
        );
        assert!(
            metrics.retransmits > 0,
            "{name}: recovery must come from retransmission"
        );
        assert_eq!(
            metrics.faults_injected,
            chaos.total_injected(),
            "{name}: transport metrics must surface the chaos counters"
        );
    }
}

#[test]
fn empty_fault_plan_keeps_reliability_invisible() {
    // An empty plan still routes the data plane through the reliability
    // layer; nothing should be injected and nothing retransmitted.
    let mut cluster = ClusterBuilder::new()
        .platform(tc_simnet::Platform::thor_bf2())
        .servers(2)
        .fault_plan(FaultPlan::seeded(1))
        .build_sim();
    let platform = tc_simnet::Platform::thor_bf2();
    let tsi = build_ifunc_library(&tsi_module(), &platform_toolchain(&platform)).unwrap();
    let handle = cluster.register_ifunc(tsi);
    let msg = cluster.bitcode_message(handle, vec![2]).unwrap();
    for server in 1..=2 {
        cluster.send_ifunc(&msg, server).unwrap();
        cluster.send_ifunc(&msg, server).unwrap();
    }
    cluster.run_until_idle(1_000_000).unwrap();
    for server in 1..=2 {
        assert_eq!(cluster.read_u64(server, TARGET_REGION_BASE).unwrap(), 4);
    }
    let m = cluster.metrics();
    assert_eq!(m.retransmits, 0);
    assert_eq!(m.dup_drops, 0);
    assert_eq!(m.faults_injected, 0);
    assert!(cluster.transport().chaos_stats().unwrap().decisions > 0);
}

#[test]
fn heavy_drop_rate_still_exactly_once_on_sim() {
    // 20% drop + duplication + reorder on the deterministic backend: a
    // stress level the retransmission timer must grind through.
    let plan = FaultPlan::seeded(99)
        .drop_rate(0.20)
        .duplicate_rate(0.10)
        .reorder_rate(0.10);
    let mut cluster = ClusterBuilder::new()
        .platform(tc_simnet::Platform::thor_bf2())
        .servers(2)
        .fault_plan(plan)
        .build_sim();
    let platform = tc_simnet::Platform::thor_bf2();
    let tsi = build_ifunc_library(&tsi_module(), &platform_toolchain(&platform)).unwrap();
    let handle = cluster.register_ifunc(tsi);
    let msg = cluster.bitcode_message(handle, vec![1]).unwrap();
    for _ in 0..20 {
        cluster.send_ifunc(&msg, 1).unwrap();
        cluster.send_ifunc(&msg, 2).unwrap();
    }
    cluster.run_until_idle(10_000_000).unwrap();
    for server in 1..=2 {
        assert_eq!(
            cluster.read_u64(server, TARGET_REGION_BASE).unwrap(),
            20,
            "server {server}: 20 increments exactly"
        );
        assert_eq!(cluster.stats(server).unwrap().ifuncs_executed, 20);
    }
    let m = cluster.metrics();
    assert!(m.retransmits > 0);
    assert!(m.dup_drops > 0);
    assert!(m.faults_injected > 0);
}

#[test]
fn misaddressed_sends_under_chaos_do_not_wedge_either_side() {
    // Reliability must never adopt a message the fabric can only drop
    // (unknown rank): it would retransmit forever and idleness detection
    // would wedge.  Exercise both origins — a client send to a bogus rank
    // (driver path) and an ifunc that forwards itself to a bogus rank
    // (server path) — on the threaded backend under an active plan.
    let mut mb = ModuleBuilder::new("bad_forwarder");
    {
        let mut f = mb.entry_function();
        let payload = f.param(0);
        let len = f.param(1);
        let bogus = f.const_u64(99);
        f.call_ext("tc_forward_self", vec![bogus, payload, len], true);
        let z = f.const_i64(0);
        f.ret(z);
        f.finish();
    }
    let platform = tc_simnet::Platform::thor_bf2();
    let mut cluster = ClusterBuilder::new()
        .platform(platform)
        .servers(2)
        .fault_plan(FaultPlan::seeded(11).drop_rate(0.05))
        .build_threaded();
    let lib = build_ifunc_library(&mb.build(), &platform_toolchain(&platform)).unwrap();
    let handle = cluster.register_ifunc(lib);
    let msg = cluster.bitcode_message(handle, vec![1]).unwrap();
    cluster.send_ifunc(&msg, 1).unwrap(); // server 1 forwards to rank 99
    cluster.send_ifunc(&msg, 99).unwrap(); // client sends to rank 99
    let start = std::time::Instant::now();
    cluster.run_until_idle(100_000).unwrap();
    assert!(
        start.elapsed() < std::time::Duration::from_secs(20),
        "misaddressed reliable sends must not retransmit forever"
    );
    assert!(
        cluster.metrics().messages_dropped >= 2,
        "both bogus sends must be counted as fabric drops"
    );
    assert_eq!(cluster.stats(1).unwrap().ifuncs_executed, 1);
    cluster.shutdown();
}

/// Chaos × multi-client: two driver runtimes inject concurrent gather +
/// pointer-chase streams under 2% drop + duplication + reorder + a mid-run
/// partition that heals.  Exactly-once, in-order delivery must hold *per
/// (client, server) link*: the per-link `ReliableSet` sequence spaces of the
/// two client ranks are independent, so neither client's dedup can swallow
/// the other's frames — byte-exact artifacts on BOTH backends are the
/// functional proof, the reliability counters of both client ranks the
/// mechanical one.
#[test]
fn two_client_streams_survive_chaos_exactly_once() {
    let plan = || {
        FaultPlan::seeded(0x2C11E)
            .drop_rate(0.02)
            .duplicate_rate(0.02)
            .reorder_rate(0.05)
            // Ranks: clients 0..2, servers 2..4 — cut the first server off
            // mid-run and heal after a dozen traversals per crossing link.
            .partition(&[2], 4, 12)
    };
    let table = tc_workloads::PointerTable::generate(2, 16, 0xC0FFEE);
    let expected: Vec<u8> = (0..2).flat_map(|s| table.shard_image(s)).collect();
    for backend in [Backend::Simnet, Backend::Threads] {
        let mut cluster = ClusterBuilder::new()
            .platform(tc_simnet::Platform::thor_bf2())
            .clients(2)
            .servers(2)
            .fault_plan(plan())
            .build(backend);
        table.install_cluster(&mut cluster).unwrap();
        let report = tc_workloads::run_multi_client_streams(
            &mut cluster,
            &tc_simnet::Platform::thor_bf2(),
            &table,
            4,
            10,
            tc_workloads::Window::new(4),
            0x5EED,
        )
        .unwrap();
        for c in 0..2 {
            assert_eq!(
                report.gathered[c], expected,
                "{backend}: client {c} gather must be exactly-once despite the chaos"
            );
            let starts = tc_workloads::chase_starts(&table, tc_core::ClientId(c), 4, 0x5EED);
            for (i, &start) in starts.iter().enumerate() {
                assert_eq!(
                    report.chased[c][i],
                    table.chase(start, 10),
                    "{backend}: client {c} chase {i}"
                );
            }
        }
        let metrics = cluster.metrics();
        assert!(metrics.retransmits > 0, "{backend}: recovery retransmitted");
        assert!(metrics.faults_injected > 0, "{backend}: faults fired");
        let chaos = cluster.transport().chaos_stats().expect("chaos installed");
        assert!(
            chaos.partition_drops > 0,
            "{backend}: the partition must actually cut traffic"
        );
        // Both client ranks keep their own reliability state: each acked
        // its own inbound stream (replies/results) independently.
        for c in 0..2 {
            let rel = cluster
                .transport()
                .node_reliability(c)
                .unwrap_or_else(|| panic!("{backend}: client {c} has reliability state"));
            assert!(
                rel.acks_sent > 0,
                "{backend}: client {c} acked its own inbound stream"
            );
        }
        cluster.shutdown();
    }
}

/// Chaos × multi-client, reporting-TSI shape: two clients pump increments
/// into the same two servers concurrently under 2% drop + partition heal.
/// Whatever the interleaving, exactly-once delivery makes the final counters
/// the exact sum of both clients' deltas, and per-link in-order delivery
/// makes every client's per-server report sequence strictly increasing
/// (each report is the post-increment counter value).
#[test]
fn two_client_reporting_tsi_under_chaos_is_exactly_once_in_order() {
    use tc_core::{ClientId, CompletionSet, Ready};
    use tc_workloads::reporting_tsi_payload;

    let plan = FaultPlan::seeded(0x77AA)
        .drop_rate(0.02)
        .duplicate_rate(0.02)
        .partition(&[3], 5, 14);
    let platform = tc_simnet::Platform::thor_bf2();
    let mut cluster = ClusterBuilder::new()
        .platform(platform)
        .clients(2)
        .servers(2)
        .fault_plan(plan)
        .build_sim();
    let lib = build_ifunc_library(
        &tc_workloads::tsi_reporting_module("chaos_mc_rtsi"),
        &platform_toolchain(&platform),
    )
    .unwrap();
    let handles = [
        cluster.register_ifunc_on(ClientId(0), lib.clone()),
        cluster.register_ifunc_on(ClientId(1), lib),
    ];

    const OPS: usize = 16;
    const WINDOW: usize = 4;
    let mut set = CompletionSet::new();
    let mut owner = std::collections::HashMap::new();
    let mut next = [0usize; 2];
    let mut inflight = [0usize; 2];
    // reported[c][op] = (server index, post-increment value)
    let mut reported = vec![vec![(0usize, 0u64); OPS]; 2];
    let mut done = 0usize;
    while done < 2 * OPS {
        for c in 0..2usize {
            while next[c] < OPS && inflight[c] < WINDOW {
                let op = next[c];
                let server = op % 2;
                let slot = cluster.result_slot_on(ClientId(c));
                let delta = 1 + (op as u64 % 3) + c as u64;
                let payload = reporting_tsi_payload::encode(c as u64, slot.slot(), delta, 1);
                let msg = cluster
                    .bitcode_message_on(ClientId(c), handles[c], payload)
                    .unwrap();
                cluster
                    .send_ifunc_from(ClientId(c), &msg, cluster.server_rank(server))
                    .unwrap();
                owner.insert(set.add_result(slot), (c, op, server));
                next[c] += 1;
                inflight[c] += 1;
            }
        }
        let (token, ready) = cluster.wait_any(&mut set).unwrap();
        let (c, op, server) = owner.remove(&token).unwrap();
        match ready {
            Ready::Result(value) => {
                reported[c][op] = (server, value);
                inflight[c] -= 1;
                done += 1;
            }
            other => panic!("client {c} op {op} resolved as {other:?}"),
        }
    }
    cluster.run_until_idle(10_000_000).unwrap();

    // Exactly-once: each server's counter is the exact sum of both clients'
    // deltas addressed to it.
    for server in 0..2usize {
        let expected: u64 = (0..2)
            .flat_map(|c| {
                (0..OPS)
                    .filter(move |op| op % 2 == server)
                    .map(move |op| 1 + (op as u64 % 3) + c as u64)
            })
            .sum();
        assert_eq!(
            cluster
                .read_u64(cluster.server_rank(server), TARGET_REGION_BASE)
                .unwrap(),
            expected,
            "server {server}: dedup must keep both clients' streams exactly-once"
        );
    }
    // In order per (client, server) link: post-increment reports strictly
    // increase in send order.
    for (c, per_client) in reported.iter().enumerate() {
        for server in 0..2usize {
            let seq: Vec<u64> = per_client
                .iter()
                .filter(|(s, _)| *s == server)
                .map(|(_, v)| *v)
                .collect();
            assert!(
                seq.windows(2).all(|w| w[0] < w[1]),
                "client {c} reports on server {server} must be strictly increasing: {seq:?}"
            );
        }
    }
    let m = cluster.metrics();
    assert!(m.retransmits > 0, "the partition must force retransmission");
    assert!(m.faults_injected > 0);
}

/// The adaptive RTO estimator on the simulated backend: same seed → the
/// *same estimator trajectory*, sampled batch by batch through
/// `link_health`; delay faults must push the measured SRTT above the
/// fault-free baseline (the cluster-level half of the widen-then-retighten
/// unit tests in `reliable.rs`); and exactly-once delivery holds throughout.
#[test]
fn adaptive_estimator_trajectory_is_deterministic_on_sim() {
    use tc_core::LinkHealth;

    let run = |delay: f64| -> (Vec<Vec<(u32, LinkHealth)>>, Vec<u64>) {
        let mut plan = FaultPlan::seeded(0xADA7).drop_rate(0.02);
        if delay > 0.0 {
            plan = plan.delay_rate(delay);
        }
        let platform = tc_simnet::Platform::thor_bf2();
        let mut cluster = ClusterBuilder::new()
            .platform(platform)
            .servers(2)
            .fault_plan(plan)
            .build_sim();
        let tsi = build_ifunc_library(&tsi_module(), &platform_toolchain(&platform)).unwrap();
        let handle = cluster.register_ifunc(tsi);
        let msg = cluster.bitcode_message(handle, vec![1]).unwrap();
        let mut trajectory = Vec::new();
        for _ in 0..6 {
            for server in 1..=2 {
                for _ in 0..4 {
                    cluster.send_ifunc(&msg, server).unwrap();
                }
            }
            cluster.run_until_idle(10_000_000).unwrap();
            trajectory.push(cluster.link_health());
        }
        let counters = (1..=2)
            .map(|s| cluster.read_u64(s, TARGET_REGION_BASE).unwrap())
            .collect();
        (trajectory, counters)
    };

    let (t1, c1) = run(0.0);
    let (t2, c2) = run(0.0);
    assert_eq!(c1, vec![24, 24], "exactly-once under the estimator");
    assert_eq!(c2, c1);
    assert_eq!(
        t1, t2,
        "same seed on virtual time must reproduce the estimator trajectory \
         snapshot for snapshot"
    );
    let final_srtt = |t: &Vec<Vec<(u32, LinkHealth)>>, peer: u32| -> u64 {
        t.last()
            .unwrap()
            .iter()
            .find(|(rank, h)| *rank == 0 && h.peer == peer)
            .map(|(_, h)| h.srtt)
            .unwrap_or(0)
    };
    assert!(
        final_srtt(&t1, 1) > 0,
        "the client link must have RTT samples"
    );

    // Heavy delay faults: the client's smoothed RTT must sit above the
    // fault-free baseline on at least one server link.
    let (t3, c3) = run(0.9);
    assert_eq!(c3, c1, "delays never break exactly-once");
    assert!(
        (1..=2).any(|peer| final_srtt(&t3, peer) > final_srtt(&t1, peer)),
        "delay faults must widen the measured SRTT (baseline {:?}, delayed {:?})",
        (final_srtt(&t1, 1), final_srtt(&t1, 2)),
        (final_srtt(&t3, 1), final_srtt(&t3, 2)),
    );
}

/// Adaptive vs fixed RTO on the threaded backend: with the default adaptive
/// config the estimator takes real wall-clock samples; with
/// `RelConfig::fixed()` it must take none and pin the RTO at the floor.
/// Both arms stay exactly-once.
#[test]
fn threaded_backend_samples_rtt_only_in_adaptive_mode() {
    use tc_core::RelConfig;

    let run = |cfg: RelConfig| {
        let platform = tc_simnet::Platform::thor_bf2();
        let mut cluster = ClusterBuilder::new()
            .platform(platform)
            .servers(2)
            .fault_plan(FaultPlan::seeded(0xF1))
            .rel_config(cfg)
            .build_threaded();
        let tsi = build_ifunc_library(&tsi_module(), &platform_toolchain(&platform)).unwrap();
        let handle = cluster.register_ifunc(tsi);
        let msg = cluster.bitcode_message(handle, vec![1]).unwrap();
        for server in 1..=2 {
            for _ in 0..8 {
                cluster.send_ifunc(&msg, server).unwrap();
            }
        }
        cluster.run_until_idle(10_000_000).unwrap();
        for server in 1..=2 {
            assert_eq!(cluster.read_u64(server, TARGET_REGION_BASE).unwrap(), 8);
        }
        let health = cluster.link_health();
        cluster.shutdown();
        health
    };

    let base = RelConfig::threads_default();
    let adaptive = run(base);
    let client_links: Vec<_> = adaptive.iter().filter(|(rank, _)| *rank == 0).collect();
    assert!(!client_links.is_empty(), "client links must report health");
    assert!(
        client_links.iter().any(|(_, h)| h.srtt > 0),
        "adaptive mode must sample the real RTT: {adaptive:?}"
    );
    for (_, h) in &adaptive {
        assert!(h.rto >= base.rto && h.rto <= base.rto_max, "{h:?}");
    }

    let fixed = run(base.fixed());
    for (_, h) in &fixed {
        assert_eq!(h.srtt, 0, "fixed mode takes no samples: {h:?}");
        assert_eq!(h.rto, base.rto, "fixed mode pins the RTO: {h:?}");
    }
}

#[test]
fn crash_window_heals_and_delivery_resumes() {
    // Crash server 1 for its first 6 traversals: the very first sends are
    // blackholed, the restart happens, retransmits complete the job.
    let plan = FaultPlan::seeded(5).crash(1, 0, 6);
    let mut cluster = ClusterBuilder::new()
        .platform(tc_simnet::Platform::thor_bf2())
        .servers(1)
        .fault_plan(plan)
        .build_sim();
    let platform = tc_simnet::Platform::thor_bf2();
    let tsi = build_ifunc_library(&tsi_module(), &platform_toolchain(&platform)).unwrap();
    let handle = cluster.register_ifunc(tsi);
    let msg = cluster.bitcode_message(handle, vec![4]).unwrap();
    for _ in 0..5 {
        cluster.send_ifunc(&msg, 1).unwrap();
    }
    cluster.run_until_idle(10_000_000).unwrap();
    assert_eq!(cluster.read_u64(1, TARGET_REGION_BASE).unwrap(), 20);
    let chaos = cluster.transport().chaos_stats().unwrap();
    assert!(chaos.crash_drops > 0, "the crash window must have fired");
    assert!(cluster.metrics().retransmits > 0);
}
