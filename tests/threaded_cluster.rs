//! Real-concurrency integration test: node runtimes running on OS threads
//! connected by crossbeam channels (the `tc-simnet` threaded transport),
//! exchanging genuine ifunc frames.  No virtual time is involved — this
//! checks that the framework's state machines (auto-registration, caching,
//! execution, result return) are correct under actual parallelism.

use std::time::Duration;
use tc_core::layout::TARGET_REGION_BASE;
use tc_core::{build_ifunc_library, NodeRuntime, ToolchainOptions};
use tc_jit::MemoryExt;
use tc_simnet::{Envelope, NodeCtx, ThreadCluster, ThreadedNode};
use tc_ucx::{OutgoingMessage, RequestId, UcpOp, WorkerAddr};
use tc_workloads::tsi_module;

/// Message tags used on the threaded transport.
const TAG_IFUNC: u64 = 1;
const TAG_QUERY_COUNTER: u64 = 2;

/// A server node: owns a full Three-Chains runtime and executes whatever
/// ifunc frames arrive.
struct ServerNode {
    runtime: NodeRuntime,
    executed: u64,
}

impl ServerNode {
    fn new(node_id: usize, num_nodes: usize) -> Self {
        ServerNode {
            runtime: NodeRuntime::new(
                WorkerAddr(node_id as u32),
                num_nodes as u32,
                tc_bitir::TargetTriple::THOR_BF2,
            ),
            executed: 0,
        }
    }
}

impl ThreadedNode for ServerNode {
    fn on_message(&mut self, msg: Envelope, ctx: &NodeCtx) {
        match msg.tag {
            TAG_IFUNC => {
                self.runtime.deliver(OutgoingMessage {
                    src: WorkerAddr(u32::MAX),
                    dst: self.runtime.node_id(),
                    request: RequestId(0),
                    op: UcpOp::IfuncFrame { bytes: msg.data },
                });
                let outcomes = self.runtime.poll(usize::MAX);
                for outcome in outcomes {
                    outcome.expect("ifunc processing must succeed");
                    self.executed += 1;
                }
            }
            TAG_QUERY_COUNTER => {
                let counter = self.runtime.memory.read_u64(TARGET_REGION_BASE).unwrap_or(0);
                let mut reply = counter.to_le_bytes().to_vec();
                reply.extend_from_slice(&self.executed.to_le_bytes());
                ctx.send_external(msg.tag, reply);
            }
            _ => {}
        }
    }
}

#[test]
fn threaded_servers_execute_ifuncs_concurrently_and_cache_code() {
    const SERVERS: usize = 6;
    const SENDS_PER_SERVER: usize = 8;

    // Build the TSI ifunc on the "client" (the test driver) and precompute
    // the full and truncated frame encodings the way the sender cache would.
    let library = build_ifunc_library(&tsi_module(), &ToolchainOptions::default()).unwrap();
    let mut client = NodeRuntime::new(
        WorkerAddr(100),
        SERVERS as u32 + 1,
        tc_bitir::TargetTriple::THOR_XEON,
    );
    let handle = client.register_library(library);
    let message = client.create_bitcode_message(handle, vec![3]).unwrap();
    let full_frame = message.frame.encode_full();
    let truncated_frame = message.frame.encode_truncated();

    let cluster = ThreadCluster::start(SERVERS, |id| ServerNode::new(id, SERVERS));

    // First send to every server carries the code; subsequent sends are
    // truncated — exactly what the sender-side cache would transmit.
    for server in 0..SERVERS {
        cluster.send(server, TAG_IFUNC, full_frame.clone());
        for _ in 1..SENDS_PER_SERVER {
            cluster.send(server, TAG_IFUNC, truncated_frame.clone());
        }
    }
    // Ask every server for its counter; channel FIFO ordering guarantees the
    // query is handled after all the ifunc frames.
    for server in 0..SERVERS {
        cluster.send(server, TAG_QUERY_COUNTER, vec![]);
    }

    let replies = cluster.collect_external(SERVERS, Duration::from_secs(30));
    assert_eq!(replies.len(), SERVERS, "all servers must report back");
    for reply in replies {
        let counter = u64::from_le_bytes(reply.data[..8].try_into().unwrap());
        let executed = u64::from_le_bytes(reply.data[8..16].try_into().unwrap());
        assert_eq!(
            counter,
            3 * SENDS_PER_SERVER as u64,
            "server {} counter",
            reply.from
        );
        assert_eq!(executed, SENDS_PER_SERVER as u64);
    }
    cluster.shutdown();
}

#[test]
fn threaded_truncated_frame_to_cold_server_is_rejected_not_crashing() {
    let library = build_ifunc_library(&tsi_module(), &ToolchainOptions::default()).unwrap();
    let mut client = NodeRuntime::new(WorkerAddr(9), 2, tc_bitir::TargetTriple::THOR_XEON);
    let handle = client.register_library(library);
    let message = client.create_bitcode_message(handle, vec![1]).unwrap();
    let truncated = message.frame.encode_truncated();

    // A single runtime, no prior full frame: handling must return an error,
    // not panic, and the counter must stay untouched.
    let mut server = NodeRuntime::new(WorkerAddr(0), 2, tc_bitir::TargetTriple::THOR_BF2);
    server.deliver(OutgoingMessage {
        src: WorkerAddr(9),
        dst: WorkerAddr(0),
        request: RequestId(0),
        op: UcpOp::IfuncFrame { bytes: truncated },
    });
    let outcomes = server.poll(usize::MAX);
    assert!(outcomes[0].is_err());
    assert_eq!(server.memory.read_u64(TARGET_REGION_BASE).unwrap(), 0);
}
