//! Real-concurrency integration tests: the cluster API on the thread-backed
//! transport.  Node runtimes run on OS threads connected by channels and
//! exchange genuine ifunc frames — no virtual time is involved.  This checks
//! that the framework's state machines (auto-registration, caching,
//! execution, result return) are correct under actual parallelism, driven
//! through exactly the same `ClusterBuilder` API as the simulated backend.

use tc_core::layout::TARGET_REGION_BASE;
use tc_core::{build_ifunc_library, ClusterBuilder};
use tc_ucx::{UcpOp, WorkerAddr};
use tc_workloads::{platform_toolchain, tsi_module};

#[test]
fn threaded_servers_execute_ifuncs_concurrently_and_cache_code() {
    const SERVERS: usize = 6;
    const SENDS_PER_SERVER: usize = 8;

    let platform = tc_simnet::Platform::thor_bf2();
    let mut cluster = ClusterBuilder::new()
        .platform(platform)
        .servers(SERVERS)
        .build_threaded();

    let library = build_ifunc_library(&tsi_module(), &platform_toolchain(&platform)).unwrap();
    let handle = cluster.register_ifunc(library);
    let message = cluster.bitcode_message(handle, vec![3]).unwrap();

    // Interleave sends across all servers; the sender-side cache ships the
    // full frame only on each server's first send and truncated frames after.
    for round in 0..SENDS_PER_SERVER {
        for server in 1..=SERVERS {
            let bytes = cluster.send_ifunc(&message, server).unwrap();
            if round == 0 {
                assert!(bytes > 2_000, "first frame to {server} must carry code");
            } else {
                assert!(
                    bytes < 64,
                    "subsequent frames to {server} must be truncated"
                );
            }
        }
    }

    // The control plane is FIFO-ordered behind the data plane on each node's
    // channel, so a stats query is a per-server barrier: no sleeps needed.
    for server in 1..=SERVERS {
        let stats = cluster.stats(server).unwrap();
        assert_eq!(
            stats.ifuncs_executed, SENDS_PER_SERVER as u64,
            "server {server}"
        );
        assert_eq!(
            stats.jit_compilations, 1,
            "server {server} must JIT exactly once"
        );
        assert_eq!(
            stats.truncated_frames_received,
            SENDS_PER_SERVER as u64 - 1,
            "server {server}"
        );
        let counter = cluster.read_u64(server, TARGET_REGION_BASE).unwrap();
        assert_eq!(
            counter,
            3 * SENDS_PER_SERVER as u64,
            "server {server} counter"
        );
    }

    let metrics = cluster.metrics();
    assert_eq!(metrics.messages_dropped, 0);
    assert!(cluster.transport().errors().is_empty());
    cluster.shutdown();
}

#[test]
fn threaded_truncated_frame_to_cold_server_is_rejected_not_crashing() {
    let platform = tc_simnet::Platform::thor_bf2();
    let mut cluster = ClusterBuilder::new()
        .platform(platform)
        .servers(1)
        .build_threaded();
    let library = build_ifunc_library(&tsi_module(), &platform_toolchain(&platform)).unwrap();
    let handle = cluster.register_ifunc(library);
    let message = cluster.bitcode_message(handle, vec![1]).unwrap();

    // Forge a truncated frame to a server that has never seen the code,
    // bypassing the sender cache.
    let truncated = message.frame.encode_truncated();
    cluster
        .client_mut()
        .worker
        .post(WorkerAddr(1), UcpOp::IfuncFrame { bytes: truncated });
    cluster.flush().unwrap();

    // The server reports the failure through the transport's error channel;
    // the stats barrier guarantees it has already handled the frame.
    // The external channel is FIFO, so the node's error report arrives (and
    // is collected) before the stats reply that follows it.
    let stats = cluster.stats(1).unwrap();
    assert_eq!(stats.ifuncs_executed, 0);
    let errors = cluster.transport().errors();
    assert!(
        errors
            .iter()
            .any(|e| e.to_string().contains("never registered")),
        "expected a registration error, got {errors:?}"
    );
    assert_eq!(cluster.read_u64(1, TARGET_REGION_BASE).unwrap(), 0);
    cluster.shutdown();
}

#[test]
fn idle_cluster_detects_quiescence_and_shuts_down_fast() {
    // The transport parks on `recv_timeout` (woken instantly by enqueues)
    // and consults the fabric's pending-message counter, so an idle cluster
    // must be detected and torn down in well under 100 ms — the former
    // fixed polling budget was ~0.5 s.
    let mut cluster = ClusterBuilder::new()
        .platform(tc_simnet::Platform::thor_bf2())
        .servers(8)
        .build_threaded();
    let start = std::time::Instant::now();
    cluster.run_until_idle(1_000).unwrap();
    cluster.shutdown();
    let elapsed = start.elapsed();
    assert!(
        elapsed < std::time::Duration::from_millis(100),
        "idle 8-node cluster took {elapsed:?} to quiesce and shut down"
    );
}

#[test]
fn large_put_and_get_payloads_cross_the_cluster_unchanged() {
    // End-to-end exercise of the scatter-gather data plane: a large PUT
    // travels as a shared payload segment, and the GET reply of the same
    // region round-trips bit-exact.
    let mut cluster = ClusterBuilder::new()
        .platform(tc_simnet::Platform::thor_xeon())
        .servers(2)
        .build_threaded();
    let addr = tc_core::layout::DATA_REGION_BASE;
    let payload: tc_ucx::Bytes = (0..192 * 1024).map(|i| (i * 31 % 251) as u8).collect();
    cluster.put(2, addr, payload.clone()).unwrap();
    let handle = cluster.get(2, addr, payload.len() as u64).unwrap();
    let fetched = cluster.wait(&handle).unwrap();
    assert_eq!(fetched, payload);
    // And via the control plane, which reads the node's memory directly.
    let peeked = cluster.read_memory(2, addr, payload.len()).unwrap();
    assert_eq!(peeked, payload);
    assert_eq!(cluster.metrics().messages_dropped, 0);
    cluster.shutdown();
}

#[test]
fn threaded_sends_to_unknown_ranks_are_counted_not_lost_silently() {
    let platform = tc_simnet::Platform::thor_xeon();
    let mut cluster = ClusterBuilder::new()
        .platform(platform)
        .servers(2)
        .build_threaded();
    let library = build_ifunc_library(&tsi_module(), &platform_toolchain(&platform)).unwrap();
    let handle = cluster.register_ifunc(library);
    let message = cluster.bitcode_message(handle, vec![1]).unwrap();

    cluster.send_ifunc(&message, 99).unwrap(); // no such rank
    assert_eq!(cluster.metrics().messages_dropped, 1);

    // Deliverable traffic still flows.
    cluster.send_ifunc(&message, 1).unwrap();
    assert_eq!(cluster.stats(1).unwrap().ifuncs_executed, 1);
    cluster.shutdown();
}

#[test]
fn thread_tuning_is_configurable_through_the_builder() {
    // The former hard-coded scheduling constants (park timeout, batch caps,
    // idle grace, control timeout) are builder-configurable; a deliberately
    // unusual combination must still run the scenario correctly.
    let platform = tc_simnet::Platform::thor_bf2();
    let tuning = tc_core::ThreadTuning {
        step_timeout: std::time::Duration::from_millis(5),
        busy_step_timeout: std::time::Duration::from_millis(200),
        step_batch: 8,
        idle_grace: 4,
        node_batch: 4,
        control_timeout: std::time::Duration::from_secs(2),
    };
    let mut cluster = ClusterBuilder::new()
        .platform(platform)
        .servers(3)
        .thread_tuning(tuning)
        .build_threaded();
    let library = build_ifunc_library(&tsi_module(), &platform_toolchain(&platform)).unwrap();
    let handle = cluster.register_ifunc(library);
    let message = cluster.bitcode_message(handle, vec![2]).unwrap();
    for _ in 0..10 {
        for server in 1..=3 {
            cluster.send_ifunc(&message, server).unwrap();
        }
    }
    cluster.run_until_idle(100_000).unwrap();
    for server in 1..=3 {
        assert_eq!(cluster.read_u64(server, TARGET_REGION_BASE).unwrap(), 20);
        assert_eq!(cluster.stats(server).unwrap().ifuncs_executed, 10);
    }
    cluster.shutdown();
}
