//! Backend parity: the same TSI and X-RDMA scenarios run through one
//! `ClusterBuilder` on all three first-class transports — the calibrated
//! discrete-event simulation, real OS threads, and separate OS processes
//! over Unix-domain sockets — and must produce identical functional results
//! (counter values, execution counts, result values).  Timing is
//! backend-specific by design; function is not.

use std::sync::Arc;
use tc_bitir::{BinOp, Module, ModuleBuilder, ScalarType};
use tc_core::layout::TARGET_REGION_BASE;
use tc_core::{build_ifunc_library, Backend, Cluster, ClusterBuilder, NativeAmHandler, Transport};
use tc_workloads::{platform_toolchain, tsi_module};

const SERVERS: usize = 4;
const SENDS_PER_SERVER: u64 = 5;

/// What a scenario observed on one backend; compared across backends.
#[derive(Debug, PartialEq, Eq)]
struct ScenarioOutcome {
    counters: Vec<u64>,
    ifuncs_executed: Vec<u64>,
    jit_compilations: Vec<u64>,
    truncated_frames: Vec<u64>,
    am_counter: u64,
    doubled: u64,
    dropped: u64,
}

/// An ifunc that doubles a payload value and returns it through the X-RDMA
/// result mailbox.  Payload: `[client u64][slot u64][value u64]`.
fn doubler_module() -> Module {
    let mut mb = ModuleBuilder::new("parity_doubler");
    {
        let mut f = mb.entry_function();
        let payload = f.param(0);
        let client = f.load(ScalarType::U64, payload, 0);
        let slot = f.load(ScalarType::U64, payload, 8);
        let value = f.load(ScalarType::U64, payload, 16);
        let two = f.const_u64(2);
        let doubled = f.bin(BinOp::Mul, ScalarType::U64, value, two);
        f.call_ext("tc_return_result", vec![client, slot, doubled], true);
        let z = f.const_i64(0);
        f.ret(z);
        f.finish();
    }
    mb.build()
}

fn tsi_am_handler() -> NativeAmHandler {
    Arc::new(|ctx, payload| {
        use tc_jit::MemoryExt;
        let delta = u64::from(payload.first().copied().unwrap_or(0));
        let old = ctx.memory.read_u64(TARGET_REGION_BASE).unwrap_or(0);
        let _ = ctx.memory.write_u64(TARGET_REGION_BASE, old + delta);
        24
    })
}

/// The shared scenario, written once against the unified API and oblivious
/// to which transport is underneath.
fn run_scenario<T: Transport>(cluster: &mut Cluster<T>) -> ScenarioOutcome {
    let platform = tc_simnet::Platform::thor_bf2();

    // 1. TSI over ifuncs: first send ships code and JITs, the rest ride the
    //    sender cache as truncated frames.
    let tsi = build_ifunc_library(&tsi_module(), &platform_toolchain(&platform)).unwrap();
    let tsi_handle = cluster.register_ifunc(tsi);
    let msg = cluster.bitcode_message(tsi_handle, vec![3]).unwrap();
    for _ in 0..SENDS_PER_SERVER {
        for server in 1..=SERVERS {
            cluster.send_ifunc(&msg, server).unwrap();
        }
    }

    // 2. The AM baseline next to it on server 1.
    cluster
        .deploy_am("parity_tsi_am", tsi_am_handler())
        .unwrap();
    cluster.send_am("parity_tsi_am", 1, vec![7]).unwrap();

    // 3. X-RDMA: ship the doubler to server 2 and wait on the typed handle.
    let doubler = build_ifunc_library(&doubler_module(), &platform_toolchain(&platform)).unwrap();
    let doubler_handle = cluster.register_ifunc(doubler);
    let slot = cluster.result_slot();
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u64.to_le_bytes());
    payload.extend_from_slice(&slot.slot().to_le_bytes());
    payload.extend_from_slice(&21u64.to_le_bytes());
    let dmsg = cluster.bitcode_message(doubler_handle, payload).unwrap();
    cluster.send_ifunc(&dmsg, 2).unwrap();
    let doubled = cluster.wait(&slot).unwrap();

    // 4. Let everything settle, then observe through the transport.
    cluster.run_until_idle(1_000_000).unwrap();
    let mut outcome = ScenarioOutcome {
        counters: Vec::new(),
        ifuncs_executed: Vec::new(),
        jit_compilations: Vec::new(),
        truncated_frames: Vec::new(),
        am_counter: 0,
        doubled,
        dropped: cluster.metrics().messages_dropped,
    };
    for server in 1..=SERVERS {
        let stats = cluster.stats(server).unwrap();
        outcome.ifuncs_executed.push(stats.ifuncs_executed);
        outcome.jit_compilations.push(stats.jit_compilations);
        outcome
            .truncated_frames
            .push(stats.truncated_frames_received);
        outcome
            .counters
            .push(cluster.read_u64(server, TARGET_REGION_BASE).unwrap());
    }
    // The AM incremented server 1's counter past the ifunc contribution.
    outcome.am_counter = outcome.counters[0];
    outcome
}

#[test]
fn same_scenario_identical_results_on_both_backends() {
    let builder = || {
        ClusterBuilder::new()
            .platform(tc_simnet::Platform::thor_bf2())
            .servers(SERVERS)
    };

    let mut sim = builder().build(Backend::Simnet);
    let sim_outcome = run_scenario(&mut sim);

    let mut threaded = builder().build(Backend::Threads);
    let threaded_outcome = run_scenario(&mut threaded);
    threaded.shutdown();

    let mut socket = builder()
        .server_bin(env!("CARGO_BIN_EXE_tc-socket-server"))
        .build(Backend::Socket);
    let socket_outcome = run_scenario(&mut socket);
    socket.shutdown();

    // Functional parity: every observable agrees across backends.
    assert_eq!(sim_outcome, threaded_outcome);
    assert_eq!(
        sim_outcome, socket_outcome,
        "cross-process backend must match the in-process ones"
    );

    // Sanity: and both match the analytic expectation.
    assert_eq!(sim_outcome.doubled, 42);
    assert_eq!(sim_outcome.dropped, 0);
    for (rank0, &counter) in sim_outcome.counters.iter().enumerate() {
        let expected = 3 * SENDS_PER_SERVER + if rank0 == 0 { 7 } else { 0 };
        assert_eq!(counter, expected, "server {} counter", rank0 + 1);
    }
    for (rank0, &n) in sim_outcome.ifuncs_executed.iter().enumerate() {
        let expected = SENDS_PER_SERVER + if rank0 == 1 { 1 } else { 0 }; // +doubler
        assert_eq!(n, expected, "server {} executions", rank0 + 1);
    }
    for (rank0, &n) in sim_outcome.jit_compilations.iter().enumerate() {
        let expected = 1 + if rank0 == 1 { 1 } else { 0 }; // tsi (+doubler on 2)
        assert_eq!(n, expected, "server {} JITs", rank0 + 1);
    }
}

/// The same scenario over a *lossy* socket: 25% of reliable frames on every
/// link are dropped by the chaos engine, yet the outcome must be identical
/// to the lossless run — exactly-once, in-order delivery across real
/// process boundaries, with the reliability counters proving the recovery
/// came from retransmission rather than luck.
#[test]
fn lossy_socket_run_matches_lossless_results_via_retransmission() {
    let builder = || {
        ClusterBuilder::new()
            .platform(tc_simnet::Platform::thor_bf2())
            .servers(SERVERS)
    };
    let mut sim = builder().build(Backend::Simnet);
    let lossless = run_scenario(&mut sim);

    let mut socket = builder()
        .fault_plan(tc_core::FaultPlan::seeded(0x50CC).drop_rate(0.25))
        .server_bin(env!("CARGO_BIN_EXE_tc-socket-server"))
        .build(Backend::Socket);
    let lossy = run_scenario(&mut socket);
    let metrics = socket.metrics();
    let chaos = socket.transport().chaos_stats().expect("chaos installed");
    socket.shutdown();

    assert_eq!(
        lossless, lossy,
        "a 25%-drop socket run must be functionally indistinguishable from lossless"
    );
    assert_eq!(lossy.dropped, 0, "chaos drops are not fabric drops");
    assert!(
        chaos.total_injected() > 0,
        "the plan must actually inject faults"
    );
    assert!(
        metrics.retransmits > 0,
        "recovery must come from retransmission"
    );
}

#[test]
fn simulated_backend_still_produces_a_populated_timing_log() {
    let mut cluster = ClusterBuilder::new()
        .platform(tc_simnet::Platform::thor_xeon())
        .servers(2)
        .build_sim();
    let platform = tc_simnet::Platform::thor_xeon();
    let tsi = build_ifunc_library(&tsi_module(), &platform_toolchain(&platform)).unwrap();
    let handle = cluster.register_ifunc(tsi);
    let msg = cluster.bitcode_message(handle, vec![1]).unwrap();
    // Let the full frame land before the truncated one chases it (the tiny
    // cached frame has lower fabric latency and would otherwise overtake the
    // code-carrying frame).
    cluster.send_ifunc(&msg, 1).unwrap();
    cluster.run_until_idle(10_000).unwrap();
    cluster.send_ifunc(&msg, 1).unwrap();
    cluster.run_until_idle(10_000).unwrap();

    let timings = cluster.transport().timings();
    assert!(
        !timings.records.is_empty(),
        "simnet path must keep its TimingLog"
    );
    let first = timings
        .last_of_kind(tc_core::OutcomeKind::IfuncExecutedFirstArrival)
        .expect("first-arrival record");
    assert!(first.jit.as_millis_f64() > 0.0);
    let cached = timings
        .last_of_kind(tc_core::OutcomeKind::IfuncExecutedCached)
        .expect("cached record");
    assert!(cached.end_to_end() < first.end_to_end());
}
