//! One server rank of a socket-backend cluster, as an OS process.
//!
//! Launched by the driver (`ClusterBuilder::build_socket`) or by hand:
//!
//! ```text
//! tc-socket-server --connect unix:/tmp/cluster.sock [--rank 3]
//! tc-socket-server --connect tcp:10.0.0.1:7000
//! ```
//!
//! The process dials the driver, handshakes (HELLO/WELCOME), builds its
//! `NodeRuntime` from the negotiated configuration, and serves until the
//! driver sends SHUTDOWN or disappears.  The compiled-in Active-Message
//! catalog is `tc_workloads::am_catalog()`.

use std::process::ExitCode;
use tc_core::cluster::{serve_socket, ServerOptions};

fn main() -> ExitCode {
    let opts = match ServerOptions::from_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("tc-socket-server: {msg}");
            return ExitCode::FAILURE;
        }
    };
    match serve_socket(opts, tc_workloads::am_catalog()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("tc-socket-server: {msg}");
            ExitCode::FAILURE
        }
    }
}
