//! # three-chains — reproduction of "Bring the BitCODE" (CLUSTER 2022)
//!
//! An umbrella crate re-exporting the whole reproduction of *Bring the
//! BitCODE — Moving Compute and Data in Distributed Heterogeneous Systems*
//! (Lu, Peña, Shamis, Churavy, Chapman, Poole; IEEE CLUSTER 2022).
//!
//! The system moves **both code and data** between processing elements of a
//! heterogeneous cluster (host CPUs of different ISAs, DPU Arm cores): an
//! *ifunc* — a function in portable bitcode or target-specific binary form —
//! is shipped together with its payload, JIT-compiled or loaded on the
//! target, linked against its dependencies, executed, cached for subsequent
//! calls, and may recursively inject further ifuncs (the X-RDMA pattern).
//!
//! | layer | crate | role |
//! |---|---|---|
//! | IR / bitcode | [`bitir`] | portable IR, fat-bitcode archives (LLVM-IR analogue) |
//! | binary objects | [`binfmt`] | ELF-like objects, GOT patching (binary ifuncs) |
//! | JIT / execution | [`jit`] | ORC-like JIT, dylib linking, interpreter (ORC-JIT analogue) |
//! | testbed models | [`simnet`] | fabric/CPU models calibrated to the paper's platforms |
//! | communication | [`ucx`] | UCP-like workers, PUT/GET/AM (UCX analogue) |
//! | framework | [`core`] | ifunc registry, frames, caching, runtime, X-RDMA, cluster sim |
//! | front-end | [`chainlang`] | high-level language → IR (Julia/GPUCompiler analogue) |
//! | evaluation | [`workloads`] | TSI, DAPC, GBPC, sweeps (Tables I–VI, Figures 5–12) |
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `EXPERIMENTS.md` for the paper-vs-measured comparison.

pub use tc_binfmt as binfmt;
pub use tc_bitir as bitir;
pub use tc_chainlang as chainlang;
pub use tc_chaos as chaos;
pub use tc_core as core;
pub use tc_jit as jit;
pub use tc_simnet as simnet;
pub use tc_ucx as ucx;
pub use tc_workloads as workloads;

/// Version of the reproduction.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
