//! # tc-bitir — portable IR and bitcode for the Three-Chains reproduction
//!
//! This crate is the reproduction's stand-in for LLVM IR and LLVM bitcode in
//! the paper *"Bring the BitCODE — Moving Compute and Data in Distributed
//! Heterogeneous Systems"* (CLUSTER 2022).  It provides:
//!
//! * a typed, register-based, basic-block IR ([`ir`]) expressive enough for
//!   the paper's workloads (target-side increment, distributed pointer
//!   chasing, recursive ifunc forwarding, vectorisable kernels);
//! * an ergonomic [`builder`] API — the "write your ifunc in C" path;
//! * a structural/type [`verify`]er run before shipping and before JIT;
//! * per-target [`lower`]ing that records SIMD width, atomics flavour and
//!   pointer width for the JIT (the analogue of Clang's `-target` flag);
//! * a compact binary [`bitcode`] encoding — what actually travels inside an
//!   ifunc message frame;
//! * [`fat`]-bitcode archives packing one bitcode entry per target triple
//!   together with the dependency list, exactly as in Figure 3 of the paper.
//!
//! Higher layers: `tc-jit` compiles and executes bitcode, `tc-core` ships it
//! inside ifunc messages, `tc-chainlang` (the Julia analogue) generates it
//! from a high-level language.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitcode;
pub mod builder;
pub mod error;
pub mod fat;
pub mod ir;
pub mod lower;
pub mod types;
pub mod verify;

pub use bitcode::{decode_module, encode_module};
pub use builder::{FunctionBuilder, ModuleBuilder};
pub use error::{BitirError, Result};
pub use fat::{FatBitcode, FatEntry};
pub use ir::{
    AtomicOp, BinOp, Block, BlockId, ExtSymId, FuncId, Function, Global, GlobalId, Inst, LowerInfo,
    Module, Reg, UnOp, VecOp,
};
pub use lower::{lower_for_target, lower_for_targets};
pub use types::{AtomicsExt, Isa, IsaFeatures, Microarch, ScalarType, TargetTriple, VectorExt};
pub use verify::verify_module;
