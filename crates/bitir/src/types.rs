//! Scalar types, target triples and micro-architecture feature descriptions.
//!
//! The paper ships LLVM bitcode that is *target-triple specific* (pointer
//! width, atomics flavour, vector extensions all differ between the Intel
//! Xeon hosts, the Fujitsu A64FX nodes and the BlueField-2 Cortex-A72 DPU
//! cores).  This module models that space: a [`TargetTriple`] identifies the
//! ISA and the micro-architecture, and [`IsaFeatures`] captures the knobs
//! that influence lowering (vector width, LSE-style atomics).

use std::fmt;

/// Scalar value types understood by the IR.
///
/// Every runtime value is carried in a 64-bit slot; the type controls how
/// arithmetic, comparisons, loads and stores interpret those bits, mirroring
/// how LLVM IR types drive instruction selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// Signed 8-bit integer.
    I8,
    /// Signed 16-bit integer.
    I16,
    /// Signed 32-bit integer.
    I32,
    /// Signed 64-bit integer.
    I64,
    /// Unsigned 8-bit integer.
    U8,
    /// Unsigned 16-bit integer.
    U16,
    /// Unsigned 32-bit integer.
    U32,
    /// Unsigned 64-bit integer.
    U64,
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
    /// Pointer-sized integer (address into the node's memory).
    Ptr,
}

impl ScalarType {
    /// All scalar types, useful for property based testing.
    pub const ALL: [ScalarType; 11] = [
        ScalarType::I8,
        ScalarType::I16,
        ScalarType::I32,
        ScalarType::I64,
        ScalarType::U8,
        ScalarType::U16,
        ScalarType::U32,
        ScalarType::U64,
        ScalarType::F32,
        ScalarType::F64,
        ScalarType::Ptr,
    ];

    /// Size in bytes of a value of this type when stored in memory.
    ///
    /// `ptr_bytes` is the pointer width of the target (8 on every target we
    /// model, but kept explicit so 32-bit targets could be added).
    pub fn size_bytes(self, ptr_bytes: u8) -> u8 {
        match self {
            ScalarType::I8 | ScalarType::U8 => 1,
            ScalarType::I16 | ScalarType::U16 => 2,
            ScalarType::I32 | ScalarType::U32 | ScalarType::F32 => 4,
            ScalarType::I64 | ScalarType::U64 | ScalarType::F64 => 8,
            ScalarType::Ptr => ptr_bytes,
        }
    }

    /// True for the two floating point types.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::F32 | ScalarType::F64)
    }

    /// True for any integer (signed, unsigned or pointer) type.
    pub fn is_int(self) -> bool {
        !self.is_float()
    }

    /// True for signed integer types.
    pub fn is_signed(self) -> bool {
        matches!(
            self,
            ScalarType::I8 | ScalarType::I16 | ScalarType::I32 | ScalarType::I64
        )
    }

    /// Stable numeric tag used by the bitcode encoder.
    pub fn tag(self) -> u8 {
        match self {
            ScalarType::I8 => 0,
            ScalarType::I16 => 1,
            ScalarType::I32 => 2,
            ScalarType::I64 => 3,
            ScalarType::U8 => 4,
            ScalarType::U16 => 5,
            ScalarType::U32 => 6,
            ScalarType::U64 => 7,
            ScalarType::F32 => 8,
            ScalarType::F64 => 9,
            ScalarType::Ptr => 10,
        }
    }

    /// Inverse of [`ScalarType::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Self::ALL.get(tag as usize).copied()
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarType::I8 => "i8",
            ScalarType::I16 => "i16",
            ScalarType::I32 => "i32",
            ScalarType::I64 => "i64",
            ScalarType::U8 => "u8",
            ScalarType::U16 => "u16",
            ScalarType::U32 => "u32",
            ScalarType::U64 => "u64",
            ScalarType::F32 => "f32",
            ScalarType::F64 => "f64",
            ScalarType::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

/// Instruction-set architectures modelled by the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Isa {
    /// x86-64 (the Thor Xeon hosts in the paper).
    X86_64,
    /// AArch64 (the Ookami A64FX nodes and the BlueField-2 DPU cores).
    Aarch64,
}

impl Isa {
    /// Stable numeric tag used by the bitcode encoder.
    pub fn tag(self) -> u8 {
        match self {
            Isa::X86_64 => 0,
            Isa::Aarch64 => 1,
        }
    }

    /// Inverse of [`Isa::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Isa::X86_64),
            1 => Some(Isa::Aarch64),
            _ => None,
        }
    }

    /// Canonical lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Isa::X86_64 => "x86_64",
            Isa::Aarch64 => "aarch64",
        }
    }
}

impl fmt::Display for Isa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Micro-architectures that appear in the paper's testbeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Microarch {
    /// Generic tuning for the ISA, no micro-architecture specific features.
    Generic,
    /// Intel Xeon E5-2697A v4 (Thor host CPUs) — AVX2, fast JIT.
    XeonE5,
    /// Fujitsu A64FX (Ookami) — 512-bit SVE, LSE atomics, slower scalar core.
    A64fx,
    /// Arm Cortex-A72 (BlueField-2 DPU cores) — NEON, LSE atomics, modest core.
    CortexA72,
}

impl Microarch {
    /// Stable numeric tag used by the bitcode encoder.
    pub fn tag(self) -> u8 {
        match self {
            Microarch::Generic => 0,
            Microarch::XeonE5 => 1,
            Microarch::A64fx => 2,
            Microarch::CortexA72 => 3,
        }
    }

    /// Inverse of [`Microarch::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Microarch::Generic),
            1 => Some(Microarch::XeonE5),
            2 => Some(Microarch::A64fx),
            3 => Some(Microarch::CortexA72),
            _ => None,
        }
    }

    /// Canonical lower-case name (used in triple strings).
    pub fn name(self) -> &'static str {
        match self {
            Microarch::Generic => "generic",
            Microarch::XeonE5 => "xeon-e5",
            Microarch::A64fx => "a64fx",
            Microarch::CortexA72 => "cortex-a72",
        }
    }

    /// The ISA this micro-architecture belongs to (`None` for Generic which
    /// is valid on any ISA).
    pub fn isa(self) -> Option<Isa> {
        match self {
            Microarch::Generic => None,
            Microarch::XeonE5 => Some(Isa::X86_64),
            Microarch::A64fx | Microarch::CortexA72 => Some(Isa::Aarch64),
        }
    }
}

impl fmt::Display for Microarch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Vector extension available on a target, expressed as the SIMD width in
/// bits.  The JIT uses this to split vector IR operations into machine-level
/// chunks (the analogue of ORC-JIT emitting SVE on A64FX and AVX2 on Xeon).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VectorExt {
    /// No SIMD: vector ops are fully scalarised.
    None,
    /// 128-bit NEON-class SIMD.
    Simd128,
    /// 256-bit AVX2-class SIMD.
    Simd256,
    /// 512-bit SVE-class SIMD.
    Simd512,
}

impl VectorExt {
    /// Width of the vector unit in bits (0 when there is none).
    pub fn bits(self) -> u16 {
        match self {
            VectorExt::None => 0,
            VectorExt::Simd128 => 128,
            VectorExt::Simd256 => 256,
            VectorExt::Simd512 => 512,
        }
    }

    /// How many lanes of a scalar type fit in one vector register
    /// (always at least 1 so scalar fallback costs stay well-defined).
    pub fn lanes_for(self, ty: ScalarType, ptr_bytes: u8) -> u32 {
        let elem_bits = u32::from(ty.size_bytes(ptr_bytes)) * 8;
        let width = u32::from(self.bits());
        if width == 0 {
            1
        } else {
            (width / elem_bits).max(1)
        }
    }

    /// Stable numeric tag used by the bitcode encoder.
    pub fn tag(self) -> u8 {
        match self {
            VectorExt::None => 0,
            VectorExt::Simd128 => 1,
            VectorExt::Simd256 => 2,
            VectorExt::Simd512 => 3,
        }
    }

    /// Inverse of [`VectorExt::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(VectorExt::None),
            1 => Some(VectorExt::Simd128),
            2 => Some(VectorExt::Simd256),
            3 => Some(VectorExt::Simd512),
            _ => None,
        }
    }
}

/// How atomic read-modify-write operations are lowered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicsExt {
    /// Compare-and-swap loop (pre-LSE AArch64, baseline x86 path).
    CasLoop,
    /// Single-instruction atomics (Arm LSE / x86 `lock xadd` class).
    Lse,
}

impl AtomicsExt {
    /// Stable numeric tag used by the bitcode encoder.
    pub fn tag(self) -> u8 {
        match self {
            AtomicsExt::CasLoop => 0,
            AtomicsExt::Lse => 1,
        }
    }

    /// Inverse of [`AtomicsExt::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(AtomicsExt::CasLoop),
            1 => Some(AtomicsExt::Lse),
            _ => None,
        }
    }
}

/// Feature bundle derived from a micro-architecture; drives lowering and the
/// JIT's instruction selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IsaFeatures {
    /// Widest available SIMD extension.
    pub vector: VectorExt,
    /// How atomic RMW operations are emitted.
    pub atomics: AtomicsExt,
    /// Pointer width in bytes.
    pub ptr_bytes: u8,
}

impl IsaFeatures {
    /// Feature bundle for a (ISA, micro-architecture) pair.
    pub fn for_target(isa: Isa, march: Microarch) -> Self {
        match (isa, march) {
            (Isa::X86_64, Microarch::XeonE5) => IsaFeatures {
                vector: VectorExt::Simd256,
                atomics: AtomicsExt::Lse,
                ptr_bytes: 8,
            },
            (Isa::X86_64, _) => IsaFeatures {
                vector: VectorExt::Simd128,
                atomics: AtomicsExt::CasLoop,
                ptr_bytes: 8,
            },
            (Isa::Aarch64, Microarch::A64fx) => IsaFeatures {
                vector: VectorExt::Simd512,
                atomics: AtomicsExt::Lse,
                ptr_bytes: 8,
            },
            (Isa::Aarch64, Microarch::CortexA72) => IsaFeatures {
                vector: VectorExt::Simd128,
                atomics: AtomicsExt::CasLoop,
                ptr_bytes: 8,
            },
            (Isa::Aarch64, _) => IsaFeatures {
                vector: VectorExt::Simd128,
                atomics: AtomicsExt::CasLoop,
                ptr_bytes: 8,
            },
        }
    }
}

/// A target triple in the spirit of `x86_64-pc-linux-gnu`: the pair of ISA
/// and micro-architecture that a bitcode entry or a binary object was
/// produced for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TargetTriple {
    /// Instruction set architecture.
    pub isa: Isa,
    /// Micro-architecture tuning (also selects feature bundle).
    pub march: Microarch,
}

impl TargetTriple {
    /// Generic x86-64 triple.
    pub const X86_64_GENERIC: TargetTriple = TargetTriple {
        isa: Isa::X86_64,
        march: Microarch::Generic,
    };
    /// Thor host CPUs.
    pub const THOR_XEON: TargetTriple = TargetTriple {
        isa: Isa::X86_64,
        march: Microarch::XeonE5,
    };
    /// Generic AArch64 triple.
    pub const AARCH64_GENERIC: TargetTriple = TargetTriple {
        isa: Isa::Aarch64,
        march: Microarch::Generic,
    };
    /// Ookami compute nodes.
    pub const OOKAMI_A64FX: TargetTriple = TargetTriple {
        isa: Isa::Aarch64,
        march: Microarch::A64fx,
    };
    /// BlueField-2 DPU Arm cores.
    pub const THOR_BF2: TargetTriple = TargetTriple {
        isa: Isa::Aarch64,
        march: Microarch::CortexA72,
    };

    /// Create a triple, checking the micro-architecture belongs to the ISA.
    pub fn new(isa: Isa, march: Microarch) -> Option<Self> {
        match march.isa() {
            Some(m) if m != isa => None,
            _ => Some(TargetTriple { isa, march }),
        }
    }

    /// Feature bundle for this triple.
    pub fn features(&self) -> IsaFeatures {
        IsaFeatures::for_target(self.isa, self.march)
    }

    /// Canonical string form, e.g. `aarch64-a64fx-sim`.
    pub fn name(&self) -> String {
        format!("{}-{}-sim", self.isa.name(), self.march.name())
    }

    /// Parse the canonical string form produced by [`TargetTriple::name`].
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.splitn(3, '-');
        let isa = match parts.next()? {
            "x86_64" => Isa::X86_64,
            "aarch64" => Isa::Aarch64,
            _ => return None,
        };
        let rest = s.strip_prefix(isa.name())?.strip_prefix('-')?;
        let march_str = rest.strip_suffix("-sim")?;
        let march = match march_str {
            "generic" => Microarch::Generic,
            "xeon-e5" => Microarch::XeonE5,
            "a64fx" => Microarch::A64fx,
            "cortex-a72" => Microarch::CortexA72,
            _ => return None,
        };
        TargetTriple::new(isa, march)
    }

    /// Two triples are binary-compatible when they share an ISA (a generic
    /// AArch64 object runs on A64FX, just without µarch tuning).
    pub fn binary_compatible(&self, other: &TargetTriple) -> bool {
        self.isa == other.isa
    }

    /// The triples the reproduction's "toolchain" emits by default, i.e. the
    /// contents of a fat-bitcode archive built with no extra flags.
    pub fn default_toolchain_targets() -> Vec<TargetTriple> {
        vec![
            TargetTriple::THOR_XEON,
            TargetTriple::OOKAMI_A64FX,
            TargetTriple::THOR_BF2,
            TargetTriple::X86_64_GENERIC,
            TargetTriple::AARCH64_GENERIC,
        ]
    }
}

impl fmt::Display for TargetTriple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes_are_correct() {
        assert_eq!(ScalarType::I8.size_bytes(8), 1);
        assert_eq!(ScalarType::U16.size_bytes(8), 2);
        assert_eq!(ScalarType::I32.size_bytes(8), 4);
        assert_eq!(ScalarType::F32.size_bytes(8), 4);
        assert_eq!(ScalarType::I64.size_bytes(8), 8);
        assert_eq!(ScalarType::F64.size_bytes(8), 8);
        assert_eq!(ScalarType::Ptr.size_bytes(8), 8);
        assert_eq!(ScalarType::Ptr.size_bytes(4), 4);
    }

    #[test]
    fn scalar_tag_roundtrip() {
        for ty in ScalarType::ALL {
            assert_eq!(ScalarType::from_tag(ty.tag()), Some(ty));
        }
        assert_eq!(ScalarType::from_tag(200), None);
    }

    #[test]
    fn signedness_and_float_classification() {
        assert!(ScalarType::I32.is_signed());
        assert!(!ScalarType::U32.is_signed());
        assert!(ScalarType::F64.is_float());
        assert!(!ScalarType::F64.is_int());
        assert!(ScalarType::Ptr.is_int());
        assert!(!ScalarType::Ptr.is_signed());
    }

    #[test]
    fn triple_name_roundtrip() {
        for t in TargetTriple::default_toolchain_targets() {
            let name = t.name();
            assert_eq!(TargetTriple::parse(&name), Some(t), "triple {name}");
        }
        assert_eq!(TargetTriple::parse("mips-generic-sim"), None);
        assert_eq!(TargetTriple::parse("x86_64-a64fx-sim"), None);
        assert_eq!(TargetTriple::parse("garbage"), None);
    }

    #[test]
    fn march_isa_consistency_enforced() {
        assert!(TargetTriple::new(Isa::X86_64, Microarch::A64fx).is_none());
        assert!(TargetTriple::new(Isa::Aarch64, Microarch::XeonE5).is_none());
        assert!(TargetTriple::new(Isa::Aarch64, Microarch::Generic).is_some());
        assert!(TargetTriple::new(Isa::X86_64, Microarch::XeonE5).is_some());
    }

    #[test]
    fn features_match_paper_platforms() {
        let a64fx = TargetTriple::OOKAMI_A64FX.features();
        assert_eq!(a64fx.vector, VectorExt::Simd512);
        assert_eq!(a64fx.atomics, AtomicsExt::Lse);

        let xeon = TargetTriple::THOR_XEON.features();
        assert_eq!(xeon.vector, VectorExt::Simd256);

        let bf2 = TargetTriple::THOR_BF2.features();
        assert_eq!(bf2.vector, VectorExt::Simd128);
        assert_eq!(bf2.atomics, AtomicsExt::CasLoop);
    }

    #[test]
    fn vector_lanes() {
        assert_eq!(VectorExt::Simd512.lanes_for(ScalarType::F64, 8), 8);
        assert_eq!(VectorExt::Simd256.lanes_for(ScalarType::F32, 8), 8);
        assert_eq!(VectorExt::Simd128.lanes_for(ScalarType::I64, 8), 2);
        assert_eq!(VectorExt::None.lanes_for(ScalarType::I8, 8), 1);
        // Never zero lanes even for wide elements on narrow SIMD.
        assert_eq!(VectorExt::Simd128.lanes_for(ScalarType::F64, 8), 2);
    }

    #[test]
    fn binary_compatibility_is_isa_level() {
        assert!(TargetTriple::OOKAMI_A64FX.binary_compatible(&TargetTriple::THOR_BF2));
        assert!(!TargetTriple::THOR_XEON.binary_compatible(&TargetTriple::THOR_BF2));
    }
}
