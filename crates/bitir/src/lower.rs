//! Per-target lowering of portable modules.
//!
//! The paper's toolchain runs Clang once per target triple, producing a
//! distinct `.bc` file for each: the IR embeds the data layout, the atomics
//! strategy and whatever µarch-specific hints the front-end chose.  Our
//! lowering pass plays that role: it takes a *portable* module (no triple)
//! and produces a target-flavoured clone carrying a [`LowerInfo`] record,
//! which the JIT later uses for instruction selection (SIMD width, LSE vs
//! CAS-loop atomics).

use crate::error::{BitirError, Result};
use crate::ir::{LowerInfo, Module};
use crate::types::TargetTriple;
use crate::verify::verify_module;

/// Lower a portable module for a specific target triple.
///
/// Returns a new module with `triple` and `lower_info` populated.  Lowering a
/// module that already carries a triple is an error unless the triples match
/// (re-lowering is idempotent) — matching LLVM's refusal to re-target a
/// module with a conflicting datalayout.
pub fn lower_for_target(module: &Module, target: TargetTriple) -> Result<Module> {
    if let Some(existing) = module.triple {
        if existing != target {
            return Err(BitirError::Lower(format!(
                "module `{}` already lowered for {existing}, cannot re-lower for {target}",
                module.name
            )));
        }
    }
    verify_module(module)?;

    let features = target.features();
    let mut lowered = module.clone();
    lowered.triple = Some(target);
    lowered.lower_info = Some(LowerInfo {
        vector: features.vector,
        atomics: features.atomics,
        ptr_bytes: features.ptr_bytes,
    });
    Ok(lowered)
}

/// Lower a portable module for every triple in `targets`, returning the
/// lowered modules in the same order.  This is what the toolchain does when
/// building a fat-bitcode archive.
pub fn lower_for_targets(module: &Module, targets: &[TargetTriple]) -> Result<Vec<Module>> {
    targets
        .iter()
        .map(|t| lower_for_target(module, *t))
        .collect()
}

/// Rough estimate of how much larger/smaller the lowered bitcode will be per
/// target, relative to the portable form.  Wider-vector targets carry more
/// metadata (intrinsics declarations, predication attributes), narrower ones
/// carry less.  Only used for size accounting in tests and benches.
pub fn lowering_size_factor(target: TargetTriple) -> f64 {
    match target.features().vector.bits() {
        0 => 0.95,
        128 => 1.0,
        256 => 1.05,
        _ => 1.10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::{AtomicsExt, ScalarType, VectorExt};

    fn portable_module() -> Module {
        let mut mb = ModuleBuilder::new("lower_test");
        {
            let mut f = mb.entry_function();
            let target = f.param(2);
            let one = f.const_u64(1);
            f.atomic_fetch_add(ScalarType::U64, target, one);
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        mb.build()
    }

    #[test]
    fn lowering_attaches_target_features() {
        let m = portable_module();
        let a64fx = lower_for_target(&m, TargetTriple::OOKAMI_A64FX).unwrap();
        assert_eq!(a64fx.triple, Some(TargetTriple::OOKAMI_A64FX));
        let info = a64fx.lower_info.unwrap();
        assert_eq!(info.vector, VectorExt::Simd512);
        assert_eq!(info.atomics, AtomicsExt::Lse);

        let bf2 = lower_for_target(&m, TargetTriple::THOR_BF2).unwrap();
        assert_eq!(bf2.lower_info.unwrap().atomics, AtomicsExt::CasLoop);
    }

    #[test]
    fn relowering_same_target_is_idempotent() {
        let m = portable_module();
        let once = lower_for_target(&m, TargetTriple::THOR_XEON).unwrap();
        let twice = lower_for_target(&once, TargetTriple::THOR_XEON).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn relowering_for_other_target_rejected() {
        let m = portable_module();
        let xeon = lower_for_target(&m, TargetTriple::THOR_XEON).unwrap();
        let err = lower_for_target(&xeon, TargetTriple::OOKAMI_A64FX).unwrap_err();
        assert!(err.to_string().contains("already lowered"));
    }

    #[test]
    fn lowering_verifies_first() {
        let mut broken = portable_module();
        broken.functions[0].blocks[0].insts.pop(); // remove terminator
        assert!(lower_for_target(&broken, TargetTriple::THOR_XEON).is_err());
    }

    #[test]
    fn lower_for_all_default_targets() {
        let m = portable_module();
        let targets = TargetTriple::default_toolchain_targets();
        let lowered = lower_for_targets(&m, &targets).unwrap();
        assert_eq!(lowered.len(), targets.len());
        for (lm, t) in lowered.iter().zip(&targets) {
            assert_eq!(lm.triple, Some(*t));
        }
    }

    #[test]
    fn size_factor_monotone_in_vector_width() {
        assert!(
            lowering_size_factor(TargetTriple::OOKAMI_A64FX)
                > lowering_size_factor(TargetTriple::THOR_XEON)
        );
        assert!(
            lowering_size_factor(TargetTriple::THOR_XEON)
                > lowering_size_factor(TargetTriple::THOR_BF2)
                || (lowering_size_factor(TargetTriple::THOR_XEON)
                    - lowering_size_factor(TargetTriple::THOR_BF2))
                .abs()
                    > 0.0
        );
    }
}
