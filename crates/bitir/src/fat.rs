//! Fat-bitcode archives.
//!
//! A fat-bitcode archive packs the per-target bitcode files produced by the
//! toolchain (one per supported triple) together with the module's dependency
//! list, exactly as the paper's Section III-C describes: "all the bitcode
//! files will be packed into a bitcode archive […] the fat-bitcode is shipped
//! with the payload and list of bitcode dependencies".  The receiving process
//! extracts the entry matching its local target and JIT-compiles it.

use crate::bitcode::{decode_module, encode_module, Reader, Writer};
use crate::error::{BitirError, Result};
use crate::ir::Module;
use crate::lower::lower_for_target;
use crate::types::TargetTriple;

/// Magic bytes at the start of a fat-bitcode archive (`TCFB` = Three-Chains
/// Fat Bitcode).
pub const FAT_MAGIC: [u8; 4] = *b"TCFB";
/// Current archive format version.
pub const FAT_VERSION: u16 = 1;

/// One entry of a fat-bitcode archive: the bitcode for a single triple.
#[derive(Debug, Clone, PartialEq)]
pub struct FatEntry {
    /// Target the bitcode was lowered for.
    pub triple: TargetTriple,
    /// Encoded bitcode bytes.
    pub bitcode: Vec<u8>,
}

/// A fat-bitcode archive: per-target bitcode plus the shared dependency list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FatBitcode {
    /// Ifunc library name (must match across entries).
    pub name: String,
    /// Per-target bitcode entries.
    pub entries: Vec<FatEntry>,
    /// Shared-library dependencies (contents of the `.deps` file).
    pub deps: Vec<String>,
}

impl FatBitcode {
    /// Build a fat archive from a portable module by lowering and encoding it
    /// for every triple in `targets`.
    pub fn from_module(module: &Module, targets: &[TargetTriple]) -> Result<Self> {
        if targets.is_empty() {
            return Err(BitirError::Lower(
                "fat-bitcode requires at least one target triple".into(),
            ));
        }
        let mut entries = Vec::with_capacity(targets.len());
        let mut seen = Vec::new();
        for &t in targets {
            if seen.contains(&t) {
                continue;
            }
            seen.push(t);
            let lowered = lower_for_target(module, t)?;
            entries.push(FatEntry {
                triple: t,
                bitcode: encode_module(&lowered),
            });
        }
        Ok(FatBitcode {
            name: module.name.clone(),
            entries,
            deps: module.deps.clone(),
        })
    }

    /// Build a fat archive for the default toolchain target set.
    pub fn from_module_default_targets(module: &Module) -> Result<Self> {
        Self::from_module(module, &TargetTriple::default_toolchain_targets())
    }

    /// Triples present in the archive.
    pub fn triples(&self) -> Vec<TargetTriple> {
        self.entries.iter().map(|e| e.triple).collect()
    }

    /// Select the bitcode entry for a target.  An exact (ISA, µarch) match is
    /// preferred; otherwise any entry with the same ISA is acceptable (the
    /// generic-tuned bitcode still runs, just without µarch specialisation) —
    /// mirroring how a `x86_64-pc-linux-gnu` bitcode serves any x86-64 host.
    pub fn select(&self, target: TargetTriple) -> Result<&FatEntry> {
        if let Some(exact) = self.entries.iter().find(|e| e.triple == target) {
            return Ok(exact);
        }
        if let Some(isa_match) = self.entries.iter().find(|e| e.triple.isa == target.isa) {
            return Ok(isa_match);
        }
        Err(BitirError::NoBitcodeForTarget {
            requested: target.name(),
            available: self.entries.iter().map(|e| e.triple.name()).collect(),
        })
    }

    /// Select and decode the module for a target.
    pub fn select_module(&self, target: TargetTriple) -> Result<Module> {
        let entry = self.select(target)?;
        decode_module(&entry.bitcode)
    }

    /// Total encoded size of the archive in bytes (what actually travels in
    /// the BITCODE + DEPS fields of an uncached ifunc message).
    pub fn encoded_size(&self) -> usize {
        self.encode().len()
    }

    /// Serialize the archive.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        for b in FAT_MAGIC {
            w.u8(b);
        }
        w.u16(FAT_VERSION);
        w.string(&self.name);
        w.varint(self.deps.len() as u64);
        for d in &self.deps {
            w.string(d);
        }
        w.varint(self.entries.len() as u64);
        for e in &self.entries {
            w.u8(e.triple.isa.tag());
            w.u8(e.triple.march.tag());
            w.bytes(&e.bitcode);
        }
        w.finish()
    }

    /// Deserialize an archive.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let mut magic = [0u8; 4];
        for m in &mut magic {
            *m = r.u8()?;
        }
        if magic != FAT_MAGIC {
            return Err(BitirError::Decode(format!(
                "bad fat-bitcode magic {:02x?}",
                magic
            )));
        }
        let version = r.u16()?;
        if version != FAT_VERSION {
            return Err(BitirError::Decode(format!(
                "unsupported fat-bitcode version {version}"
            )));
        }
        let name = r.string()?;
        let ndeps = r.varint()? as usize;
        let mut deps = Vec::with_capacity(ndeps.min(256));
        for _ in 0..ndeps {
            deps.push(r.string()?);
        }
        let nentries = r.varint()? as usize;
        let mut entries = Vec::with_capacity(nentries.min(64));
        for _ in 0..nentries {
            let isa_tag = r.u8()?;
            let march_tag = r.u8()?;
            let isa = crate::types::Isa::from_tag(isa_tag)
                .ok_or_else(|| BitirError::Decode(format!("bad ISA tag {isa_tag}")))?;
            let march = crate::types::Microarch::from_tag(march_tag)
                .ok_or_else(|| BitirError::Decode(format!("bad march tag {march_tag}")))?;
            let triple = TargetTriple::new(isa, march)
                .ok_or_else(|| BitirError::Decode("inconsistent triple in archive".into()))?;
            let bitcode = r.bytes()?;
            entries.push(FatEntry { triple, bitcode });
        }
        Ok(FatBitcode {
            name,
            entries,
            deps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::{Isa, ScalarType};

    fn tsi_module() -> Module {
        let mut mb = ModuleBuilder::new("tsi");
        mb.add_dep("libc.so");
        {
            let mut f = mb.entry_function();
            let payload = f.param(0);
            let target = f.param(2);
            let delta = f.load(ScalarType::U8, payload, 0);
            let counter = f.load(ScalarType::U64, target, 0);
            let sum = f.bin(crate::ir::BinOp::Add, ScalarType::U64, counter, delta);
            f.store(ScalarType::U64, sum, target, 0);
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        mb.build()
    }

    #[test]
    fn build_and_select_exact_target() {
        let fat = FatBitcode::from_module_default_targets(&tsi_module()).unwrap();
        assert_eq!(fat.entries.len(), 5);
        let entry = fat.select(TargetTriple::OOKAMI_A64FX).unwrap();
        assert_eq!(entry.triple, TargetTriple::OOKAMI_A64FX);
        let module = fat.select_module(TargetTriple::OOKAMI_A64FX).unwrap();
        assert_eq!(module.triple, Some(TargetTriple::OOKAMI_A64FX));
    }

    #[test]
    fn isa_fallback_selection() {
        // Archive built only with generic triples still serves a specific
        // µarch of the same ISA.
        let fat = FatBitcode::from_module(
            &tsi_module(),
            &[TargetTriple::X86_64_GENERIC, TargetTriple::AARCH64_GENERIC],
        )
        .unwrap();
        let entry = fat.select(TargetTriple::THOR_BF2).unwrap();
        assert_eq!(entry.triple.isa, Isa::Aarch64);
    }

    #[test]
    fn missing_target_reports_available() {
        let fat = FatBitcode::from_module(&tsi_module(), &[TargetTriple::THOR_XEON]).unwrap();
        let err = fat.select(TargetTriple::OOKAMI_A64FX).unwrap_err();
        match err {
            BitirError::NoBitcodeForTarget {
                requested,
                available,
            } => {
                assert!(requested.contains("a64fx"));
                assert_eq!(available.len(), 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn duplicate_targets_deduplicated() {
        let fat = FatBitcode::from_module(
            &tsi_module(),
            &[TargetTriple::THOR_XEON, TargetTriple::THOR_XEON],
        )
        .unwrap();
        assert_eq!(fat.entries.len(), 1);
    }

    #[test]
    fn empty_target_list_rejected() {
        assert!(FatBitcode::from_module(&tsi_module(), &[]).is_err());
    }

    #[test]
    fn archive_roundtrip() {
        let fat = FatBitcode::from_module_default_targets(&tsi_module()).unwrap();
        let bytes = fat.encode();
        let decoded = FatBitcode::decode(&bytes).unwrap();
        assert_eq!(fat, decoded);
    }

    #[test]
    fn archive_size_is_multi_kilobyte_like_the_paper() {
        // Paper: ~5 KiB of fat-bitcode for a two-ISA TSI archive.  Our default
        // target set has five triples, so a couple of KiB up to ~20 KiB is the
        // right order of magnitude.
        let fat = FatBitcode::from_module_default_targets(&tsi_module()).unwrap();
        let size = fat.encoded_size();
        assert!(size > 2000, "archive unexpectedly small: {size}");
        assert!(size < 32 * 1024, "archive unexpectedly large: {size}");
    }

    #[test]
    fn corrupted_archive_rejected() {
        let fat = FatBitcode::from_module_default_targets(&tsi_module()).unwrap();
        let mut bytes = fat.encode();
        bytes[0] = b'Z';
        assert!(FatBitcode::decode(&bytes).is_err());
        let fat2 = FatBitcode::decode(&fat.encode()).unwrap();
        assert_eq!(fat2.deps, vec!["libc.so".to_string()]);
    }

    #[test]
    fn truncated_archive_rejected() {
        let fat = FatBitcode::from_module_default_targets(&tsi_module()).unwrap();
        let bytes = fat.encode();
        assert!(FatBitcode::decode(&bytes[..bytes.len() / 3]).is_err());
    }
}
