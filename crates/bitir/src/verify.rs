//! Structural and type verification of IR modules.
//!
//! Verification runs in two places, mirroring LLVM's verifier: the toolchain
//! verifies a module before encoding it into bitcode (so we never ship a
//! malformed ifunc), and the JIT verifies a decoded module before compiling
//! it (so a corrupted or hostile message cannot crash the target runtime).

use crate::error::{BitirError, Result};
use crate::ir::{BinOp, Block, Function, Inst, Module, Reg, UnOp};
use crate::types::ScalarType;

/// Verify a whole module.
///
/// Checks performed:
/// * every function has at least one block, every block is terminated, and
///   only the last instruction of a block is a terminator;
/// * every register index is below the function's `num_regs` and parameters
///   fit in the register file;
/// * branch targets, callee ids, global ids and external symbol ids are in
///   range;
/// * direct call argument counts match the callee signature;
/// * typed operations are used with compatible types (float ops on float
///   types, atomics on integer types, shifts on integers);
/// * the entry function, when present, has the canonical ifunc signature;
/// * function names are unique and non-empty.
pub fn verify_module(module: &Module) -> Result<()> {
    let mut names = std::collections::HashSet::new();
    for f in &module.functions {
        if f.name.is_empty() {
            return Err(BitirError::Verify("function with empty name".into()));
        }
        if !names.insert(f.name.as_str()) {
            return Err(BitirError::Verify(format!(
                "duplicate function name `{}`",
                f.name
            )));
        }
    }

    if let Some((_, entry)) = module.entry() {
        let (want_params, want_ret) = crate::ir::entry_signature();
        if entry.params != want_params || entry.ret != want_ret {
            return Err(BitirError::Verify(format!(
                "entry function `{}` has signature ({:?}) -> {:?}, expected ({:?}) -> {:?}",
                Module::ENTRY_NAME,
                entry.params,
                entry.ret,
                want_params,
                want_ret
            )));
        }
    }

    for (fi, f) in module.functions.iter().enumerate() {
        verify_function(module, f)
            .map_err(|e| BitirError::Verify(format!("function #{fi} `{}`: {e}", f.name)))?;
    }
    Ok(())
}

fn verify_function(module: &Module, f: &Function) -> std::result::Result<(), String> {
    if f.blocks.is_empty() {
        return Err("has no basic blocks".into());
    }
    if (f.params.len() as u32) > f.num_regs {
        return Err(format!(
            "declares {} registers but has {} parameters",
            f.num_regs,
            f.params.len()
        ));
    }
    for (bi, block) in f.blocks.iter().enumerate() {
        verify_block(module, f, block).map_err(|e| format!("block bb{bi}: {e}"))?;
    }
    Ok(())
}

fn check_reg(f: &Function, r: Reg) -> std::result::Result<(), String> {
    if r.0 >= f.num_regs {
        Err(format!(
            "register {r} out of range (num_regs = {})",
            f.num_regs
        ))
    } else {
        Ok(())
    }
}

fn verify_block(module: &Module, f: &Function, block: &Block) -> std::result::Result<(), String> {
    if block.insts.is_empty() {
        return Err("is empty (must end with a terminator)".into());
    }
    let last = block.insts.len() - 1;
    for (i, inst) in block.insts.iter().enumerate() {
        if i != last && inst.is_terminator() {
            return Err(format!("terminator at position {i} is not last"));
        }
        if i == last && !inst.is_terminator() {
            return Err("last instruction is not a terminator".into());
        }
        verify_inst(module, f, inst).map_err(|e| format!("inst #{i}: {e}"))?;
    }
    Ok(())
}

fn verify_inst(module: &Module, f: &Function, inst: &Inst) -> std::result::Result<(), String> {
    // Register range checks for all defs and uses.
    if let Some(d) = inst.def_reg() {
        check_reg(f, d)?;
    }
    for u in inst.use_regs() {
        check_reg(f, u)?;
    }

    match inst {
        Inst::Bin { op, ty, .. } => {
            if op.is_float_only() && !ty.is_float() {
                return Err(format!("float-only operator {op:?} used at type {ty}"));
            }
            if matches!(
                op,
                BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
            ) && ty.is_float()
            {
                return Err(format!(
                    "bitwise/shift operator {op:?} used at float type {ty}"
                ));
            }
            if matches!(op, BinOp::Div | BinOp::Rem) && ty.is_float() {
                return Err(format!(
                    "integer division operator {op:?} used at float type {ty}; use FDiv"
                ));
            }
            Ok(())
        }
        Inst::Un { op, ty, .. } => {
            match op {
                UnOp::Not | UnOp::Neg => {
                    if ty.is_float() {
                        return Err(format!("integer unary operator {op:?} at float type {ty}"));
                    }
                }
                UnOp::FNeg | UnOp::FloatCast => {
                    if !ty.is_float() {
                        return Err(format!(
                            "float unary operator {op:?} at non-float type {ty}"
                        ));
                    }
                }
                UnOp::IntToFloat => {
                    if !ty.is_float() {
                        return Err(format!("IntToFloat must produce a float type, got {ty}"));
                    }
                }
                UnOp::FloatToInt | UnOp::IntCast => {
                    if ty.is_float() {
                        return Err(format!("{op:?} must produce an integer type, got {ty}"));
                    }
                }
            }
            Ok(())
        }
        Inst::Atomic { ty, .. } => {
            if !ty.is_int() {
                return Err(format!("atomic operation at unsupported type {ty}"));
            }
            if ty.is_float() {
                return Err(format!("atomic operation at float type {ty}"));
            }
            Ok(())
        }
        Inst::Vec { ty, .. } => {
            if matches!(ty, ScalarType::Ptr) {
                return Err("vector operation over pointer elements".into());
            }
            Ok(())
        }
        Inst::GlobalAddr { global, .. } => {
            if (global.0 as usize) >= module.globals.len() {
                return Err(format!(
                    "global id {} out of range ({} globals)",
                    global.0,
                    module.globals.len()
                ));
            }
            Ok(())
        }
        Inst::Call { func, args, .. } => {
            let callee = module
                .functions
                .get(func.0 as usize)
                .ok_or_else(|| format!("callee id {} out of range", func.0))?;
            if callee.params.len() != args.len() {
                return Err(format!(
                    "call to `{}` passes {} args, callee expects {}",
                    callee.name,
                    args.len(),
                    callee.params.len()
                ));
            }
            Ok(())
        }
        Inst::CallExt { sym, .. } => {
            if (sym.0 as usize) >= module.ext_symbols.len() {
                return Err(format!(
                    "external symbol id {} out of range ({} symbols)",
                    sym.0,
                    module.ext_symbols.len()
                ));
            }
            Ok(())
        }
        Inst::Br { target } => {
            if (target.0 as usize) >= f.blocks.len() {
                return Err(format!("branch target {target} out of range"));
            }
            Ok(())
        }
        Inst::BrIf {
            then_blk, else_blk, ..
        } => {
            for t in [then_blk, else_blk] {
                if (t.0 as usize) >= f.blocks.len() {
                    return Err(format!("branch target {t} out of range"));
                }
            }
            Ok(())
        }
        Inst::Ret { value } => match (value, f.ret) {
            (Some(_), None) => Err("returns a value from a void function".into()),
            (None, Some(_)) => Err("missing return value".into()),
            _ => Ok(()),
        },
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ir::{BlockId, FuncId};

    fn trivial_entry(name: &str) -> ModuleBuilder {
        let mut mb = ModuleBuilder::new(name);
        {
            let mut f = mb.entry_function();
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        mb
    }

    #[test]
    fn valid_module_passes() {
        let m = trivial_entry("ok").build();
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn duplicate_function_names_rejected() {
        let mut mb = ModuleBuilder::new("dup");
        for _ in 0..2 {
            let mut f = mb.function("foo", vec![], None);
            f.ret_void();
            f.finish();
        }
        let m = mb.build();
        let err = verify_module(&m).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn wrong_entry_signature_rejected() {
        let mut mb = ModuleBuilder::new("badentry");
        {
            let mut f = mb.function(Module::ENTRY_NAME, vec![ScalarType::I64], None);
            f.ret_void();
            f.finish();
        }
        let err = verify_module(&mb.build()).unwrap_err();
        assert!(err.to_string().contains("signature"));
    }

    #[test]
    fn out_of_range_register_rejected() {
        let mut m = trivial_entry("badreg").build();
        // Corrupt: reference a register beyond num_regs.
        m.functions[0].blocks[0].insts.insert(
            0,
            Inst::Move {
                dst: Reg(1000),
                src: Reg(0),
            },
        );
        let err = verify_module(&m).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn unterminated_block_rejected() {
        let mut m = trivial_entry("noterm").build();
        m.functions[0].blocks[0].insts.pop(); // drop the Ret
        let err = verify_module(&m).unwrap_err();
        assert!(err.to_string().contains("terminator"));
    }

    #[test]
    fn terminator_in_middle_rejected() {
        let mut m = trivial_entry("midterm").build();
        m.functions[0].blocks[0].insts.insert(
            0,
            Inst::Ret {
                value: Some(Reg(0)),
            },
        );
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn bad_branch_target_rejected() {
        let mut m = trivial_entry("badbr").build();
        let insts = &mut m.functions[0].blocks[0].insts;
        let last = insts.len() - 1;
        insts[last] = Inst::Br {
            target: BlockId(99),
        };
        let err = verify_module(&m).unwrap_err();
        assert!(err.to_string().contains("target"));
    }

    #[test]
    fn bad_callee_and_arity_rejected() {
        let mut mb = ModuleBuilder::new("badcall");
        {
            let mut f = mb.function("callee", vec![ScalarType::I64], None);
            f.ret_void();
            f.finish();
        }
        {
            let mut f = mb.function("caller", vec![], None);
            // wrong arity
            f.call(FuncId(0), vec![], false);
            f.ret_void();
            f.finish();
        }
        let err = verify_module(&mb.build()).unwrap_err();
        assert!(err.to_string().contains("args"));

        let mut mb2 = ModuleBuilder::new("badcallee");
        {
            let mut f = mb2.function("caller", vec![], None);
            f.call(FuncId(7), vec![], false);
            f.ret_void();
            f.finish();
        }
        assert!(verify_module(&mb2.build()).is_err());
    }

    #[test]
    fn float_type_misuse_rejected() {
        let mut mb = ModuleBuilder::new("badfloat");
        {
            let mut f = mb.function("f", vec![], Some(ScalarType::I64));
            let a = f.const_i64(1);
            let b = f.const_i64(2);
            let c = f.bin(BinOp::FAdd, ScalarType::I64, a, b);
            f.ret(c);
            f.finish();
        }
        let err = verify_module(&mb.build()).unwrap_err();
        assert!(err.to_string().contains("float-only"));
    }

    #[test]
    fn atomic_on_float_rejected() {
        let mut mb = ModuleBuilder::new("badatomic");
        {
            let mut f = mb.function("f", vec![ScalarType::Ptr], Some(ScalarType::I64));
            let addr = f.param(0);
            let one = f.const_bits(ScalarType::F64, 1.0f64.to_bits());
            let old = f.atomic(
                crate::ir::AtomicOp::FetchAdd,
                ScalarType::F64,
                addr,
                one,
                one,
            );
            f.ret(old);
            f.finish();
        }
        assert!(verify_module(&mb.build()).is_err());
    }

    #[test]
    fn void_return_mismatch_rejected() {
        let mut mb = ModuleBuilder::new("badret");
        {
            let mut f = mb.function("f", vec![], Some(ScalarType::I64));
            f.ret_void();
            f.finish();
        }
        let err = verify_module(&mb.build()).unwrap_err();
        assert!(err.to_string().contains("return"));
    }

    #[test]
    fn unknown_ext_symbol_id_rejected() {
        let mut m = trivial_entry("badsym").build();
        m.functions[0].blocks[0].insts.insert(
            0,
            Inst::CallExt {
                dst: None,
                sym: crate::ir::ExtSymId(3),
                args: vec![],
            },
        );
        assert!(verify_module(&m).is_err());
    }
}
