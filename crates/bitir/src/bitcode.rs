//! Bitcode: the compact binary encoding of an IR module.
//!
//! This is the reproduction's analogue of LLVM bitcode: the serialized form
//! of a module that is placed in the `BITCODE` field of an ifunc message
//! frame (Figure 3 of the paper), shipped over the fabric and decoded /
//! JIT-compiled on the target process.
//!
//! The format is deliberately simple (magic, version, then LEB128-style
//! varint-encoded structures) but its *size behaviour* matters for the
//! reproduction: bitcode is several kilobytes even for a trivial kernel,
//! which is exactly what makes the paper's caching protocol worthwhile.

use crate::error::{BitirError, Result};
use crate::ir::{
    AtomicOp, BinOp, Block, BlockId, ExtSymId, FuncId, Function, Global, GlobalId, Inst, LowerInfo,
    Module, Reg, UnOp, VecOp,
};
use crate::types::{AtomicsExt, Isa, Microarch, ScalarType, TargetTriple, VectorExt};

/// Magic bytes at the start of every bitcode stream (`TCBC` = Three-Chains
/// BitCode).
pub const BITCODE_MAGIC: [u8; 4] = *b"TCBC";
/// Current format version.
pub const BITCODE_VERSION: u16 = 3;

/// Amount of padding prepended per function to model the fixed metadata LLVM
/// bitcode carries (attribute groups, type tables, etc.).  Together with
/// [`MODULE_METADATA_BYTES`] this keeps the encoded size of a small kernel at
/// roughly 2.4 KiB per target — the paper's TSI fat-bitcode is 5159 B for two
/// ISAs, i.e. ~2.6 KiB per ISA — without having to encode fake content.
pub const PER_FUNCTION_METADATA_BYTES: usize = 700;
/// Fixed module-level metadata overhead (target datalayout, module flags…).
pub const MODULE_METADATA_BYTES: usize = 1_600;

// ---------------------------------------------------------------------------
// Writer / reader primitives
// ---------------------------------------------------------------------------

/// Byte-stream writer used by the encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Append a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an unsigned LEB128 varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Append a signed integer using zigzag + varint encoding.
    pub fn svarint(&mut self, v: i64) {
        let zigzag = ((v << 1) ^ (v >> 63)) as u64;
        self.varint(zigzag);
    }

    /// Append a length-prefixed byte slice.
    pub fn bytes(&mut self, b: &[u8]) {
        self.varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Consume the writer and return the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Byte-stream reader used by the decoder.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn err(&self, msg: &str) -> BitirError {
        BitirError::Decode(format!("{msg} at offset {}", self.pos))
    }

    /// Read a single byte.
    pub fn u8(&mut self) -> Result<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| self.err("unexpected end of stream"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self) -> Result<u16> {
        let lo = self.u8()?;
        let hi = self.u8()?;
        Ok(u16::from_le_bytes([lo, hi]))
    }

    /// Read an unsigned LEB128 varint.
    pub fn varint(&mut self) -> Result<u64> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 {
                return Err(self.err("varint too long"));
            }
            result |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Read a zigzag-encoded signed varint.
    pub fn svarint(&mut self) -> Result<i64> {
        let zigzag = self.varint()?;
        Ok(((zigzag >> 1) as i64) ^ -((zigzag & 1) as i64))
    }

    /// Read a length-prefixed byte vector (with a sanity bound).
    pub fn bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.varint()? as usize;
        if len > self.buf.len().saturating_sub(self.pos) {
            return Err(self.err("byte string length exceeds remaining input"));
        }
        let out = self.buf[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Ok(out)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes).map_err(|_| self.err("invalid UTF-8 in string"))
    }

    /// True when the whole input has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Skip `n` bytes.
    pub fn skip(&mut self, n: usize) -> Result<()> {
        if self.buf.len().saturating_sub(self.pos) < n {
            return Err(self.err("skip past end of stream"));
        }
        self.pos += n;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Instruction opcodes
// ---------------------------------------------------------------------------

mod opcode {
    pub const CONST: u8 = 1;
    pub const MOVE: u8 = 2;
    pub const BIN: u8 = 3;
    pub const UN: u8 = 4;
    pub const LOAD: u8 = 5;
    pub const STORE: u8 = 6;
    pub const ATOMIC: u8 = 7;
    pub const VEC: u8 = 8;
    pub const GLOBAL_ADDR: u8 = 9;
    pub const CALL: u8 = 10;
    pub const CALL_EXT: u8 = 11;
    pub const BR: u8 = 12;
    pub const BR_IF: u8 = 13;
    pub const RET: u8 = 14;
    pub const TRAP: u8 = 15;
}

fn encode_inst(w: &mut Writer, inst: &Inst) {
    match inst {
        Inst::Const { dst, ty, bits } => {
            w.u8(opcode::CONST);
            w.varint(u64::from(dst.0));
            w.u8(ty.tag());
            w.varint(*bits);
        }
        Inst::Move { dst, src } => {
            w.u8(opcode::MOVE);
            w.varint(u64::from(dst.0));
            w.varint(u64::from(src.0));
        }
        Inst::Bin {
            op,
            ty,
            dst,
            lhs,
            rhs,
        } => {
            w.u8(opcode::BIN);
            w.u8(op.tag());
            w.u8(ty.tag());
            w.varint(u64::from(dst.0));
            w.varint(u64::from(lhs.0));
            w.varint(u64::from(rhs.0));
        }
        Inst::Un { op, ty, dst, src } => {
            w.u8(opcode::UN);
            w.u8(op.tag());
            w.u8(ty.tag());
            w.varint(u64::from(dst.0));
            w.varint(u64::from(src.0));
        }
        Inst::Load {
            ty,
            dst,
            addr,
            offset,
        } => {
            w.u8(opcode::LOAD);
            w.u8(ty.tag());
            w.varint(u64::from(dst.0));
            w.varint(u64::from(addr.0));
            w.svarint(*offset);
        }
        Inst::Store {
            ty,
            src,
            addr,
            offset,
        } => {
            w.u8(opcode::STORE);
            w.u8(ty.tag());
            w.varint(u64::from(src.0));
            w.varint(u64::from(addr.0));
            w.svarint(*offset);
        }
        Inst::Atomic {
            op,
            ty,
            dst,
            addr,
            src,
            expected,
        } => {
            w.u8(opcode::ATOMIC);
            w.u8(op.tag());
            w.u8(ty.tag());
            w.varint(u64::from(dst.0));
            w.varint(u64::from(addr.0));
            w.varint(u64::from(src.0));
            w.varint(u64::from(expected.0));
        }
        Inst::Vec {
            op,
            ty,
            dst_addr,
            a_addr,
            b_addr,
            count,
        } => {
            w.u8(opcode::VEC);
            w.u8(op.tag());
            w.u8(ty.tag());
            w.varint(u64::from(dst_addr.0));
            w.varint(u64::from(a_addr.0));
            w.varint(u64::from(b_addr.0));
            w.varint(u64::from(count.0));
        }
        Inst::GlobalAddr { dst, global } => {
            w.u8(opcode::GLOBAL_ADDR);
            w.varint(u64::from(dst.0));
            w.varint(u64::from(global.0));
        }
        Inst::Call { dst, func, args } => {
            w.u8(opcode::CALL);
            encode_opt_reg(w, dst);
            w.varint(u64::from(func.0));
            w.varint(args.len() as u64);
            for a in args {
                w.varint(u64::from(a.0));
            }
        }
        Inst::CallExt { dst, sym, args } => {
            w.u8(opcode::CALL_EXT);
            encode_opt_reg(w, dst);
            w.varint(u64::from(sym.0));
            w.varint(args.len() as u64);
            for a in args {
                w.varint(u64::from(a.0));
            }
        }
        Inst::Br { target } => {
            w.u8(opcode::BR);
            w.varint(u64::from(target.0));
        }
        Inst::BrIf {
            cond,
            then_blk,
            else_blk,
        } => {
            w.u8(opcode::BR_IF);
            w.varint(u64::from(cond.0));
            w.varint(u64::from(then_blk.0));
            w.varint(u64::from(else_blk.0));
        }
        Inst::Ret { value } => {
            w.u8(opcode::RET);
            encode_opt_reg(w, value);
        }
        Inst::Trap { code } => {
            w.u8(opcode::TRAP);
            w.varint(u64::from(*code));
        }
    }
}

fn encode_opt_reg(w: &mut Writer, reg: &Option<Reg>) {
    match reg {
        Some(r) => {
            w.u8(1);
            w.varint(u64::from(r.0));
        }
        None => w.u8(0),
    }
}

fn decode_opt_reg(r: &mut Reader<'_>) -> Result<Option<Reg>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(Reg(r.varint()? as u32))),
        _ => Err(BitirError::Decode("invalid optional-register flag".into())),
    }
}

fn decode_scalar(r: &mut Reader<'_>) -> Result<ScalarType> {
    let tag = r.u8()?;
    ScalarType::from_tag(tag).ok_or_else(|| BitirError::Decode(format!("invalid type tag {tag}")))
}

fn decode_inst(r: &mut Reader<'_>) -> Result<Inst> {
    let op = r.u8()?;
    let inst = match op {
        opcode::CONST => Inst::Const {
            dst: Reg(r.varint()? as u32),
            ty: decode_scalar(r)?,
            bits: r.varint()?,
        },
        opcode::MOVE => Inst::Move {
            dst: Reg(r.varint()? as u32),
            src: Reg(r.varint()? as u32),
        },
        opcode::BIN => {
            let tag = r.u8()?;
            let op = BinOp::from_tag(tag)
                .ok_or_else(|| BitirError::Decode(format!("invalid binop tag {tag}")))?;
            Inst::Bin {
                op,
                ty: decode_scalar(r)?,
                dst: Reg(r.varint()? as u32),
                lhs: Reg(r.varint()? as u32),
                rhs: Reg(r.varint()? as u32),
            }
        }
        opcode::UN => {
            let tag = r.u8()?;
            let op = UnOp::from_tag(tag)
                .ok_or_else(|| BitirError::Decode(format!("invalid unop tag {tag}")))?;
            Inst::Un {
                op,
                ty: decode_scalar(r)?,
                dst: Reg(r.varint()? as u32),
                src: Reg(r.varint()? as u32),
            }
        }
        opcode::LOAD => Inst::Load {
            ty: decode_scalar(r)?,
            dst: Reg(r.varint()? as u32),
            addr: Reg(r.varint()? as u32),
            offset: r.svarint()?,
        },
        opcode::STORE => Inst::Store {
            ty: decode_scalar(r)?,
            src: Reg(r.varint()? as u32),
            addr: Reg(r.varint()? as u32),
            offset: r.svarint()?,
        },
        opcode::ATOMIC => {
            let tag = r.u8()?;
            let op = AtomicOp::from_tag(tag)
                .ok_or_else(|| BitirError::Decode(format!("invalid atomic tag {tag}")))?;
            Inst::Atomic {
                op,
                ty: decode_scalar(r)?,
                dst: Reg(r.varint()? as u32),
                addr: Reg(r.varint()? as u32),
                src: Reg(r.varint()? as u32),
                expected: Reg(r.varint()? as u32),
            }
        }
        opcode::VEC => {
            let tag = r.u8()?;
            let op = VecOp::from_tag(tag)
                .ok_or_else(|| BitirError::Decode(format!("invalid vecop tag {tag}")))?;
            Inst::Vec {
                op,
                ty: decode_scalar(r)?,
                dst_addr: Reg(r.varint()? as u32),
                a_addr: Reg(r.varint()? as u32),
                b_addr: Reg(r.varint()? as u32),
                count: Reg(r.varint()? as u32),
            }
        }
        opcode::GLOBAL_ADDR => Inst::GlobalAddr {
            dst: Reg(r.varint()? as u32),
            global: GlobalId(r.varint()? as u32),
        },
        opcode::CALL => {
            let dst = decode_opt_reg(r)?;
            let func = FuncId(r.varint()? as u32);
            let n = r.varint()? as usize;
            let mut args = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                args.push(Reg(r.varint()? as u32));
            }
            Inst::Call { dst, func, args }
        }
        opcode::CALL_EXT => {
            let dst = decode_opt_reg(r)?;
            let sym = ExtSymId(r.varint()? as u32);
            let n = r.varint()? as usize;
            let mut args = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                args.push(Reg(r.varint()? as u32));
            }
            Inst::CallExt { dst, sym, args }
        }
        opcode::BR => Inst::Br {
            target: BlockId(r.varint()? as u32),
        },
        opcode::BR_IF => Inst::BrIf {
            cond: Reg(r.varint()? as u32),
            then_blk: BlockId(r.varint()? as u32),
            else_blk: BlockId(r.varint()? as u32),
        },
        opcode::RET => Inst::Ret {
            value: decode_opt_reg(r)?,
        },
        opcode::TRAP => Inst::Trap {
            code: r.varint()? as u32,
        },
        other => return Err(BitirError::Decode(format!("unknown opcode {other}"))),
    };
    Ok(inst)
}

fn encode_function(w: &mut Writer, f: &Function) {
    w.string(&f.name);
    w.varint(f.params.len() as u64);
    for p in &f.params {
        w.u8(p.tag());
    }
    match f.ret {
        Some(t) => {
            w.u8(1);
            w.u8(t.tag());
        }
        None => w.u8(0),
    }
    w.varint(u64::from(f.num_regs));
    w.varint(f.blocks.len() as u64);
    for b in &f.blocks {
        w.varint(b.insts.len() as u64);
        for i in &b.insts {
            encode_inst(w, i);
        }
    }
    // Fixed metadata padding, modelling LLVM's per-function attribute and
    // debug-info overhead; zero bytes so the stream stays deterministic.
    w.bytes(&vec![0u8; PER_FUNCTION_METADATA_BYTES]);
}

fn decode_function(r: &mut Reader<'_>) -> Result<Function> {
    let name = r.string()?;
    let nparams = r.varint()? as usize;
    let mut params = Vec::with_capacity(nparams.min(64));
    for _ in 0..nparams {
        params.push(decode_scalar(r)?);
    }
    let ret = match r.u8()? {
        0 => None,
        1 => Some(decode_scalar(r)?),
        _ => return Err(BitirError::Decode("invalid return-type flag".into())),
    };
    let num_regs = r.varint()? as u32;
    let nblocks = r.varint()? as usize;
    let mut blocks = Vec::with_capacity(nblocks.min(1024));
    for _ in 0..nblocks {
        let ninsts = r.varint()? as usize;
        let mut insts = Vec::with_capacity(ninsts.min(4096));
        for _ in 0..ninsts {
            insts.push(decode_inst(r)?);
        }
        blocks.push(Block { insts });
    }
    let _metadata = r.bytes()?;
    Ok(Function {
        name,
        params,
        ret,
        num_regs,
        blocks,
    })
}

fn encode_triple(w: &mut Writer, t: &TargetTriple) {
    w.u8(t.isa.tag());
    w.u8(t.march.tag());
}

fn decode_triple(r: &mut Reader<'_>) -> Result<TargetTriple> {
    let isa_tag = r.u8()?;
    let march_tag = r.u8()?;
    let isa = Isa::from_tag(isa_tag)
        .ok_or_else(|| BitirError::Decode(format!("bad ISA tag {isa_tag}")))?;
    let march = Microarch::from_tag(march_tag)
        .ok_or_else(|| BitirError::Decode(format!("bad microarch tag {march_tag}")))?;
    TargetTriple::new(isa, march)
        .ok_or_else(|| BitirError::Decode("inconsistent ISA/microarch pair".into()))
}

/// Encode a module into bitcode bytes.
pub fn encode_module(module: &Module) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf_extend(&BITCODE_MAGIC);
    w.u16(BITCODE_VERSION);
    w.string(&module.name);
    match &module.triple {
        Some(t) => {
            w.u8(1);
            encode_triple(&mut w, t);
        }
        None => w.u8(0),
    }
    match &module.lower_info {
        Some(li) => {
            w.u8(1);
            w.u8(li.vector.tag());
            w.u8(li.atomics.tag());
            w.u8(li.ptr_bytes);
        }
        None => w.u8(0),
    }
    w.varint(module.ext_symbols.len() as u64);
    for s in &module.ext_symbols {
        w.string(s);
    }
    w.varint(module.deps.len() as u64);
    for d in &module.deps {
        w.string(d);
    }
    w.varint(module.globals.len() as u64);
    for g in &module.globals {
        w.string(&g.name);
        w.u8(u8::from(g.mutable));
        w.bytes(&g.init);
    }
    w.varint(module.functions.len() as u64);
    for f in &module.functions {
        encode_function(&mut w, f);
    }
    // Module-level metadata padding (datalayout string, module flags, …).
    w.bytes(&vec![0u8; MODULE_METADATA_BYTES]);
    w.finish()
}

impl Writer {
    fn buf_extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Decode bitcode bytes back into a module.
pub fn decode_module(bytes: &[u8]) -> Result<Module> {
    let mut r = Reader::new(bytes);
    let mut magic = [0u8; 4];
    for m in &mut magic {
        *m = r.u8()?;
    }
    if magic != BITCODE_MAGIC {
        return Err(BitirError::Decode(format!(
            "bad magic {:02x?}, expected {:02x?}",
            magic, BITCODE_MAGIC
        )));
    }
    let version = r.u16()?;
    if version != BITCODE_VERSION {
        return Err(BitirError::Decode(format!(
            "unsupported bitcode version {version} (expected {BITCODE_VERSION})"
        )));
    }
    let name = r.string()?;
    let triple = match r.u8()? {
        0 => None,
        1 => Some(decode_triple(&mut r)?),
        _ => return Err(BitirError::Decode("invalid triple flag".into())),
    };
    let lower_info = match r.u8()? {
        0 => None,
        1 => {
            let vtag = r.u8()?;
            let atag = r.u8()?;
            let ptr_bytes = r.u8()?;
            Some(LowerInfo {
                vector: VectorExt::from_tag(vtag)
                    .ok_or_else(|| BitirError::Decode(format!("bad vector tag {vtag}")))?,
                atomics: AtomicsExt::from_tag(atag)
                    .ok_or_else(|| BitirError::Decode(format!("bad atomics tag {atag}")))?,
                ptr_bytes,
            })
        }
        _ => return Err(BitirError::Decode("invalid lower-info flag".into())),
    };
    let nsyms = r.varint()? as usize;
    let mut ext_symbols = Vec::with_capacity(nsyms.min(1024));
    for _ in 0..nsyms {
        ext_symbols.push(r.string()?);
    }
    let ndeps = r.varint()? as usize;
    let mut deps = Vec::with_capacity(ndeps.min(256));
    for _ in 0..ndeps {
        deps.push(r.string()?);
    }
    let nglobals = r.varint()? as usize;
    let mut globals = Vec::with_capacity(nglobals.min(1024));
    for _ in 0..nglobals {
        let name = r.string()?;
        let mutable = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(BitirError::Decode("invalid mutable flag".into())),
        };
        let init = r.bytes()?;
        globals.push(Global {
            name,
            mutable,
            init,
        });
    }
    let nfuncs = r.varint()? as usize;
    let mut functions = Vec::with_capacity(nfuncs.min(4096));
    for _ in 0..nfuncs {
        functions.push(decode_function(&mut r)?);
    }
    let _module_metadata = r.bytes()?;
    Ok(Module {
        name,
        triple,
        lower_info,
        functions,
        globals,
        ext_symbols,
        deps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ir::BinOp;
    use crate::types::ScalarType;

    fn sample_module() -> Module {
        let mut mb = ModuleBuilder::new("sample");
        mb.add_dep("libm.so");
        mb.add_global("table", vec![1, 2, 3, 4], true);
        {
            let mut f = mb.entry_function();
            let payload = f.param(0);
            let target = f.param(2);
            let v = f.load(ScalarType::U64, payload, 8);
            let c = f.load(ScalarType::U64, target, 0);
            let s = f.bin(BinOp::Add, ScalarType::U64, c, v);
            f.store(ScalarType::U64, s, target, 0);
            f.call_ext("tc_return_result", vec![s], false);
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        {
            let mut f = mb.function("helper", vec![ScalarType::F64], Some(ScalarType::F64));
            let x = f.param(0);
            let two = f.const_f64(2.0);
            let y = f.bin(BinOp::FMul, ScalarType::F64, x, two);
            f.ret(y);
            f.finish();
        }
        mb.build()
    }

    #[test]
    fn roundtrip_preserves_module() {
        let m = sample_module();
        let bytes = encode_module(&m);
        let decoded = decode_module(&bytes).expect("decode");
        assert_eq!(m, decoded);
    }

    #[test]
    fn encoded_size_is_kilobyte_scale_for_small_kernels() {
        // The paper's TSI bitcode is ~5 KiB for two targets, i.e. ~2.6 KiB
        // per target; a single-target encoding of a small kernel should land
        // in the 2–5 KiB range.
        let m = sample_module();
        let bytes = encode_module(&m);
        assert!(bytes.len() > 2_000, "too small: {}", bytes.len());
        assert!(bytes.len() < 6_000, "too large: {}", bytes.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let m = sample_module();
        let mut bytes = encode_module(&m);
        bytes[0] = b'X';
        assert!(matches!(decode_module(&bytes), Err(BitirError::Decode(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let m = sample_module();
        let mut bytes = encode_module(&m);
        bytes[4] = 0xff;
        bytes[5] = 0xff;
        let err = decode_module(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncated_stream_rejected() {
        let m = sample_module();
        let bytes = encode_module(&m);
        for cut in [5usize, 10, 20, bytes.len() / 2, bytes.len() - 1] {
            let res = decode_module(&bytes[..cut]);
            assert!(res.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn corrupted_opcode_rejected_or_differs() {
        let m = sample_module();
        let bytes = encode_module(&m);
        // Flip single bytes across the stream; the decoder must never panic,
        // and at least some positions must be detected (error) or visibly
        // change the decoded module.  Positions inside the zeroed metadata
        // padding may legitimately decode to the same module.
        let mut detected = 0usize;
        for idx in (6..bytes.len()).step_by(7) {
            let mut corrupted = bytes.clone();
            corrupted[idx] ^= 0xa5;
            match decode_module(&corrupted) {
                Ok(decoded) => {
                    if decoded != m {
                        detected += 1;
                    }
                }
                Err(_) => detected += 1,
            }
        }
        assert!(detected > 0, "no corruption was ever detected");
    }

    #[test]
    fn varint_roundtrip_extremes() {
        let mut w = Writer::new();
        let values = [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX];
        for &v in &values {
            w.varint(v);
        }
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        for &v in &values {
            assert_eq!(r.varint().unwrap(), v);
        }
        assert!(r.at_end());
    }

    #[test]
    fn svarint_roundtrip_extremes() {
        let mut w = Writer::new();
        let values = [
            0i64,
            1,
            -1,
            63,
            -64,
            i32::MAX as i64,
            i32::MIN as i64,
            i64::MAX,
            i64::MIN,
        ];
        for &v in &values {
            w.svarint(v);
        }
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        for &v in &values {
            assert_eq!(r.svarint().unwrap(), v);
        }
    }

    #[test]
    fn reader_bounds_checks() {
        let mut r = Reader::new(&[0x80]);
        // Unterminated varint must error, not loop or panic.
        assert!(r.varint().is_err());

        let mut r = Reader::new(&[5, 1, 2]);
        // Declared length 5 but only 2 bytes remain.
        assert!(r.bytes().is_err());
    }
}
