//! Error types shared across the IR crate.

use std::fmt;

/// Errors produced while verifying, lowering, encoding or decoding IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitirError {
    /// Structural or type verification failed.
    Verify(String),
    /// Bitcode decoding failed (corrupt or truncated stream).
    Decode(String),
    /// The fat-bitcode archive has no entry for the requested target.
    NoBitcodeForTarget {
        /// Target that was requested.
        requested: String,
        /// Targets that are present in the archive.
        available: Vec<String>,
    },
    /// Lowering could not be performed for the requested target.
    Lower(String),
}

impl fmt::Display for BitirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitirError::Verify(msg) => write!(f, "IR verification failed: {msg}"),
            BitirError::Decode(msg) => write!(f, "bitcode decode failed: {msg}"),
            BitirError::NoBitcodeForTarget {
                requested,
                available,
            } => write!(
                f,
                "fat-bitcode has no entry for target {requested}; available: [{}]",
                available.join(", ")
            ),
            BitirError::Lower(msg) => write!(f, "lowering failed: {msg}"),
        }
    }
}

impl std::error::Error for BitirError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, BitirError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = BitirError::Verify("bad block".into());
        assert!(e.to_string().contains("bad block"));

        let e = BitirError::NoBitcodeForTarget {
            requested: "aarch64-a64fx-sim".into(),
            available: vec!["x86_64-xeon-e5-sim".into()],
        };
        let s = e.to_string();
        assert!(s.contains("aarch64-a64fx-sim"));
        assert!(s.contains("x86_64-xeon-e5-sim"));
    }
}
