//! The portable intermediate representation.
//!
//! The IR is a typed, register-based, basic-block structured program
//! representation — close enough in spirit to LLVM IR that every concept the
//! paper relies on (per-target lowering, JIT compilation, external symbol
//! resolution, recursive framework calls) has a direct analogue, while being
//! small enough to interpret efficiently.
//!
//! An *ifunc library* is a [`Module`] whose entry function has the signature
//! `main(payload_ptr: ptr, payload_len: u64, target_ptr: ptr) -> i64`,
//! mirroring the entry point the Three-Chains runtime invokes on the target
//! process.

use crate::types::{AtomicsExt, ScalarType, TargetTriple, VectorExt};
use std::fmt;

/// A virtual register within a function.  Registers are untyped 64-bit slots;
/// instruction operands give them meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Index of a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Index of a function within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuncId(pub u32);

/// Index of a global within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalId(pub u32);

/// Index into the module's external symbol table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExtSymId(pub u32);

/// Binary operations.  Integer ops operate on the 64-bit slot truncated to
/// the operand type's width; float ops reinterpret the slot as f32/f64 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping integer addition.
    Add,
    /// Wrapping integer subtraction.
    Sub,
    /// Wrapping integer multiplication.
    Mul,
    /// Integer division (signedness from the operand type); division by zero
    /// traps.
    Div,
    /// Integer remainder; remainder by zero traps.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Shift right (arithmetic for signed types, logical otherwise).
    Shr,
    /// Floating point addition.
    FAdd,
    /// Floating point subtraction.
    FSub,
    /// Floating point multiplication.
    FMul,
    /// Floating point division.
    FDiv,
    /// Equality comparison, result 0/1.
    CmpEq,
    /// Inequality comparison, result 0/1.
    CmpNe,
    /// Less-than (signedness/floatness from operand type), result 0/1.
    CmpLt,
    /// Less-or-equal, result 0/1.
    CmpLe,
    /// Greater-than, result 0/1.
    CmpGt,
    /// Greater-or-equal, result 0/1.
    CmpGe,
}

impl BinOp {
    /// All binary operators (property testing helper).
    pub const ALL: [BinOp; 20] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::FAdd,
        BinOp::FSub,
        BinOp::FMul,
        BinOp::FDiv,
        BinOp::CmpEq,
        BinOp::CmpNe,
        BinOp::CmpLt,
        BinOp::CmpLe,
        BinOp::CmpGt,
        BinOp::CmpGe,
    ];

    /// Stable numeric tag used by the bitcode encoder.
    pub fn tag(self) -> u8 {
        Self::ALL.iter().position(|&op| op == self).unwrap() as u8
    }

    /// Inverse of [`BinOp::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Self::ALL.get(tag as usize).copied()
    }

    /// True if this operator requires floating point operands.
    pub fn is_float_only(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// True if this operator produces a 0/1 comparison result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::CmpEq | BinOp::CmpNe | BinOp::CmpLt | BinOp::CmpLe | BinOp::CmpGt | BinOp::CmpGe
        )
    }
}

/// Unary operations (including conversions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise not.
    Not,
    /// Integer negation (wrapping).
    Neg,
    /// Floating point negation.
    FNeg,
    /// Integer → float conversion.
    IntToFloat,
    /// Float → integer conversion (truncating; saturates at type bounds).
    FloatToInt,
    /// Integer width/sign conversion into the destination type.
    IntCast,
    /// f32 ↔ f64 conversion into the destination type.
    FloatCast,
}

impl UnOp {
    /// All unary operators.
    pub const ALL: [UnOp; 7] = [
        UnOp::Not,
        UnOp::Neg,
        UnOp::FNeg,
        UnOp::IntToFloat,
        UnOp::FloatToInt,
        UnOp::IntCast,
        UnOp::FloatCast,
    ];

    /// Stable numeric tag used by the bitcode encoder.
    pub fn tag(self) -> u8 {
        Self::ALL.iter().position(|&op| op == self).unwrap() as u8
    }

    /// Inverse of [`UnOp::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Self::ALL.get(tag as usize).copied()
    }
}

/// Atomic read-modify-write operations.  How these lower (LSE-style single
/// instruction vs. CAS loop) is a per-target decision recorded during
/// lowering, mirroring the paper's observation that ORC-JIT emitted Arm LSE
/// atomics on A64FX from bitcode produced on a Xeon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicOp {
    /// Atomic fetch-add; destination receives the previous value.
    FetchAdd,
    /// Atomic exchange; destination receives the previous value.
    Exchange,
    /// Atomic compare-and-swap; destination receives the previous value.
    CompareSwap,
}

impl AtomicOp {
    /// All atomic operators.
    pub const ALL: [AtomicOp; 3] = [
        AtomicOp::FetchAdd,
        AtomicOp::Exchange,
        AtomicOp::CompareSwap,
    ];

    /// Stable numeric tag used by the bitcode encoder.
    pub fn tag(self) -> u8 {
        Self::ALL.iter().position(|&op| op == self).unwrap() as u8
    }

    /// Inverse of [`AtomicOp::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Self::ALL.get(tag as usize).copied()
    }
}

/// Element-wise vector operations over memory regions.  These are the
/// instructions whose lowering benefits from the target's SIMD width
/// (SVE on A64FX, AVX2 on Xeon, NEON on the DPU cores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VecOp {
    /// `dst[i] = a[i] + b[i]`
    Add,
    /// `dst[i] = a[i] * b[i]`
    Mul,
    /// `dst[i] = a[i] * b[i] + dst[i]` (fused multiply-add accumulation)
    Fma,
}

impl VecOp {
    /// All vector operators.
    pub const ALL: [VecOp; 3] = [VecOp::Add, VecOp::Mul, VecOp::Fma];

    /// Stable numeric tag used by the bitcode encoder.
    pub fn tag(self) -> u8 {
        Self::ALL.iter().position(|&op| op == self).unwrap() as u8
    }

    /// Inverse of [`VecOp::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Self::ALL.get(tag as usize).copied()
    }
}

/// A single IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// Materialise a constant bit pattern of the given type into `dst`.
    Const {
        /// Destination register.
        dst: Reg,
        /// Value type (controls how later ops interpret the bits).
        ty: ScalarType,
        /// Raw 64-bit pattern (floats stored via `to_bits`).
        bits: u64,
    },
    /// Copy one register into another.
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Binary operation `dst = lhs op rhs` interpreted at type `ty`.
    Bin {
        /// Operator.
        op: BinOp,
        /// Operand/result type.
        ty: ScalarType,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// Unary operation `dst = op src`, converting into type `ty`.
    Un {
        /// Operator.
        op: UnOp,
        /// Destination type (also source type for non-conversions).
        ty: ScalarType,
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Reg,
    },
    /// Load a scalar of type `ty` from `addr + offset`.
    Load {
        /// Value type.
        ty: ScalarType,
        /// Destination register.
        dst: Reg,
        /// Base address register.
        addr: Reg,
        /// Constant byte offset added to the base address.
        offset: i64,
    },
    /// Store a scalar of type `ty` to `addr + offset`.
    Store {
        /// Value type.
        ty: ScalarType,
        /// Value to store.
        src: Reg,
        /// Base address register.
        addr: Reg,
        /// Constant byte offset added to the base address.
        offset: i64,
    },
    /// Atomic read-modify-write on `addr`; `dst` receives the old value.
    Atomic {
        /// Operation.
        op: AtomicOp,
        /// Value type (integer types only).
        ty: ScalarType,
        /// Destination register (previous memory value).
        dst: Reg,
        /// Address register.
        addr: Reg,
        /// Operand value (added/stored/compared-with depending on `op`).
        src: Reg,
        /// Expected value for [`AtomicOp::CompareSwap`]; ignored otherwise.
        expected: Reg,
    },
    /// Element-wise vector operation over `count` elements of type `ty`.
    Vec {
        /// Operation.
        op: VecOp,
        /// Element type.
        ty: ScalarType,
        /// Destination array base address.
        dst_addr: Reg,
        /// First source array base address.
        a_addr: Reg,
        /// Second source array base address.
        b_addr: Reg,
        /// Number of elements (register so lengths can be dynamic).
        count: Reg,
    },
    /// Load the address of a global into `dst`.
    GlobalAddr {
        /// Destination register.
        dst: Reg,
        /// Which global.
        global: GlobalId,
    },
    /// Direct call of another function in the same module.
    Call {
        /// Register receiving the return value (if the callee returns one).
        dst: Option<Reg>,
        /// Callee.
        func: FuncId,
        /// Argument registers (copied into the callee's first registers).
        args: Vec<Reg>,
    },
    /// Call of an external symbol, resolved at (remote) link/JIT time.
    ///
    /// This is how ifuncs reach framework services (`tc_send_ifunc`,
    /// `tc_put`, `tc_return_result`, …) and simulated shared-library
    /// dependencies — the analogue of an LLVM IR `call` to a declared-only
    /// function that ORC-JIT resolves against loaded dylibs.
    CallExt {
        /// Register receiving the return value.
        dst: Option<Reg>,
        /// Index into the module's external symbol table.
        sym: ExtSymId,
        /// Argument registers.
        args: Vec<Reg>,
    },
    /// Unconditional branch.
    Br {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch: non-zero `cond` goes to `then_blk`.
    BrIf {
        /// Condition register (non-zero = taken).
        cond: Reg,
        /// Target when the condition is non-zero.
        then_blk: BlockId,
        /// Target when the condition is zero.
        else_blk: BlockId,
    },
    /// Return from the function.
    Ret {
        /// Returned register, if the function returns a value.
        value: Option<Reg>,
    },
    /// Explicit trap/abort (used by the verifier-required default paths).
    Trap {
        /// Diagnostic code surfaced in the execution error.
        code: u32,
    },
}

impl Inst {
    /// True if this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Br { .. } | Inst::BrIf { .. } | Inst::Ret { .. } | Inst::Trap { .. }
        )
    }

    /// Destination register written by this instruction, if any.
    pub fn def_reg(&self) -> Option<Reg> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Move { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Atomic { dst, .. }
            | Inst::GlobalAddr { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } | Inst::CallExt { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Registers read by this instruction.
    pub fn use_regs(&self) -> Vec<Reg> {
        match self {
            Inst::Const { .. } | Inst::GlobalAddr { .. } | Inst::Br { .. } | Inst::Trap { .. } => {
                Vec::new()
            }
            Inst::Move { src, .. } => vec![*src],
            Inst::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Un { src, .. } => vec![*src],
            Inst::Load { addr, .. } => vec![*addr],
            Inst::Store { src, addr, .. } => vec![*src, *addr],
            Inst::Atomic {
                addr,
                src,
                expected,
                ..
            } => vec![*addr, *src, *expected],
            Inst::Vec {
                dst_addr,
                a_addr,
                b_addr,
                count,
                ..
            } => vec![*dst_addr, *a_addr, *b_addr, *count],
            Inst::Call { args, .. } | Inst::CallExt { args, .. } => args.clone(),
            Inst::BrIf { cond, .. } => vec![*cond],
            Inst::Ret { value } => value.iter().copied().collect(),
        }
    }
}

/// A basic block: a straight-line sequence of instructions ending in a
/// terminator.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Instructions in program order; the last one must be a terminator.
    pub insts: Vec<Inst>,
}

impl Block {
    /// The block's terminator, if the block is non-empty and well formed.
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last().filter(|i| i.is_terminator())
    }
}

/// A function: parameters arrive in registers `r0..rN`, the body is a list of
/// basic blocks and execution starts at block 0.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Symbol name (unique within the module).
    pub name: String,
    /// Parameter types; parameter `i` arrives in register `Reg(i)`.
    pub params: Vec<ScalarType>,
    /// Return type (`None` = void).
    pub ret: Option<ScalarType>,
    /// Number of virtual registers used (must cover all parameters).
    pub num_regs: u32,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Total number of instructions across all blocks.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A global data object shipped with the module (the analogue of `.data`).
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Initial bytes.
    pub init: Vec<u8>,
    /// Whether the ifunc may write to it.
    pub mutable: bool,
}

/// Per-target lowering metadata attached to a module by
/// [`crate::lower::lower_for_target`].  A portable module has `None` here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerInfo {
    /// Vector extension the lowered code was specialised for.
    pub vector: VectorExt,
    /// Atomics flavour selected for atomic RMW instructions.
    pub atomics: AtomicsExt,
    /// Pointer width in bytes.
    pub ptr_bytes: u8,
}

/// A module: the unit that gets encoded to bitcode and shipped inside an
/// ifunc message.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module (ifunc library) name, e.g. `"tsi"` or `"dapc_chaser"`.
    pub name: String,
    /// Target triple the module has been lowered for; `None` while portable.
    pub triple: Option<TargetTriple>,
    /// Lowering metadata, populated together with `triple`.
    pub lower_info: Option<LowerInfo>,
    /// Functions; the ifunc entry point must be named [`Module::ENTRY_NAME`].
    pub functions: Vec<Function>,
    /// Global data objects.
    pub globals: Vec<Global>,
    /// External symbols referenced by [`Inst::CallExt`].
    pub ext_symbols: Vec<String>,
    /// Shared-library dependencies that must be loaded before execution
    /// (the contents of the paper's `foo.deps` file).
    pub deps: Vec<String>,
}

impl Module {
    /// Name of the ifunc entry function.
    pub const ENTRY_NAME: &'static str = "main";

    /// Create an empty portable module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            triple: None,
            lower_info: None,
            functions: Vec::new(),
            globals: Vec::new(),
            ext_symbols: Vec::new(),
            deps: Vec::new(),
        }
    }

    /// Find a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// The ifunc entry function, if present.
    pub fn entry(&self) -> Option<(FuncId, &Function)> {
        self.function_by_name(Self::ENTRY_NAME)
    }

    /// Look up or insert an external symbol, returning its id.
    pub fn intern_ext_symbol(&mut self, name: &str) -> ExtSymId {
        if let Some(pos) = self.ext_symbols.iter().position(|s| s == name) {
            ExtSymId(pos as u32)
        } else {
            self.ext_symbols.push(name.to_string());
            ExtSymId((self.ext_symbols.len() - 1) as u32)
        }
    }

    /// Name of an interned external symbol.
    pub fn ext_symbol_name(&self, id: ExtSymId) -> Option<&str> {
        self.ext_symbols.get(id.0 as usize).map(String::as_str)
    }

    /// Total number of instructions in the module (used by the JIT
    /// compile-cost model and the caching-size accounting).
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(Function::inst_count).sum()
    }

    /// True when the module references no external symbols and needs no
    /// dependencies — the analogue of a "pure" ifunc in the paper, which can
    /// skip GOT patching entirely.
    pub fn is_pure(&self) -> bool {
        self.ext_symbols.is_empty() && self.deps.is_empty()
    }
}

/// The expected signature of the ifunc entry function:
/// `(payload_ptr: Ptr, payload_len: U64, target_ptr: Ptr) -> I64`.
pub fn entry_signature() -> (Vec<ScalarType>, Option<ScalarType>) {
    (
        vec![ScalarType::Ptr, ScalarType::U64, ScalarType::Ptr],
        Some(ScalarType::I64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_tag_roundtrip() {
        for op in BinOp::ALL {
            assert_eq!(BinOp::from_tag(op.tag()), Some(op));
        }
        assert_eq!(BinOp::from_tag(250), None);
    }

    #[test]
    fn unop_atomic_vec_tag_roundtrip() {
        for op in UnOp::ALL {
            assert_eq!(UnOp::from_tag(op.tag()), Some(op));
        }
        for op in AtomicOp::ALL {
            assert_eq!(AtomicOp::from_tag(op.tag()), Some(op));
        }
        for op in VecOp::ALL {
            assert_eq!(VecOp::from_tag(op.tag()), Some(op));
        }
    }

    #[test]
    fn terminator_classification() {
        assert!(Inst::Ret { value: None }.is_terminator());
        assert!(Inst::Br { target: BlockId(0) }.is_terminator());
        assert!(Inst::Trap { code: 1 }.is_terminator());
        assert!(!Inst::Move {
            dst: Reg(0),
            src: Reg(1)
        }
        .is_terminator());
    }

    #[test]
    fn def_and_use_regs() {
        let inst = Inst::Bin {
            op: BinOp::Add,
            ty: ScalarType::I64,
            dst: Reg(2),
            lhs: Reg(0),
            rhs: Reg(1),
        };
        assert_eq!(inst.def_reg(), Some(Reg(2)));
        assert_eq!(inst.use_regs(), vec![Reg(0), Reg(1)]);

        let store = Inst::Store {
            ty: ScalarType::U8,
            src: Reg(3),
            addr: Reg(4),
            offset: 16,
        };
        assert_eq!(store.def_reg(), None);
        assert_eq!(store.use_regs(), vec![Reg(3), Reg(4)]);
    }

    #[test]
    fn module_symbol_interning_dedups() {
        let mut m = Module::new("test");
        let a = m.intern_ext_symbol("tc_put");
        let b = m.intern_ext_symbol("tc_send_ifunc");
        let a2 = m.intern_ext_symbol("tc_put");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(m.ext_symbol_name(a), Some("tc_put"));
        assert_eq!(m.ext_symbols.len(), 2);
    }

    #[test]
    fn pure_module_detection() {
        let mut m = Module::new("pure");
        assert!(m.is_pure());
        m.intern_ext_symbol("memcpy");
        assert!(!m.is_pure());

        let mut m2 = Module::new("deps_only");
        m2.deps.push("libomp.so".into());
        assert!(!m2.is_pure());
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::CmpEq.is_comparison());
        assert!(BinOp::CmpGe.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::FAdd.is_float_only());
        assert!(!BinOp::CmpLt.is_float_only());
    }
}
