//! Ergonomic construction of IR modules.
//!
//! The builder is the reproduction's "C path": where the paper writes an
//! ifunc library in C and compiles it to LLVM bitcode with Clang, here the
//! workloads construct [`crate::ir::Module`]s programmatically through
//! [`ModuleBuilder`] / [`FunctionBuilder`].  The higher-level `tc-chainlang`
//! crate (the Julia analogue) emits the same IR from source text.

use crate::ir::{
    AtomicOp, BinOp, Block, BlockId, ExtSymId, FuncId, Function, Global, GlobalId, Inst, Module,
    Reg, UnOp, VecOp,
};
use crate::types::ScalarType;

/// Builds a [`Module`] incrementally.
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Start building a module with the given (ifunc library) name.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            module: Module::new(name),
        }
    }

    /// Declare a shared-library dependency (contents of the `.deps` file).
    pub fn add_dep(&mut self, dep: impl Into<String>) -> &mut Self {
        let dep = dep.into();
        if !self.module.deps.contains(&dep) {
            self.module.deps.push(dep);
        }
        self
    }

    /// Add a global data object, returning its id.
    pub fn add_global(
        &mut self,
        name: impl Into<String>,
        init: Vec<u8>,
        mutable: bool,
    ) -> GlobalId {
        self.module.globals.push(Global {
            name: name.into(),
            init,
            mutable,
        });
        GlobalId((self.module.globals.len() - 1) as u32)
    }

    /// Declare (or look up) an external symbol.
    pub fn ext_symbol(&mut self, name: &str) -> ExtSymId {
        self.module.intern_ext_symbol(name)
    }

    /// Start building a function.  The returned [`FunctionBuilder`] borrows
    /// the module builder; call [`FunctionBuilder::finish`] to commit it.
    pub fn function(
        &mut self,
        name: impl Into<String>,
        params: Vec<ScalarType>,
        ret: Option<ScalarType>,
    ) -> FunctionBuilder<'_> {
        FunctionBuilder::new(self, name.into(), params, ret)
    }

    /// Convenience: start building the canonical ifunc entry function
    /// `main(payload_ptr, payload_len, target_ptr) -> i64`.
    pub fn entry_function(&mut self) -> FunctionBuilder<'_> {
        let (params, ret) = crate::ir::entry_signature();
        self.function(Module::ENTRY_NAME, params, ret)
    }

    /// Number of functions committed so far.
    pub fn function_count(&self) -> usize {
        self.module.functions.len()
    }

    /// The id the *next* committed function will receive.  Useful for
    /// building mutually-recursive functions.
    pub fn next_func_id(&self) -> FuncId {
        FuncId(self.module.functions.len() as u32)
    }

    /// Finish and return the module.
    pub fn build(self) -> Module {
        self.module
    }
}

/// Builds a single [`Function`].
///
/// Registers `r0..r(params-1)` hold the incoming arguments.  New temporaries
/// are allocated with [`FunctionBuilder::new_reg`].  Blocks are created with
/// [`FunctionBuilder::new_block`] and instructions are appended to the
/// *current* block, switched with [`FunctionBuilder::switch_to`].
#[derive(Debug)]
pub struct FunctionBuilder<'m> {
    parent: &'m mut ModuleBuilder,
    name: String,
    params: Vec<ScalarType>,
    ret: Option<ScalarType>,
    blocks: Vec<Block>,
    current: usize,
    next_reg: u32,
}

impl<'m> FunctionBuilder<'m> {
    fn new(
        parent: &'m mut ModuleBuilder,
        name: String,
        params: Vec<ScalarType>,
        ret: Option<ScalarType>,
    ) -> Self {
        let next_reg = params.len() as u32;
        FunctionBuilder {
            parent,
            name,
            params,
            ret,
            blocks: vec![Block::default()],
            current: 0,
            next_reg,
        }
    }

    /// Register holding parameter `i`.
    pub fn param(&self, i: usize) -> Reg {
        assert!(i < self.params.len(), "parameter index out of range");
        Reg(i as u32)
    }

    /// Allocate a fresh virtual register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Create a new (empty) basic block and return its id.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// The entry block id.
    pub fn entry_block(&self) -> BlockId {
        BlockId(0)
    }

    /// Switch the insertion point to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            (block.0 as usize) < self.blocks.len(),
            "switch_to: unknown block {block}"
        );
        self.current = block.0 as usize;
    }

    /// Block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        BlockId(self.current as u32)
    }

    /// Append a raw instruction to the current block.
    pub fn push(&mut self, inst: Inst) {
        self.blocks[self.current].insts.push(inst);
    }

    /// Declare (or look up) an external symbol on the parent module.
    pub fn ext_symbol(&mut self, name: &str) -> ExtSymId {
        self.parent.ext_symbol(name)
    }

    // ---- constants -------------------------------------------------------

    /// Materialise a signed 64-bit constant.
    pub fn const_i64(&mut self, v: i64) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::Const {
            dst,
            ty: ScalarType::I64,
            bits: v as u64,
        });
        dst
    }

    /// Materialise an unsigned 64-bit constant.
    pub fn const_u64(&mut self, v: u64) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::Const {
            dst,
            ty: ScalarType::U64,
            bits: v,
        });
        dst
    }

    /// Materialise a double-precision constant.
    pub fn const_f64(&mut self, v: f64) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::Const {
            dst,
            ty: ScalarType::F64,
            bits: v.to_bits(),
        });
        dst
    }

    /// Materialise a typed constant from a raw bit pattern.
    pub fn const_bits(&mut self, ty: ScalarType, bits: u64) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::Const { dst, ty, bits });
        dst
    }

    // ---- arithmetic ------------------------------------------------------

    /// Emit a binary operation and return the destination register.
    pub fn bin(&mut self, op: BinOp, ty: ScalarType, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::Bin {
            op,
            ty,
            dst,
            lhs,
            rhs,
        });
        dst
    }

    /// `lhs + rhs` at i64.
    pub fn add_i64(&mut self, lhs: Reg, rhs: Reg) -> Reg {
        self.bin(BinOp::Add, ScalarType::I64, lhs, rhs)
    }

    /// `lhs - rhs` at i64.
    pub fn sub_i64(&mut self, lhs: Reg, rhs: Reg) -> Reg {
        self.bin(BinOp::Sub, ScalarType::I64, lhs, rhs)
    }

    /// `lhs * rhs` at i64.
    pub fn mul_i64(&mut self, lhs: Reg, rhs: Reg) -> Reg {
        self.bin(BinOp::Mul, ScalarType::I64, lhs, rhs)
    }

    /// Unsigned `lhs / rhs` at u64.
    pub fn div_u64(&mut self, lhs: Reg, rhs: Reg) -> Reg {
        self.bin(BinOp::Div, ScalarType::U64, lhs, rhs)
    }

    /// Unsigned `lhs % rhs` at u64.
    pub fn rem_u64(&mut self, lhs: Reg, rhs: Reg) -> Reg {
        self.bin(BinOp::Rem, ScalarType::U64, lhs, rhs)
    }

    /// Emit a unary operation and return the destination register.
    pub fn un(&mut self, op: UnOp, ty: ScalarType, src: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::Un { op, ty, dst, src });
        dst
    }

    /// Comparison helper returning a 0/1 register.
    pub fn cmp(&mut self, op: BinOp, ty: ScalarType, lhs: Reg, rhs: Reg) -> Reg {
        assert!(op.is_comparison(), "cmp expects a comparison operator");
        self.bin(op, ty, lhs, rhs)
    }

    // ---- memory ----------------------------------------------------------

    /// Load a value of `ty` from `addr + offset`.
    pub fn load(&mut self, ty: ScalarType, addr: Reg, offset: i64) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::Load {
            ty,
            dst,
            addr,
            offset,
        });
        dst
    }

    /// Store `src` (of type `ty`) to `addr + offset`.
    pub fn store(&mut self, ty: ScalarType, src: Reg, addr: Reg, offset: i64) {
        self.push(Inst::Store {
            ty,
            src,
            addr,
            offset,
        });
    }

    /// Atomic read-modify-write; returns the register holding the old value.
    pub fn atomic(
        &mut self,
        op: AtomicOp,
        ty: ScalarType,
        addr: Reg,
        src: Reg,
        expected: Reg,
    ) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::Atomic {
            op,
            ty,
            dst,
            addr,
            src,
            expected,
        });
        dst
    }

    /// Atomic fetch-add convenience wrapper.
    pub fn atomic_fetch_add(&mut self, ty: ScalarType, addr: Reg, src: Reg) -> Reg {
        let zero = self.const_bits(ty, 0);
        self.atomic(AtomicOp::FetchAdd, ty, addr, src, zero)
    }

    /// Element-wise vector operation.
    pub fn vec_op(
        &mut self,
        op: VecOp,
        ty: ScalarType,
        dst_addr: Reg,
        a_addr: Reg,
        b_addr: Reg,
        count: Reg,
    ) {
        self.push(Inst::Vec {
            op,
            ty,
            dst_addr,
            a_addr,
            b_addr,
            count,
        });
    }

    /// Address of a module global.
    pub fn global_addr(&mut self, global: GlobalId) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::GlobalAddr { dst, global });
        dst
    }

    /// Copy `src` into a fresh register.
    pub fn copy(&mut self, src: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::Move { dst, src });
        dst
    }

    /// Copy `src` into an existing register `dst` (for loop-carried values).
    pub fn assign(&mut self, dst: Reg, src: Reg) {
        self.push(Inst::Move { dst, src });
    }

    // ---- calls -----------------------------------------------------------

    /// Call a function in the same module.
    pub fn call(&mut self, func: FuncId, args: Vec<Reg>, returns_value: bool) -> Option<Reg> {
        let dst = if returns_value {
            Some(self.new_reg())
        } else {
            None
        };
        self.push(Inst::Call { dst, func, args });
        dst
    }

    /// Call an external symbol by name (interning it on the module).
    pub fn call_ext(&mut self, symbol: &str, args: Vec<Reg>, returns_value: bool) -> Option<Reg> {
        let sym = self.ext_symbol(symbol);
        let dst = if returns_value {
            Some(self.new_reg())
        } else {
            None
        };
        self.push(Inst::CallExt { dst, sym, args });
        dst
    }

    // ---- control flow ----------------------------------------------------

    /// Unconditional branch to `target`.
    pub fn br(&mut self, target: BlockId) {
        self.push(Inst::Br { target });
    }

    /// Conditional branch.
    pub fn br_if(&mut self, cond: Reg, then_blk: BlockId, else_blk: BlockId) {
        self.push(Inst::BrIf {
            cond,
            then_blk,
            else_blk,
        });
    }

    /// Return a value.
    pub fn ret(&mut self, value: Reg) {
        self.push(Inst::Ret { value: Some(value) });
    }

    /// Return from a void function.
    pub fn ret_void(&mut self) {
        self.push(Inst::Ret { value: None });
    }

    /// Emit a trap terminator.
    pub fn trap(&mut self, code: u32) {
        self.push(Inst::Trap { code });
    }

    /// Commit the function to the parent module and return its id.
    pub fn finish(self) -> FuncId {
        let func = Function {
            name: self.name,
            params: self.params,
            ret: self.ret,
            num_regs: self.next_reg,
            blocks: self.blocks,
        };
        self.parent.module.functions.push(func);
        FuncId((self.parent.module.functions.len() - 1) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_module;

    /// Build the paper's Target-Side Increment kernel: load a u64 counter at
    /// the target pointer, add the first payload byte, store it back.
    fn build_tsi() -> Module {
        let mut mb = ModuleBuilder::new("tsi");
        {
            let mut f = mb.entry_function();
            let payload = f.param(0);
            let target = f.param(2);
            let delta = f.load(ScalarType::U8, payload, 0);
            let counter = f.load(ScalarType::U64, target, 0);
            let sum = f.bin(BinOp::Add, ScalarType::U64, counter, delta);
            f.store(ScalarType::U64, sum, target, 0);
            let zero = f.const_i64(0);
            f.ret(zero);
            f.finish();
        }
        mb.build()
    }

    #[test]
    fn tsi_module_builds_and_verifies() {
        let m = build_tsi();
        assert_eq!(m.functions.len(), 1);
        assert!(m.entry().is_some());
        assert!(m.is_pure());
        verify_module(&m).expect("TSI module must verify");
    }

    #[test]
    fn branching_function_builds() {
        let mut mb = ModuleBuilder::new("branchy");
        {
            let mut f = mb.function("abs64", vec![ScalarType::I64], Some(ScalarType::I64));
            let x = f.param(0);
            let zero = f.const_i64(0);
            let neg = f.cmp(BinOp::CmpLt, ScalarType::I64, x, zero);
            let then_blk = f.new_block();
            let else_blk = f.new_block();
            f.br_if(neg, then_blk, else_blk);
            f.switch_to(then_blk);
            let negated = f.un(UnOp::Neg, ScalarType::I64, x);
            f.ret(negated);
            f.switch_to(else_blk);
            f.ret(x);
            f.finish();
        }
        let m = mb.build();
        verify_module(&m).expect("branching module must verify");
        assert_eq!(m.functions[0].blocks.len(), 3);
    }

    #[test]
    fn ext_call_interns_symbols_once() {
        let mut mb = ModuleBuilder::new("extcalls");
        {
            let mut f = mb.entry_function();
            let a = f.const_u64(1);
            f.call_ext("tc_node_id", vec![], true);
            f.call_ext("tc_put", vec![a, a, a], true);
            f.call_ext("tc_node_id", vec![], true);
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        let m = mb.build();
        assert_eq!(m.ext_symbols.len(), 2);
        assert!(!m.is_pure());
        verify_module(&m).expect("ext-call module must verify");
    }

    #[test]
    fn params_occupy_low_registers() {
        let mut mb = ModuleBuilder::new("params");
        let f = mb.function(
            "three",
            vec![ScalarType::I64, ScalarType::F64, ScalarType::Ptr],
            None,
        );
        assert_eq!(f.param(0), Reg(0));
        assert_eq!(f.param(1), Reg(1));
        assert_eq!(f.param(2), Reg(2));
    }

    #[test]
    #[should_panic(expected = "parameter index out of range")]
    fn out_of_range_param_panics() {
        let mut mb = ModuleBuilder::new("oops");
        let f = mb.function("f", vec![ScalarType::I64], None);
        let _ = f.param(1);
    }

    #[test]
    fn dep_dedup() {
        let mut mb = ModuleBuilder::new("deps");
        mb.add_dep("libomp.so");
        mb.add_dep("libcrypto.so");
        mb.add_dep("libomp.so");
        let m = mb.build();
        assert_eq!(
            m.deps,
            vec!["libomp.so".to_string(), "libcrypto.so".to_string()]
        );
    }
}
