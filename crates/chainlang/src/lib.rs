//! # tc-chainlang — the high-level-language front-end (Julia analogue)
//!
//! The paper integrates Three-Chains with Julia by using GPUCompiler.jl to
//! lower a *restricted, statically analysable subset* of Julia to an LLVM IR
//! module, which then flows through the unchanged ifunc pipeline.  This crate
//! reproduces that integration point with **Chainlang**, a tiny statically
//! typed language:
//!
//! ```text
//! fn main(payload: u64, len: u64, target: u64) -> i64 {
//!     let delta: u64 = load_u8(payload, 0);
//!     let counter: u64 = load_u64(target, 0);
//!     store_u64(target, 0, counter + delta);
//!     return 0;
//! }
//! ```
//!
//! * [`parser`] — lexer and recursive-descent parser;
//! * [`ast`] — the surface syntax tree;
//! * [`compile`] — the restriction checker (no dynamic dispatch, explicit
//!   types, whitelisted externals only — the GPUCompiler constraint set) and
//!   the code generator targeting `tc-bitir`;
//! * the output [`tc_bitir::Module`] is consumed by `tc-core` exactly like a
//!   module built through the builder API, so Chainlang ifuncs and "C"
//!   ifuncs interoperate freely — matching the paper's observation that a
//!   Julia application can drive C ifuncs and vice versa.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod compile;
pub mod error;
pub mod parser;

pub use ast::{BinOpKind, Expr, FnDef, Program, Stmt, Ty};
pub use compile::{compile_program, compile_source};
pub use error::{ChainlangError, Result};
pub use parser::parse;
