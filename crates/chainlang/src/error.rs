//! Error types for the Chainlang front-end.

use std::fmt;

/// Errors produced while parsing, checking, or compiling Chainlang source.
#[derive(Debug, Clone, PartialEq)]
pub enum ChainlangError {
    /// Syntax error.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Description.
        message: String,
    },
    /// Type error or use of an undefined name.
    Check(String),
    /// Restriction violation: the program uses a feature outside the
    /// offloadable subset (the GPUCompiler.jl analogue of rejecting
    /// type-unstable or runtime-dependent Julia code).
    Restriction(String),
    /// Code generation failed (bubbled up from the IR layer).
    Codegen(String),
}

impl fmt::Display for ChainlangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainlangError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            ChainlangError::Check(msg) => write!(f, "check error: {msg}"),
            ChainlangError::Restriction(msg) => {
                write!(f, "restricted-subset violation: {msg}")
            }
            ChainlangError::Codegen(msg) => write!(f, "code generation error: {msg}"),
        }
    }
}

impl std::error::Error for ChainlangError {}

impl From<tc_bitir::BitirError> for ChainlangError {
    fn from(e: tc_bitir::BitirError) -> Self {
        ChainlangError::Codegen(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ChainlangError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = ChainlangError::Parse {
            line: 7,
            message: "expected `;`".into(),
        };
        assert!(e.to_string().contains("line 7"));
        assert!(ChainlangError::Restriction("dynamic dispatch".into())
            .to_string()
            .contains("dynamic dispatch"));
    }
}
