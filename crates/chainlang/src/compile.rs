//! Checking and code generation: Chainlang → `tc-bitir` IR.
//!
//! This is the analogue of the paper's Julia integration path: a high-level,
//! statically analysable subset of a dynamic-feeling language is lowered to
//! the same portable IR the C path produces, and from there flows through the
//! unchanged Three-Chains pipeline (fat-bitcode, shipping, remote JIT,
//! execution).  The *restriction checker* plays the role of GPUCompiler.jl's
//! constraints: no dynamic dispatch (calls must resolve to user functions,
//! typed builtins or whitelisted framework/library externals), no global
//! state, and explicit types on every binding.

use crate::ast::{BinOpKind, Expr, FnDef, Program, Stmt, Ty};
use crate::error::{ChainlangError, Result};
use crate::parser::parse;
use std::collections::HashMap;
use tc_bitir::{BinOp, FuncId, FunctionBuilder, Module, ModuleBuilder, Reg, ScalarType};

/// Builtin memory-access functions: `(name, loaded/stored type, is_store)`.
const BUILTINS: &[(&str, ScalarType, bool)] = &[
    ("load_u8", ScalarType::U8, false),
    ("load_u16", ScalarType::U16, false),
    ("load_u32", ScalarType::U32, false),
    ("load_u64", ScalarType::U64, false),
    ("load_i64", ScalarType::I64, false),
    ("load_f64", ScalarType::F64, false),
    ("store_u8", ScalarType::U8, true),
    ("store_u16", ScalarType::U16, true),
    ("store_u32", ScalarType::U32, true),
    ("store_u64", ScalarType::U64, true),
    ("store_i64", ScalarType::I64, true),
    ("store_f64", ScalarType::F64, true),
];

/// External symbols a Chainlang program may call: the framework services and
/// the simulated standard libraries.  Anything else is "dynamic dispatch" and
/// rejected by the restriction checker.
const EXTERNAL_WHITELIST_PREFIXES: &[&str] = &["tc_"];
const EXTERNAL_WHITELIST: &[&str] = &["memcpy", "memset", "strlen_u64", "sqrt", "fabs", "pow2"];

fn is_builtin(name: &str) -> Option<(ScalarType, bool)> {
    BUILTINS
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, ty, st)| (*ty, *st))
}

fn is_whitelisted_external(name: &str) -> bool {
    EXTERNAL_WHITELIST.contains(&name)
        || EXTERNAL_WHITELIST_PREFIXES
            .iter()
            .any(|p| name.starts_with(p))
}

fn scalar_of(ty: Ty) -> ScalarType {
    match ty {
        Ty::U64 => ScalarType::U64,
        Ty::I64 => ScalarType::I64,
        Ty::F64 => ScalarType::F64,
    }
}

/// Compile Chainlang source text into a portable IR module named
/// `module_name`.
pub fn compile_source(module_name: &str, source: &str) -> Result<Module> {
    let program = parse(source)?;
    compile_program(module_name, &program)
}

/// Compile a parsed program into a portable IR module.
pub fn compile_program(module_name: &str, program: &Program) -> Result<Module> {
    check_program(program)?;

    let mut mb = ModuleBuilder::new(module_name);
    for dep in &program.deps {
        mb.add_dep(dep.clone());
    }

    // Function ids are assigned in definition order, enabling forward and
    // recursive calls.
    let func_ids: HashMap<&str, FuncId> = program
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), FuncId(i as u32)))
        .collect();

    for def in &program.functions {
        compile_function(&mut mb, program, &func_ids, def)?;
    }

    let module = mb.build();
    tc_bitir::verify_module(&module)?;
    Ok(module)
}

/// Restriction checker: the statically-offloadable subset.
fn check_program(program: &Program) -> Result<()> {
    if program.functions.is_empty() {
        return Err(ChainlangError::Check("program defines no functions".into()));
    }
    let mut names = std::collections::HashSet::new();
    for f in &program.functions {
        if !names.insert(f.name.as_str()) {
            return Err(ChainlangError::Check(format!(
                "function `{}` defined more than once",
                f.name
            )));
        }
        if is_builtin(&f.name).is_some() {
            return Err(ChainlangError::Restriction(format!(
                "function `{}` shadows a builtin",
                f.name
            )));
        }
    }
    if let Some(main) = program.function("main") {
        if main.params.len() != 3 || main.ret != Some(Ty::I64) {
            return Err(ChainlangError::Restriction(
                "ifunc entry `main` must have signature (payload: u64, len: u64, target: u64) -> i64"
                    .into(),
            ));
        }
    }
    // Every call must resolve statically.
    for f in &program.functions {
        check_calls(program, &f.body)?;
    }
    Ok(())
}

fn check_calls(program: &Program, stmts: &[Stmt]) -> Result<()> {
    for stmt in stmts {
        match stmt {
            Stmt::Let { value, .. }
            | Stmt::Assign { value, .. }
            | Stmt::Return(value)
            | Stmt::Expr(value) => check_call_expr(program, value)?,
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                check_call_expr(program, cond)?;
                check_calls(program, then_body)?;
                check_calls(program, else_body)?;
            }
            Stmt::While { cond, body } => {
                check_call_expr(program, cond)?;
                check_calls(program, body)?;
            }
        }
    }
    Ok(())
}

fn check_call_expr(program: &Program, expr: &Expr) -> Result<()> {
    match expr {
        Expr::Bin { lhs, rhs, .. } => {
            check_call_expr(program, lhs)?;
            check_call_expr(program, rhs)
        }
        Expr::Call { name, args } => {
            for a in args {
                check_call_expr(program, a)?;
            }
            if program.function(name).is_some()
                || is_builtin(name).is_some()
                || is_whitelisted_external(name)
            {
                Ok(())
            } else {
                Err(ChainlangError::Restriction(format!(
                    "call to `{name}` cannot be resolved statically (dynamic dispatch is not \
                     supported in the offloadable subset)"
                )))
            }
        }
        _ => Ok(()),
    }
}

struct FnCtx<'a> {
    program: &'a Program,
    func_ids: &'a HashMap<&'a str, FuncId>,
    vars: HashMap<String, (Reg, Ty)>,
}

fn compile_function(
    mb: &mut ModuleBuilder,
    program: &Program,
    func_ids: &HashMap<&str, FuncId>,
    def: &FnDef,
) -> Result<()> {
    let is_entry = def.name == Module::ENTRY_NAME;
    let param_types: Vec<ScalarType> = if is_entry {
        vec![ScalarType::Ptr, ScalarType::U64, ScalarType::Ptr]
    } else {
        def.params.iter().map(|(_, t)| scalar_of(*t)).collect()
    };
    let ret_type = def.ret.map(scalar_of);

    let mut f = mb.function(def.name.clone(), param_types, ret_type);
    let mut ctx = FnCtx {
        program,
        func_ids,
        vars: HashMap::new(),
    };
    for (i, (pname, pty)) in def.params.iter().enumerate() {
        ctx.vars.insert(pname.clone(), (f.param(i), *pty));
    }

    let terminated = compile_block(&mut f, &mut ctx, &def.body)?;
    if !terminated {
        // Implicit return for functions that fall off the end.
        match def.ret {
            None => f.ret_void(),
            Some(ty) => {
                let zero = f.const_bits(scalar_of(ty), 0);
                f.ret(zero);
            }
        }
    }
    f.finish();
    Ok(())
}

/// Compile statements into the current block; returns true when the block was
/// terminated by a `return` on every path that reached the end.
fn compile_block(f: &mut FunctionBuilder<'_>, ctx: &mut FnCtx<'_>, stmts: &[Stmt]) -> Result<bool> {
    for (i, stmt) in stmts.iter().enumerate() {
        match stmt {
            Stmt::Let { name, ty, value } => {
                let (reg, vty) = compile_expr(f, ctx, value, Some(*ty))?;
                if vty != *ty {
                    return Err(ChainlangError::Check(format!(
                        "let `{name}`: declared {} but initialiser has type {}",
                        ty.name(),
                        vty.name()
                    )));
                }
                // Copy into a dedicated register so later assignments don't
                // alias whatever produced the value.
                let var = f.copy(reg);
                ctx.vars.insert(name.clone(), (var, *ty));
            }
            Stmt::Assign { name, value } => {
                let (var, vty) = *ctx.vars.get(name).ok_or_else(|| {
                    ChainlangError::Check(format!("assignment to undefined variable `{name}`"))
                })?;
                let (reg, ety) = compile_expr(f, ctx, value, Some(vty))?;
                if ety != vty {
                    return Err(ChainlangError::Check(format!(
                        "assignment to `{name}`: variable is {} but value is {}",
                        vty.name(),
                        ety.name()
                    )));
                }
                f.assign(var, reg);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let (c, _) = compile_expr(f, ctx, cond, Some(Ty::U64))?;
                let then_blk = f.new_block();
                let else_blk = f.new_block();
                let join_blk = f.new_block();
                f.br_if(c, then_blk, else_blk);

                f.switch_to(then_blk);
                let t_term = compile_block(f, ctx, then_body)?;
                if !t_term {
                    f.br(join_blk);
                }
                f.switch_to(else_blk);
                let e_term = compile_block(f, ctx, else_body)?;
                if !e_term {
                    f.br(join_blk);
                }
                f.switch_to(join_blk);
                if t_term && e_term {
                    // Both arms returned; the join block is unreachable but
                    // must still be well formed.
                    if i == stmts.len() - 1 {
                        f.trap(0xdead);
                        return Ok(true);
                    }
                }
            }
            Stmt::While { cond, body } => {
                let header = f.new_block();
                let body_blk = f.new_block();
                let exit_blk = f.new_block();
                f.br(header);
                f.switch_to(header);
                let (c, _) = compile_expr(f, ctx, cond, Some(Ty::U64))?;
                f.br_if(c, body_blk, exit_blk);
                f.switch_to(body_blk);
                let terminated = compile_block(f, ctx, body)?;
                if !terminated {
                    f.br(header);
                }
                f.switch_to(exit_blk);
            }
            Stmt::Return(value) => {
                let (reg, _) = compile_expr(f, ctx, value, None)?;
                f.ret(reg);
                return Ok(true);
            }
            Stmt::Expr(expr) => {
                compile_expr(f, ctx, expr, None)?;
            }
        }
    }
    Ok(false)
}

fn compile_expr(
    f: &mut FunctionBuilder<'_>,
    ctx: &mut FnCtx<'_>,
    expr: &Expr,
    expected: Option<Ty>,
) -> Result<(Reg, Ty)> {
    match expr {
        Expr::Int(v) => {
            let ty = match expected {
                Some(Ty::F64) => {
                    return Err(ChainlangError::Check(format!(
                        "integer literal {v} used where f64 is expected; write `{v}.0`"
                    )))
                }
                Some(t) => t,
                None => Ty::U64,
            };
            Ok((f.const_bits(scalar_of(ty), *v), ty))
        }
        Expr::Float(v) => Ok((f.const_f64(*v), Ty::F64)),
        Expr::Var(name) => ctx
            .vars
            .get(name)
            .copied()
            .ok_or_else(|| ChainlangError::Check(format!("use of undefined variable `{name}`"))),
        Expr::Bin { op, lhs, rhs } => {
            let (l, lty) = compile_expr(f, ctx, lhs, expected)?;
            let (r, rty) = compile_expr(f, ctx, rhs, Some(lty))?;
            if lty != rty {
                return Err(ChainlangError::Check(format!(
                    "operands of `{op:?}` have mismatched types {} and {}",
                    lty.name(),
                    rty.name()
                )));
            }
            let sty = scalar_of(lty);
            let (bitir_op, result_ty) = match op {
                BinOpKind::Add => (
                    if lty == Ty::F64 {
                        BinOp::FAdd
                    } else {
                        BinOp::Add
                    },
                    lty,
                ),
                BinOpKind::Sub => (
                    if lty == Ty::F64 {
                        BinOp::FSub
                    } else {
                        BinOp::Sub
                    },
                    lty,
                ),
                BinOpKind::Mul => (
                    if lty == Ty::F64 {
                        BinOp::FMul
                    } else {
                        BinOp::Mul
                    },
                    lty,
                ),
                BinOpKind::Div => (
                    if lty == Ty::F64 {
                        BinOp::FDiv
                    } else {
                        BinOp::Div
                    },
                    lty,
                ),
                BinOpKind::Rem => {
                    if lty == Ty::F64 {
                        return Err(ChainlangError::Check("`%` is not defined for f64".into()));
                    }
                    (BinOp::Rem, lty)
                }
                BinOpKind::Eq => (BinOp::CmpEq, Ty::U64),
                BinOpKind::Ne => (BinOp::CmpNe, Ty::U64),
                BinOpKind::Lt => (BinOp::CmpLt, Ty::U64),
                BinOpKind::Le => (BinOp::CmpLe, Ty::U64),
                BinOpKind::Gt => (BinOp::CmpGt, Ty::U64),
                BinOpKind::Ge => (BinOp::CmpGe, Ty::U64),
                BinOpKind::And => {
                    if lty == Ty::F64 {
                        return Err(ChainlangError::Check(
                            "`&&` requires integer operands".into(),
                        ));
                    }
                    (BinOp::And, Ty::U64)
                }
                BinOpKind::Or => {
                    if lty == Ty::F64 {
                        return Err(ChainlangError::Check(
                            "`||` requires integer operands".into(),
                        ));
                    }
                    (BinOp::Or, Ty::U64)
                }
            };
            Ok((f.bin(bitir_op, sty, l, r), result_ty))
        }
        Expr::Call { name, args } => compile_call(f, ctx, name, args, expected),
    }
}

fn compile_call(
    f: &mut FunctionBuilder<'_>,
    ctx: &mut FnCtx<'_>,
    name: &str,
    args: &[Expr],
    _expected: Option<Ty>,
) -> Result<(Reg, Ty)> {
    // Memory builtins.
    if let Some((sty, is_store)) = is_builtin(name) {
        let value_ty = match sty {
            ScalarType::F64 => Ty::F64,
            ScalarType::I64 => Ty::I64,
            _ => Ty::U64,
        };
        if is_store {
            if args.len() != 3 {
                return Err(ChainlangError::Check(format!(
                    "`{name}` expects (addr, offset, value)"
                )));
            }
            let (addr, _) = compile_expr(f, ctx, &args[0], Some(Ty::U64))?;
            let (off, _) = compile_expr(f, ctx, &args[1], Some(Ty::U64))?;
            let (val, vty) = compile_expr(f, ctx, &args[2], Some(value_ty))?;
            if vty != value_ty {
                return Err(ChainlangError::Check(format!(
                    "`{name}` stores {} but the value has type {}",
                    value_ty.name(),
                    vty.name()
                )));
            }
            // addr + offset computed explicitly (offsets may be dynamic).
            let ea = f.bin(BinOp::Add, ScalarType::U64, addr, off);
            f.store(sty, val, ea, 0);
            let zero = f.const_u64(0);
            Ok((zero, Ty::U64))
        } else {
            if args.len() != 2 {
                return Err(ChainlangError::Check(format!(
                    "`{name}` expects (addr, offset)"
                )));
            }
            let (addr, _) = compile_expr(f, ctx, &args[0], Some(Ty::U64))?;
            let (off, _) = compile_expr(f, ctx, &args[1], Some(Ty::U64))?;
            let ea = f.bin(BinOp::Add, ScalarType::U64, addr, off);
            Ok((f.load(sty, ea, 0), value_ty))
        }
    } else if let Some(def) = ctx.program.function(name) {
        if def.params.len() != args.len() {
            return Err(ChainlangError::Check(format!(
                "`{name}` expects {} arguments, got {}",
                def.params.len(),
                args.len()
            )));
        }
        let mut arg_regs = Vec::with_capacity(args.len());
        for (a, (_, pty)) in args.iter().zip(&def.params) {
            let (r, aty) = compile_expr(f, ctx, a, Some(*pty))?;
            if aty != *pty {
                return Err(ChainlangError::Check(format!(
                    "argument to `{name}` has type {} but parameter is {}",
                    aty.name(),
                    pty.name()
                )));
            }
            arg_regs.push(r);
        }
        let id = ctx.func_ids[name];
        let ret_ty = def.ret.unwrap_or(Ty::U64);
        let dst = f.call(id, arg_regs, def.ret.is_some());
        let reg = match dst {
            Some(r) => r,
            None => f.const_u64(0),
        };
        Ok((reg, ret_ty))
    } else if is_whitelisted_external(name) {
        let mut arg_regs = Vec::with_capacity(args.len());
        for a in args {
            let (r, _) = compile_expr(f, ctx, a, Some(Ty::U64))?;
            arg_regs.push(r);
        }
        let dst = f
            .call_ext(name, arg_regs, true)
            .expect("ext call returns value");
        Ok((dst, Ty::U64))
    } else {
        Err(ChainlangError::Restriction(format!(
            "call to `{name}` cannot be resolved statically"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_jit::{CompileOptions, Engine, Memory, MemoryExt, NoExternals, VecMemory};

    const TSI_SRC: &str = r#"
        fn main(payload: u64, len: u64, target: u64) -> i64 {
            let delta: u64 = load_u8(payload, 0);
            let counter: u64 = load_u64(target, 0);
            store_u64(target, 0, counter + delta);
            return 0;
        }
    "#;

    #[test]
    fn tsi_compiles_and_runs() {
        let module = compile_source("tsi_jl", TSI_SRC).unwrap();
        assert!(module.entry().is_some());
        let compiled = tc_jit::compile_module(&module, CompileOptions::default()).unwrap();
        let mut mem = VecMemory::new(0, 4096);
        mem.write(0, &[5]).unwrap();
        mem.write_u64(2048, 10).unwrap();
        Engine::new()
            .run(
                &compiled.module,
                "main",
                &[0, 1, 2048],
                &[],
                &mut mem,
                &mut NoExternals,
            )
            .unwrap();
        assert_eq!(mem.read_u64(2048).unwrap(), 15);
    }

    #[test]
    fn loops_and_calls_produce_correct_results() {
        let src = r#"
            fn square(x: u64) -> u64 {
                return x * x;
            }
            fn main(payload: u64, len: u64, target: u64) -> i64 {
                let i: u64 = 0;
                let acc: u64 = 0;
                while i < len {
                    acc = acc + square(load_u8(payload, i));
                    i = i + 1;
                }
                store_u64(target, 0, acc);
                return 0;
            }
        "#;
        let module = compile_source("sumsq", src).unwrap();
        let compiled = tc_jit::compile_module(&module, CompileOptions::default()).unwrap();
        let mut mem = VecMemory::new(0, 4096);
        mem.write(0, &[1, 2, 3, 4]).unwrap();
        Engine::new()
            .run(
                &compiled.module,
                "main",
                &[0, 4, 1024],
                &[],
                &mut mem,
                &mut NoExternals,
            )
            .unwrap();
        assert_eq!(mem.read_u64(1024).unwrap(), 1 + 4 + 9 + 16);
    }

    #[test]
    fn if_else_and_comparisons() {
        let src = r#"
            fn main(payload: u64, len: u64, target: u64) -> i64 {
                let v: u64 = load_u64(payload, 0);
                if v >= 100 || v == 7 {
                    store_u64(target, 0, 1);
                } else {
                    store_u64(target, 0, 2);
                }
                return 0;
            }
        "#;
        let module = compile_source("cmp", src).unwrap();
        let compiled = tc_jit::compile_module(&module, CompileOptions::default()).unwrap();
        let run = |input: u64| {
            let mut mem = VecMemory::new(0, 4096);
            mem.write_u64(0, input).unwrap();
            Engine::new()
                .run(
                    &compiled.module,
                    "main",
                    &[0, 8, 1024],
                    &[],
                    &mut mem,
                    &mut NoExternals,
                )
                .unwrap();
            mem.read_u64(1024).unwrap()
        };
        assert_eq!(run(150), 1);
        assert_eq!(run(7), 1);
        assert_eq!(run(99), 2);
    }

    #[test]
    fn framework_externals_are_allowed_and_emitted() {
        let src = r#"
            fn main(payload: u64, len: u64, target: u64) -> i64 {
                let me: u64 = tc_node_id();
                tc_return_result(0, 3, me);
                return 0;
            }
        "#;
        let module = compile_source("ext", src).unwrap();
        assert!(module.ext_symbols.contains(&"tc_node_id".to_string()));
        assert!(module.ext_symbols.contains(&"tc_return_result".to_string()));
        assert!(!module.is_pure());
    }

    #[test]
    fn restriction_checker_rejects_dynamic_calls() {
        let src = r#"
            fn main(payload: u64, len: u64, target: u64) -> i64 {
                let x: u64 = mystery_function(payload);
                return 0;
            }
        "#;
        let err = compile_source("dyn", src).unwrap_err();
        assert!(matches!(err, ChainlangError::Restriction(_)));
        assert!(err.to_string().contains("mystery_function"));
    }

    #[test]
    fn restriction_checker_rejects_bad_entry_signature() {
        let err = compile_source("bad", "fn main(x: u64) -> i64 { return 0; }").unwrap_err();
        assert!(matches!(err, ChainlangError::Restriction(_)));
    }

    #[test]
    fn type_errors_are_reported() {
        let err = compile_source(
            "badtype",
            "fn f() -> u64 { let x: u64 = 1; let y: f64 = 2.0; return x + y; }",
        )
        .unwrap_err();
        assert!(matches!(err, ChainlangError::Check(_)));

        let err = compile_source("badlet", "fn f() { let x: f64 = 3; }").unwrap_err();
        assert!(err.to_string().contains("f64"));

        let err = compile_source("undef", "fn f() { x = 3; }").unwrap_err();
        assert!(err.to_string().contains("undefined"));
    }

    #[test]
    fn duplicate_and_shadowing_functions_rejected() {
        let err = compile_source("dup", "fn f() {} fn f() {}").unwrap_err();
        assert!(matches!(err, ChainlangError::Check(_)));
        let err = compile_source("shadow", "fn load_u64(a: u64, b: u64) -> u64 { return 0; }")
            .unwrap_err();
        assert!(matches!(err, ChainlangError::Restriction(_)));
    }

    #[test]
    fn chainlang_emits_more_instructions_than_hand_built_ir() {
        // The "Julia path" is expected to be somewhat less tight than the
        // hand-built C path — the paper observes the same effect.
        let chainlang = compile_source("tsi_jl", TSI_SRC).unwrap();
        let mut mb = ModuleBuilder::new("tsi_c");
        {
            let mut f = mb.entry_function();
            let payload = f.param(0);
            let target = f.param(2);
            let delta = f.load(ScalarType::U8, payload, 0);
            let counter = f.load(ScalarType::U64, target, 0);
            let sum = f.bin(BinOp::Add, ScalarType::U64, counter, delta);
            f.store(ScalarType::U64, sum, target, 0);
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        let hand = mb.build();
        assert!(chainlang.inst_count() >= hand.inst_count());
    }

    #[test]
    fn deps_flow_into_the_module() {
        let module = compile_source(
            "withdeps",
            "dep \"libm.so\";\nfn main(p: u64, l: u64, t: u64) -> i64 { let s: u64 = sqrt(load_u64(p, 0)); store_u64(t, 0, s); return 0; }",
        )
        .unwrap();
        assert_eq!(module.deps, vec!["libm.so".to_string()]);
        assert!(module.ext_symbols.contains(&"sqrt".to_string()));
    }
}
