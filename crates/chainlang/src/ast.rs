//! Abstract syntax tree and source types for Chainlang.

/// Scalar types available in the language.  Chainlang deliberately has a
/// small, fully static type system — the analogue of the type-stable Julia
/// subset GPUCompiler.jl accepts for offloading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// Unsigned 64-bit integer (also used for addresses).
    U64,
    /// Signed 64-bit integer.
    I64,
    /// Double-precision float.
    F64,
}

impl Ty {
    /// Parse a type name.
    pub fn parse(s: &str) -> Option<Ty> {
        match s {
            "u64" => Some(Ty::U64),
            "i64" => Some(Ty::I64),
            "f64" => Some(Ty::F64),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Ty::U64 => "u64",
            Ty::I64 => "i64",
            Ty::F64 => "f64",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOpKind {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (logical, non-short-circuit)
    And,
    /// `||` (logical, non-short-circuit)
    Or,
}

impl BinOpKind {
    /// True when the result of the operator is a 0/1 boolean-like value.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOpKind::Eq
                | BinOpKind::Ne
                | BinOpKind::Lt
                | BinOpKind::Le
                | BinOpKind::Gt
                | BinOpKind::Ge
        )
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(u64),
    /// Float literal.
    Float(f64),
    /// Variable reference.
    Var(String),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOpKind,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Function call (user function, builtin, or framework external).
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name: ty = expr;`
    Let {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Ty,
        /// Initialiser.
        value: Expr,
    },
    /// `name = expr;`
    Assign {
        /// Variable name.
        name: String,
        /// New value.
        value: Expr,
    },
    /// `if cond { .. } else { .. }`
    If {
        /// Condition expression.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while cond { .. }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return expr;`
    Return(Expr),
    /// Expression statement (typically a call for its side effects).
    Expr(Expr),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Parameters: `(name, type)` pairs.
    pub params: Vec<(String, Ty)>,
    /// Return type (`None` = no return value).
    pub ret: Option<Ty>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A parsed Chainlang program (one ifunc library).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Function definitions.
    pub functions: Vec<FnDef>,
    /// Declared shared-library dependencies (`dep "libm.so";`).
    pub deps: Vec<String>,
}

impl Program {
    /// Find a function definition by name.
    pub fn function(&self, name: &str) -> Option<&FnDef> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_parsing() {
        assert_eq!(Ty::parse("u64"), Some(Ty::U64));
        assert_eq!(Ty::parse("i64"), Some(Ty::I64));
        assert_eq!(Ty::parse("f64"), Some(Ty::F64));
        assert_eq!(Ty::parse("String"), None);
        assert_eq!(Ty::U64.name(), "u64");
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOpKind::Eq.is_comparison());
        assert!(BinOpKind::Ge.is_comparison());
        assert!(!BinOpKind::Add.is_comparison());
        assert!(!BinOpKind::And.is_comparison());
    }
}
