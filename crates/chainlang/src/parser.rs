//! Lexer and recursive-descent parser for Chainlang.
//!
//! The surface syntax is a tiny, Rust-flavoured statically typed language —
//! just enough to express the paper's workloads (target-side increment,
//! distributed pointer chasing with recursive forwarding) in a high-level
//! form that is then compiled to the same portable IR the "C path" produces.

use crate::ast::{BinOpKind, Expr, FnDef, Program, Stmt, Ty};
use crate::error::{ChainlangError, Result};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(u64),
    Float(f64),
    Str(String),
    // punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Colon,
    Arrow,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    // keywords
    Fn,
    Let,
    If,
    Else,
    While,
    Return,
    Dep,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn error(&self, msg: impl Into<String>) -> ChainlangError {
        ChainlangError::Parse {
            line: self.line,
            message: msg.into(),
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek_byte()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            while matches!(self.peek_byte(), Some(b) if b.is_ascii_whitespace()) {
                self.bump();
            }
            // Line comments: `//` or `#`
            if self.src[self.pos..].starts_with(b"//") || self.peek_byte() == Some(b'#') {
                while let Some(b) = self.peek_byte() {
                    if b == b'\n' {
                        break;
                    }
                    self.bump();
                }
                continue;
            }
            break;
        }
    }

    fn next_tok(&mut self) -> Result<(Tok, usize)> {
        self.skip_ws_and_comments();
        let line = self.line;
        let Some(b) = self.peek_byte() else {
            return Ok((Tok::Eof, line));
        };
        let tok = match b {
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b'{' => {
                self.bump();
                Tok::LBrace
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b';' => {
                self.bump();
                Tok::Semi
            }
            b':' => {
                self.bump();
                Tok::Colon
            }
            b'+' => {
                self.bump();
                Tok::Plus
            }
            b'*' => {
                self.bump();
                Tok::Star
            }
            b'/' => {
                self.bump();
                Tok::Slash
            }
            b'%' => {
                self.bump();
                Tok::Percent
            }
            b'-' => {
                self.bump();
                if self.peek_byte() == Some(b'>') {
                    self.bump();
                    Tok::Arrow
                } else {
                    Tok::Minus
                }
            }
            b'=' => {
                self.bump();
                if self.peek_byte() == Some(b'=') {
                    self.bump();
                    Tok::EqEq
                } else {
                    Tok::Assign
                }
            }
            b'!' => {
                self.bump();
                if self.peek_byte() == Some(b'=') {
                    self.bump();
                    Tok::NotEq
                } else {
                    return Err(self.error("expected `!=`"));
                }
            }
            b'<' => {
                self.bump();
                if self.peek_byte() == Some(b'=') {
                    self.bump();
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            b'>' => {
                self.bump();
                if self.peek_byte() == Some(b'=') {
                    self.bump();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            b'&' => {
                self.bump();
                if self.peek_byte() == Some(b'&') {
                    self.bump();
                    Tok::AndAnd
                } else {
                    return Err(self.error("expected `&&`"));
                }
            }
            b'|' => {
                self.bump();
                if self.peek_byte() == Some(b'|') {
                    self.bump();
                    Tok::OrOr
                } else {
                    return Err(self.error("expected `||`"));
                }
            }
            b'"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(c) => s.push(c as char),
                        None => return Err(self.error("unterminated string literal")),
                    }
                }
                Tok::Str(s)
            }
            b'0'..=b'9' => {
                let start = self.pos;
                while matches!(self.peek_byte(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'_')
                {
                    self.bump();
                }
                let text: String = std::str::from_utf8(&self.src[start..self.pos])
                    .unwrap()
                    .replace('_', "");
                if text.contains('.') {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| self.error(format!("invalid float literal `{text}`")))?;
                    Tok::Float(v)
                } else {
                    let v: u64 = text
                        .parse()
                        .map_err(|_| self.error(format!("invalid integer literal `{text}`")))?;
                    Tok::Int(v)
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while matches!(self.peek_byte(), Some(c) if c.is_ascii_alphanumeric() || c == b'_')
                {
                    self.bump();
                }
                let word = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                match word {
                    "fn" => Tok::Fn,
                    "let" => Tok::Let,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "return" => Tok::Return,
                    "dep" => Tok::Dep,
                    _ => Tok::Ident(word.to_string()),
                }
            }
            other => return Err(self.error(format!("unexpected character `{}`", other as char))),
        };
        Ok((tok, line))
    }
}

/// Parse Chainlang source into a [`Program`].
pub fn parse(source: &str) -> Result<Program> {
    let mut lexer = Lexer::new(source);
    let mut tokens = Vec::new();
    loop {
        let (tok, line) = lexer.next_tok()?;
        let done = tok == Tok::Eof;
        tokens.push((tok, line));
        if done {
            break;
        }
    }
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].0
    }

    fn line(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].1
    }

    fn bump(&mut self) -> Tok {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].0.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn error(&self, msg: impl Into<String>) -> ChainlangError {
        ChainlangError::Parse {
            line: self.line(),
            message: msg.into(),
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<()> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn program(&mut self) -> Result<Program> {
        let mut program = Program::default();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Dep => {
                    self.bump();
                    match self.bump() {
                        Tok::Str(s) => program.deps.push(s),
                        other => {
                            return Err(self.error(format!(
                                "expected string literal after `dep`, found {other:?}"
                            )))
                        }
                    }
                    self.expect(Tok::Semi, "`;`")?;
                }
                Tok::Fn => program.functions.push(self.function()?),
                other => return Err(self.error(format!("expected `fn` or `dep`, found {other:?}"))),
            }
        }
        Ok(program)
    }

    fn function(&mut self) -> Result<FnDef> {
        self.expect(Tok::Fn, "`fn`")?;
        let name = self.ident("function name")?;
        self.expect(Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        while *self.peek() != Tok::RParen {
            if !params.is_empty() {
                self.expect(Tok::Comma, "`,`")?;
            }
            let pname = self.ident("parameter name")?;
            self.expect(Tok::Colon, "`:`")?;
            let tname = self.ident("parameter type")?;
            let ty =
                Ty::parse(&tname).ok_or_else(|| self.error(format!("unknown type `{tname}`")))?;
            params.push((pname, ty));
        }
        self.expect(Tok::RParen, "`)`")?;
        let ret = if *self.peek() == Tok::Arrow {
            self.bump();
            let tname = self.ident("return type")?;
            Some(Ty::parse(&tname).ok_or_else(|| self.error(format!("unknown type `{tname}`")))?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(FnDef {
            name,
            params,
            ret,
            body,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.expect(Tok::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            stmts.push(self.statement()?);
        }
        self.expect(Tok::RBrace, "`}`")?;
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt> {
        match self.peek().clone() {
            Tok::Let => {
                self.bump();
                let name = self.ident("variable name")?;
                self.expect(Tok::Colon, "`:` (all variables are explicitly typed)")?;
                let tname = self.ident("type")?;
                let ty = Ty::parse(&tname)
                    .ok_or_else(|| self.error(format!("unknown type `{tname}`")))?;
                self.expect(Tok::Assign, "`=`")?;
                let value = self.expr()?;
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Let { name, ty, value })
            }
            Tok::If => {
                self.bump();
                let cond = self.expr()?;
                let then_body = self.block()?;
                let else_body = if *self.peek() == Tok::Else {
                    self.bump();
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            Tok::While => {
                self.bump();
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::Return => {
                self.bump();
                let value = self.expr()?;
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Return(value))
            }
            Tok::Ident(name) => {
                // Either `name = expr;` or an expression statement.
                if self.tokens.get(self.pos + 1).map(|t| &t.0) == Some(&Tok::Assign) {
                    self.bump();
                    self.bump();
                    let value = self.expr()?;
                    self.expect(Tok::Semi, "`;`")?;
                    Ok(Stmt::Assign { name, value })
                } else {
                    let e = self.expr()?;
                    self.expect(Tok::Semi, "`;`")?;
                    Ok(Stmt::Expr(e))
                }
            }
            other => Err(self.error(format!("unexpected token {other:?} at statement start"))),
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == Tok::OrOr {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Bin {
                op: BinOpKind::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.cmp_expr()?;
        while *self.peek() == Tok::AndAnd {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin {
                op: BinOpKind::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::EqEq => Some(BinOpKind::Eq),
            Tok::NotEq => Some(BinOpKind::Ne),
            Tok::Lt => Some(BinOpKind::Lt),
            Tok::Le => Some(BinOpKind::Le),
            Tok::Gt => Some(BinOpKind::Gt),
            Tok::Ge => Some(BinOpKind::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            Ok(Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOpKind::Add,
                Tok::Minus => BinOpKind::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.atom()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOpKind::Mul,
                Tok::Slash => BinOpKind::Div,
                Tok::Percent => BinOpKind::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.atom()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn atom(&mut self) -> Result<Expr> {
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    while *self.peek() != Tok::RParen {
                        if !args.is_empty() {
                            self.expect(Tok::Comma, "`,`")?;
                        }
                        args.push(self.expr()?);
                    }
                    self.expect(Tok::RParen, "`)`")?;
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.error(format!("unexpected token {other:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tsi_kernel() {
        let src = r#"
            // Target-side increment, Chainlang edition.
            fn main(payload: u64, len: u64, target: u64) -> i64 {
                let delta: u64 = load_u8(payload, 0);
                let counter: u64 = load_u64(target, 0);
                store_u64(target, 0, counter + delta);
                return 0;
            }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.functions.len(), 1);
        let main = prog.function("main").unwrap();
        assert_eq!(main.params.len(), 3);
        assert_eq!(main.ret, Some(Ty::I64));
        assert_eq!(main.body.len(), 4);
    }

    #[test]
    fn parses_control_flow_and_deps() {
        let src = r#"
            dep "libm.so";
            fn helper(x: f64) -> f64 {
                return x * 2.5;
            }
            fn main(payload: u64, len: u64, target: u64) -> i64 {
                let i: u64 = 0;
                let acc: u64 = 0;
                while i < len {
                    acc = acc + load_u8(payload, i);
                    i = i + 1;
                }
                if acc > 100 && acc != 200 {
                    store_u64(target, 0, acc);
                } else {
                    store_u64(target, 0, 0);
                }
                return 0;
            }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.deps, vec!["libm.so".to_string()]);
        assert_eq!(prog.functions.len(), 2);
        let main = prog.function("main").unwrap();
        assert!(matches!(main.body[2], Stmt::While { .. }));
        assert!(matches!(main.body[3], Stmt::If { .. }));
    }

    #[test]
    fn operator_precedence() {
        let prog = parse("fn f() -> u64 { return 1 + 2 * 3; }").unwrap();
        match &prog.functions[0].body[0] {
            Stmt::Return(Expr::Bin {
                op: BinOpKind::Add,
                rhs,
                ..
            }) => {
                assert!(matches!(
                    **rhs,
                    Expr::Bin {
                        op: BinOpKind::Mul,
                        ..
                    }
                ));
            }
            other => panic!("unexpected AST {other:?}"),
        }
    }

    #[test]
    fn reports_syntax_errors_with_line_numbers() {
        let err = parse("fn main(\n  x u64\n) {}").unwrap_err();
        match err {
            ChainlangError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(parse("fn f() { let x = ; }").is_err());
        assert!(parse("fn f() { return 1 }").is_err());
        assert!(parse("fn f() { x & y; }").is_err());
        assert!(parse("dep libm; fn f() {}").is_err());
    }

    #[test]
    fn untyped_let_is_rejected() {
        // Type-instability analogue: every binding must have a declared type.
        let err = parse("fn f() { let x = 3; }").unwrap_err();
        assert!(err.to_string().contains("explicitly typed"));
    }

    #[test]
    fn comments_and_underscored_literals() {
        let prog =
            parse("# hash comment\nfn f() -> u64 { // trailing\n  return 1_000_000; }").unwrap();
        match &prog.functions[0].body[0] {
            Stmt::Return(Expr::Int(v)) => assert_eq!(*v, 1_000_000),
            other => panic!("unexpected {other:?}"),
        }
    }
}
