//! A minimal, dependency-free stand-in for the slice of the Criterion API the
//! benches use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `iter`, `iter_batched`, throughput annotation).
//!
//! The container this reproduction builds in has no network access to
//! crates.io, so the benches run on this shim instead of the real Criterion:
//! each benchmark executes `sample_size` timed samples and prints the
//! min / mean / max wall-clock time (plus throughput when annotated).  The
//! statistical machinery of Criterion (outlier rejection, regression
//! analysis) is intentionally out of scope — these benches guard against
//! order-of-magnitude regressions, not single-digit-percent ones.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: default_sample_size(),
            throughput: None,
        }
    }
}

fn default_sample_size() -> usize {
    std::env::var("TC_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// Work-per-iteration annotation used to derive rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortises setup (accepted for API compatibility; the
/// shim always times routine-only, excluding setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// A fresh batch every iteration.
    PerIteration,
}

/// Identifier of one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`, mirroring Criterion's display form.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var("TC_BENCH_SAMPLES").is_err() {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Annotate the work performed by one iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id.into(), &bencher.samples);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id.full, &bencher.samples);
        self
    }

    /// Close the group (accepted for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            eprintln!("{}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let rate = self.throughput.map(|t| match t {
            Throughput::Bytes(b) => {
                format!(
                    "  {:.1} MiB/s",
                    b as f64 / mean.as_secs_f64() / (1024.0 * 1024.0)
                )
            }
            Throughput::Elements(n) => {
                format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
        });
        eprintln!(
            "{}/{id}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples){}",
            self.name,
            samples.len(),
            rate.unwrap_or_default()
        );
    }
}

/// Collects timed samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `sample_size` executions of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `sample_size` executions of `routine`, excluding `setup` from the
    /// measurement.
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Define a function running a list of benchmark targets, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::crit::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` for a `harness = false` bench binary, mirroring Criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
