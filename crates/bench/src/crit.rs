//! A minimal, dependency-free stand-in for the slice of the Criterion API the
//! benches use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `iter`, `iter_batched`, throughput annotation).
//!
//! The container this reproduction builds in has no network access to
//! crates.io, so the benches run on this shim instead of the real Criterion:
//! each benchmark executes `sample_size` timed samples and prints the
//! min / mean / max wall-clock time (plus throughput when annotated).  The
//! statistical machinery of Criterion (outlier rejection, regression
//! analysis) is intentionally out of scope — these benches guard against
//! order-of-magnitude regressions, not single-digit-percent ones.
//!
//! In addition to the stderr report every run **appends machine-readable
//! results to `BENCH.json`** at the workspace root (override the path with
//! `TC_BENCH_JSON`), so the perf trajectory of the repository is tracked
//! across PRs.  Entries are keyed by `(bin, name)`: re-running a bench binary
//! replaces its own previous entries and leaves the other binaries' entries
//! in place.

use std::cell::RefCell;
use std::fmt::Display;
use std::hint::black_box;
use std::path::PathBuf;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// One benchmark result, as serialized into `BENCH.json`.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Bench binary this result came from (e.g. `pipeline`).
    pub bin: String,
    /// Full benchmark name, `group/id`.
    pub name: String,
    /// Mean sample wall-clock time in nanoseconds.
    pub mean_ns: u128,
    /// Fastest sample in nanoseconds.
    pub min_ns: u128,
    /// Slowest sample in nanoseconds.
    pub max_ns: u128,
    /// Number of timed samples.
    pub samples: usize,
    /// Logical CPUs visible to the bench process — records the hardware
    /// context a row was measured under, so scaling rows from a 1-CPU CI
    /// container are never mistaken for real multi-core speedups.
    pub cores: usize,
    /// Driving OS threads the benchmark deliberately ran (client runtimes,
    /// worker threads), when the group annotated it.  Distinct from `cores`:
    /// `threads` is workload shape, `cores` is hardware budget.
    pub threads: Option<usize>,
    /// Work-per-iteration annotation, if the group declared one.
    pub throughput: Option<Throughput>,
}

impl BenchRecord {
    /// Derived rate: bytes/s or elements/s from the mean time, when the
    /// benchmark was annotated with a [`Throughput`].
    pub fn per_second(&self) -> Option<f64> {
        let mean_s = self.mean_ns as f64 / 1e9;
        self.throughput.map(|t| match t {
            Throughput::Bytes(b) => b as f64 / mean_s,
            Throughput::Elements(n) => n as f64 / mean_s,
        })
    }

    fn to_json_line(&self) -> String {
        let mut extra = String::new();
        match self.throughput {
            Some(Throughput::Bytes(b)) => {
                extra = format!(
                    ",\"bytes_per_iter\":{b},\"bytes_per_sec\":{:.1}",
                    self.per_second().unwrap_or(0.0)
                );
            }
            Some(Throughput::Elements(n)) => {
                extra = format!(
                    ",\"elems_per_iter\":{n},\"elems_per_sec\":{:.1}",
                    self.per_second().unwrap_or(0.0)
                );
            }
            None => {}
        }
        if let Some(threads) = self.threads {
            extra.push_str(&format!(",\"threads\":{threads}"));
        }
        format!(
            "{{\"bin\":{},\"name\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{},\"cores\":{}{extra}}}",
            json_string(&self.bin),
            json_string(&self.name),
            self.mean_ns,
            self.min_ns,
            self.max_ns,
            self.samples,
            self.cores,
        )
    }
}

/// Minimal JSON string escaping (names are ASCII identifiers in practice).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Resolve where `BENCH.json` lives: `TC_BENCH_JSON` wins; otherwise walk up
/// from the crate manifest dir to the workspace root (the directory holding
/// `Cargo.lock`), falling back to the current directory.
pub fn bench_json_path() -> PathBuf {
    if let Ok(p) = std::env::var("TC_BENCH_JSON") {
        return PathBuf::from(p);
    }
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|_| std::env::current_dir())
        .unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = start.as_path();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("BENCH.json");
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return PathBuf::from("BENCH.json"),
        }
    }
}

/// Logical CPUs visible to this process (what the OS would schedule onto).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Name of the running bench binary with cargo's trailing `-<hash>` stripped.
fn bin_name() -> String {
    let raw = std::env::args()
        .next()
        .map(|a| {
            PathBuf::from(a)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default()
        })
        .unwrap_or_default();
    // cargo bench executables are named e.g. `pipeline-0a1b2c3d4e5f6789`.
    match raw.rsplit_once('-') {
        Some((stem, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            stem.to_string()
        }
        _ => raw,
    }
}

/// Merge `new` records into the JSON file.  The *first* write of a bench
/// process drops every existing row of this binary (so renamed or deleted
/// benchmarks leave no stale entries); subsequent writes from the same
/// process (one per `criterion_group!`) merge by `(bin, name)`.  Rows from
/// other bench binaries are always preserved.  The file is line-oriented
/// (one entry object per line) precisely so this merge needs no JSON
/// parser.
fn write_bench_json(new: &[BenchRecord]) {
    use std::sync::atomic::{AtomicBool, Ordering};
    static PURGED_OWN_ROWS: AtomicBool = AtomicBool::new(false);
    if new.is_empty() {
        return;
    }
    let first_write = !PURGED_OWN_ROWS.swap(true, Ordering::SeqCst);
    let own_bin_prefix = format!("{{\"bin\":{},", json_string(&bin_name()));
    let path = bench_json_path();
    let mut kept: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines() {
            let entry = line.trim().trim_end_matches(',');
            if !entry.starts_with("{\"bin\":") {
                continue;
            }
            if first_write && entry.starts_with(&own_bin_prefix) {
                continue;
            }
            let replaced = new.iter().any(|r| {
                entry.contains(&format!(
                    "\"bin\":{},\"name\":{}",
                    json_string(&r.bin),
                    json_string(&r.name)
                ))
            });
            if !replaced {
                kept.push(entry.to_string());
            }
        }
    }
    kept.extend(new.iter().map(BenchRecord::to_json_line));
    let mut out = String::from("{\n\"schema\":1,\n\"benches\":[\n");
    for (i, line) in kept.iter().enumerate() {
        out.push_str(line);
        if i + 1 < kept.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

type Results = Rc<RefCell<Vec<BenchRecord>>>;

/// Top-level benchmark driver, handed to every `criterion_group!` target.
/// Writes collected results to `BENCH.json` when dropped.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Results,
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: default_sample_size(),
            throughput: None,
            threads: None,
            results: Rc::clone(&self.results),
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        write_bench_json(&self.results.borrow());
    }
}

fn default_sample_size() -> usize {
    std::env::var("TC_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// Work-per-iteration annotation used to derive rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortises setup (accepted for API compatibility; the
/// shim always times routine-only, excluding setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// A fresh batch every iteration.
    PerIteration,
}

/// Identifier of one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`, mirroring Criterion's display form.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    threads: Option<usize>,
    results: Results,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var("TC_BENCH_SAMPLES").is_err() {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Annotate the work performed by one iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Annotate how many driving OS threads the following benchmarks run
    /// (shim extension, not part of the Criterion API).  Recorded as the
    /// `threads` field of each row until changed or reset with `None`.
    pub fn threads(&mut self, threads: impl Into<Option<usize>>) -> &mut Self {
        self.threads = threads.into();
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id.into(), &bencher.samples);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id.full, &bencher.samples);
        self
    }

    /// Close the group (accepted for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            eprintln!("{}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        self.results.borrow_mut().push(BenchRecord {
            bin: bin_name(),
            name: format!("{}/{id}", self.name),
            mean_ns: mean.as_nanos(),
            min_ns: min.as_nanos(),
            max_ns: max.as_nanos(),
            samples: samples.len(),
            cores: host_cores(),
            threads: self.threads,
            throughput: self.throughput,
        });
        let rate = self.throughput.map(|t| match t {
            Throughput::Bytes(b) => {
                format!(
                    "  {:.1} MiB/s",
                    b as f64 / mean.as_secs_f64() / (1024.0 * 1024.0)
                )
            }
            Throughput::Elements(n) => {
                format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
        });
        eprintln!(
            "{}/{id}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples){}",
            self.name,
            samples.len(),
            rate.unwrap_or_default()
        );
    }
}

/// Collects timed samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `sample_size` executions of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `sample_size` executions of `routine`, excluding `setup` from the
    /// measurement.
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Define a function running a list of benchmark targets, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::crit::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` for a `harness = false` bench binary, mirroring Criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
