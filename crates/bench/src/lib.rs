//! # tc-bench — benchmarks and paper-reproduction harnesses
//!
//! Two kinds of artefacts live here:
//!
//! * **Benchmarks** (`benches/`, on the Criterion-style [`crit`] shim)
//!   measuring the real wall-clock cost of the reproduction's own machinery
//!   (frame encoding, bitcode encode/decode, JIT compilation, interpretation,
//!   the cluster simulation) plus the ablations called out in `DESIGN.md`;
//! * **Reproduction binaries** (`src/bin/repro_tables.rs`,
//!   `src/bin/repro_figures.rs`) that regenerate every table and figure of
//!   the paper in *virtual* time on the calibrated simulated testbed:
//!
//!   ```text
//!   cargo run -p tc-bench --release --bin repro_tables  -- all
//!   cargo run -p tc-bench --release --bin repro_figures -- all
//!   cargo run -p tc-bench --release --bin repro_figures -- fig5 --fast
//!   ```
//!
//! See `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! comparison produced by these harnesses.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod crit;

use tc_simnet::Platform;
use tc_workloads::ChaseMode;

/// The depth axis used by the paper's depth-sweep figures (Figures 5–8).
pub const PAPER_DEPTHS: [u64; 7] = [1, 4, 16, 64, 256, 1024, 4096];

/// A figure specification: which platform, servers, modes and axis a figure
/// uses.  `repro_figures` iterates these.
#[derive(Debug, Clone)]
pub struct FigureSpec {
    /// Figure identifier, e.g. `"fig5"`.
    pub id: &'static str,
    /// Human-readable caption (matches the paper's).
    pub caption: &'static str,
    /// Platform the figure was measured on.
    pub platform: Platform,
    /// Server counts: one entry for depth sweeps, several for scaling plots.
    pub server_counts: Vec<usize>,
    /// Chase depths: several for depth sweeps, one (4096) for scaling plots.
    pub depths: Vec<u64>,
    /// Modes (series) shown in the figure.
    pub modes: Vec<ChaseMode>,
}

/// Specifications for Figures 5–12.
pub fn figure_specs() -> Vec<FigureSpec> {
    let depth_axis: Vec<u64> = PAPER_DEPTHS.to_vec();
    vec![
        FigureSpec {
            id: "fig5",
            caption: "Thor 32-Server; C/C++ (Xeon Client and BF2 Servers): DAPC depth sweep",
            platform: Platform::thor_bf2(),
            server_counts: vec![32],
            depths: depth_axis.clone(),
            modes: vec![
                ChaseMode::ActiveMessage,
                ChaseMode::Get,
                ChaseMode::CachedBitcode,
            ],
        },
        FigureSpec {
            id: "fig6",
            caption: "Ookami 64-Server; C/C++: DAPC depth sweep",
            platform: Platform::ookami(),
            server_counts: vec![64],
            depths: depth_axis.clone(),
            modes: vec![
                ChaseMode::ActiveMessage,
                ChaseMode::Get,
                ChaseMode::CachedBinary,
                ChaseMode::CachedBitcode,
            ],
        },
        FigureSpec {
            id: "fig7",
            caption: "Thor 16-Server; C/C++ (Xeon Client and Servers): DAPC depth sweep",
            platform: Platform::thor_xeon(),
            server_counts: vec![16],
            depths: depth_axis.clone(),
            modes: vec![
                ChaseMode::ActiveMessage,
                ChaseMode::Get,
                ChaseMode::CachedBitcode,
            ],
        },
        FigureSpec {
            id: "fig8",
            caption: "Thor 32-Server; Julia (Xeon Client and BF2 Servers): DAPC depth sweep",
            platform: Platform::thor_bf2(),
            server_counts: vec![32],
            depths: depth_axis,
            modes: vec![
                ChaseMode::ActiveMessage,
                ChaseMode::Get,
                ChaseMode::CachedBitcodeChainlang,
                ChaseMode::CachedBitcode,
            ],
        },
        FigureSpec {
            id: "fig9",
            caption: "Thor 4096-Chase-Depth; C/C++ (Xeon Client and BF2 Servers): scaling",
            platform: Platform::thor_bf2(),
            server_counts: vec![2, 4, 8, 16, 32],
            depths: vec![4096],
            modes: vec![
                ChaseMode::ActiveMessage,
                ChaseMode::Get,
                ChaseMode::CachedBitcode,
            ],
        },
        FigureSpec {
            id: "fig10",
            caption: "Ookami 4096-Chase-Depth; C/C++: scaling",
            platform: Platform::ookami(),
            server_counts: vec![2, 4, 8, 16, 32, 64],
            depths: vec![4096],
            modes: vec![
                ChaseMode::ActiveMessage,
                ChaseMode::Get,
                ChaseMode::CachedBinary,
                ChaseMode::CachedBitcode,
            ],
        },
        FigureSpec {
            id: "fig11",
            caption: "Thor 4096-Chase-Depth; C/C++ (Xeon Client and Servers): scaling",
            platform: Platform::thor_xeon(),
            server_counts: vec![2, 4, 8, 16],
            depths: vec![4096],
            modes: vec![
                ChaseMode::ActiveMessage,
                ChaseMode::Get,
                ChaseMode::CachedBitcode,
            ],
        },
        FigureSpec {
            id: "fig12",
            caption: "Thor 4096-Chase-Depth; Julia (Xeon Client and BF2 Servers): scaling",
            platform: Platform::thor_bf2(),
            server_counts: vec![2, 4, 8, 16, 32],
            depths: vec![4096],
            modes: vec![
                ChaseMode::ActiveMessage,
                ChaseMode::Get,
                ChaseMode::CachedBitcodeChainlang,
                ChaseMode::CachedBitcode,
            ],
        },
    ]
}

/// Table specifications (platform per TSI table pair).
pub fn table_platforms() -> Vec<(&'static str, &'static str, Platform)> {
    vec![
        ("table1", "Table I / IV — Ookami TSI", Platform::ookami()),
        (
            "table2",
            "Table II / V — Thor BF2 TSI",
            Platform::thor_bf2(),
        ),
        (
            "table3",
            "Table III / VI — Thor Xeon TSI",
            Platform::thor_xeon(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_specs_cover_figures_5_to_12() {
        let specs = figure_specs();
        assert_eq!(specs.len(), 8);
        let ids: Vec<_> = specs.iter().map(|s| s.id).collect();
        for i in 5..=12 {
            assert!(ids.contains(&format!("fig{i}").as_str()), "missing fig{i}");
        }
        // Depth sweeps use the paper's depth axis; scaling plots pin 4096.
        for s in &specs {
            if s.server_counts.len() == 1 {
                assert_eq!(s.depths, PAPER_DEPTHS.to_vec());
            } else {
                assert_eq!(s.depths, vec![4096]);
            }
        }
    }

    #[test]
    fn table_specs_cover_all_three_platforms() {
        let t = table_platforms();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].2.sweep_servers, 64);
    }
}
