//! Regenerate Figures 5–12 of the paper: DAPC/GBPC pointer-chase depth sweeps
//! and server-count scaling, on the three simulated platforms.
//!
//! Usage:
//!
//! ```text
//! cargo run -p tc-bench --release --bin repro_figures -- all
//! cargo run -p tc-bench --release --bin repro_figures -- fig5 fig9
//! cargo run -p tc-bench --release --bin repro_figures -- all --fast
//! cargo run -p tc-bench --release --bin repro_figures -- fig5 --csv
//! ```
//!
//! `--fast` shrinks the pointer table and the per-point chase count so the
//! whole set finishes in seconds; the qualitative shape (who wins, how the
//! curves move) is unchanged.  `--csv` additionally prints a CSV block per
//! figure for plotting.

use tc_bench::figure_specs;
use tc_workloads::{depth_sweep, render_figure, render_figure_csv, scaling_sweep, SweepPoint};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let csv = args.iter().any(|a| a == "--csv");
    let selected: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let want_all = selected.is_empty() || selected.iter().any(|a| a.as_str() == "all");
    let wanted = |id: &str| want_all || selected.iter().any(|a| a.as_str() == id);

    // Paper-scale runs chase a few times per point; --fast uses tiny shards
    // and fewer chases.
    let (shard_size, chases) = if fast { (128, 2) } else { (1024, 4) };

    println!("=== Three-Chains reproduction: DAPC/GBPC figures (virtual time on the calibrated model) ===");
    println!(
        "(shard_size = {shard_size} entries/server, {chases} chases per point{})\n",
        if fast { ", --fast" } else { "" }
    );

    for spec in figure_specs() {
        if !wanted(spec.id) {
            continue;
        }
        let is_scaling = spec.server_counts.len() > 1;
        let (xs, points): (Vec<u64>, Vec<SweepPoint>) = if is_scaling {
            let sweep = scaling_sweep(
                spec.platform,
                &spec.server_counts,
                shard_size,
                spec.depths[0],
                &spec.modes,
                chases,
            );
            (
                sweep.iter().map(|(s, _)| *s as u64).collect(),
                sweep.into_iter().map(|(_, p)| p).collect(),
            )
        } else {
            let points = depth_sweep(
                spec.platform,
                spec.server_counts[0],
                shard_size,
                &spec.depths,
                &spec.modes,
                chases,
            );
            (spec.depths.clone(), points)
        };
        let x_label = if is_scaling {
            "Number of Servers"
        } else {
            "Pointer Chase Depth"
        };
        println!(
            "{}",
            render_figure(
                &format!("{} — {}", spec.id.to_uppercase(), spec.caption),
                x_label,
                &xs,
                &points,
                &spec.modes
            )
        );
        if csv {
            println!("{}", render_figure_csv(&xs, &points, &spec.modes));
        }
    }
}
