//! PUT/GET round-trip latency across the three transports — the numbers
//! behind the table in EXPERIMENTS.md.
//!
//! ```text
//! cargo build -p tc-bench --release --bins
//! cargo run -p tc-bench --release --bin transport_latency
//! ```
//!
//! Sim latencies are virtual time (the calibrated fabric model); threaded
//! and socket latencies are wall-clock on this host.  The socket backend
//! pays for real syscalls and a process hop per round trip, which is the
//! point: it bounds what the in-process backends abstract away.

use std::time::Instant;
use tc_core::layout::DATA_REGION_BASE;
use tc_core::{Backend, Cluster, ClusterBuilder, Transport};

const OPS: usize = 400;
const SIZE: usize = 1024;

fn builder() -> ClusterBuilder {
    ClusterBuilder::new()
        .platform(tc_simnet::Platform::thor_xeon())
        .servers(1)
}

/// The tc-bench copy of the socket server binary, next to this executable.
fn server_bin() -> std::path::PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    let dir = exe.parent().expect("exe dir");
    for name in ["tc-socket-server-bench", "tc-socket-server"] {
        let p = dir.join(name);
        if p.is_file() {
            return p;
        }
    }
    eprintln!(
        "no socket server binary next to {} — run `cargo build -p tc-bench --release --bins` first",
        exe.display()
    );
    std::process::exit(1);
}

/// (put_confirmed µs/op, get µs/op) over `OPS` sequential round trips.
fn measure<T: Transport>(cluster: &mut Cluster<T>, virtual_time: bool) -> (f64, f64) {
    let rank = cluster.server_rank(0);
    let payload = vec![0x5Au8; SIZE];
    // Warm: code paths, buffers, server-side allocation.
    let h = cluster
        .put_confirmed(rank, DATA_REGION_BASE, payload.clone())
        .unwrap();
    cluster.wait(&h).unwrap();
    let h = cluster.get(rank, DATA_REGION_BASE, SIZE as u64).unwrap();
    cluster.wait(&h).unwrap();

    let elapsed_us = |cluster: &mut Cluster<T>, f: &mut dyn FnMut(&mut Cluster<T>)| {
        if virtual_time {
            let t0 = cluster.transport().now_nanos();
            f(cluster);
            (cluster.transport().now_nanos() - t0) as f64 / 1e3
        } else {
            let t0 = Instant::now();
            f(cluster);
            t0.elapsed().as_nanos() as f64 / 1e3
        }
    };

    let put_us = elapsed_us(cluster, &mut |c| {
        for _ in 0..OPS {
            let h = c
                .put_confirmed(rank, DATA_REGION_BASE, payload.clone())
                .unwrap();
            c.wait(&h).unwrap();
        }
    }) / OPS as f64;
    let get_us = elapsed_us(cluster, &mut |c| {
        for _ in 0..OPS {
            let h = c.get(rank, DATA_REGION_BASE, SIZE as u64).unwrap();
            c.wait(&h).unwrap();
        }
    }) / OPS as f64;
    (put_us, get_us)
}

fn main() {
    println!("{OPS} sequential {SIZE} B round trips per op, 1 server\n");
    println!("| transport | PUT (confirmed) | GET |");
    println!("|---|---|---|");

    let mut sim = builder().build_sim();
    let (p, g) = measure(&mut sim, true);
    println!("| simnet (virtual time) | {p:.2} µs | {g:.2} µs |");

    let mut threaded = builder().build(Backend::Threads);
    let (p, g) = measure(&mut threaded, false);
    println!("| threads (wall clock) | {p:.2} µs | {g:.2} µs |");
    threaded.shutdown();

    let mut socket = builder().server_bin(server_bin()).build_socket().unwrap();
    let (p, g) = measure(&mut socket, false);
    println!("| socket (wall clock, unix) | {p:.2} µs | {g:.2} µs |");
    socket.shutdown();
}
