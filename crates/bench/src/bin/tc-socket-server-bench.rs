//! The socket-backend server binary for the benchmark suite.
//!
//! Identical to the root package's `tc-socket-server`, but defined inside
//! `tc-bench` because Cargo only exposes `CARGO_BIN_EXE_<name>` to the
//! tests and benches of the package that defines the binary.

use std::process::ExitCode;
use tc_core::cluster::{serve_socket, ServerOptions};

fn main() -> ExitCode {
    let opts = match ServerOptions::from_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("tc-socket-server-bench: {msg}");
            return ExitCode::FAILURE;
        }
    };
    match serve_socket(opts, tc_workloads::am_catalog()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("tc-socket-server-bench: {msg}");
            ExitCode::FAILURE
        }
    }
}
