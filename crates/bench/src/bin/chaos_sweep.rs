//! Chaos sweep: the TSI workload under a seeded fault plan at increasing
//! drop rates, on both cluster backends, with fault statistics alongside
//! timings.  This regenerates the chaos table in `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p tc-bench --release --bin chaos_sweep
//! cargo run -p tc-bench --release --bin chaos_sweep -- --nodes
//! ```
//!
//! `--nodes` additionally prints the per-node reliability counters of every
//! sweep point.

use tc_core::Backend;
use tc_workloads::{chaos_sweep, render_chaos_nodes, render_chaos_table, ChaosSweepConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let show_nodes = args.iter().any(|a| a == "--nodes");

    let cfg = ChaosSweepConfig::default();
    let drops = [0.0, 0.01, 0.05];
    let backends = [Backend::Simnet, Backend::Threads];

    println!(
        "=== Chaos sweep: TSI x {} servers x {} sends/server, seed {} ===\n",
        cfg.servers, cfg.sends_per_server, cfg.seed
    );
    let rows = chaos_sweep(&backends, &drops, &cfg);
    println!(
        "{}",
        render_chaos_table(
            "drop rate sweep (plus drop/2 duplication, drop reordering)",
            &rows
        )
    );
    if show_nodes {
        for row in &rows {
            println!("{}", render_chaos_nodes(row));
        }
    }
    if rows.iter().any(|r| !r.exact) {
        eprintln!("FAILURE: at least one sweep point lost or duplicated a message");
        std::process::exit(1);
    }
}
