//! Regenerate Tables I–VI of the paper: the TSI overhead breakdown and the
//! TSI latency / message-rate tables for the Ookami, Thor-BF2 and Thor-Xeon
//! platforms.
//!
//! Usage:
//!
//! ```text
//! cargo run -p tc-bench --release --bin repro_tables -- all
//! cargo run -p tc-bench --release --bin repro_tables -- table3 table6
//! ```
//!
//! `tableN` for N in 1..=3 selects the overhead-breakdown tables, N in 4..=6
//! the latency/rate tables (both are produced from the same run, as in the
//! paper).

use tc_bench::table_platforms;
use tc_workloads::{render_overhead_table, render_rate_table, run_tsi};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want_all = args.is_empty() || args.iter().any(|a| a == "all");
    let wanted = |id: &str| want_all || args.iter().any(|a| a == id);

    println!(
        "=== Three-Chains reproduction: TSI tables (virtual time on the calibrated model) ===\n"
    );

    for (idx, (id, caption, platform)) in table_platforms().into_iter().enumerate() {
        let rate_id = format!("table{}", idx + 4);
        if !wanted(id) && !wanted(&rate_id) {
            continue;
        }
        let results = run_tsi(platform, 200);
        if wanted(id) {
            println!(
                "{}",
                render_overhead_table(
                    &format!("{caption} overhead breakdown ({})", platform.name),
                    &results
                )
            );
        }
        if wanted(&rate_id) {
            println!(
                "{}",
                render_rate_table(
                    &format!(
                        "Table {} — {} TSI latencies and message rates",
                        idx + 4,
                        platform.name
                    ),
                    &results
                )
            );
        }
    }
}
