//! Ablation benchmarks for the design choices called out in `DESIGN.md`:
//! caching on/off, fat-bitcode vs single-target bitcode, and the JIT
//! optimisation level.

use tc_bench::crit::{BenchmarkId, Criterion};
use tc_bench::{criterion_group, criterion_main};
use tc_bitir::{FatBitcode, TargetTriple};
use tc_core::{build_ifunc_library, ClusterSim, ToolchainOptions};
use tc_jit::{CompileOptions, OptLevel, OrcJit, SparseMemory};
use tc_simnet::Platform;
use tc_workloads::{platform_toolchain, tsi_module};

/// Caching ablation: cached (truncated-frame) sends vs. forcing the full
/// frame every time by forgetting the sender cache between sends.
fn bench_caching_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("caching_ablation");
    group.sample_size(10);

    let make_sim = || {
        let platform = Platform::thor_xeon();
        let mut sim = ClusterSim::new(platform, 1);
        let lib = build_ifunc_library(&tsi_module(), &platform_toolchain(&platform)).unwrap();
        let handle = sim.register_on_client(lib);
        let msg = sim
            .client_mut()
            .create_bitcode_message(handle, vec![1])
            .unwrap();
        sim.client_send_ifunc(&msg, 1);
        sim.run_until_idle(10_000);
        (sim, msg)
    };

    group.bench_function("cached_sends_50", |b| {
        b.iter_batched(
            make_sim,
            |(mut sim, msg)| {
                for _ in 0..50 {
                    sim.client_send_ifunc(&msg, 1);
                }
                sim.run_until_idle(100_000);
                sim.now()
            },
            tc_bench::crit::BatchSize::SmallInput,
        );
    });

    group.bench_function("uncached_full_frame_sends_50", |b| {
        b.iter_batched(
            make_sim,
            |(mut sim, msg)| {
                for _ in 0..50 {
                    // Encode the full frame manually to model caching being off.
                    let bytes = msg.frame.encode_full();
                    sim.client_mut()
                        .worker
                        .post(tc_ucx::WorkerAddr(1), tc_ucx::UcpOp::IfuncFrame { bytes });
                    sim.client_put(1, tc_core::layout::TARGET_REGION_BASE + 64, vec![0]);
                }
                sim.run_until_idle(100_000);
                sim.now()
            },
            tc_bench::crit::BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// Fat-bitcode ablation: archive construction and JIT intake cost with one,
/// two, and five target triples in the archive.
fn bench_fatbitcode_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fatbitcode_ablation");
    group.sample_size(20);
    let module = tsi_module();
    let target_sets: Vec<(&str, Vec<TargetTriple>)> = vec![
        ("1_target", vec![TargetTriple::THOR_XEON]),
        (
            "2_targets",
            vec![TargetTriple::THOR_XEON, TargetTriple::THOR_BF2],
        ),
        ("5_targets", TargetTriple::default_toolchain_targets()),
    ];
    for (name, targets) in &target_sets {
        group.bench_with_input(
            BenchmarkId::new("build_and_jit", name),
            targets,
            |b, targets| {
                b.iter(|| {
                    let fat = FatBitcode::from_module(&module, targets).unwrap();
                    let mut jit = OrcJit::new(TargetTriple::THOR_XEON, OptLevel::O2);
                    let mut mem = SparseMemory::new();
                    jit.add_fat_bitcode(&fat, &mut mem).unwrap();
                    fat.encoded_size()
                });
            },
        );
    }
    // The library build (toolchain) cost with the full default target set.
    group.bench_function("toolchain_default_targets", |b| {
        b.iter(|| build_ifunc_library(&module, &ToolchainOptions::default()).unwrap());
    });
    group.finish();
}

/// Optimisation-level ablation: compile time and code size across O0–O3.
fn bench_optlevel_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("optlevel_ablation");
    group.sample_size(30);
    let module = tc_bitir::lower_for_target(&tsi_module(), TargetTriple::OOKAMI_A64FX).unwrap();
    for opt in OptLevel::ALL {
        group.bench_with_input(
            BenchmarkId::new("compile", format!("{opt:?}")),
            &opt,
            |b, &opt| {
                b.iter(|| {
                    tc_jit::compile_module(
                        &module,
                        CompileOptions {
                            opt_level: opt,
                            verify: true,
                        },
                    )
                    .unwrap()
                    .module
                    .inst_count()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_caching_ablation,
    bench_fatbitcode_ablation,
    bench_optlevel_ablation
);
criterion_main!(benches);
