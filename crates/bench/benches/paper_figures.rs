//! Criterion benchmarks behind Figures 5–12: DAPC/GBPC pointer chases at
//! reduced scale (the full paper axes are produced by the `repro_figures`
//! binary; here each measured unit is one chase of a representative depth so
//! regressions in the simulation or the chaser pipeline show up quickly).

use tc_bench::crit::{BenchmarkId, Criterion};
use tc_bench::{criterion_group, criterion_main};
use tc_simnet::Platform;
use tc_workloads::{ChaseConfig, ChaseMode, DapcExperiment};

fn bench_depth_sweep_unit(c: &mut Criterion) {
    let mut group = c.benchmark_group("dapc_depth_sweep");
    group.sample_size(10);
    let modes = [
        ChaseMode::Get,
        ChaseMode::ActiveMessage,
        ChaseMode::CachedBitcode,
        ChaseMode::CachedBitcodeChainlang,
    ];
    for mode in modes {
        group.bench_with_input(
            BenchmarkId::new("thor_bf2_8srv_depth256", format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter_batched(
                    || {
                        let config = ChaseConfig {
                            servers: 8,
                            shard_size: 128,
                            depth: 256,
                            chases: 1,
                            seed: 1,
                        };
                        let mut exp = DapcExperiment::new(Platform::thor_bf2(), &config);
                        exp.warm_caches(mode);
                        exp
                    },
                    |mut exp| exp.measure(mode, 256, 1),
                    tc_bench::crit::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_scaling_unit(c: &mut Criterion) {
    let mut group = c.benchmark_group("dapc_scaling");
    group.sample_size(10);
    for servers in [2usize, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("ookami_depth512_cached_bitcode", servers),
            &servers,
            |b, &servers| {
                b.iter_batched(
                    || {
                        let config = ChaseConfig {
                            servers,
                            shard_size: 128,
                            depth: 512,
                            chases: 1,
                            seed: 2,
                        };
                        let mut exp = DapcExperiment::new(Platform::ookami(), &config);
                        exp.warm_caches(ChaseMode::CachedBitcode);
                        exp
                    },
                    |mut exp| exp.measure(ChaseMode::CachedBitcode, 512, 1),
                    tc_bench::crit::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_depth_sweep_unit, bench_scaling_unit);
criterion_main!(benches);
