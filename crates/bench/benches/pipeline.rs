//! Micro-benchmarks of the reproduction's own pipeline stages: frame
//! encoding, bitcode encode/decode, JIT compilation, binary object
//! build/load, and interpreter execution.  These measure real wall-clock
//! time (not virtual time) and guard against performance regressions in the
//! framework itself.

use tc_bench::crit::{BatchSize, BenchmarkId, Criterion, Throughput};
use tc_bench::{criterion_group, criterion_main};
use tc_binfmt::{load_object, LoadOptions, MapResolver};
use tc_bitir::{decode_module, encode_module, lower_for_target, FatBitcode, TargetTriple};
use tc_core::{ClusterBuilder, CodeRepr, FaultPlan, MessageFrame, RelConfig};
use tc_jit::{build_object, CompileOptions, Engine, MemoryExt, NoExternals, VecMemory};
use tc_workloads::{chaser_module, tsi_module};

fn bench_frame_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_codec");
    let fat = FatBitcode::from_module_default_targets(&tsi_module()).unwrap();
    let frame = MessageFrame::new("tsi", CodeRepr::Bitcode, vec![1], fat.encode(), vec![]);
    group.throughput(Throughput::Bytes(frame.full_size() as u64));
    group.bench_function("encode_full", |b| b.iter(|| frame.encode_full()));
    group.bench_function("encode_truncated", |b| b.iter(|| frame.encode_truncated()));
    let full = frame.encode_full();
    group.bench_function("decode_full", |b| {
        b.iter(|| MessageFrame::decode(&full).unwrap())
    });
    group.finish();
}

fn bench_bitcode_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitcode_codec");
    let module = lower_for_target(&chaser_module("chaser"), TargetTriple::THOR_BF2).unwrap();
    let bytes = encode_module(&module);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode", |b| b.iter(|| encode_module(&module)));
    group.bench_function("decode", |b| b.iter(|| decode_module(&bytes).unwrap()));
    group.finish();
}

fn bench_jit_and_binary(c: &mut Criterion) {
    let mut group = c.benchmark_group("jit_and_binary");
    let module = tsi_module();
    group.bench_function("jit_compile_tsi", |b| {
        b.iter(|| {
            tc_jit::lower_and_compile(
                &module,
                TargetTriple::OOKAMI_A64FX,
                CompileOptions::default(),
            )
            .unwrap()
        });
    });
    group.bench_function("aot_build_and_load_tsi", |b| {
        b.iter(|| {
            let obj =
                build_object(&module, TargetTriple::THOR_XEON, CompileOptions::default()).unwrap();
            let image = load_object(
                &obj,
                "x86_64-xeon-e5-sim",
                &MapResolver::new(),
                LoadOptions::default(),
            )
            .unwrap();
            tc_jit::module_from_image(&image).unwrap()
        });
    });
    group.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter");
    let compiled = tc_jit::lower_and_compile(
        &tsi_module(),
        TargetTriple::THOR_XEON,
        CompileOptions::default(),
    )
    .unwrap();
    group.bench_function("tsi_execute", |b| {
        let mut mem = VecMemory::new(0, 4096);
        mem.write_u64(2048, 0).unwrap();
        mem.write_u64(0, 3).unwrap();
        let engine = Engine::new();
        b.iter(|| {
            engine
                .run(
                    &compiled.module,
                    "main",
                    &[0, 1, 2048],
                    &[],
                    &mut mem,
                    &mut NoExternals,
                )
                .unwrap()
                .cycles
        });
    });
    group.finish();
}

/// Large-payload PUT/GET throughput over the real-concurrency (threaded)
/// backend: the end-to-end data plane — payload hand-off, wire encode,
/// channel transfer, wire decode, memory apply — measured in wall-clock time.
fn bench_data_plane(c: &mut Criterion) {
    const PUTS_PER_ITER: usize = 8;
    const GETS_PER_ITER: usize = 8;
    for size in [64 * 1024usize, 256 * 1024] {
        let mut group = c.benchmark_group("data_plane");
        group.sample_size(20);

        let mut cluster = ClusterBuilder::new()
            .platform(tc_simnet::Platform::thor_xeon())
            .servers(1)
            .build_threaded();
        let addr = tc_core::layout::DATA_REGION_BASE;
        // A shared payload view: cloning it per PUT is a refcount bump, so
        // the measurement is the data plane, not the benchmark's own memcpy.
        let payload = tc_ucx::Bytes::from(vec![0xA5u8; size]);

        // Warm the path once (pool slots, sparse-memory pages) so the timed
        // samples measure steady state rather than first-touch costs.
        cluster.put(1, addr, payload.clone()).unwrap();
        let warm = cluster.get(1, addr, size as u64).unwrap();
        cluster.wait(&warm).unwrap();

        group.throughput(Throughput::Bytes((PUTS_PER_ITER * size) as u64));
        group.bench_with_input(BenchmarkId::new("put", size), &size, |b, _| {
            b.iter(|| {
                for _ in 0..PUTS_PER_ITER {
                    cluster.put(1, addr, payload.clone()).unwrap();
                }
                // The control plane is FIFO behind the data plane, so this
                // read is a barrier: every PUT above has been applied.
                cluster.read_u64(1, addr).unwrap()
            });
        });

        cluster.write_memory(1, addr, &payload).unwrap();
        group.throughput(Throughput::Bytes((GETS_PER_ITER * size) as u64));
        group.bench_with_input(BenchmarkId::new("get", size), &size, |b, _| {
            b.iter(|| {
                // Pipelined GETs: post the window, then collect every reply —
                // throughput, not single-request latency.
                let handles: Vec<_> = (0..GETS_PER_ITER)
                    .map(|_| cluster.get(1, addr, size as u64).unwrap())
                    .collect();
                for handle in &handles {
                    let data = cluster.wait(handle).unwrap();
                    assert_eq!(data.len(), size);
                }
            });
        });
        cluster.shutdown();
        group.finish();
    }
}

/// Pipelining speedup of the async completion plane: the same 256 GETs
/// against 4 servers (round-robin) driven with a window of 1
/// (send-one-wait-one), 16, or 256 outstanding requests through
/// `CompletionSet`/`wait_any` on the threaded backend.  A window of 1
/// serialises every round trip; wider windows overlap round trips *and* let
/// all four server threads serve concurrently.  Throughput is operations
/// per second; the depth-256 row divided by the depth-1 row is the
/// pipelining speedup recorded in EXPERIMENTS.md.
fn bench_data_plane_inflight(c: &mut Criterion) {
    use tc_core::cluster::CompletionSet;
    const OPS: usize = 256;
    const SIZE: usize = 1024;
    const SERVERS: usize = 4;
    let mut group = c.benchmark_group("data_plane");
    group.sample_size(20);
    group.throughput(Throughput::Elements(OPS as u64));

    // Deep pipelines benefit from larger drain batches on both the driver
    // and the node threads (one wakeup amortised over more envelopes).
    let tuning = tc_core::ThreadTuning {
        step_batch: 512,
        node_batch: 512,
        ..tc_core::ThreadTuning::default()
    };
    let mut cluster = ClusterBuilder::new()
        .platform(tc_simnet::Platform::thor_xeon())
        .servers(SERVERS)
        .thread_tuning(tuning)
        .build_threaded();
    let addr = tc_core::layout::DATA_REGION_BASE;
    for rank in 1..=SERVERS {
        cluster
            .write_memory(rank, addr, &vec![0x5Au8; SIZE])
            .unwrap();
        // Warm the path (pool slots, pages) before timing.
        let warm = cluster.get(rank, addr, SIZE as u64).unwrap();
        cluster.wait(&warm).unwrap();
    }

    for inflight in [1usize, 16, 256] {
        group.bench_with_input(
            BenchmarkId::new("get_inflight", inflight),
            &inflight,
            |b, &inflight| {
                b.iter(|| {
                    let mut set = CompletionSet::new();
                    let mut issued = 0usize;
                    let mut done = 0usize;
                    while done < OPS {
                        // Post the window refill as one flushed burst.
                        let mut posted = false;
                        while issued < OPS && set.len() < inflight {
                            let rank = 1 + issued % SERVERS;
                            set.add_get(cluster.post_get(rank, addr, SIZE as u64));
                            issued += 1;
                            posted = true;
                        }
                        if posted {
                            cluster.flush().unwrap();
                        }
                        let (_, ready) = cluster.wait_any(&mut set).unwrap();
                        match ready {
                            tc_core::Ready::Get(data) => assert_eq!(data.len(), SIZE),
                            other => panic!("unexpected readiness {other:?}"),
                        }
                        done += 1;
                    }
                });
            },
        );
    }
    cluster.shutdown();
    group.finish();
}

/// Client-scaling of the injection plane: the same 256 GETs against 4
/// servers driven by `C ∈ {1, 2, 4, 8}` concurrent client runtimes (each
/// issuing `256 / C` operations through a window of 32, all streams merged
/// through one completion set) on the threaded backend.  Throughput is
/// *aggregate* operations per second; the `data_plane/clients/{C}` rows in
/// BENCH.json divided by the `clients/1` row give the message-rate scaling
/// curve recorded in EXPERIMENTS.md.
fn bench_data_plane_clients(c: &mut Criterion) {
    use tc_workloads::{multi_client_get_burst, Window};
    const OPS: usize = 256;
    const SIZE: usize = 1024;
    const SERVERS: usize = 4;
    let mut group = c.benchmark_group("data_plane");
    group.sample_size(20);
    group.throughput(Throughput::Elements(OPS as u64));

    for clients in [1usize, 2, 4, 8] {
        let tuning = tc_core::ThreadTuning {
            step_batch: 512,
            node_batch: 512,
            ..tc_core::ThreadTuning::default()
        };
        let mut cluster = ClusterBuilder::new()
            .platform(tc_simnet::Platform::thor_xeon())
            .clients(clients)
            .servers(SERVERS)
            .thread_tuning(tuning)
            .build_threaded();
        let addr = tc_core::layout::DATA_REGION_BASE;
        for s in 0..SERVERS {
            cluster
                .write_memory(cluster.server_rank(s), addr, &vec![0x5Au8; SIZE])
                .unwrap();
        }
        // Warm every client's path (pool slots, pages) before timing.
        multi_client_get_burst(&mut cluster, 4, addr, SIZE as u64, Window::new(4)).unwrap();

        group.threads(clients);
        group.bench_with_input(
            BenchmarkId::new("clients", clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    let done = multi_client_get_burst(
                        &mut cluster,
                        OPS / clients,
                        addr,
                        SIZE as u64,
                        Window::new(32),
                    )
                    .unwrap();
                    assert_eq!(done, OPS);
                });
            },
        );
        cluster.shutdown();
    }
    group.finish();
}

/// Multi-core execution plane: the same aggregate workload (256 GETs against
/// 4 servers, window 32 per client stream) with `C ∈ {1, 2, 4}` client
/// runtimes, each owned and pumped by its *own dedicated OS thread* inside
/// the threaded transport (`tc-client-{c}`).  This differs from
/// `data_plane/clients/{C}` above only in intent, not mechanism — the axis
/// here is the number of independently scheduled client threads the
/// execution plane runs, and every row records that count as `threads`
/// alongside the host's `cores` in BENCH.json.  On a multi-core host the
/// curve measures genuine parallel drain; on a 1-CPU container (CI) it
/// measures the scheduling overhead of the per-client-thread design, which
/// must stay within noise of the single-thread row.
fn bench_data_plane_cores(c: &mut Criterion) {
    use tc_workloads::{multi_client_get_burst, Window};
    const OPS: usize = 256;
    const SIZE: usize = 1024;
    const SERVERS: usize = 4;
    let mut group = c.benchmark_group("data_plane");
    group.sample_size(20);
    group.throughput(Throughput::Elements(OPS as u64));

    for cores in [1usize, 2, 4] {
        let tuning = tc_core::ThreadTuning {
            step_batch: 512,
            node_batch: 512,
            ..tc_core::ThreadTuning::default()
        };
        let mut cluster = ClusterBuilder::new()
            .platform(tc_simnet::Platform::thor_xeon())
            .clients(cores)
            .servers(SERVERS)
            .thread_tuning(tuning)
            .build_threaded();
        let addr = tc_core::layout::DATA_REGION_BASE;
        for s in 0..SERVERS {
            cluster
                .write_memory(cluster.server_rank(s), addr, &vec![0x5Au8; SIZE])
                .unwrap();
        }
        // Warm every client thread's path (pool slots, pages) before timing.
        multi_client_get_burst(&mut cluster, 4, addr, SIZE as u64, Window::new(4)).unwrap();

        group.threads(cores);
        group.bench_with_input(BenchmarkId::new("cores", cores), &cores, |b, &cores| {
            b.iter(|| {
                let done = multi_client_get_burst(
                    &mut cluster,
                    OPS / cores,
                    addr,
                    SIZE as u64,
                    Window::new(32),
                )
                .unwrap();
                assert_eq!(done, OPS);
            });
        });
        cluster.shutdown();
    }
    group.finish();
}

/// The same pipelined GET workload (256 GETs, window 16, 4 servers) across
/// the two real-concurrency backends: `threads` (OS threads + channels) and
/// `socket` (separate OS processes + Unix-domain sockets).  The
/// `data_plane/transport/{threaded,socket}` rows in BENCH.json put a number
/// on what crossing a process boundary costs the data plane relative to
/// crossing a channel.
fn bench_data_plane_transport(c: &mut Criterion) {
    use tc_core::cluster::{Backend, CompletionSet};
    const OPS: usize = 256;
    const SIZE: usize = 1024;
    const SERVERS: usize = 4;
    const WINDOW: usize = 16;
    let mut group = c.benchmark_group("data_plane");
    group.sample_size(10);
    group.throughput(Throughput::Elements(OPS as u64));

    for (backend, name) in [(Backend::Threads, "threaded"), (Backend::Socket, "socket")] {
        let mut builder = ClusterBuilder::new()
            .platform(tc_simnet::Platform::thor_xeon())
            .servers(SERVERS);
        if backend == Backend::Socket {
            builder = builder.server_bin(env!("CARGO_BIN_EXE_tc-socket-server-bench"));
        }
        let mut cluster = builder.build(backend);
        let addr = tc_core::layout::DATA_REGION_BASE;
        for s in 0..SERVERS {
            let rank = cluster.server_rank(s);
            cluster
                .write_memory(rank, addr, &vec![0x5Au8; SIZE])
                .unwrap();
            // Warm the path (pool slots, pages, socket buffers) before timing.
            let warm = cluster.get(rank, addr, SIZE as u64).unwrap();
            cluster.wait(&warm).unwrap();
        }

        group.bench_with_input(BenchmarkId::new("transport", name), &backend, |b, _| {
            b.iter(|| {
                let mut set = CompletionSet::new();
                let mut issued = 0usize;
                let mut done = 0usize;
                while done < OPS {
                    let mut posted = false;
                    while issued < OPS && set.len() < WINDOW {
                        let rank = cluster.server_rank(issued % SERVERS);
                        set.add_get(cluster.post_get(rank, addr, SIZE as u64));
                        issued += 1;
                        posted = true;
                    }
                    if posted {
                        cluster.flush().unwrap();
                    }
                    let (_, ready) = cluster.wait_any(&mut set).unwrap();
                    match ready {
                        tc_core::Ready::Get(data) => assert_eq!(data.len(), SIZE),
                        other => panic!("unexpected readiness {other:?}"),
                    }
                    done += 1;
                }
            });
        });
        cluster.shutdown();
    }
    group.finish();
}

/// Reliability cost under loss: the same pipelined GET workload (256 GETs,
/// window 16, 4 servers, threaded backend) under a seeded fault plan
/// dropping {0, 1, 5, 10}% of reliable-plane frames.  The `drop/0` row
/// against `transport/threaded` prices the sequencing-and-ack tax of the
/// reliability layer itself (no fault ever fires, but every frame carries a
/// header and every delivery is acked); the higher rows add the
/// retransmission stalls loss actually costs.  Two arms per rate:
///
/// * `drop/{pct}` — adaptive RTO riding a floor matched to loopback RTTs
///   (2 ms), so a drop stalls one window slot for ~milliseconds;
/// * `drop_fixed/{pct}` — the deployable fixed configuration
///   (`threads_default().fixed()`, 30 ms flat).  A fixed timeout must be
///   provisioned for worst-case scheduling delay precisely because nothing
///   adapts it, so every drop stalls 30 ms.
fn bench_data_plane_drop(c: &mut Criterion) {
    use tc_core::cluster::CompletionSet;
    const OPS: usize = 256;
    const SIZE: usize = 1024;
    const SERVERS: usize = 4;
    const WINDOW: usize = 16;
    let mut group = c.benchmark_group("data_plane");
    group.sample_size(10);
    group.throughput(Throughput::Elements(OPS as u64));

    // A loopback-scale adaptive window: 2 ms floor, 64 ms cap.  The
    // backend default (30 ms floor) is sized for loaded CI machines; under
    // a wall-clock bench it would price a drop at 30 ms flat and swamp the
    // curve.
    let adaptive = RelConfig {
        rto: 2_000_000,
        rto_max: 64_000_000,
        adaptive: true,
    };
    let fixed = RelConfig::threads_default().fixed();
    for (axis, rel) in [("drop", adaptive), ("drop_fixed", fixed)] {
        for drop_pct in [0u32, 1, 5, 10] {
            let mut cluster = ClusterBuilder::new()
                .platform(tc_simnet::Platform::thor_xeon())
                .servers(SERVERS)
                .fault_plan(
                    FaultPlan::seeded(0xD809 + u64::from(drop_pct))
                        .drop_rate(f64::from(drop_pct) / 100.0),
                )
                .rel_config(rel)
                .build_threaded();
            let addr = tc_core::layout::DATA_REGION_BASE;
            for s in 0..SERVERS {
                let rank = cluster.server_rank(s);
                cluster
                    .write_memory(rank, addr, &vec![0x5Au8; SIZE])
                    .unwrap();
                // Warm the path and feed the estimator its first samples.
                let warm = cluster.get(rank, addr, SIZE as u64).unwrap();
                cluster.wait(&warm).unwrap();
            }

            group.bench_with_input(BenchmarkId::new(axis, drop_pct), &drop_pct, |b, _| {
                b.iter(|| {
                    let mut set = CompletionSet::new();
                    let mut issued = 0usize;
                    let mut done = 0usize;
                    while done < OPS {
                        let mut posted = false;
                        while issued < OPS && set.len() < WINDOW {
                            let rank = cluster.server_rank(issued % SERVERS);
                            set.add_get(cluster.post_get(rank, addr, SIZE as u64));
                            issued += 1;
                            posted = true;
                        }
                        if posted {
                            cluster.flush().unwrap();
                        }
                        let (_, ready) = cluster.wait_any(&mut set).unwrap();
                        match ready {
                            tc_core::Ready::Get(data) => assert_eq!(data.len(), SIZE),
                            other => panic!("unexpected readiness {other:?}"),
                        }
                        done += 1;
                    }
                });
            });
            cluster.shutdown();
        }
    }
    group.finish();
}

/// Crash-recovery latency of the socket backend: SIGKILL one of two server
/// processes with a pipelined GET stream running under a 1% drop plan, and
/// time kill → workload drained through the healed link (detection, respawn,
/// re-handshake, state re-deploy, reliable-frame replay, plus every
/// loss-induced retransmission stall along the way).  Two arms:
///
/// * `adaptive` — the estimator licenses a 1 ms floor: it keeps the RTO at
///   `srtt + 4·rttvar` above the observed loopback RTT, so a dropped replay
///   or data frame re-probes in ~a millisecond.
/// * `fixed` — the backend's fixed default (30 ms).  A fixed timeout must be
///   provisioned for the worst plausible scheduling delay precisely because
///   nothing adapts it, so every drop on the critical path stalls 30 ms.
///
/// The `recovery/adaptive` vs `recovery/fixed` rows in BENCH.json are the
/// recovery-latency comparison recorded in EXPERIMENTS.md.
fn bench_recovery(c: &mut Criterion) {
    use tc_core::cluster::CompletionSet;
    const OPS: usize = 96;
    const SIZE: usize = 512;
    const SERVERS: usize = 2;
    const WINDOW: usize = 8;
    let mut group = c.benchmark_group("recovery");
    group.sample_size(5);

    let adaptive = RelConfig {
        rto: 1_000_000,
        rto_max: 480_000_000,
        adaptive: true,
    };
    let fixed = RelConfig::threads_default().fixed();
    for (name, rel) in [("adaptive", adaptive), ("fixed", fixed)] {
        // Healed clusters park here so their teardown is not timed.
        let mut graveyard = Vec::new();
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut cluster = ClusterBuilder::new()
                        .platform(tc_simnet::Platform::thor_xeon())
                        .servers(SERVERS)
                        .server_bin(env!("CARGO_BIN_EXE_tc-socket-server-bench"))
                        .fault_plan(FaultPlan::seeded(0x1EC0).drop_rate(0.01))
                        .rel_config(rel)
                        .socket_recovery()
                        .build_socket()
                        .expect("socket cluster starts");
                    let addr = tc_core::layout::DATA_REGION_BASE;
                    for s in 0..SERVERS {
                        let rank = cluster.server_rank(s);
                        cluster
                            .write_memory(rank, addr, &vec![0xE0 + s as u8; SIZE])
                            .unwrap();
                        // Warm the path; in the adaptive arm this also feeds
                        // the estimator its first RTT samples.
                        let warm = cluster.get(rank, addr, SIZE as u64).unwrap();
                        cluster.wait(&warm).unwrap();
                    }
                    cluster
                },
                |mut cluster| {
                    // SIGKILL server index 0, no goodbye, then drive the
                    // stream to completion across both ranks — the killed
                    // rank's operations queue behind the heal and replay.
                    cluster.transport_mut().kill_server(0);
                    let addr = tc_core::layout::DATA_REGION_BASE;
                    let mut set = CompletionSet::new();
                    let mut issued = 0usize;
                    let mut done = 0usize;
                    while done < OPS {
                        let mut posted = false;
                        while issued < OPS && set.len() < WINDOW {
                            let rank = cluster.server_rank(issued % SERVERS);
                            set.add_get(cluster.post_get(rank, addr, SIZE as u64));
                            issued += 1;
                            posted = true;
                        }
                        if posted {
                            cluster.flush().unwrap();
                        }
                        let (_, ready) = cluster.wait_any(&mut set).unwrap();
                        match ready {
                            tc_core::Ready::Get(data) => assert_eq!(data.len(), SIZE),
                            other => panic!("unexpected readiness {other:?}"),
                        }
                        done += 1;
                    }
                    graveyard.push(cluster);
                },
                BatchSize::PerIteration,
            );
        });
        for cluster in graveyard {
            let mut transport = cluster.shutdown();
            assert!(transport.heals() >= 1, "every sample must include a heal");
            assert_eq!(transport.live_children(), 0, "shutdown reaps everything");
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_frame_codec,
    bench_bitcode_codec,
    bench_jit_and_binary,
    bench_interpreter,
    bench_data_plane,
    bench_data_plane_inflight,
    bench_data_plane_clients,
    bench_data_plane_cores,
    bench_data_plane_transport,
    bench_data_plane_drop,
    bench_recovery
);
criterion_main!(benches);
