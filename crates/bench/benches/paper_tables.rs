//! Criterion benchmarks behind Tables I–VI: one benchmark per platform runs
//! the full TSI characterisation (AM, uncached bitcode, cached bitcode) and
//! one measures the steady-state cached-send loop in isolation.

use tc_bench::crit::{BenchmarkId, Criterion};
use tc_bench::{criterion_group, criterion_main};
use tc_simnet::Platform;
use tc_workloads::run_tsi;

// Small helper reused by the message-rate benchmark.
mod helpers {
    use tc_core::{build_ifunc_library, ClusterSim, IfuncMessage};
    use tc_simnet::Platform;
    use tc_workloads::{platform_toolchain, tsi_module};

    /// Build a simulation with the TSI ifunc already cached on server 1.
    pub fn warmed_tsi_sim(platform: Platform) -> (ClusterSim, IfuncMessage) {
        let mut sim = ClusterSim::new(platform, 1);
        let lib = build_ifunc_library(&tsi_module(), &platform_toolchain(&platform)).unwrap();
        let handle = sim.register_on_client(lib);
        let msg = sim
            .client_mut()
            .create_bitcode_message(handle, vec![1])
            .unwrap();
        sim.client_send_ifunc(&msg, 1);
        sim.run_until_idle(10_000);
        (sim, msg)
    }
}

fn bench_tsi_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsi_overhead_tables");
    group.sample_size(10);
    for (name, platform) in [
        ("ookami", Platform::ookami()),
        ("thor_bf2", Platform::thor_bf2()),
        ("thor_xeon", Platform::thor_xeon()),
    ] {
        group.bench_with_input(BenchmarkId::new("run_tsi", name), &platform, |b, p| {
            b.iter(|| run_tsi(*p, 50));
        });
    }
    group.finish();
}

fn bench_cached_send_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsi_message_rate");
    group.sample_size(10);
    for (name, platform) in [
        ("ookami", Platform::ookami()),
        ("thor_bf2", Platform::thor_bf2()),
        ("thor_xeon", Platform::thor_xeon()),
    ] {
        group.bench_with_input(
            BenchmarkId::new("cached_burst_100", name),
            &platform,
            |b, p| {
                b.iter_batched(
                    || helpers::warmed_tsi_sim(*p),
                    |(mut sim, msg)| {
                        for _ in 0..100 {
                            sim.client_send_ifunc(&msg, 1);
                        }
                        sim.run_until_idle(100_000);
                        sim.now()
                    },
                    tc_bench::crit::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tsi_tables, bench_cached_send_loop);
criterion_main!(benches);
