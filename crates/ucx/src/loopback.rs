//! An in-process, zero-latency transport driver.
//!
//! [`LoopbackNetwork`] owns a set of workers and moves posted operations to
//! their destination inboxes immediately.  It models no timing at all — the
//! discrete-event simulator in `tc-core::sim` is the timed driver — but it is
//! the simplest way to exercise the full UCP-like API and the Three-Chains
//! runtime state machines in unit tests and examples.

use crate::worker::{OutgoingMessage, Worker, WorkerAddr};

/// A set of workers with immediate, in-order delivery between them.
#[derive(Debug, Default)]
pub struct LoopbackNetwork {
    workers: Vec<Worker>,
    /// Total messages moved.
    pub messages_moved: u64,
}

impl LoopbackNetwork {
    /// Create a network of `n` workers with ranks `0..n`.
    pub fn new(n: usize) -> Self {
        LoopbackNetwork {
            workers: (0..n).map(|i| Worker::new(WorkerAddr(i as u32))).collect(),
            messages_moved: 0,
        }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when the network has no workers.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Access a worker by rank.
    pub fn worker(&self, addr: WorkerAddr) -> &Worker {
        &self.workers[addr.index()]
    }

    /// Mutable access to a worker by rank.
    pub fn worker_mut(&mut self, addr: WorkerAddr) -> &mut Worker {
        &mut self.workers[addr.index()]
    }

    /// Move every posted operation from every outbox to the destination
    /// inbox.  Returns the number of messages moved.  Messages destined for
    /// unknown ranks are dropped (counted in the return value anyway so tests
    /// can detect misaddressing via worker stats).
    pub fn route_all(&mut self) -> usize {
        let mut in_flight: Vec<OutgoingMessage> = Vec::new();
        for w in &mut self.workers {
            in_flight.extend(w.take_outgoing());
        }
        let moved = in_flight.len();
        for msg in in_flight {
            let idx = msg.dst.index();
            if idx < self.workers.len() {
                self.workers[idx].deliver(msg);
            }
        }
        self.messages_moved += moved as u64;
        moved
    }

    /// Repeatedly route until no worker has pending outgoing messages or
    /// `max_rounds` is reached (protects against ping-pong livelock in
    /// misbehaving tests).  Returns the number of routing rounds executed.
    pub fn route_until_quiescent(&mut self, max_rounds: usize) -> usize {
        for round in 0..max_rounds {
            if self.route_all() == 0 {
                return round;
            }
        }
        max_rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::Bytes;
    use crate::worker::{AmHandlerId, UcpOp, WorkerEvent};

    #[test]
    fn routes_messages_between_workers() {
        let mut net = LoopbackNetwork::new(3);
        let ep = net.worker(WorkerAddr(0)).endpoint(WorkerAddr(2));
        let (dst, op) = ep.am(AmHandlerId(0), vec![9]);
        net.worker_mut(WorkerAddr(0)).post(dst, op);

        assert_eq!(net.route_all(), 1);
        let events = net.worker_mut(WorkerAddr(2)).progress(16);
        assert!(matches!(events[0], WorkerEvent::AmReceived { .. }));
        assert_eq!(net.messages_moved, 1);
    }

    #[test]
    fn unknown_destination_is_dropped_not_panicking() {
        let mut net = LoopbackNetwork::new(2);
        net.worker_mut(WorkerAddr(0)).post(
            WorkerAddr(7),
            UcpOp::Put {
                remote_addr: 0,
                data: Bytes::new(),
            },
        );
        assert_eq!(net.route_all(), 1);
        assert_eq!(net.worker(WorkerAddr(1)).pending_inbox(), 0);
    }

    #[test]
    fn quiescence_detection() {
        let mut net = LoopbackNetwork::new(2);
        net.worker_mut(WorkerAddr(0)).post(
            WorkerAddr(1),
            UcpOp::Put {
                remote_addr: 4,
                data: vec![1].into(),
            },
        );
        let rounds = net.route_until_quiescent(10);
        assert_eq!(rounds, 1);
        assert_eq!(net.route_until_quiescent(10), 0);
    }
}
