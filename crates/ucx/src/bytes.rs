//! Shared, cheaply-cloneable payload buffers and a recycling buffer pool.
//!
//! Every hop of the data plane used to own its payload as a `Vec<u8>`,
//! so a PUT travelling client → wire → node memory was reallocated and
//! memcpy'd several times.  [`Bytes`] replaces those owned vectors with a
//! reference-counted slice view: cloning is a refcount bump, and
//! [`Bytes::slice`] produces sub-views of the same allocation — the receive
//! path can hand the payload of a decoded wire envelope straight to the
//! runtime without copying a byte.
//!
//! [`BufPool`] complements it on the *send* side: encode scratch buffers are
//! `Arc<[u8]>` allocations the pool keeps a reference to.  While a message is
//! in flight the pool's slot is shared (refcount ≥ 2) and untouchable; once
//! the last `Bytes` view drops, the slot becomes unique again and the next
//! [`BufPool::acquire`] reuses it in place — steady-state sends allocate
//! nothing.  The pool counts allocations vs. reuses, which doubles as the
//! copy/allocation instrumentation the wire-parity tests assert on.

use std::cell::RefCell;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply-cloneable, immutable view into reference-counted bytes.
///
/// `Bytes` dereferences to `[u8]`, compares by content, and clones by
/// refcount.  Sub-views created with [`Bytes::slice`] / [`Bytes::split_to`]
/// share the backing allocation with their parent (checkable through
/// [`Bytes::shares_storage`]).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            len: 0,
        }
    }

    /// Copy a slice into a fresh allocation.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: Arc::from(src),
            start: 0,
            len: src.len(),
        }
    }

    /// Wrap an existing shared allocation whole.
    pub fn from_arc(data: Arc<[u8]>) -> Self {
        let len = data.len();
        Bytes {
            data,
            start: 0,
            len,
        }
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }

    /// A sub-view of this view (zero-copy; shares the backing allocation).
    ///
    /// # Panics
    /// Panics when the range is out of bounds, mirroring slice indexing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            begin <= end && end <= self.len,
            "Bytes::slice range {begin}..{end} out of bounds for length {}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            len: end - begin,
        }
    }

    /// Split off and return the first `at` bytes, leaving the rest in `self`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        self.len -= at;
        head
    }

    /// Split off and return the bytes from `at` onward, keeping the first
    /// `at` bytes in `self`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        let tail = self.slice(at..);
        self.len = at;
        tail
    }

    /// True when both views are backed by the same allocation — the
    /// zero-copy property tests' witness that no bytes were copied.
    pub fn shares_storage(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Copy the viewed bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} B)", self.len)?;
        if self.len <= 16 {
            write!(f, " {:02x?}", self.as_slice())?;
        }
        Ok(())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(a: [u8; N]) -> Self {
        Bytes::copy_from_slice(&a)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

/// Allocation/reuse counters of a [`BufPool`] — the "copy-counting" hooks the
/// zero-copy tests assert on.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers newly allocated because no free slot was large enough.
    pub allocated: u64,
    /// Buffers recycled from a previously released slot.
    pub reused: u64,
    /// Total bytes handed out across all acquires.
    pub bytes_acquired: u64,
}

/// A recycling pool of `Arc<[u8]>` encode-scratch buffers.
///
/// The pool retains a reference to every buffer it has handed out.  A slot
/// whose refcount has dropped back to one (every [`Bytes`] view of it is
/// gone) is writable again and gets reused by the next [`BufPool::acquire`]
/// that fits, so the steady-state send path performs **zero allocations**:
/// the same few buffers rotate through the fabric.
#[derive(Debug, Default)]
pub struct BufPool {
    slots: Vec<Arc<[u8]>>,
    max_slots: usize,
    /// Allocation/reuse counters.
    pub stats: PoolStats,
}

/// Smallest buffer the pool allocates; tiny envelopes share slots.
const MIN_BUF: usize = 256;
/// Default cap on retained slots (beyond it, freed buffers are dropped).
const DEFAULT_MAX_SLOTS: usize = 64;

impl BufPool {
    /// A pool retaining up to the default number of slots.
    pub fn new() -> Self {
        Self::with_max_slots(DEFAULT_MAX_SLOTS)
    }

    /// A pool retaining up to `max_slots` buffers.
    pub fn with_max_slots(max_slots: usize) -> Self {
        BufPool {
            slots: Vec::new(),
            max_slots,
            stats: PoolStats::default(),
        }
    }

    /// Number of slots currently retained (free or in flight).
    pub fn retained(&self) -> usize {
        self.slots.len()
    }

    /// Acquire a writable buffer of capacity at least `len`.  Call
    /// [`PoolWriter::freeze`] to turn the written prefix into a [`Bytes`] and
    /// return the slot to the pool for reuse once all views drop.
    pub fn acquire(&mut self, len: usize) -> PoolWriter {
        self.stats.bytes_acquired += len as u64;
        // A retained slot is free exactly when the pool holds the only
        // reference; `get_mut` is the authoritative uniqueness check.
        let free = self
            .slots
            .iter_mut()
            .position(|s| s.len() >= len && Arc::get_mut(s).is_some());
        let buf = match free {
            Some(i) => {
                self.stats.reused += 1;
                self.slots.swap_remove(i)
            }
            None => {
                self.stats.allocated += 1;
                let cap = len.next_power_of_two().max(MIN_BUF);
                Arc::from(vec![0u8; cap])
            }
        };
        PoolWriter { buf, len: 0 }
    }
}

/// A writable pool buffer with an append cursor.  Produced by
/// [`BufPool::acquire`]; consumed by [`PoolWriter::freeze`].
#[derive(Debug)]
pub struct PoolWriter {
    buf: Arc<[u8]>,
    len: usize,
}

impl PoolWriter {
    /// Bytes written so far.
    pub fn written(&self) -> usize {
        self.len
    }

    fn buf_mut(&mut self) -> &mut [u8] {
        Arc::get_mut(&mut self.buf).expect("pool writer buffer is uniquely owned")
    }

    /// Append a slice.
    pub fn put_slice(&mut self, src: &[u8]) {
        let at = self.len;
        self.buf_mut()[at..at + src.len()].copy_from_slice(src);
        self.len += src.len();
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian u16.
    pub fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    pub fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Direct access to `n` writable bytes starting at the cursor; the
    /// cursor advances by `n`.  For callers that fill the region themselves
    /// (e.g. a memory read straight into the wire buffer).
    pub fn reserve(&mut self, n: usize) -> &mut [u8] {
        let at = self.len;
        self.len += n;
        &mut self.buf_mut()[at..at + n]
    }

    /// Freeze the written prefix into an immutable [`Bytes`] view and hand
    /// the slot back to `pool` for reuse after all views drop.
    pub fn freeze(self, pool: &mut BufPool) -> Bytes {
        let PoolWriter { buf, len } = self;
        if pool.slots.len() < pool.max_slots {
            pool.slots.push(Arc::clone(&buf));
        }
        Bytes {
            data: buf,
            start: 0,
            len,
        }
    }

    /// Freeze without returning the slot to any pool (one-off buffers).
    pub fn freeze_detached(self) -> Bytes {
        Bytes {
            data: self.buf,
            start: 0,
            len: self.len,
        }
    }
}

thread_local! {
    static TLS_POOL: RefCell<BufPool> = RefCell::new(BufPool::new());
}

/// Run `f` with this thread's encode pool.  The wire codecs use this so hot
/// send paths need no pool plumbing; each transport thread recycles its own
/// buffers.
pub fn with_pool<R>(f: impl FnOnce(&mut BufPool) -> R) -> R {
    TLS_POOL.with(|p| f(&mut p.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_storage_and_preserve_content() {
        let b = Bytes::from((0u8..64).collect::<Vec<u8>>());
        let mid = b.slice(16..48);
        assert_eq!(mid.len(), 32);
        assert_eq!(mid[0], 16);
        assert!(mid.shares_storage(&b));

        let sub = mid.slice(4..8);
        assert_eq!(sub, [20, 21, 22, 23]);
        assert!(sub.shares_storage(&b));

        let mut rest = b.clone();
        let head = rest.split_to(10);
        assert_eq!(head.len(), 10);
        assert_eq!(rest.len(), 54);
        assert_eq!(rest[0], 10);
        assert!(head.shares_storage(&rest));

        let tail = rest.split_off(50);
        assert_eq!(tail, [60, 61, 62, 63]);
        assert_eq!(rest.len(), 50);
    }

    /// Seeded property test (no external crates): arbitrary chains of
    /// slice/split operations must agree with the same operations on a plain
    /// `Vec` model, and every derived view must alias the root allocation.
    #[test]
    fn random_slice_chains_match_vec_model_and_alias_storage() {
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            // SplitMix64, same generator family as tc_simnet's.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..64 {
            let len = (next() % 512 + 1) as usize;
            let model: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let root = Bytes::from(model.clone());
            let mut view = root.clone();
            let mut window = 0..model.len();
            for _ in 0..16 {
                match next() % 3 {
                    0 => {
                        let a = (next() as usize) % (view.len() + 1);
                        let b = a + (next() as usize) % (view.len() - a + 1);
                        view = view.slice(a..b);
                        window = window.start + a..window.start + b;
                    }
                    1 => {
                        let at = (next() as usize) % (view.len() + 1);
                        let head = view.split_to(at);
                        assert_eq!(head, model[window.start..window.start + at]);
                        assert!(head.shares_storage(&root));
                        window.start += at;
                    }
                    _ => {
                        let at = (next() as usize) % (view.len() + 1);
                        let tail = view.split_off(at);
                        assert_eq!(tail, model[window.start + at..window.end]);
                        assert!(tail.shares_storage(&root));
                        window.end = window.start + at;
                    }
                }
                assert_eq!(view, model[window.clone()], "window {window:?}");
                assert!(view.shares_storage(&root), "views must not reallocate");
                assert_eq!(view.to_vec(), model[window.clone()].to_vec());
            }
        }
    }

    #[test]
    fn equality_is_by_content_not_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert!(!a.shares_storage(&b));
        assert_eq!(a, b);
        assert_eq!(a, vec![1, 2, 3]);
        assert_eq!(a, [1u8, 2, 3]);
        assert_eq!(a.slice(1..), [2u8, 3]);
    }

    #[test]
    fn pool_reuses_buffer_after_views_drop() {
        let mut pool = BufPool::new();
        let mut w = pool.acquire(100);
        w.put_slice(&[7; 100]);
        let bytes = w.freeze(&mut pool);
        assert_eq!(pool.stats.allocated, 1);
        assert_eq!(pool.retained(), 1);

        // In flight: the slot is shared, a second acquire must allocate.
        let w2 = pool.acquire(100);
        assert_eq!(pool.stats.allocated, 2);
        let bytes2 = w2.freeze(&mut pool);

        drop(bytes);
        drop(bytes2);
        // Both slots free again: the next two acquires allocate nothing.
        let w3 = pool.acquire(64).freeze(&mut pool);
        let w4 = pool.acquire(128).freeze(&mut pool);
        assert_eq!(pool.stats.allocated, 2);
        assert_eq!(pool.stats.reused, 2);
        drop((w3, w4));
    }

    #[test]
    fn pool_respects_slot_cap_and_min_size() {
        let mut pool = BufPool::with_max_slots(1);
        let a = pool.acquire(10).freeze(&mut pool);
        let b = pool.acquire(10).freeze(&mut pool);
        assert_eq!(pool.retained(), 1, "cap of one slot");
        drop((a, b));
        let w = pool.acquire(1);
        assert!(w.buf.len() >= MIN_BUF);
        drop(w);
    }

    #[test]
    fn writer_cursor_and_reserve() {
        let mut pool = BufPool::new();
        let mut w = pool.acquire(32);
        w.put_u8(0xAB);
        w.put_u16_le(0x1234);
        w.put_u32_le(0xDEADBEEF);
        w.put_u64_le(42);
        w.reserve(2).copy_from_slice(&[9, 9]);
        assert_eq!(w.written(), 17);
        let b = w.freeze(&mut pool);
        assert_eq!(b.len(), 17);
        assert_eq!(b[0], 0xAB);
        assert_eq!(u16::from_le_bytes(b[1..3].try_into().unwrap()), 0x1234);
        assert_eq!(&b[15..], &[9, 9]);
    }

    #[test]
    fn freeze_detached_keeps_buffer_out_of_pool() {
        let mut pool = BufPool::new();
        let b = pool.acquire(8).freeze_detached();
        assert_eq!(pool.retained(), 0);
        drop(b);
        assert_eq!(pool.stats.allocated, 1);
    }
}
