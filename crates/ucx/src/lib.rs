//! # tc-ucx — a UCP-like communication layer for the Three-Chains reproduction
//!
//! The paper builds Three-Chains as an extension of UCX's UCP interface; its
//! operations of record are RDMA PUT (carrying ifunc message frames), RDMA
//! GET (the pointer-chase baseline) and active messages (the predeployed
//! baseline).  This crate reproduces that object model in simulation:
//!
//! * [`worker::Worker`] / [`worker::Endpoint`] — the per-process
//!   communication objects, with post / take-outgoing / deliver / progress
//!   phases so any transport driver (discrete-event simulator, threaded
//!   cluster, loopback) can carry the messages;
//! * [`worker::UcpOp`] / [`worker::WorkerEvent`] — the operation and
//!   completion-event vocabulary;
//! * [`loopback::LoopbackNetwork`] — an immediate-delivery driver for unit
//!   tests and examples.
//!
//! Timing is deliberately absent from this crate: the fabric model in
//! `tc-simnet` decides *when* a posted operation arrives; this crate decides
//! *what* arriving means.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bytes;
pub mod loopback;
pub mod worker;

pub use bytes::{BufPool, Bytes, PoolStats, PoolWriter};
pub use loopback::LoopbackNetwork;
pub use worker::{
    AmHandlerId, Endpoint, OutgoingMessage, RequestId, UcpOp, Worker, WorkerAddr, WorkerEvent,
    WorkerStats,
};
