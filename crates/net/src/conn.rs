//! Non-blocking connections and listeners over TCP or Unix-domain streams.
//!
//! A [`Connection`] owns one stream plus its read decoder and write queue.
//! The cluster layer drives it with `pump_read` / `pump_write` from a poll
//! loop; neither ever blocks.  Outgoing frames keep their header, data and
//! payload as separate segments so `pump_write` can hand them to
//! `write_vectored` without flattening — the payload of a scatter-gather op
//! crosses the socket straight from the refcounted buffer.

use crate::frame::{Frame, FrameDecoder, FRAME_OVERHEAD};
use crate::{NetError, Result, SocketSpec};
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Read chunk size for one `read` call.
const READ_CHUNK: usize = 64 * 1024;

/// How many queued frames one `write_vectored` call may cover.
const WRITE_BATCH_FRAMES: usize = 16;

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(on),
            Stream::Unix(s) => s.set_nonblocking(on),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write_vectored(bufs),
            Stream::Unix(s) => s.write_vectored(bufs),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

struct QueuedFrame {
    header: [u8; FRAME_OVERHEAD],
    frame: Frame,
}

impl QueuedFrame {
    fn len(&self) -> usize {
        FRAME_OVERHEAD + self.frame.data.len() + self.frame.payload.len()
    }

    /// The frame's byte at stream offset `off`, as (segment, offset) pairs
    /// for vectored writes.
    fn slices<'a>(&'a self, skip: usize, out: &mut Vec<IoSlice<'a>>) {
        let mut off = skip;
        for seg in [
            &self.header[..],
            self.frame.data.as_slice(),
            self.frame.payload.as_slice(),
        ] {
            if off >= seg.len() {
                off -= seg.len();
                continue;
            }
            out.push(IoSlice::new(&seg[off..]));
            off = 0;
        }
    }
}

/// One non-blocking stream with framing on both directions.
pub struct Connection {
    stream: Stream,
    decoder: FrameDecoder,
    outq: std::collections::VecDeque<QueuedFrame>,
    /// Bytes of the queue head already written.
    out_offset: usize,
    scratch: Vec<u8>,
}

impl Connection {
    fn from_stream(stream: Stream) -> Result<Connection> {
        stream.set_nonblocking(true)?;
        Ok(Connection {
            stream,
            decoder: FrameDecoder::new(),
            outq: std::collections::VecDeque::new(),
            out_offset: 0,
            scratch: vec![0u8; READ_CHUNK],
        })
    }

    /// Connect (blocking) to `spec`, then switch the stream non-blocking.
    pub fn connect(spec: &SocketSpec) -> Result<Connection> {
        let stream = match spec {
            SocketSpec::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                s.set_nodelay(true)?;
                Stream::Tcp(s)
            }
            SocketSpec::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
        };
        Connection::from_stream(stream)
    }

    /// Like [`connect`](Connection::connect) but retrying refused/absent
    /// endpoints until `deadline` — for server processes racing the
    /// driver's listener.
    pub fn connect_with_retry(spec: &SocketSpec, timeout: Duration) -> Result<Connection> {
        let deadline = Instant::now() + timeout;
        loop {
            match Connection::connect(spec) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }

    /// Queue a frame for sending.  No I/O happens here.
    pub fn queue(&mut self, frame: Frame) {
        self.outq.push_back(QueuedFrame {
            header: frame.header(),
            frame,
        });
    }

    /// Queued frames not yet fully written.
    pub fn pending_writes(&self) -> usize {
        self.outq.len()
    }

    /// Push queued frames into the socket until it would block or the queue
    /// drains.  Returns true when any bytes were written.
    pub fn pump_write(&mut self) -> Result<bool> {
        let mut wrote = false;
        while !self.outq.is_empty() {
            let mut slices: Vec<IoSlice<'_>> = Vec::new();
            for (i, qf) in self.outq.iter().take(WRITE_BATCH_FRAMES).enumerate() {
                qf.slices(if i == 0 { self.out_offset } else { 0 }, &mut slices);
            }
            let n = match self.stream.write_vectored(&slices) {
                Ok(0) => {
                    return Err(NetError::PeerClosed {
                        mid_frame: self.out_offset > 0,
                        wanted: 0,
                        got: 0,
                    })
                }
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            };
            wrote = true;
            self.out_offset += n;
            while let Some(front) = self.outq.front() {
                let flen = front.len();
                if self.out_offset >= flen {
                    self.out_offset -= flen;
                    self.outq.pop_front();
                } else {
                    break;
                }
            }
        }
        Ok(wrote)
    }

    /// Read everything available, appending decoded frames to `out`.
    ///
    /// A clean peer close on a frame boundary returns
    /// `PeerClosed { mid_frame: false, .. }`; a close inside a frame reports
    /// how many bytes the frame still `wanted`.
    pub fn pump_read(&mut self, out: &mut Vec<Frame>) -> Result<()> {
        loop {
            match self.stream.read(&mut self.scratch) {
                Ok(0) => {
                    let wanted = self.decoder.wanted();
                    return Err(NetError::PeerClosed {
                        mid_frame: self.decoder.mid_frame(),
                        wanted,
                        got: self.decoder.pending(),
                    });
                }
                Ok(n) => {
                    let chunk = {
                        let (filled, _) = self.scratch.split_at(n);
                        filled.to_vec()
                    };
                    self.decoder.extend(&chunk);
                    while let Some(f) = self.decoder.next_frame()? {
                        out.push(f);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }
}

enum ListenerInner {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

/// A non-blocking accept socket over either address family.
pub struct Listener {
    inner: ListenerInner,
}

impl Listener {
    /// Bind `spec` and start listening.  A TCP port of 0 resolves to an
    /// ephemeral port — read the effective address back with
    /// [`local_spec`](Listener::local_spec).
    pub fn bind(spec: &SocketSpec) -> Result<Listener> {
        let inner = match spec {
            SocketSpec::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                ListenerInner::Tcp(l)
            }
            SocketSpec::Unix(path) => {
                // A stale socket file from a crashed run would make bind fail.
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                ListenerInner::Unix(l, path.clone())
            }
        };
        Ok(Listener { inner })
    }

    /// The bound address in `SocketSpec` form (with TCP port resolved).
    pub fn local_spec(&self) -> Result<SocketSpec> {
        match &self.inner {
            ListenerInner::Tcp(l) => {
                let addr = l.local_addr()?;
                Ok(SocketSpec::Tcp(addr.to_string()))
            }
            ListenerInner::Unix(_, path) => Ok(SocketSpec::Unix(path.clone())),
        }
    }

    /// Accept one pending connection, if any.
    pub fn accept(&self) -> Result<Option<Connection>> {
        match &self.inner {
            ListenerInner::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nodelay(true)?;
                    Ok(Some(Connection::from_stream(Stream::Tcp(s))?))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e.into()),
            },
            ListenerInner::Unix(l, _) => match l.accept() {
                Ok((s, _)) => Ok(Some(Connection::from_stream(Stream::Unix(s))?)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e.into()),
            },
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let ListenerInner::Unix(_, path) = &self.inner {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pump_until<R>(
        mut f: impl FnMut() -> Result<Option<R>>,
        what: &str,
        timeout: Duration,
    ) -> Result<R> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(r) = f()? {
                return Ok(r);
            }
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn unix_pair(tag: &str) -> (Connection, Connection) {
        let path =
            std::env::temp_dir().join(format!("tc-net-test-{}-{tag}.sock", std::process::id()));
        let listener = Listener::bind(&SocketSpec::Unix(path.clone())).unwrap();
        let client = Connection::connect(&SocketSpec::Unix(path)).unwrap();
        let server = pump_until(|| listener.accept(), "accept", Duration::from_secs(5)).unwrap();
        (client, server)
    }

    #[test]
    fn frames_cross_a_unix_socket_pair() {
        let (mut client, mut server) = unix_pair("pair");
        client.queue(Frame::new(0, 1, 7, vec![1, 2, 3]));
        client.queue(Frame::with_payload(0, 1, 9, vec![5; 25], vec![0xAB; 2048]));
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.len() < 2 {
            client.pump_write().unwrap();
            server.pump_read(&mut got).unwrap();
            assert!(Instant::now() < deadline, "frames never arrived");
        }
        assert_eq!(got[0].tag, 7);
        assert_eq!(got[0].data.as_slice(), &[1, 2, 3]);
        assert_eq!(got[1].payload.len(), 2048);
        assert!(got[1].payload.as_slice().iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn tcp_ephemeral_port_resolves() {
        let listener = Listener::bind(&SocketSpec::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
        let spec = listener.local_spec().unwrap();
        match &spec {
            SocketSpec::Tcp(addr) => assert!(!addr.ends_with(":0"), "port must resolve: {addr}"),
            other => panic!("expected tcp spec, got {other:?}"),
        }
        let mut client = Connection::connect(&spec).unwrap();
        let mut server =
            pump_until(|| listener.accept(), "accept", Duration::from_secs(5)).unwrap();
        client.queue(Frame::new(3, 4, 11, vec![9]));
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.is_empty() {
            client.pump_write().unwrap();
            server.pump_read(&mut got).unwrap();
            assert!(Instant::now() < deadline, "frame never arrived");
        }
        assert_eq!(got[0].from, 3);
        assert_eq!(got[0].data.as_slice(), &[9]);
    }

    #[test]
    fn dropped_peer_surfaces_clean_or_mid_frame_close() {
        let (mut client, mut server) = unix_pair("close");
        // Write a deliberately truncated frame, then hang up.
        let frame = Frame::new(0, 1, 7, vec![1u8; 64]);
        let wire = frame.encode();
        {
            use std::io::Write as _;
            match &mut client.stream {
                Stream::Unix(s) => s.write_all(&wire[..wire.len() - 10]).unwrap(),
                _ => unreachable!(),
            }
        }
        drop(client);
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        let err = loop {
            match server.pump_read(&mut got) {
                Ok(()) => {
                    assert!(Instant::now() < deadline, "close never surfaced");
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => break e,
            }
        };
        match err {
            NetError::PeerClosed {
                mid_frame: true,
                wanted,
                got: have,
            } => {
                assert_eq!(wanted, 10);
                assert_eq!(have, wire.len() - 10);
            }
            other => panic!("expected mid-frame PeerClosed, got {other:?}"),
        }
        assert!(got.is_empty());
    }
}
