//! Server-process lifecycle: spawn ranks as child processes and guarantee
//! they never outlive the driver.

use crate::{NetError, Result, SocketSpec};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A spawned server process that is killed (and reaped) on drop, so a
/// panicking driver or failed test never leaves orphans behind.
#[derive(Debug)]
pub struct ChildGuard {
    child: Option<Child>,
    rank: u32,
}

impl ChildGuard {
    /// The cluster rank this process serves.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// OS process id, if the child is still owned.
    pub fn id(&self) -> Option<u32> {
        self.child.as_ref().map(Child::id)
    }

    /// Kill the process immediately (idempotent) and reap it.
    pub fn kill(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Wait for a voluntary exit up to `timeout`; kill on expiry.  Returns
    /// true when the child exited on its own.
    pub fn wait_timeout(&mut self, timeout: Duration) -> bool {
        let Some(child) = self.child.as_mut() else {
            return true;
        };
        let deadline = Instant::now() + timeout;
        loop {
            match child.try_wait() {
                Ok(Some(_)) => {
                    self.child = None;
                    return true;
                }
                Ok(None) => {
                    if Instant::now() >= deadline {
                        self.kill();
                        return false;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => {
                    self.kill();
                    return false;
                }
            }
        }
    }

    /// True while the process has neither exited nor been reaped.
    pub fn alive(&mut self) -> bool {
        match self.child.as_mut() {
            None => false,
            Some(child) => match child.try_wait() {
                Ok(Some(_)) => {
                    self.child = None;
                    false
                }
                Ok(None) => true,
                Err(_) => false,
            },
        }
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Launch one server rank: `bin --connect <spec> --rank <rank>`.
///
/// stdout/stderr stay inherited so a crashing server's panic message lands
/// in the driver's output; stdin is closed.
pub fn spawn_server(bin: &Path, connect: &SocketSpec, rank: u32) -> Result<ChildGuard> {
    let child = Command::new(bin)
        .arg("--connect")
        .arg(connect.to_string())
        .arg("--rank")
        .arg(rank.to_string())
        .stdin(Stdio::null())
        .spawn()
        .map_err(|e| NetError::Io(format!("spawning server {}: {e}", bin.display())))?;
    Ok(ChildGuard {
        child: Some(child),
        rank,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn child_guard_kills_on_drop() {
        let child = Command::new("sleep")
            .arg("30")
            .stdin(Stdio::null())
            .spawn()
            .unwrap();
        let pid = child.id();
        let mut guard = ChildGuard {
            child: Some(child),
            rank: 1,
        };
        assert!(guard.alive());
        drop(guard);
        // The pid must be gone (kill(pid, 0) via /proc avoids libc deps).
        assert!(
            !PathBuf::from(format!("/proc/{pid}/cmdline")).exists()
                || std::fs::read(format!("/proc/{pid}/stat"))
                    .map(|s| String::from_utf8_lossy(&s).contains(") Z "))
                    .unwrap_or(true),
            "child {pid} survived its guard"
        );
    }

    #[test]
    fn wait_timeout_reaps_voluntary_exit() {
        let child = Command::new("true").stdin(Stdio::null()).spawn().unwrap();
        let mut guard = ChildGuard {
            child: Some(child),
            rank: 0,
        };
        assert!(guard.wait_timeout(Duration::from_secs(5)));
        assert!(!guard.alive());
    }

    #[test]
    fn spawning_a_missing_binary_is_a_typed_error() {
        let err = spawn_server(
            Path::new("/nonexistent/tc-server"),
            &SocketSpec::Tcp("127.0.0.1:1".into()),
            3,
        )
        .unwrap_err();
        assert!(matches!(err, NetError::Io(_)));
    }
}
