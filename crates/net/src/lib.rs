//! # tc-net — the cross-process socket plane
//!
//! Everything the socket transport backend needs below the cluster layer:
//!
//! * [`SocketSpec`] — TCP / Unix-domain endpoint addresses with a stable
//!   textual form (`tcp:host:port`, `unix:/path`);
//! * [`Frame`] / [`FrameDecoder`] — length-prefixed stream framing for the
//!   cluster wire protocol, with hard bounds so a corrupted length header
//!   can never OOM the receiver;
//! * [`Connection`] — one non-blocking stream with per-connection read and
//!   write buffers; sends use vectored I/O over refcounted [`Bytes`]
//!   segments, so a large payload crosses the socket without an extra copy
//!   on the send side;
//! * [`Listener`] — non-blocking accept over either address family;
//! * [`ChildGuard`] / [`spawn_server`] — server-process lifecycle with
//!   kill-on-drop, so a panicking driver never leaks children.
//!
//! The crate is deliberately policy-free: it knows nothing about ranks,
//! reliability or chaos.  `tc-core`'s `SocketTransport` supplies all of
//! that on top.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod conn;
mod frame;
mod spawn;

pub use conn::{Connection, Listener};
pub use frame::{Frame, FrameDecoder, FRAME_OVERHEAD, MAX_FRAME_BYTES};
pub use spawn::{spawn_server, ChildGuard};

use std::fmt;
use std::path::PathBuf;

/// Errors of the socket plane.  The cluster layer maps these onto its own
/// typed error space (`PeerDisconnected`, `ShortRead`, `Transport`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// An OS-level I/O failure (refused connection, reset, …).
    Io(String),
    /// The peer closed the stream.  `mid_frame` distinguishes a clean
    /// close on a frame boundary from a truncated frame: `wanted` is how
    /// many bytes the current frame still needed, `got` how many of it had
    /// arrived.
    PeerClosed {
        /// True when the stream ended inside a frame.
        mid_frame: bool,
        /// Bytes the in-progress frame still needed (0 on a clean close).
        wanted: usize,
        /// Bytes of the in-progress frame that had arrived.
        got: usize,
    },
    /// A length prefix announced a frame larger than [`MAX_FRAME_BYTES`].
    /// Raised *before* any buffer of that size is allocated.
    FrameTooLarge {
        /// The announced frame length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The frame violated its own framing invariants (inner lengths
    /// inconsistent with the prefix).
    Malformed(String),
    /// An endpoint address string could not be parsed.
    Addr(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(msg) => write!(f, "socket I/O error: {msg}"),
            NetError::PeerClosed {
                mid_frame: false, ..
            } => {
                write!(f, "peer closed the connection")
            }
            NetError::PeerClosed {
                mid_frame: true,
                wanted,
                got,
            } => write!(
                f,
                "peer closed mid-frame: frame needed {wanted} more bytes after {got}"
            ),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte bound")
            }
            NetError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            NetError::Addr(msg) => write!(f, "bad socket address: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, NetError>;

/// A transport endpoint address: Unix-domain path or TCP host:port, parsed
/// from / rendered to the `unix:<path>` / `tcp:<host>:<port>` textual form
/// used on server-process command lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketSpec {
    /// A Unix-domain socket at the given filesystem path.
    Unix(PathBuf),
    /// A TCP endpoint (`host:port`, resolvable by `std::net`).
    Tcp(String),
}

impl SocketSpec {
    /// Parse `unix:<path>` or `tcp:<host>:<port>`.
    pub fn parse(s: &str) -> Result<SocketSpec> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(NetError::Addr("empty unix socket path".into()));
            }
            return Ok(SocketSpec::Unix(PathBuf::from(path)));
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            if !addr.contains(':') {
                return Err(NetError::Addr(format!("tcp address `{addr}` needs a port")));
            }
            return Ok(SocketSpec::Tcp(addr.to_string()));
        }
        Err(NetError::Addr(format!(
            "address `{s}` must start with `unix:` or `tcp:`"
        )))
    }
}

impl fmt::Display for SocketSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocketSpec::Unix(p) => write!(f, "unix:{}", p.display()),
            SocketSpec::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_round_trips() {
        let u = SocketSpec::parse("unix:/tmp/x.sock").unwrap();
        assert_eq!(u, SocketSpec::Unix(PathBuf::from("/tmp/x.sock")));
        assert_eq!(u.to_string(), "unix:/tmp/x.sock");
        let t = SocketSpec::parse("tcp:127.0.0.1:4000").unwrap();
        assert_eq!(t.to_string(), "tcp:127.0.0.1:4000");
        assert!(SocketSpec::parse("udp:1.2.3.4:1").is_err());
        assert!(SocketSpec::parse("unix:").is_err());
        assert!(SocketSpec::parse("tcp:noport").is_err());
    }
}
