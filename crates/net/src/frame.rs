//! Length-prefixed stream framing for the socket plane.
//!
//! A frame on the wire is
//!
//! ```text
//! [len u32][from u32][to u32][tag u64][data_len u32]  data..  payload..
//!  \------ 4 bytes, not counted in `len` ------/
//! ```
//!
//! where `len = 20 + data_len + payload_len` covers everything after the
//! prefix.  `data` carries the wire-codec head (control body, rel head + op
//! head); `payload` carries the detached scatter-gather payload of the
//! vectored encode path, kept as its own segment so the send side can write
//! it with vectored I/O straight from the refcounted buffer.
//!
//! The decoder enforces [`MAX_FRAME_BYTES`] on the prefix *before* any
//! frame-sized allocation happens, so a corrupt or hostile length header can
//! cost at most the 24 bytes already buffered, never an OOM.

use crate::{NetError, Result};
use tc_ucx::Bytes;

/// Bytes of framing before the variable regions: 4-byte length prefix plus
/// the 20-byte fixed header it counts (`from`, `to`, `tag`, `data_len`).
pub const FRAME_OVERHEAD: usize = 24;

/// Fixed header bytes covered by the length prefix.
const HEAD_BYTES: usize = 20;

/// Upper bound on `len` (everything after the prefix).  Generous next to the
/// largest real frame (an ifunc library of a few hundred KiB) while keeping a
/// corrupted prefix harmless.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// One routed message on a socket link.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Source rank.
    pub from: u32,
    /// Destination rank.
    pub to: u32,
    /// Session-layer tag (the cluster layer defines the namespace).
    pub tag: u64,
    /// Wire-codec head bytes.
    pub data: Bytes,
    /// Detached scatter-gather payload (empty for small frames).
    pub payload: Bytes,
}

impl Frame {
    /// Build a frame with no detached payload.
    pub fn new(from: u32, to: u32, tag: u64, data: impl Into<Bytes>) -> Frame {
        Frame {
            from,
            to,
            tag,
            data: data.into(),
            payload: Bytes::new(),
        }
    }

    /// Build a frame with a detached payload segment.
    pub fn with_payload(
        from: u32,
        to: u32,
        tag: u64,
        data: impl Into<Bytes>,
        payload: impl Into<Bytes>,
    ) -> Frame {
        Frame {
            from,
            to,
            tag,
            data: data.into(),
            payload: payload.into(),
        }
    }

    /// Total bytes this frame occupies on the stream.
    pub fn wire_len(&self) -> usize {
        FRAME_OVERHEAD + self.data.len() + self.payload.len()
    }

    /// The 24-byte framing header for this frame.
    pub fn header(&self) -> [u8; FRAME_OVERHEAD] {
        let len = (HEAD_BYTES + self.data.len() + self.payload.len()) as u32;
        let mut h = [0u8; FRAME_OVERHEAD];
        h[0..4].copy_from_slice(&len.to_le_bytes());
        h[4..8].copy_from_slice(&self.from.to_le_bytes());
        h[8..12].copy_from_slice(&self.to.to_le_bytes());
        h[12..20].copy_from_slice(&self.tag.to_le_bytes());
        h[20..24].copy_from_slice(&(self.data.len() as u32).to_le_bytes());
        h
    }

    /// Encode to a flat byte vector (tests and small control paths; the hot
    /// path writes header/data/payload as separate vectored segments).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.header());
        out.extend_from_slice(self.data.as_slice());
        out.extend_from_slice(self.payload.as_slice());
        out
    }
}

/// Incremental decoder over a byte stream: feed arbitrary chunks with
/// [`extend`](FrameDecoder::extend), pull whole frames with
/// [`next_frame`](FrameDecoder::next_frame).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// A decoder with empty buffers.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append raw stream bytes.
    pub fn extend(&mut self, chunk: &[u8]) {
        // Compact before the buffer grows past the consumed prefix.
        if self.pos > 0 && (self.pos >= 64 * 1024 || self.pos == self.buf.len()) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet consumed as a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the buffer holds a partial frame (the stream ending here
    /// would be a mid-frame truncation, not a clean close).
    pub fn mid_frame(&self) -> bool {
        self.pending() > 0
    }

    /// How many more bytes the in-progress frame needs, if its length prefix
    /// has arrived.
    pub fn wanted(&self) -> usize {
        let avail = &self.buf[self.pos..];
        if avail.is_empty() {
            return 0;
        }
        if avail.len() < 4 {
            return 4 - avail.len();
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        (4 + len).saturating_sub(avail.len())
    }

    /// Decode the next complete frame, if one is buffered.
    ///
    /// Errors are sticky in practice: a stream that produced `FrameTooLarge`
    /// or `Malformed` has lost sync and the connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Frame>> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(NetError::FrameTooLarge {
                len,
                max: MAX_FRAME_BYTES,
            });
        }
        if len < HEAD_BYTES {
            return Err(NetError::Malformed(format!(
                "length prefix {len} below the {HEAD_BYTES}-byte fixed header"
            )));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let body = &avail[4..4 + len];
        let from = u32::from_le_bytes([body[0], body[1], body[2], body[3]]);
        let to = u32::from_le_bytes([body[4], body[5], body[6], body[7]]);
        let tag = u64::from_le_bytes([
            body[8], body[9], body[10], body[11], body[12], body[13], body[14], body[15],
        ]);
        let data_len = u32::from_le_bytes([body[16], body[17], body[18], body[19]]) as usize;
        if HEAD_BYTES + data_len > len {
            return Err(NetError::Malformed(format!(
                "data_len {data_len} exceeds the frame body ({} bytes)",
                len - HEAD_BYTES
            )));
        }
        // One refcounted copy of the variable region, sliced zero-copy into
        // the two segments.
        let region = Bytes::copy_from_slice(&body[HEAD_BYTES..]);
        let data = region.slice(..data_len);
        let payload = region.slice(data_len..);
        self.pos += 4 + len;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(Some(Frame {
            from,
            to,
            tag,
            data,
            payload,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frames: &[Frame], chunk: usize) -> Vec<Frame> {
        let mut stream = Vec::new();
        for f in frames {
            stream.extend_from_slice(&f.encode());
        }
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for piece in stream.chunks(chunk.max(1)) {
            dec.extend(piece);
            while let Some(f) = dec.next_frame().unwrap() {
                out.push(f);
            }
        }
        assert!(!dec.mid_frame(), "stream must end on a frame boundary");
        out
    }

    #[test]
    fn frames_round_trip_across_chunk_sizes() {
        let frames = vec![
            Frame::new(0, 5, 9, vec![1, 2, 3]),
            Frame::with_payload(5, 0, 10, vec![4; 25], vec![7u8; 600]),
            Frame::new(2, 3, 1, Vec::new()),
        ];
        for chunk in [1, 3, 7, 24, 100, 4096] {
            let got = round_trip(&frames, chunk);
            assert_eq!(got.len(), frames.len(), "chunk {chunk}");
            for (a, b) in frames.iter().zip(&got) {
                assert_eq!(a.from, b.from);
                assert_eq!(a.to, b.to);
                assert_eq!(a.tag, b.tag);
                assert_eq!(a.data.as_slice(), b.data.as_slice());
                assert_eq!(a.payload.as_slice(), b.payload.as_slice());
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering() {
        let mut dec = FrameDecoder::new();
        dec.extend(&(u32::MAX).to_le_bytes());
        match dec.next_frame() {
            Err(NetError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, MAX_FRAME_BYTES);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn undersized_length_prefix_is_malformed() {
        let mut dec = FrameDecoder::new();
        dec.extend(&4u32.to_le_bytes());
        dec.extend(&[0u8; 4]);
        assert!(matches!(dec.next_frame(), Err(NetError::Malformed(_))));
    }

    #[test]
    fn inconsistent_data_len_is_malformed() {
        let f = Frame::new(1, 2, 3, vec![0u8; 8]);
        let mut wire = f.encode();
        // Claim more data bytes than the frame body holds.
        wire[20..24].copy_from_slice(&1000u32.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert!(matches!(dec.next_frame(), Err(NetError::Malformed(_))));
    }

    #[test]
    fn partial_frames_report_wanted_bytes() {
        let f = Frame::new(1, 2, 3, vec![9u8; 10]);
        let wire = f.encode();
        let mut dec = FrameDecoder::new();
        dec.extend(&wire[..wire.len() - 4]);
        assert!(dec.next_frame().unwrap().is_none());
        assert!(dec.mid_frame());
        assert_eq!(dec.wanted(), 4);
        dec.extend(&wire[wire.len() - 4..]);
        assert!(dec.next_frame().unwrap().is_some());
        assert!(!dec.mid_frame());
    }
}
