//! The ifunc kernels used by the paper's evaluation, in both the builder-API
//! ("C path") and Chainlang ("Julia path") forms.

use tc_bitir::{BinOp, Module, ModuleBuilder, ScalarType};
use tc_core::layout::DATA_REGION_BASE;

/// Payload layout of the DAPC chaser ifunc: eight little-endian u64 fields.
pub mod chaser_payload {
    /// Offset of the requesting client's node id.
    pub const CLIENT: i64 = 0;
    /// Offset of the client's result-mailbox slot.
    pub const SLOT: i64 = 8;
    /// Offset of the current global pointer-table index.
    pub const INDEX: i64 = 16;
    /// Offset of the remaining chase depth.
    pub const DEPTH: i64 = 24;
    /// Offset of the first server's fabric rank (shard `s` lives on rank
    /// `base + s`).  On a single-client cluster this is 1; on a cluster with
    /// `C` clients it is `C`.  The chaser computes hop owners from it, so a
    /// hardcoded `+ 1` single-client assumption cannot creep back in.
    pub const BASE: i64 = 32;
    /// Offset of the per-server shard size (entries).
    pub const SHARD: i64 = 40;
    /// Total payload size in bytes.
    pub const SIZE: usize = 48;

    /// Encode a chaser payload.  `base` is the fabric rank of the first
    /// server (see [`BASE`]); drivers should pass
    /// `Cluster::first_server_rank()` rather than a literal.
    pub fn encode(
        client: u64,
        slot: u64,
        index: u64,
        depth: u64,
        base: u64,
        shard: u64,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(SIZE);
        for v in [client, slot, index, depth, base, shard] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Decode a chaser payload into its six fields.
    pub fn decode(bytes: &[u8]) -> Option<[u64; 6]> {
        if bytes.len() < SIZE {
            return None;
        }
        let mut out = [0u64; 6];
        for (i, v) in out.iter_mut().enumerate() {
            *v = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().ok()?);
        }
        Some(out)
    }
}

/// The Target-Side Increment kernel (Section IV-B), builder-API form: add the
/// payload's first byte to the u64 counter behind the target pointer.
pub fn tsi_module() -> Module {
    let mut mb = ModuleBuilder::new("tsi");
    {
        let mut f = mb.entry_function();
        let payload = f.param(0);
        let target = f.param(2);
        let delta = f.load(ScalarType::U8, payload, 0);
        let counter = f.load(ScalarType::U64, target, 0);
        let sum = f.bin(BinOp::Add, ScalarType::U64, counter, delta);
        f.store(ScalarType::U64, sum, target, 0);
        let z = f.const_i64(0);
        f.ret(z);
        f.finish();
    }
    mb.build()
}

/// The Target-Side Increment kernel, Chainlang source (the "Julia path").
pub const TSI_CHAINLANG_SRC: &str = r#"
    fn main(payload: u64, len: u64, target: u64) -> i64 {
        let delta: u64 = load_u8(payload, 0);
        let counter: u64 = load_u64(target, 0);
        store_u64(target, 0, counter + delta);
        return 0;
    }
"#;

/// TSI kernel compiled from Chainlang source.
pub fn tsi_module_chainlang() -> Module {
    tc_chainlang::compile_source("tsi_jl", TSI_CHAINLANG_SRC)
        .expect("TSI Chainlang source must compile")
}

/// Payload layout of the reporting-TSI ifunc: `[client u64][slot u64]
/// [delta u64][work u64]`, little-endian.  `work` is the number of spin
/// iterations the kernel burns before returning — target-side compute a
/// pipelined driver can overlap across servers (0 = pure increment).
pub mod reporting_tsi_payload {
    /// Total payload size in bytes.
    pub const SIZE: usize = 32;

    /// Encode a reporting-TSI payload.
    pub fn encode(client: u64, slot: u64, delta: u64, work: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(SIZE);
        for v in [client, slot, delta, work] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }
}

/// A Target-Side Increment kernel for the async completion plane: add the
/// payload's delta to the target counter, burn `work` iterations of a
/// mixing loop (its accumulator is stored next to the counter so the work
/// cannot be elided), and return the post-increment value to the client
/// through the X-RDMA result mailbox — so a pipelined driver can keep
/// hundreds of increments in flight, each with observable target-side
/// compute.  Payload per [`reporting_tsi_payload`].
pub fn tsi_reporting_module(module_name: &str) -> Module {
    let mut mb = ModuleBuilder::new(module_name);
    {
        let mut f = mb.entry_function();
        let payload = f.param(0);
        let target = f.param(2);
        let client = f.load(ScalarType::U64, payload, 0);
        let slot = f.load(ScalarType::U64, payload, 8);
        let delta = f.load(ScalarType::U64, payload, 16);
        let work = f.load(ScalarType::U64, payload, 24);
        let counter = f.load(ScalarType::U64, target, 0);
        let sum = f.bin(BinOp::Add, ScalarType::U64, counter, delta);
        f.store(ScalarType::U64, sum, target, 0);

        // Spin loop: acc = acc * M + A, `work` times.
        let zero = f.const_u64(0);
        let one = f.const_u64(1);
        let mul = f.const_u64(0x5851_F42D_4C95_7F2D);
        let add = f.const_u64(0x1405_7B7E_F767_814F);
        let i = f.copy(work);
        let acc = f.copy(sum);
        let head = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        f.br(head);
        f.switch_to(head);
        let is_done = f.cmp(BinOp::CmpEq, ScalarType::U64, i, zero);
        f.br_if(is_done, done, body);
        f.switch_to(body);
        let mixed = f.bin(BinOp::Mul, ScalarType::U64, acc, mul);
        let mixed = f.bin(BinOp::Add, ScalarType::U64, mixed, add);
        f.assign(acc, mixed);
        let next_i = f.sub_i64(i, one);
        f.assign(i, next_i);
        f.br(head);
        f.switch_to(done);
        f.store(ScalarType::U64, acc, target, 8);
        f.call_ext("tc_return_result", vec![client, slot, sum], true);
        let z = f.const_i64(0);
        f.ret(z);
        f.finish();
    }
    mb.build()
}

/// The Distributed Adaptive Pointer Chasing chaser ifunc (Section IV-C),
/// builder-API form.
///
/// Behaviour per arrival:
/// 1. If this node does not own the current index, forward the unchanged
///    payload to the owner.
/// 2. Otherwise repeatedly: load the next index from the local shard,
///    decrement the remaining depth; when the depth hits zero, X-RDMA
///    `ReturnResult` the final value to the client; when the next index lives
///    on another server, update the payload in place and forward itself
///    there; when it is local, keep chasing locally.
///
/// `module_name` lets callers register distinct copies (e.g. a bitcode and a
/// binary variant) side by side.
pub fn chaser_module(module_name: &str) -> Module {
    use chaser_payload as P;
    let mut mb = ModuleBuilder::new(module_name);
    {
        let mut f = mb.entry_function();
        let payload = f.param(0);
        let len = f.param(1);

        let client = f.load(ScalarType::U64, payload, P::CLIENT);
        let slot = f.load(ScalarType::U64, payload, P::SLOT);
        let idx0 = f.load(ScalarType::U64, payload, P::INDEX);
        let depth0 = f.load(ScalarType::U64, payload, P::DEPTH);
        let base = f.load(ScalarType::U64, payload, P::BASE);
        let shard = f.load(ScalarType::U64, payload, P::SHARD);
        let me = f.call_ext("tc_node_id", vec![], true).unwrap();
        let one = f.const_u64(1);
        let eight = f.const_u64(8);
        let table_base = f.const_u64(DATA_REGION_BASE);

        // Mutable loop state.
        let idx = f.copy(idx0);
        let depth = f.copy(depth0);

        let check_owner = f.new_block();
        let forward_blk = f.new_block();
        let chase_blk = f.new_block();
        let done_blk = f.new_block();
        let next_blk = f.new_block();

        f.br(check_owner);

        // check_owner: does this node own `idx`?  Shard s lives on rank
        // `base + s` — the first-server rank travels in the payload, so the
        // same kernel works whatever the client-rank layout is.
        f.switch_to(check_owner);
        let owner_div = f.div_u64(idx, shard);
        let owner = f.bin(BinOp::Add, ScalarType::U64, owner_div, base);
        let is_mine = f.cmp(BinOp::CmpEq, ScalarType::U64, owner, me);
        f.br_if(is_mine, chase_blk, forward_blk);

        // forward: update the payload in place and send ourselves to `owner`.
        f.switch_to(forward_blk);
        f.store(ScalarType::U64, idx, payload, P::INDEX);
        f.store(ScalarType::U64, depth, payload, P::DEPTH);
        f.call_ext("tc_forward_self", vec![owner, payload, len], true);
        let z1 = f.const_i64(0);
        f.ret(z1);

        // chase: one local lookup.
        f.switch_to(chase_blk);
        let offset = f.rem_u64(idx, shard);
        let byte_off = f.bin(BinOp::Mul, ScalarType::U64, offset, eight);
        let addr = f.bin(BinOp::Add, ScalarType::U64, table_base, byte_off);
        let next = f.load(ScalarType::U64, addr, 0);
        let new_depth = f.sub_i64(depth, one);
        f.assign(depth, new_depth);
        f.assign(idx, next);
        f.br(next_blk);

        // next: decide whether we are done, continue locally, or forward.
        f.switch_to(next_blk);
        let zero = f.const_u64(0);
        let is_done = f.cmp(BinOp::CmpEq, ScalarType::U64, depth, zero);
        f.br_if(is_done, done_blk, check_owner);

        // done: return the final value to the requester.
        f.switch_to(done_blk);
        f.call_ext("tc_return_result", vec![client, slot, idx], true);
        let z2 = f.const_i64(0);
        f.ret(z2);

        f.finish();
    }
    mb.build()
}

/// The DAPC chaser, Chainlang source (the "Julia path" of Figures 8 and 12).
pub const CHASER_CHAINLANG_SRC: &str = r#"
    fn main(payload: u64, len: u64, target: u64) -> i64 {
        let client: u64 = load_u64(payload, 0);
        let slot: u64 = load_u64(payload, 8);
        let idx: u64 = load_u64(payload, 16);
        let depth: u64 = load_u64(payload, 24);
        let base: u64 = load_u64(payload, 32);
        let shard: u64 = load_u64(payload, 40);
        let me: u64 = tc_node_id();
        let table: u64 = 1073741824;
        let running: u64 = 1;
        while running == 1 {
            let owner: u64 = idx / shard + base;
            if owner != me {
                store_u64(payload, 16, idx);
                store_u64(payload, 24, depth);
                tc_forward_self(owner, payload, len);
                running = 0;
            } else {
                let next: u64 = load_u64(table, (idx % shard) * 8);
                depth = depth - 1;
                idx = next;
                if depth == 0 {
                    tc_return_result(client, slot, idx);
                    running = 0;
                }
            }
        }
        return 0;
    }
"#;

/// DAPC chaser compiled from Chainlang source.
pub fn chaser_module_chainlang(module_name: &str) -> Module {
    let mut module = tc_chainlang::compile_source(module_name, CHASER_CHAINLANG_SRC)
        .expect("chaser Chainlang source must compile");
    module.name = module_name.to_string();
    module
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_bitir::verify_module;

    #[test]
    fn kernels_verify() {
        verify_module(&tsi_module()).unwrap();
        verify_module(&tsi_module_chainlang()).unwrap();
        verify_module(&chaser_module("dapc_chaser")).unwrap();
        verify_module(&chaser_module_chainlang("dapc_chaser_jl")).unwrap();
    }

    #[test]
    fn chaser_payload_roundtrip() {
        let p = chaser_payload::encode(0, 3, 17, 4096, 32, 128);
        assert_eq!(p.len(), chaser_payload::SIZE);
        let fields = chaser_payload::decode(&p).unwrap();
        assert_eq!(fields, [0, 3, 17, 4096, 32, 128]);
        assert!(chaser_payload::decode(&p[..20]).is_none());
    }

    #[test]
    fn chainlang_table_base_matches_layout_constant() {
        // The Chainlang source hard-codes the data-region base; keep it in
        // sync with the framework's layout.
        assert_eq!(DATA_REGION_BASE, 1_073_741_824);
    }

    #[test]
    fn chaser_uses_framework_externals() {
        let m = chaser_module("c");
        for sym in ["tc_node_id", "tc_forward_self", "tc_return_result"] {
            assert!(m.ext_symbols.iter().any(|s| s == sym), "missing {sym}");
        }
    }
}
