//! The Target-Side Increment (TSI) microbenchmark: overhead breakdown,
//! latency and message rate — the data behind Tables I–VI.

use crate::kernels::tsi_module;
use std::sync::Arc;
use tc_bitir::TargetTriple;
use tc_core::layout::TARGET_REGION_BASE;
use tc_core::{build_ifunc_library, ClusterSim, NativeAmHandler, OutcomeKind, ToolchainOptions};
use tc_jit::MemoryExt;
use tc_simnet::{FabricOp, Platform};

/// Per-mode timing breakdown (one column of Tables I–III).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TsiBreakdown {
    /// Lookup + execution time on the target, in microseconds.
    pub lookup_exec_us: f64,
    /// One-time JIT compilation time in milliseconds (bitcode first arrival
    /// only; reported separately and not added to the total, as in the paper).
    pub jit_ms: Option<f64>,
    /// Transmission time in microseconds.
    pub transmission_us: f64,
    /// Total (transmission + lookup + exec) in microseconds.
    pub total_us: f64,
    /// Message size on the wire in bytes.
    pub message_bytes: usize,
}

/// Per-mode latency and message rate (one row pair of Tables IV–VI).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TsiRate {
    /// End-to-end latency in microseconds.
    pub latency_us: f64,
    /// Sustained message rate in messages/second.
    pub message_rate: f64,
}

/// The complete TSI result set for one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct TsiResults {
    /// Platform name.
    pub platform: String,
    /// Active-Message baseline breakdown.
    pub active_message: TsiBreakdown,
    /// Uncached (first-arrival) bitcode ifunc breakdown.
    pub uncached_bitcode: TsiBreakdown,
    /// Cached bitcode ifunc breakdown.
    pub cached_bitcode: TsiBreakdown,
    /// Active-Message latency and rate.
    pub am_rate: TsiRate,
    /// Uncached-bitcode latency and rate.
    pub uncached_rate: TsiRate,
    /// Cached-bitcode latency and rate.
    pub cached_rate: TsiRate,
}

impl TsiResults {
    /// Latency "speedup" of cached bitcode over Active Messages, as the paper
    /// reports it (positive = AM slower).
    pub fn am_vs_cached_latency_pct(&self) -> f64 {
        (self.am_rate.latency_us / self.cached_rate.latency_us - 1.0) * 100.0
    }

    /// Latency overhead of uncached vs cached bitcode in percent.
    pub fn uncached_vs_cached_latency_pct(&self) -> f64 {
        (self.uncached_rate.latency_us / self.cached_rate.latency_us - 1.0) * 100.0
    }

    /// Message-rate improvement of cached bitcode over Active Messages in
    /// percent.
    pub fn cached_vs_am_rate_pct(&self) -> f64 {
        (self.cached_rate.message_rate / self.am_rate.message_rate - 1.0) * 100.0
    }

    /// Message-rate improvement of cached over uncached bitcode in percent.
    pub fn cached_vs_uncached_rate_pct(&self) -> f64 {
        (self.cached_rate.message_rate / self.uncached_rate.message_rate - 1.0) * 100.0
    }
}

/// The TSI Active-Message handler: predeployed native code that increments
/// the target counter by the payload's first byte.
pub fn tsi_am_handler() -> NativeAmHandler {
    Arc::new(|ctx, payload| {
        let delta = u64::from(payload.first().copied().unwrap_or(0));
        let old = ctx.memory.read_u64(TARGET_REGION_BASE).unwrap_or(0);
        let _ = ctx
            .memory
            .write_u64(TARGET_REGION_BASE, old.wrapping_add(delta));
        // The increment itself is a handful of instructions.
        24
    })
}

/// Toolchain options matching the paper's deployment: the fat-bitcode archive
/// covers one x86-64 and one AArch64 entry (the paper's TSI archive "supports
/// both x86_64 and AArch64 processors" and is ~5 KiB), using the platform's
/// own triples where they apply.
pub fn platform_toolchain(platform: &Platform) -> ToolchainOptions {
    let client = TargetTriple::parse(platform.client_triple).expect("client triple");
    let server = TargetTriple::parse(platform.server_triple).expect("server triple");
    let mut targets = vec![client];
    if !targets.contains(&server) {
        targets.push(server);
    }
    // Mirror the paper's two-ISA archive even on homogeneous platforms.
    if !targets.iter().any(|t| t.isa == tc_bitir::Isa::X86_64) {
        targets.push(TargetTriple::X86_64_GENERIC);
    }
    if !targets.iter().any(|t| t.isa == tc_bitir::Isa::Aarch64) {
        targets.push(TargetTriple::AARCH64_GENERIC);
    }
    ToolchainOptions {
        targets,
        ..Default::default()
    }
}

/// Run the full TSI characterisation for a platform: overhead breakdown
/// (Tables I–III) plus latency and message rate (Tables IV–VI).
///
/// `rate_messages` controls how many back-to-back messages the rate phase
/// sends (the paper saturates the link; a few hundred is enough for the
/// steady-state rate to emerge in the model).
pub fn run_tsi(platform: Platform, rate_messages: usize) -> TsiResults {
    let mut sim = ClusterSim::new(platform, 1);
    let library = build_ifunc_library(&tsi_module(), &platform_toolchain(&platform))
        .expect("TSI library builds");
    let handle = sim.register_on_client(library);
    sim.deploy_am_everywhere("tsi_am", tsi_am_handler());

    let msg = sim
        .client_mut()
        .create_bitcode_message(handle, vec![1])
        .expect("message");

    // --- Active Message breakdown -------------------------------------------
    let am_bytes = sim.client_send_am("tsi_am", 1, vec![1]).expect("am send");
    sim.run_until_idle(1_000);
    let am_rec = *sim
        .timings()
        .last_of_kind(OutcomeKind::AmExecuted)
        .expect("AM record");

    // --- Uncached bitcode (first arrival, includes JIT) ----------------------
    let uncached_bytes = sim.client_send_ifunc(&msg, 1);
    sim.run_until_idle(1_000);
    let uncached_rec = *sim
        .timings()
        .last_of_kind(OutcomeKind::IfuncExecutedFirstArrival)
        .expect("uncached record");

    // --- Cached bitcode -------------------------------------------------------
    let cached_bytes = sim.client_send_ifunc(&msg, 1);
    sim.run_until_idle(1_000);
    let cached_rec = *sim
        .timings()
        .last_of_kind(OutcomeKind::IfuncExecutedCached)
        .expect("cached record");

    let breakdown = |rec: &tc_core::DeliveryRecord, bytes: usize, with_jit: bool| TsiBreakdown {
        lookup_exec_us: (rec.lookup + rec.exec).as_micros_f64(),
        jit_ms: if with_jit {
            Some(rec.jit.as_millis_f64())
        } else {
            None
        },
        transmission_us: rec.transmission.as_micros_f64(),
        // As in the paper, the one-time JIT cost is reported separately and
        // excluded from the per-message total.
        total_us: (rec.transmission + rec.lookup + rec.exec).as_micros_f64(),
        message_bytes: bytes,
    };

    let active_message = breakdown(&am_rec, am_bytes, false);
    let uncached_bitcode = breakdown(&uncached_rec, uncached_bytes, true);
    let cached_bitcode = breakdown(&cached_rec, cached_bytes, false);

    // --- Message rates --------------------------------------------------------
    // Rates are injection-gap bound; measure by sending a burst and dividing.
    let fabric = platform.fabric;
    let am_gap = fabric.injection_gap(FabricOp::ActiveMessage, am_bytes);
    let cached_gap = fabric.injection_gap(FabricOp::Put, cached_bytes);
    let uncached_gap = fabric.injection_gap(FabricOp::Put, uncached_bytes);
    let _ = rate_messages; // burst length is immaterial to the steady-state gap model
    let rate = |gap: tc_simnet::SimDuration| 1.0e9 / gap.as_nanos() as f64;

    let am_rate = TsiRate {
        latency_us: active_message.total_us,
        message_rate: rate(am_gap),
    };
    let cached_rate = TsiRate {
        latency_us: cached_bitcode.total_us,
        message_rate: rate(cached_gap),
    };
    let uncached_rate = TsiRate {
        latency_us: uncached_bitcode.total_us,
        message_rate: rate(uncached_gap),
    };

    TsiResults {
        platform: platform.name.to_string(),
        active_message,
        uncached_bitcode,
        cached_bitcode,
        am_rate,
        uncached_rate,
        cached_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thor_xeon_breakdown_matches_table_three_shape() {
        let r = run_tsi(Platform::thor_xeon(), 100);
        // JIT is a sub-millisecond-to-millisecond one-time cost on the Xeon.
        let jit = r.uncached_bitcode.jit_ms.unwrap();
        assert!(jit > 0.4 && jit < 1.6, "jit {jit} ms");
        // Cached total ≈ 1.5 µs, uncached total ≈ 3.6 µs (paper: 1.53 / 3.59).
        assert!(
            (r.cached_bitcode.total_us - 1.53).abs() < 0.4,
            "{:?}",
            r.cached_bitcode
        );
        assert!(r.uncached_bitcode.total_us > 2.0 * r.cached_bitcode.total_us * 0.8);
        // Cached bitcode message rate beats AM (Table VI: 7.30 vs 6.75 M/s).
        assert!(r.cached_rate.message_rate > r.am_rate.message_rate);
        assert!(r.cached_vs_uncached_rate_pct() > 100.0);
    }

    #[test]
    fn ookami_uncached_roughly_doubles_latency() {
        let r = run_tsi(Platform::ookami(), 50);
        // Paper: uncached 91% slower than cached on Ookami.
        let pct = r.uncached_vs_cached_latency_pct();
        assert!(pct > 40.0 && pct < 200.0, "uncached vs cached {pct}%");
        // AM latency is slightly better than cached bitcode on Ookami.
        assert!(r.active_message.total_us <= r.cached_bitcode.total_us * 1.1);
        // JIT on the A64FX is multiple milliseconds.
        assert!(r.uncached_bitcode.jit_ms.unwrap() > 3.0);
    }

    #[test]
    fn bf2_dpu_jit_slower_than_xeon() {
        let bf2 = run_tsi(Platform::thor_bf2(), 50);
        let xeon = run_tsi(Platform::thor_xeon(), 50);
        assert!(bf2.uncached_bitcode.jit_ms.unwrap() > 2.0 * xeon.uncached_bitcode.jit_ms.unwrap());
    }

    #[test]
    fn cached_message_is_paper_scale() {
        let r = run_tsi(Platform::thor_bf2(), 10);
        assert!(r.cached_bitcode.message_bytes < 64);
        assert!(r.uncached_bitcode.message_bytes > 3_000);
    }
}
