//! Chaos sweeps: the TSI workload under increasing fault pressure.
//!
//! One sweep point runs the TSI scenario on a chosen backend under a seeded
//! [`FaultPlan`] with a given drop rate (plus light duplication and
//! reordering, so the reliability layer's dedup and ordering machinery is
//! always exercised), then verifies exact delivery and collects the fault
//! statistics — injected faults, retransmissions, dedup drops, per-node
//! reliability counters — alongside the wall-clock timing.  `tc-bench`'s
//! `chaos_sweep` binary renders the rows with
//! [`crate::report::render_chaos_table`].

use crate::kernels::tsi_module;
use crate::tsi::platform_toolchain;
use std::time::Instant;
use tc_core::layout::TARGET_REGION_BASE;
use tc_core::{build_ifunc_library, Backend, ClusterBuilder, FaultPlan, RelMetrics, Transport};

/// Shape of one chaos sweep.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSweepConfig {
    /// Number of server nodes.
    pub servers: usize,
    /// TSI increments sent to each server.
    pub sends_per_server: u64,
    /// Payload delta of each increment.
    pub delta: u8,
    /// Fault-plan seed (fixed seeds keep sweeps reproducible).
    pub seed: u64,
}

impl Default for ChaosSweepConfig {
    fn default() -> Self {
        ChaosSweepConfig {
            servers: 4,
            sends_per_server: 25,
            delta: 3,
            seed: 7,
        }
    }
}

/// Per-node fault statistics of one sweep point.
#[derive(Debug, Clone, Copy)]
pub struct NodeFaultStats {
    /// Cluster rank (0 = client).
    pub rank: usize,
    /// Reliability counters of the rank (zeros when unavailable).
    pub rel: RelMetrics,
    /// Ifunc executions observed on the rank (0 for the client).
    pub ifuncs_executed: u64,
}

/// One row of a chaos sweep: a `(backend, drop rate)` point.
#[derive(Debug, Clone)]
pub struct ChaosSweepRow {
    /// Backend name ("simnet", "threads").
    pub backend: String,
    /// Probabilistic drop rate of the plan (fraction, not percent).
    pub drop_rate: f64,
    /// True when every server counter matched the exact expectation.
    pub exact: bool,
    /// Fabric deliveries.
    pub messages_delivered: u64,
    /// Faults the chaos engine injected.
    pub faults_injected: u64,
    /// Messages re-sent by the reliability layer.
    pub retransmits: u64,
    /// Duplicate arrivals dropped by receiver-side dedup.
    pub dup_drops: u64,
    /// Wall-clock time of the run in milliseconds.
    pub elapsed_ms: f64,
    /// Per-node fault statistics (client first).
    pub per_node: Vec<NodeFaultStats>,
}

/// The plan a sweep point installs: the given drop rate plus light
/// duplication and reordering so dedup and ordering always have work.
pub fn sweep_plan(seed: u64, drop_rate: f64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .drop_rate(drop_rate)
        .duplicate_rate(drop_rate / 2.0)
        .reorder_rate(drop_rate)
}

/// Run one `(backend, drop rate)` sweep point.
pub fn run_chaos_point(backend: Backend, drop_rate: f64, cfg: &ChaosSweepConfig) -> ChaosSweepRow {
    let platform = tc_simnet::Platform::thor_bf2();
    let mut cluster = ClusterBuilder::new()
        .platform(platform)
        .servers(cfg.servers)
        .fault_plan(sweep_plan(cfg.seed, drop_rate))
        .build(backend);

    let start = Instant::now();
    let library = build_ifunc_library(&tsi_module(), &platform_toolchain(&platform))
        .expect("TSI library builds");
    let handle = cluster.register_ifunc(library);
    let msg = cluster
        .bitcode_message(handle, vec![cfg.delta])
        .expect("TSI message");
    for _ in 0..cfg.sends_per_server {
        for server in 1..=cfg.servers {
            cluster.send_ifunc(&msg, server).expect("send");
        }
    }
    cluster.run_until_idle(50_000_000).expect("drive to idle");

    let expected = u64::from(cfg.delta) * cfg.sends_per_server;
    let mut exact = true;
    let mut per_node = Vec::with_capacity(cfg.servers + 1);
    per_node.push(NodeFaultStats {
        rank: 0,
        rel: cluster.transport().node_reliability(0).unwrap_or_default(),
        ifuncs_executed: 0,
    });
    for rank in 1..=cfg.servers {
        let counter = cluster.read_u64(rank, TARGET_REGION_BASE).unwrap_or(0);
        exact &= counter == expected;
        let stats = cluster.stats(rank).expect("node stats");
        exact &= stats.ifuncs_executed == cfg.sends_per_server;
        per_node.push(NodeFaultStats {
            rank,
            rel: cluster
                .transport()
                .node_reliability(rank)
                .unwrap_or_default(),
            ifuncs_executed: stats.ifuncs_executed,
        });
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1_000.0;
    let metrics = cluster.metrics();
    let backend_name = cluster.backend_name().to_string();
    cluster.shutdown();

    ChaosSweepRow {
        backend: backend_name,
        drop_rate,
        exact,
        messages_delivered: metrics.messages_delivered,
        faults_injected: metrics.faults_injected,
        retransmits: metrics.retransmits,
        dup_drops: metrics.dup_drops,
        elapsed_ms,
        per_node,
    }
}

/// Run the full grid: every backend × every drop rate.
pub fn chaos_sweep(
    backends: &[Backend],
    drop_rates: &[f64],
    cfg: &ChaosSweepConfig,
) -> Vec<ChaosSweepRow> {
    let mut rows = Vec::new();
    for &backend in backends {
        for &rate in drop_rates {
            rows.push(run_chaos_point(backend, rate, cfg));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_sweep_point_is_exact_and_counts_faults() {
        let cfg = ChaosSweepConfig {
            servers: 2,
            sends_per_server: 20,
            delta: 2,
            seed: 3,
        };
        let row = run_chaos_point(Backend::Simnet, 0.15, &cfg);
        assert!(row.exact, "reliability must keep the sweep exact: {row:?}");
        assert!(row.faults_injected > 0);
        assert!(row.retransmits > 0);
        assert_eq!(row.per_node.len(), 3);
        assert!(row.per_node[1..].iter().all(|n| n.ifuncs_executed == 20));
    }

    #[test]
    fn zero_drop_point_injects_nothing() {
        let cfg = ChaosSweepConfig {
            servers: 2,
            sends_per_server: 5,
            delta: 1,
            seed: 3,
        };
        let row = run_chaos_point(Backend::Simnet, 0.0, &cfg);
        assert!(row.exact);
        assert_eq!(row.faults_injected, 0);
        assert_eq!(row.retransmits, 0);
        assert_eq!(row.dup_drops, 0);
    }
}
