//! # tc-workloads — the paper's evaluation workloads
//!
//! Everything Section IV of the paper describes, runnable on the simulated
//! testbed:
//!
//! * [`kernels`] — the TSI and DAPC-chaser ifuncs, in builder-API ("C") and
//!   Chainlang ("Julia") form;
//! * [`pointer_table`] — sharded single-cycle random pointer tables;
//! * [`tsi`] — the Target-Side Increment microbenchmark: overhead breakdown,
//!   latency and message rate (Tables I–VI);
//! * [`dapc`] — Distributed Adaptive Pointer Chasing and the Get-Based
//!   baseline, with depth sweeps and server-count scaling (Figures 5–12);
//! * [`pipeline`] — the same workloads as pipelined drivers over the async
//!   completion plane (`CompletionSet` / `wait_any`, hundreds of operations
//!   in flight), generic over both backends;
//! * [`multi_client`] — N concurrent driver runtimes each injecting an
//!   independent stream (per-client completion routing, client-scaling
//!   message-rate driver);
//! * [`report`] — text/CSV rendering of tables and figures.
//!
//! The `tc-bench` crate wraps these in Criterion benchmarks and in the
//! `repro_tables` / `repro_figures` binaries that regenerate every table and
//! figure of the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos_sweep;
pub mod dapc;
pub mod kernels;
pub mod multi_client;
pub mod pipeline;
pub mod pointer_table;
pub mod report;
pub mod tsi;

pub use chaos_sweep::{
    chaos_sweep, run_chaos_point, sweep_plan, ChaosSweepConfig, ChaosSweepRow, NodeFaultStats,
};
pub use dapc::{
    dapc_am_handler, depth_sweep, scaling_sweep, ChaseConfig, ChaseMode, ChaseResult,
    DapcExperiment, SweepPoint,
};
pub use kernels::{
    chaser_module, chaser_module_chainlang, chaser_payload, reporting_tsi_payload, tsi_module,
    tsi_module_chainlang, tsi_reporting_module, CHASER_CHAINLANG_SRC, TSI_CHAINLANG_SRC,
};
pub use multi_client::{
    chase_starts, multi_client_get_burst, run_multi_client_streams, MultiClientReport,
};
pub use pipeline::{
    gather_entries, gather_entries_from, run_pipelined_chases, run_pipelined_chases_from,
    run_reporting_tsi, run_reporting_tsi_from, ReportingTsiOutcome, Window,
};
pub use pointer_table::PointerTable;
pub use report::{
    render_chaos_nodes, render_chaos_table, render_figure, render_figure_csv, render_link_health,
    render_overhead_table, render_rate_table,
};
pub use tsi::{platform_toolchain, run_tsi, tsi_am_handler, TsiBreakdown, TsiRate, TsiResults};

/// The named Active-Message catalog a socket-backend server binary compiles
/// in.  AM handlers are native closures and cannot cross a process boundary,
/// so the driver's `deploy_am` ships only the *name*; a server process
/// deploys the same-named entry from this catalog.  Names cover every
/// handler the workloads and the repo's test suite deploy.
pub fn am_catalog() -> Vec<(String, tc_core::NativeAmHandler)> {
    vec![
        ("tsi_am".to_string(), tsi_am_handler()),
        ("parity_tsi_am".to_string(), tsi_am_handler()),
        ("chaos_tsi_am".to_string(), tsi_am_handler()),
        ("dapc_chase".to_string(), dapc_am_handler()),
    ]
}
