//! Pipelined drivers over the async completion plane.
//!
//! The paper's X-RDMA argument is that a client should keep *many* one-sided
//! operations and result mailboxes in flight at once instead of
//! send-one-wait-one.  This module ports the evaluation workloads to that
//! driving style on top of [`CompletionSet`] / `wait_any`:
//!
//! * [`gather_entries`] — the pointer-table / GBPC data plane: GET every
//!   table entry with a bounded window of outstanding requests, assembling
//!   a byte-exact image (identical for any window size, on any backend,
//!   with or without a fault plan);
//! * [`run_reporting_tsi`] — the TSI workload with per-increment X-RDMA
//!   results: a window of increments in flight, every completion verified;
//! * [`run_pipelined_chases`] — DAPC with many independent chases in
//!   flight, each hopping server-side and reporting through its own result
//!   slot.
//!
//! All drivers are generic over [`Transport`], so the same pipelined code
//! runs on the simulated and the threaded backend.

use crate::kernels::{chaser_payload, reporting_tsi_payload};
use crate::pointer_table::PointerTable;
use std::collections::HashMap;
use tc_core::cluster::{ClientId, Cluster, CompletionSet, CompletionToken, Ready, Transport};
use tc_core::{CoreError, IfuncMessage, Result};

/// Callback that materialises an [`IfuncMessage`] for one operation's
/// payload (typically `|c, payload| c.bitcode_message(handle, payload)`).
pub type MessageMaker<'a, T> = &'a mut dyn FnMut(&mut Cluster<T>, Vec<u8>) -> Result<IfuncMessage>;

/// How a pipelined driver bounds its outstanding operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Maximum operations in flight at once (1 = fully sequential).
    pub inflight: usize,
}

impl Window {
    /// A window of `inflight` outstanding operations (at least 1).
    pub fn new(inflight: usize) -> Self {
        Window {
            inflight: inflight.max(1),
        }
    }
}

/// GET every entry of `table` through a window of `window.inflight`
/// outstanding GETs, returning the gathered image in global index order —
/// byte-identical to a sequential gather regardless of window size, backend
/// or fault plan.  Drives the primary client; see [`gather_entries_from`].
pub fn gather_entries<T: Transport>(
    cluster: &mut Cluster<T>,
    table: &PointerTable,
    window: Window,
) -> Result<Vec<u8>> {
    gather_entries_from(cluster, ClientId::PRIMARY, table, window)
}

/// [`gather_entries`] issued from a specific client: GETs address the
/// owning *server rank* (`cluster.server_rank(owner_index)` — never
/// `owner + 1`, which silently targets another client on a multi-client
/// cluster) and the completion stream is `client`'s own.
pub fn gather_entries_from<T: Transport>(
    cluster: &mut Cluster<T>,
    client: ClientId,
    table: &PointerTable,
    window: Window,
) -> Result<Vec<u8>> {
    let total = table.total_entries();
    let mut image = vec![0u8; total * 8];
    let mut set = CompletionSet::new();
    let mut owners: HashMap<CompletionToken, usize> = HashMap::new();
    let mut next = 0usize;
    let mut done = 0usize;
    while done < total {
        // Post the whole window refill, then flush the burst once.
        let mut posted = false;
        while next < total && set.len() < window.inflight {
            let g = next as u64;
            let rank = cluster.server_rank(table.owner_index(g));
            let handle = cluster.post_get_from(client, rank, table.entry_addr(g), 8);
            owners.insert(set.add_get(handle), next);
            next += 1;
            posted = true;
        }
        if posted {
            cluster.flush_from(client)?;
        }
        let (token, ready) = cluster.wait_any(&mut set)?;
        let index = owners.remove(&token).expect("token was registered");
        match ready {
            Ready::Get(data) if data.len() == 8 => {
                image[index * 8..index * 8 + 8].copy_from_slice(&data);
                done += 1;
            }
            Ready::Get(data) => {
                return Err(CoreError::ShortRead {
                    rank: cluster.server_rank(table.owner_index(index as u64)),
                    addr: table.entry_addr(index as u64),
                    wanted: 8,
                    got: data.len(),
                })
            }
            other => {
                return Err(CoreError::Transport(format!(
                    "gather GET for entry {index} resolved as {other:?}"
                )))
            }
        }
    }
    Ok(image)
}

/// Outcome of a pipelined reporting-TSI run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportingTsiOutcome {
    /// Final counter value per server rank (index 0 = rank 1).
    pub counters: Vec<u64>,
    /// Every per-increment result value returned through the mailbox, in
    /// send order.
    pub reported: Vec<u64>,
}

/// Drive `total` TSI increments (delta = 1 + op index mod 7) round-robin
/// across all servers with `window.inflight` operations outstanding, each
/// increment confirmed through its own X-RDMA result slot and burning
/// `work` spin iterations of target-side compute.
///
/// `message` must be built from [`crate::kernels::tsi_reporting_module`];
/// the payload is rewritten per operation.  Per-link in-order delivery makes
/// every reported prefix sum deterministic, so the outcome is identical
/// across window sizes and backends.
pub fn run_reporting_tsi<T: Transport>(
    cluster: &mut Cluster<T>,
    make_message: MessageMaker<'_, T>,
    total: usize,
    window: Window,
    work: u64,
) -> Result<ReportingTsiOutcome> {
    run_reporting_tsi_from(
        cluster,
        ClientId::PRIMARY,
        make_message,
        total,
        window,
        work,
    )
}

/// [`run_reporting_tsi`] issued from a specific client: the kernel returns
/// each result to `client`'s rank and mailbox (the payload encodes the
/// client's fabric rank — a hardcoded 0 would deliver every result to the
/// primary client), and destinations are true server ranks.
pub fn run_reporting_tsi_from<T: Transport>(
    cluster: &mut Cluster<T>,
    client: ClientId,
    make_message: MessageMaker<'_, T>,
    total: usize,
    window: Window,
    work: u64,
) -> Result<ReportingTsiOutcome> {
    let servers = cluster.server_count();
    let mut set = CompletionSet::new();
    let mut op_of: HashMap<CompletionToken, usize> = HashMap::new();
    let mut reported = vec![0u64; total];
    let mut next = 0usize;
    let mut done = 0usize;
    while done < total {
        while next < total && set.len() < window.inflight {
            let slot = cluster.result_slot_on(client);
            let dst = cluster.server_rank(next % servers);
            let delta = 1 + (next as u64 % 7);
            let payload =
                reporting_tsi_payload::encode(client.rank() as u64, slot.slot(), delta, work);
            let msg = make_message(cluster, payload)?;
            cluster.send_ifunc_from(client, &msg, dst)?;
            op_of.insert(set.add_result(slot), next);
            next += 1;
        }
        let (token, ready) = cluster.wait_any(&mut set)?;
        let op = op_of.remove(&token).expect("token was registered");
        match ready {
            Ready::Result(value) => {
                reported[op] = value;
                done += 1;
            }
            other => {
                return Err(CoreError::Transport(format!(
                    "reporting TSI op {op} resolved as {other:?}"
                )))
            }
        }
    }
    let mut counters = Vec::with_capacity(servers);
    for server in 0..servers {
        counters.push(cluster.read_u64(
            cluster.server_rank(server),
            tc_core::layout::TARGET_REGION_BASE,
        )?);
    }
    Ok(ReportingTsiOutcome { counters, reported })
}

/// Run `starts.len()` independent DAPC chases of `depth` steps with up to
/// `window.inflight` chases in flight at once, returning the final value of
/// each chase in `starts` order.  Each chase ships the chaser ifunc to the
/// first owner and then hops server-side; its result arrives through a
/// dedicated mailbox slot.
pub fn run_pipelined_chases<T: Transport>(
    cluster: &mut Cluster<T>,
    make_message: MessageMaker<'_, T>,
    table: &PointerTable,
    starts: &[u64],
    depth: u64,
    window: Window,
) -> Result<Vec<u64>> {
    run_pipelined_chases_from(
        cluster,
        ClientId::PRIMARY,
        make_message,
        table,
        starts,
        depth,
        window,
    )
}

/// [`run_pipelined_chases`] issued from a specific client: the payload
/// carries `client`'s rank (results come back to *its* mailbox) and the
/// cluster's first-server rank (the chaser computes hop owners as
/// `idx / shard + base`, so server-side forwarding stays correct whatever
/// the client-rank layout is).
pub fn run_pipelined_chases_from<T: Transport>(
    cluster: &mut Cluster<T>,
    client: ClientId,
    make_message: MessageMaker<'_, T>,
    table: &PointerTable,
    starts: &[u64],
    depth: u64,
    window: Window,
) -> Result<Vec<u64>> {
    let base = cluster.first_server_rank() as u64;
    let mut set = CompletionSet::new();
    let mut chase_of: HashMap<CompletionToken, usize> = HashMap::new();
    let mut values = vec![0u64; starts.len()];
    let mut next = 0usize;
    let mut done = 0usize;
    while done < starts.len() {
        while next < starts.len() && set.len() < window.inflight {
            let start = starts[next];
            let slot = cluster.result_slot_on(client);
            let payload = chaser_payload::encode(
                client.rank() as u64,
                slot.slot(),
                start,
                depth,
                base,
                table.shard_size as u64,
            );
            let msg = make_message(cluster, payload)?;
            cluster.send_ifunc_from(client, &msg, cluster.server_rank(table.owner_index(start)))?;
            chase_of.insert(set.add_result(slot), next);
            next += 1;
        }
        let (token, ready) = cluster.wait_any(&mut set)?;
        let chase = chase_of.remove(&token).expect("token was registered");
        match ready {
            Ready::Result(value) => {
                values[chase] = value;
                done += 1;
            }
            other => {
                return Err(CoreError::Transport(format!(
                    "chase {chase} resolved as {other:?}"
                )))
            }
        }
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{chaser_module, tsi_reporting_module};
    use crate::tsi::platform_toolchain;
    use tc_core::{build_ifunc_library, ClusterBuilder};
    use tc_simnet::Platform;

    fn message_maker<T: Transport>(
        library: tc_core::IfuncLibrary,
        cluster: &mut Cluster<T>,
    ) -> impl FnMut(&mut Cluster<T>, Vec<u8>) -> Result<IfuncMessage> {
        let handle = cluster.register_ifunc(library);
        move |c: &mut Cluster<T>, payload: Vec<u8>| c.bitcode_message(handle, payload)
    }

    #[test]
    fn gather_is_window_invariant_on_sim() {
        let table = PointerTable::generate(4, 64, 3);
        let expected: Vec<u8> = (0..4).flat_map(|s| table.shard_image(s)).collect();
        for inflight in [1usize, 16, 256] {
            let mut cluster = ClusterBuilder::new()
                .platform(Platform::thor_xeon())
                .servers(4)
                .build_sim();
            table.install_cluster(&mut cluster).unwrap();
            let image = gather_entries(&mut cluster, &table, Window::new(inflight)).unwrap();
            assert_eq!(image, expected, "inflight {inflight}");
        }
    }

    #[test]
    fn reporting_tsi_counts_and_prefix_sums_agree() {
        let platform = Platform::thor_xeon();
        let mut cluster = ClusterBuilder::new()
            .platform(platform)
            .servers(2)
            .build_sim();
        let lib = build_ifunc_library(
            &tsi_reporting_module("rtsi"),
            &platform_toolchain(&platform),
        )
        .unwrap();
        let mut mk = message_maker(lib, &mut cluster);
        let out = run_reporting_tsi(&mut cluster, &mut mk, 40, Window::new(8), 4).unwrap();
        // Each server's counter equals the sum of the deltas it received.
        let mut expect = vec![0u64; 2];
        for op in 0..40usize {
            expect[op % 2] += 1 + (op as u64 % 7);
        }
        assert_eq!(out.counters, expect);
        // Per-link in-order delivery: the last report per server equals the
        // final counter.
        assert_eq!(out.reported[38], expect[0]);
        assert_eq!(out.reported[39], expect[1]);
    }

    #[test]
    fn pipelined_chases_match_ground_truth() {
        let platform = Platform::thor_xeon();
        let table = PointerTable::generate(3, 32, 9);
        let mut cluster = ClusterBuilder::new()
            .platform(platform)
            .servers(3)
            .build_sim();
        table.install_cluster(&mut cluster).unwrap();
        let lib = build_ifunc_library(
            &chaser_module("pipe_chaser"),
            &platform_toolchain(&platform),
        )
        .unwrap();
        let mut mk = message_maker(lib, &mut cluster);
        let starts: Vec<u64> = (0..24).map(|i| (i * 5) % 96).collect();
        let values =
            run_pipelined_chases(&mut cluster, &mut mk, &table, &starts, 16, Window::new(12))
                .unwrap();
        for (i, &start) in starts.iter().enumerate() {
            assert_eq!(values[i], table.chase(start, 16), "chase from {start}");
        }
    }
}
