//! Multi-client injection drivers: `C` driver-side runtimes pipelining
//! independent operation streams against the same servers.
//!
//! The paper's cluster serves requests from many independent initiators;
//! these drivers reproduce that shape on the unified cluster API.  Every
//! stream is keyed by its [`ClientId`]: GETs are posted *from* a client and
//! complete into that client's claim stream, pointer chases return through
//! that client's own result mailbox, and a single merged [`CompletionSet`]
//! multiplexes all streams through one `wait_any` loop — which is exactly
//! the situation the per-client completion routing exists for (the clients'
//! request-id and slot spaces collide numerically on every operation).
//!
//! Two drivers:
//!
//! * [`run_multi_client_streams`] — each client gathers the full pointer
//!   table by windowed GETs *and* runs an independent pointer-chase stream;
//!   returns every per-client artifact for byte-exact comparison across
//!   backends and against ground truth;
//! * [`multi_client_get_burst`] — the aggregate message-rate driver behind
//!   the `data_plane/clients/{C}` benchmark axis: all clients issue windowed
//!   GET streams concurrently, round-robin over the servers.

use crate::kernels::{chaser_module, chaser_payload};
use crate::pipeline::Window;
use crate::pointer_table::PointerTable;
use crate::tsi::platform_toolchain;
use std::collections::HashMap;
use tc_core::cluster::{ClientId, Cluster, CompletionSet, CompletionToken, Ready, Transport};
use tc_core::{build_ifunc_library, CoreError, IfuncHandle, Result};
use tc_simnet::SplitMix64;

/// Everything one multi-client run observed, per client — the comparable
/// artifact of the cross-backend parity suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiClientReport {
    /// Per-client gathered table image (byte-exact, global index order).
    pub gathered: Vec<Vec<u8>>,
    /// Per-client chase results, in each client's start order.
    pub chased: Vec<Vec<u64>>,
}

/// Deterministic chase starts for one client: every client draws from its
/// own seeded stream, so streams are distinct but reproducible.
pub fn chase_starts(table: &PointerTable, client: ClientId, chases: usize, seed: u64) -> Vec<u64> {
    let mut rng =
        SplitMix64::new(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(client.0 as u64 + 1)));
    (0..chases)
        .map(|_| rng.below(table.total_entries() as u64))
        .collect()
}

/// Run `C = cluster.client_count()` independent streams: each client gathers
/// the entire `table` through a window of `window.inflight` outstanding GETs
/// and then runs `chases_per_client` pointer chases of `depth` steps, all
/// clients interleaved through one merged completion set.  `platform` must
/// be the platform the cluster was built on (the chaser kernel is compiled
/// with its toolchain).  Returns the per-client artifacts; on the simulated
/// backend the whole report is a pure function of
/// `(platform, table, chases_per_client, depth, window, seed)`.
pub fn run_multi_client_streams<T: Transport>(
    cluster: &mut Cluster<T>,
    platform: &tc_simnet::Platform,
    table: &PointerTable,
    chases_per_client: usize,
    depth: u64,
    window: Window,
    seed: u64,
) -> Result<MultiClientReport> {
    let clients = cluster.client_count();
    let gathered = gather_all_clients(cluster, table, window)?;
    let handles = register_chaser_everywhere(cluster, platform)?;
    let starts: Vec<Vec<u64>> = (0..clients)
        .map(|c| chase_starts(table, ClientId(c), chases_per_client, seed))
        .collect();
    let chased = chase_all_clients(cluster, table, &handles, &starts, depth, window)?;
    Ok(MultiClientReport { gathered, chased })
}

/// Phase 1: every client gathers the full table concurrently.
fn gather_all_clients<T: Transport>(
    cluster: &mut Cluster<T>,
    table: &PointerTable,
    window: Window,
) -> Result<Vec<Vec<u8>>> {
    let clients = cluster.client_count();
    let total = table.total_entries();
    let mut images = vec![vec![0u8; total * 8]; clients];
    let mut set = CompletionSet::new();
    let mut owner: HashMap<CompletionToken, (usize, usize)> = HashMap::new();
    let mut next = vec![0usize; clients];
    let mut inflight = vec![0usize; clients];
    let mut done = 0usize;
    while done < clients * total {
        for c in 0..clients {
            let mut posted = false;
            while next[c] < total && inflight[c] < window.inflight {
                let g = next[c] as u64;
                let rank = cluster.server_rank(table.owner_index(g));
                let handle = cluster.post_get_from(ClientId(c), rank, table.entry_addr(g), 8);
                owner.insert(set.add_get(handle), (c, next[c]));
                next[c] += 1;
                inflight[c] += 1;
                posted = true;
            }
            if posted {
                cluster.flush_from(ClientId(c))?;
            }
        }
        let (token, ready) = cluster.wait_any(&mut set)?;
        let (c, index) = owner.remove(&token).expect("token was registered");
        match ready {
            Ready::Get(data) if data.len() == 8 => {
                images[c][index * 8..index * 8 + 8].copy_from_slice(&data);
                inflight[c] -= 1;
                done += 1;
            }
            other => {
                return Err(CoreError::Transport(format!(
                    "client {c} gather GET for entry {index} resolved as {other:?}"
                )))
            }
        }
    }
    Ok(images)
}

/// Register the chaser kernel on every client (handles are per-runtime).
fn register_chaser_everywhere<T: Transport>(
    cluster: &mut Cluster<T>,
    platform: &tc_simnet::Platform,
) -> Result<Vec<IfuncHandle>> {
    let library = build_ifunc_library(&chaser_module("mc_chaser"), &platform_toolchain(platform))?;
    Ok((0..cluster.client_count())
        .map(|c| cluster.register_ifunc_on(ClientId(c), library.clone()))
        .collect())
}

/// Phase 2: every client runs its chase stream concurrently.
fn chase_all_clients<T: Transport>(
    cluster: &mut Cluster<T>,
    table: &PointerTable,
    handles: &[IfuncHandle],
    starts: &[Vec<u64>],
    depth: u64,
    window: Window,
) -> Result<Vec<Vec<u64>>> {
    let clients = cluster.client_count();
    let base = cluster.first_server_rank() as u64;
    let total: usize = starts.iter().map(|s| s.len()).sum();
    let mut values: Vec<Vec<u64>> = starts.iter().map(|s| vec![0u64; s.len()]).collect();
    let mut set = CompletionSet::new();
    let mut owner: HashMap<CompletionToken, (usize, usize)> = HashMap::new();
    let mut next = vec![0usize; clients];
    let mut inflight = vec![0usize; clients];
    let mut done = 0usize;
    while done < total {
        for c in 0..clients {
            while next[c] < starts[c].len() && inflight[c] < window.inflight {
                let id = ClientId(c);
                let start = starts[c][next[c]];
                let slot = cluster.result_slot_on(id);
                let payload = chaser_payload::encode(
                    c as u64,
                    slot.slot(),
                    start,
                    depth,
                    base,
                    table.shard_size as u64,
                );
                let msg = cluster.bitcode_message_on(id, handles[c], payload)?;
                cluster.send_ifunc_from(id, &msg, cluster.server_rank(table.owner_index(start)))?;
                owner.insert(set.add_result(slot), (c, next[c]));
                next[c] += 1;
                inflight[c] += 1;
            }
        }
        let (token, ready) = cluster.wait_any(&mut set)?;
        let (c, chase) = owner.remove(&token).expect("token was registered");
        match ready {
            Ready::Result(value) => {
                values[c][chase] = value;
                inflight[c] -= 1;
                done += 1;
            }
            other => {
                return Err(CoreError::Transport(format!(
                    "client {c} chase {chase} resolved as {other:?}"
                )))
            }
        }
    }
    Ok(values)
}

/// Aggregate GET message-rate driver: every client issues `ops_per_client`
/// windowed GETs of `len` bytes round-robin over the servers, all streams in
/// flight concurrently through one merged completion set.  Returns the total
/// number of completed operations (`ops_per_client × client_count`) — the
/// quantity the `data_plane/clients/{C}` benchmark axis divides by elapsed
/// wall time.
pub fn multi_client_get_burst<T: Transport>(
    cluster: &mut Cluster<T>,
    ops_per_client: usize,
    addr: u64,
    len: u64,
    window: Window,
) -> Result<usize> {
    let clients = cluster.client_count();
    let servers = cluster.server_count();
    let mut set = CompletionSet::new();
    let mut next = vec![0usize; clients];
    let mut inflight = vec![0usize; clients];
    let mut owner: HashMap<CompletionToken, usize> = HashMap::new();
    let mut done = 0usize;
    let total = clients * ops_per_client;
    while done < total {
        for c in 0..clients {
            let mut posted = false;
            while next[c] < ops_per_client && inflight[c] < window.inflight {
                let rank = cluster.server_rank((next[c] + c) % servers);
                let handle = cluster.post_get_from(ClientId(c), rank, addr, len);
                owner.insert(set.add_get(handle), c);
                next[c] += 1;
                inflight[c] += 1;
                posted = true;
            }
            if posted {
                cluster.flush_from(ClientId(c))?;
            }
        }
        let (token, ready) = cluster.wait_any(&mut set)?;
        let c = owner.remove(&token).expect("token was registered");
        match ready {
            Ready::Get(data) if data.len() == len as usize => {
                inflight[c] -= 1;
                done += 1;
            }
            other => {
                return Err(CoreError::Transport(format!(
                    "client {c} burst GET resolved as {other:?}"
                )))
            }
        }
    }
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::ClusterBuilder;
    use tc_simnet::Platform;

    #[test]
    fn multi_client_streams_match_ground_truth_on_sim() {
        let table = PointerTable::generate(2, 32, 11);
        let expected: Vec<u8> = (0..2).flat_map(|s| table.shard_image(s)).collect();
        let mut cluster = ClusterBuilder::new()
            .platform(Platform::thor_xeon())
            .clients(2)
            .servers(2)
            .build_sim();
        table.install_cluster(&mut cluster).unwrap();
        let report = run_multi_client_streams(
            &mut cluster,
            &Platform::thor_xeon(),
            &table,
            6,
            8,
            Window::new(4),
            7,
        )
        .unwrap();
        assert_eq!(report.gathered.len(), 2);
        assert_eq!(report.chased.len(), 2);
        for c in 0..2 {
            assert_eq!(report.gathered[c], expected, "client {c} image");
            let starts = chase_starts(&table, ClientId(c), 6, 7);
            for (i, &start) in starts.iter().enumerate() {
                assert_eq!(
                    report.chased[c][i],
                    table.chase(start, 8),
                    "client {c} chase {i}"
                );
            }
        }
    }

    #[test]
    fn chase_starts_are_per_client_and_deterministic() {
        let table = PointerTable::generate(2, 64, 3);
        let a = chase_starts(&table, ClientId(0), 16, 42);
        let b = chase_starts(&table, ClientId(1), 16, 42);
        assert_ne!(a, b, "clients draw distinct streams");
        assert_eq!(a, chase_starts(&table, ClientId(0), 16, 42));
        assert!(a.iter().all(|&s| s < table.total_entries() as u64));
    }

    #[test]
    fn get_burst_completes_every_operation() {
        let mut cluster = ClusterBuilder::new()
            .platform(Platform::thor_xeon())
            .clients(2)
            .servers(2)
            .build_sim();
        let addr = tc_core::layout::DATA_REGION_BASE;
        for s in 0..2 {
            cluster
                .write_memory(cluster.server_rank(s), addr, &[0xAB; 64])
                .unwrap();
        }
        let done = multi_client_get_burst(&mut cluster, 20, addr, 64, Window::new(8)).unwrap();
        assert_eq!(done, 40);
    }
}
