//! Distributed pointer-table generation for the DAPC / GBPC workloads.
//!
//! The table is a random permutation of `0..total_entries` arranged as a
//! single cycle, so a chase of any depth never terminates early and visits a
//! uniformly random sequence of shards.  Entries are distributed across the
//! servers in equal contiguous shards and "indexed using the server number
//! first" (Section IV-C): global index `g` lives on server `g / shard_size`
//! at local offset `g % shard_size`.

use tc_core::cluster::{Cluster, Transport};
use tc_core::layout::DATA_REGION_BASE;
use tc_core::ClusterSim;
use tc_jit::Memory;
use tc_simnet::SplitMix64;

/// In-place Fisher–Yates shuffle driven by [`SplitMix64`].
fn shuffle(values: &mut [u64], rng: &mut SplitMix64) {
    for i in (1..values.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        values.swap(i, j);
    }
}

/// A generated pointer table, before installation into server memories.
#[derive(Debug, Clone)]
pub struct PointerTable {
    /// Number of servers the table is sharded over.
    pub num_servers: usize,
    /// Entries per server.
    pub shard_size: usize,
    /// `table[g]` = next global index after `g`.
    pub entries: Vec<u64>,
}

impl PointerTable {
    /// Generate a single-cycle random permutation table with `shard_size`
    /// entries per server, deterministically from `seed`.
    pub fn generate(num_servers: usize, shard_size: usize, seed: u64) -> Self {
        assert!(num_servers > 0 && shard_size > 0);
        let total = num_servers * shard_size;
        let mut order: Vec<u64> = (0..total as u64).collect();
        let mut rng = SplitMix64::new(seed);
        shuffle(&mut order, &mut rng);
        // Build a single cycle following the shuffled order.
        let mut entries = vec![0u64; total];
        for i in 0..total {
            let from = order[i] as usize;
            let to = order[(i + 1) % total];
            entries[from] = to;
        }
        PointerTable {
            num_servers,
            shard_size,
            entries,
        }
    }

    /// Total number of entries.
    pub fn total_entries(&self) -> usize {
        self.entries.len()
    }

    /// 0-based index of the server owning global index `g`.  Convert to a
    /// fabric rank with `Cluster::server_rank(owner_index)` — server ranks
    /// start after the client ranks, so adding 1 is only correct on a
    /// single-client cluster.
    pub fn owner_index(&self, g: u64) -> usize {
        g as usize / self.shard_size
    }

    /// Server rank owning global index `g` on a *single-client* cluster
    /// (rank 0 is the one client, servers are 1-based).  Multi-client
    /// drivers must use [`PointerTable::owner_index`] with
    /// `Cluster::server_rank` instead.
    pub fn owner_rank(&self, g: u64) -> usize {
        self.owner_index(g) + 1
    }

    /// Address of global index `g` within its owner's memory.
    pub fn entry_addr(&self, g: u64) -> u64 {
        DATA_REGION_BASE + (g % self.shard_size as u64) * 8
    }

    /// Next index after `g` (ground truth, used by tests and by the GBPC
    /// client to verify results).
    pub fn next(&self, g: u64) -> u64 {
        self.entries[g as usize]
    }

    /// Ground-truth result of a chase of `depth` steps starting at `start`.
    pub fn chase(&self, start: u64, depth: u64) -> u64 {
        let mut idx = start;
        for _ in 0..depth {
            idx = self.next(idx);
        }
        idx
    }

    /// Install the table's shards into the server memories of a simulation.
    /// Server rank `r` (1-based) receives entries `[(r-1)*shard, r*shard)`.
    pub fn install(&self, sim: &mut ClusterSim) {
        assert_eq!(
            sim.server_count(),
            self.num_servers,
            "simulation has a different number of servers than the table"
        );
        for server in 0..self.num_servers {
            // One bulk write per shard instead of one per entry: serialise
            // the shard once and hand the whole image to the node's memory.
            sim.node_mut(server + 1)
                .memory
                .write(DATA_REGION_BASE, &self.shard_image(server))
                .expect("sparse memory write cannot fail");
        }
    }

    /// Serialised image of one server's shard (entries in local order).
    pub fn shard_image(&self, server: usize) -> Vec<u8> {
        let shard = &self.entries[server * self.shard_size..(server + 1) * self.shard_size];
        let mut image = Vec::with_capacity(shard.len() * 8);
        for value in shard {
            image.extend_from_slice(&value.to_le_bytes());
        }
        image
    }

    /// Install the table's shards into the server memories of any cluster
    /// backend through the transport's memory plane (the generic analogue of
    /// [`PointerTable::install`], usable on the threaded backend too).
    pub fn install_cluster<T: Transport>(&self, cluster: &mut Cluster<T>) -> tc_core::Result<()> {
        assert_eq!(
            cluster.server_count(),
            self.num_servers,
            "cluster has a different number of servers than the table"
        );
        for server in 0..self.num_servers {
            // Shard images go to the *server* ranks, which start after the
            // client ranks (rank server + 1 only on a single-client cluster).
            cluster.write_memory(
                cluster.server_rank(server),
                DATA_REGION_BASE,
                &self.shard_image(server),
            )?;
        }
        Ok(())
    }

    /// Fraction of entries whose successor lives on a different server — the
    /// quantity that grows with the server count and explains the scalability
    /// trend in Figures 9–12.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.total_entries();
        let remote = (0..total as u64)
            .filter(|&g| self.owner_rank(g) != self.owner_rank(self.next(g)))
            .count();
        remote as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_single_cycle() {
        let t = PointerTable::generate(4, 64, 7);
        let total = t.total_entries() as u64;
        let mut seen = vec![false; total as usize];
        let mut idx = 0u64;
        for _ in 0..total {
            assert!(!seen[idx as usize], "cycle shorter than the table");
            seen[idx as usize] = true;
            idx = t.next(idx);
        }
        assert_eq!(idx, 0, "walk of `total` steps must return to the start");
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = PointerTable::generate(2, 32, 42);
        let b = PointerTable::generate(2, 32, 42);
        let c = PointerTable::generate(2, 32, 43);
        assert_eq!(a.entries, b.entries);
        assert_ne!(a.entries, c.entries);
    }

    #[test]
    fn ownership_and_addressing() {
        let t = PointerTable::generate(4, 128, 1);
        assert_eq!(t.owner_rank(0), 1);
        assert_eq!(t.owner_rank(127), 1);
        assert_eq!(t.owner_rank(128), 2);
        assert_eq!(t.owner_rank(511), 4);
        assert_eq!(t.entry_addr(0), DATA_REGION_BASE);
        assert_eq!(t.entry_addr(129), DATA_REGION_BASE + 8);
    }

    #[test]
    fn remote_fraction_grows_with_server_count() {
        let few = PointerTable::generate(2, 256, 5).remote_fraction();
        let many = PointerTable::generate(16, 32, 5).remote_fraction();
        assert!(many > few, "remote fraction {many} should exceed {few}");
        // Expected remote fraction ≈ (S-1)/S.
        assert!((few - 0.5).abs() < 0.1);
        assert!((many - 15.0 / 16.0).abs() < 0.05);
    }

    #[test]
    fn chase_ground_truth_follows_entries() {
        let t = PointerTable::generate(2, 16, 9);
        let one = t.next(5);
        assert_eq!(t.chase(5, 1), one);
        assert_eq!(t.chase(5, 2), t.next(one));
        assert_eq!(t.chase(5, 0), 5);
    }
}
