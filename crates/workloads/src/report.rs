//! Text rendering of the paper's tables and figures from measured results.

use crate::dapc::{ChaseMode, SweepPoint};
use crate::tsi::TsiResults;

/// Render a TSI overhead-breakdown table (the format of Tables I–III).
pub fn render_overhead_table(title: &str, r: &TsiResults) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<16} {:>16} {:>22} {:>16}\n",
        "Stage", "Active Message", "Uncached Bitcode", "Cached Bitcode"
    ));
    out.push_str(&format!(
        "{:<16} {:>13.2} µs {:>19.2} µs {:>13.2} µs\n",
        "Lookup+Exec",
        r.active_message.lookup_exec_us,
        r.uncached_bitcode.lookup_exec_us,
        r.cached_bitcode.lookup_exec_us
    ));
    out.push_str(&format!(
        "{:<16} {:>16} {:>16} ms) {:>16}\n",
        "JIT",
        "N/A",
        format!("({:.2}", r.uncached_bitcode.jit_ms.unwrap_or(0.0)),
        "N/A"
    ));
    out.push_str(&format!(
        "{:<16} {:>13.2} µs {:>19.2} µs {:>13.2} µs\n",
        "Transmission",
        r.active_message.transmission_us,
        r.uncached_bitcode.transmission_us,
        r.cached_bitcode.transmission_us
    ));
    out.push_str(&format!(
        "{:<16} {:>13.2} µs {:>19.2} µs {:>13.2} µs\n",
        "Total", r.active_message.total_us, r.uncached_bitcode.total_us, r.cached_bitcode.total_us
    ));
    out.push_str(&format!(
        "message sizes: AM {} B, uncached {} B, cached {} B\n",
        r.active_message.message_bytes,
        r.uncached_bitcode.message_bytes,
        r.cached_bitcode.message_bytes
    ));
    out
}

/// Render a TSI latency / message-rate table (the format of Tables IV–VI).
pub fn render_rate_table(title: &str, r: &TsiResults) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<18} {:>12} {:>10} {:>18} {:>10}\n",
        "Method", "Latency", "Speedup", "Message Rate", "Speedup"
    ));
    let row = |name: &str, lat: f64, rate: f64| {
        format!(
            "{:<18} {:>9.2} µs {:>10} {:>14.0} msg/s {:>10}\n",
            name, lat, "", rate, ""
        )
    };
    out.push_str(&row(
        "Active Message",
        r.am_rate.latency_us,
        r.am_rate.message_rate,
    ));
    out.push_str(&format!(
        "{:<18} {:>9.2} µs {:>9.2}% {:>14.0} msg/s {:>9.2}%\n",
        "Cached Bitcode",
        r.cached_rate.latency_us,
        r.am_vs_cached_latency_pct(),
        r.cached_rate.message_rate,
        r.cached_vs_am_rate_pct()
    ));
    out.push_str(&row(
        "Uncached Bitcode",
        r.uncached_rate.latency_us,
        r.uncached_rate.message_rate,
    ));
    out.push_str(&format!(
        "{:<18} {:>9} {:>9.2}% {:>14} {:>9.2}%\n",
        "Cached vs Uncached",
        "",
        r.uncached_vs_cached_latency_pct(),
        "",
        r.cached_vs_uncached_rate_pct()
    ));
    out
}

/// Render a depth-sweep or scaling figure as an aligned text series table
/// (one row per x value, one column per mode, plus the Get−Bitcode %-diff).
pub fn render_figure(
    title: &str,
    x_label: &str,
    xs: &[u64],
    points: &[SweepPoint],
    modes: &[ChaseMode],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!("{:<16}", x_label));
    for mode in modes {
        out.push_str(&format!(" {:>26}", mode.label()));
    }
    out.push_str(&format!(" {:>22}\n", "Get - Bitcode % Diff"));
    for (x, point) in xs.iter().zip(points) {
        out.push_str(&format!("{:<16}", x));
        for mode in modes {
            match point.rate(*mode) {
                Some(rate) => out.push_str(&format!(" {:>19.1} ch/s", rate)),
                None => out.push_str(&format!(" {:>26}", "-")),
            }
        }
        match point.get_vs_bitcode_pct() {
            Some(pct) => out.push_str(&format!(" {:>20.1}%\n", pct)),
            None => out.push_str(&format!(" {:>22}\n", "-")),
        }
    }
    out
}

/// Render results as CSV (one line per x value) for plotting.
pub fn render_figure_csv(xs: &[u64], points: &[SweepPoint], modes: &[ChaseMode]) -> String {
    let mut out = String::new();
    out.push('x');
    for m in modes {
        out.push_str(&format!(",{}", m.label().replace(' ', "_")));
    }
    out.push_str(",get_vs_bitcode_pct\n");
    for (x, p) in xs.iter().zip(points) {
        out.push_str(&x.to_string());
        for m in modes {
            out.push_str(&format!(
                ",{}",
                p.rate(*m).map(|r| format!("{r:.2}")).unwrap_or_default()
            ));
        }
        out.push_str(&format!(
            ",{}\n",
            p.get_vs_bitcode_pct()
                .map(|v| format!("{v:.2}"))
                .unwrap_or_default()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dapc::ChaseResult;

    fn fake_point(depth: u64, get: f64, bitcode: f64) -> SweepPoint {
        SweepPoint {
            depth,
            results: vec![
                ChaseResult {
                    mode: ChaseMode::Get,
                    depth,
                    servers: 4,
                    chases_per_second: get,
                    chase_latency_us: 1.0e6 / get,
                },
                ChaseResult {
                    mode: ChaseMode::CachedBitcode,
                    depth,
                    servers: 4,
                    chases_per_second: bitcode,
                    chase_latency_us: 1.0e6 / bitcode,
                },
            ],
        }
    }

    #[test]
    fn figure_rendering_includes_all_series() {
        let points = vec![fake_point(1, 1000.0, 1300.0), fake_point(4, 250.0, 310.0)];
        let text = render_figure(
            "Fig test",
            "Pointer Chase Depth",
            &[1, 4],
            &points,
            &[ChaseMode::Get, ChaseMode::CachedBitcode],
        );
        assert!(text.contains("Fig test"));
        assert!(text.contains("Cached Bitcode"));
        assert!(text.contains("1300.0"));
        assert!(text.contains('%'));

        let csv = render_figure_csv(
            &[1, 4],
            &points,
            &[ChaseMode::Get, ChaseMode::CachedBitcode],
        );
        assert!(csv.starts_with("x,Get,Cached_Bitcode"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn pct_diff_matches_definition() {
        let p = fake_point(1, 1000.0, 1300.0);
        assert!((p.get_vs_bitcode_pct().unwrap() - 30.0).abs() < 1e-9);
    }
}
