//! Text rendering of the paper's tables and figures from measured results,
//! plus fault-statistics tables for chaos sweeps.

use crate::chaos_sweep::ChaosSweepRow;
use crate::dapc::{ChaseMode, SweepPoint};
use crate::tsi::TsiResults;

/// Render a TSI overhead-breakdown table (the format of Tables I–III).
pub fn render_overhead_table(title: &str, r: &TsiResults) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<16} {:>16} {:>22} {:>16}\n",
        "Stage", "Active Message", "Uncached Bitcode", "Cached Bitcode"
    ));
    out.push_str(&format!(
        "{:<16} {:>13.2} µs {:>19.2} µs {:>13.2} µs\n",
        "Lookup+Exec",
        r.active_message.lookup_exec_us,
        r.uncached_bitcode.lookup_exec_us,
        r.cached_bitcode.lookup_exec_us
    ));
    out.push_str(&format!(
        "{:<16} {:>16} {:>16} ms) {:>16}\n",
        "JIT",
        "N/A",
        format!("({:.2}", r.uncached_bitcode.jit_ms.unwrap_or(0.0)),
        "N/A"
    ));
    out.push_str(&format!(
        "{:<16} {:>13.2} µs {:>19.2} µs {:>13.2} µs\n",
        "Transmission",
        r.active_message.transmission_us,
        r.uncached_bitcode.transmission_us,
        r.cached_bitcode.transmission_us
    ));
    out.push_str(&format!(
        "{:<16} {:>13.2} µs {:>19.2} µs {:>13.2} µs\n",
        "Total", r.active_message.total_us, r.uncached_bitcode.total_us, r.cached_bitcode.total_us
    ));
    out.push_str(&format!(
        "message sizes: AM {} B, uncached {} B, cached {} B\n",
        r.active_message.message_bytes,
        r.uncached_bitcode.message_bytes,
        r.cached_bitcode.message_bytes
    ));
    out
}

/// Render a TSI latency / message-rate table (the format of Tables IV–VI).
pub fn render_rate_table(title: &str, r: &TsiResults) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<18} {:>12} {:>10} {:>18} {:>10}\n",
        "Method", "Latency", "Speedup", "Message Rate", "Speedup"
    ));
    let row = |name: &str, lat: f64, rate: f64| {
        format!(
            "{:<18} {:>9.2} µs {:>10} {:>14.0} msg/s {:>10}\n",
            name, lat, "", rate, ""
        )
    };
    out.push_str(&row(
        "Active Message",
        r.am_rate.latency_us,
        r.am_rate.message_rate,
    ));
    out.push_str(&format!(
        "{:<18} {:>9.2} µs {:>9.2}% {:>14.0} msg/s {:>9.2}%\n",
        "Cached Bitcode",
        r.cached_rate.latency_us,
        r.am_vs_cached_latency_pct(),
        r.cached_rate.message_rate,
        r.cached_vs_am_rate_pct()
    ));
    out.push_str(&row(
        "Uncached Bitcode",
        r.uncached_rate.latency_us,
        r.uncached_rate.message_rate,
    ));
    out.push_str(&format!(
        "{:<18} {:>9} {:>9.2}% {:>14} {:>9.2}%\n",
        "Cached vs Uncached",
        "",
        r.uncached_vs_cached_latency_pct(),
        "",
        r.cached_vs_uncached_rate_pct()
    ));
    out
}

/// Render a depth-sweep or scaling figure as an aligned text series table
/// (one row per x value, one column per mode, plus the Get−Bitcode %-diff).
pub fn render_figure(
    title: &str,
    x_label: &str,
    xs: &[u64],
    points: &[SweepPoint],
    modes: &[ChaseMode],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!("{:<16}", x_label));
    for mode in modes {
        out.push_str(&format!(" {:>26}", mode.label()));
    }
    out.push_str(&format!(" {:>22}\n", "Get - Bitcode % Diff"));
    for (x, point) in xs.iter().zip(points) {
        out.push_str(&format!("{:<16}", x));
        for mode in modes {
            match point.rate(*mode) {
                Some(rate) => out.push_str(&format!(" {:>19.1} ch/s", rate)),
                None => out.push_str(&format!(" {:>26}", "-")),
            }
        }
        match point.get_vs_bitcode_pct() {
            Some(pct) => out.push_str(&format!(" {:>20.1}%\n", pct)),
            None => out.push_str(&format!(" {:>22}\n", "-")),
        }
    }
    out
}

/// Render results as CSV (one line per x value) for plotting.
pub fn render_figure_csv(xs: &[u64], points: &[SweepPoint], modes: &[ChaseMode]) -> String {
    let mut out = String::new();
    out.push('x');
    for m in modes {
        out.push_str(&format!(",{}", m.label().replace(' ', "_")));
    }
    out.push_str(",get_vs_bitcode_pct\n");
    for (x, p) in xs.iter().zip(points) {
        out.push_str(&x.to_string());
        for m in modes {
            out.push_str(&format!(
                ",{}",
                p.rate(*m).map(|r| format!("{r:.2}")).unwrap_or_default()
            ));
        }
        out.push_str(&format!(
            ",{}\n",
            p.get_vs_bitcode_pct()
                .map(|v| format!("{v:.2}"))
                .unwrap_or_default()
        ));
    }
    out
}

/// Render a chaos sweep as an aligned table: one row per `(backend, drop
/// rate)` point, fault statistics alongside the timing.
pub fn render_chaos_table(title: &str, rows: &[ChaosSweepRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<10} {:>7} {:>11} {:>8} {:>12} {:>10} {:>10} {:>8}\n",
        "Backend", "Drop", "Delivered", "Faults", "Retransmits", "DupDrops", "Elapsed", "Result"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>6.1}% {:>11} {:>8} {:>12} {:>10} {:>7.1}ms {:>8}\n",
            r.backend,
            r.drop_rate * 100.0,
            r.messages_delivered,
            r.faults_injected,
            r.retransmits,
            r.dup_drops,
            r.elapsed_ms,
            if r.exact { "exact" } else { "LOST" },
        ));
    }
    out
}

/// Render per-link reliability health rows ([`tc_core::Transport::
/// link_health`]) as an aligned table: one row per `(reporting rank, peer)`
/// link with the RTT-estimator state and outstanding-frame count.  Times
/// print in microseconds (the estimator works in nanoseconds); `srtt` shows
/// `-` before the link's first RTT sample.
pub fn render_link_health(title: &str, rows: &[(u32, tc_core::LinkHealth)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<6} {:>6} {:>12} {:>12} {:>12} {:>9} {:>8}\n",
        "Rank", "Peer", "SRTT", "RTTVAR", "RTO", "Unacked", "Silent"
    ));
    for (rank, h) in rows {
        let us = |v: u64| format!("{:.1}µs", v as f64 / 1_000.0);
        out.push_str(&format!(
            "{:<6} {:>6} {:>12} {:>12} {:>12} {:>9} {:>8}\n",
            rank,
            h.peer,
            if h.srtt == 0 {
                "-".to_string()
            } else {
                us(h.srtt)
            },
            if h.srtt == 0 {
                "-".to_string()
            } else {
                us(h.rttvar)
            },
            us(h.rto),
            h.unacked,
            h.silent_rounds,
        ));
    }
    out
}

/// Render the per-node fault statistics of one sweep point: drop-recovery
/// and dedup counters per rank next to its execution count.
pub fn render_chaos_nodes(row: &ChaosSweepRow) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "per-node fault statistics ({} @ {:.1}% drop)\n",
        row.backend,
        row.drop_rate * 100.0
    ));
    out.push_str(&format!(
        "{:<8} {:>12} {:>10} {:>12} {:>10} {:>8}\n",
        "Rank", "Retransmits", "DupDrops", "OutOfOrder", "AcksSent", "Ifuncs"
    ));
    for n in &row.per_node {
        let name = if n.rank == 0 {
            "client".to_string()
        } else {
            format!("srv {}", n.rank)
        };
        out.push_str(&format!(
            "{:<8} {:>12} {:>10} {:>12} {:>10} {:>8}\n",
            name,
            n.rel.retransmits,
            n.rel.dup_drops,
            n.rel.out_of_order,
            n.rel.acks_sent,
            n.ifuncs_executed
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos_sweep::NodeFaultStats;
    use crate::dapc::ChaseResult;

    fn fake_point(depth: u64, get: f64, bitcode: f64) -> SweepPoint {
        SweepPoint {
            depth,
            results: vec![
                ChaseResult {
                    mode: ChaseMode::Get,
                    depth,
                    servers: 4,
                    chases_per_second: get,
                    chase_latency_us: 1.0e6 / get,
                },
                ChaseResult {
                    mode: ChaseMode::CachedBitcode,
                    depth,
                    servers: 4,
                    chases_per_second: bitcode,
                    chase_latency_us: 1.0e6 / bitcode,
                },
            ],
        }
    }

    #[test]
    fn figure_rendering_includes_all_series() {
        let points = vec![fake_point(1, 1000.0, 1300.0), fake_point(4, 250.0, 310.0)];
        let text = render_figure(
            "Fig test",
            "Pointer Chase Depth",
            &[1, 4],
            &points,
            &[ChaseMode::Get, ChaseMode::CachedBitcode],
        );
        assert!(text.contains("Fig test"));
        assert!(text.contains("Cached Bitcode"));
        assert!(text.contains("1300.0"));
        assert!(text.contains('%'));

        let csv = render_figure_csv(
            &[1, 4],
            &points,
            &[ChaseMode::Get, ChaseMode::CachedBitcode],
        );
        assert!(csv.starts_with("x,Get,Cached_Bitcode"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn pct_diff_matches_definition() {
        let p = fake_point(1, 1000.0, 1300.0);
        assert!((p.get_vs_bitcode_pct().unwrap() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn link_health_table_renders_estimator_state() {
        let rows = vec![
            (
                0u32,
                tc_core::LinkHealth {
                    peer: 2,
                    srtt: 1_500,
                    rttvar: 250,
                    rto: 2_500,
                    unacked: 3,
                    silent_rounds: 1,
                },
            ),
            (
                2u32,
                tc_core::LinkHealth {
                    peer: 0,
                    srtt: 0, // no sample yet
                    rttvar: 0,
                    rto: 100_000,
                    unacked: 0,
                    silent_rounds: 0,
                },
            ),
        ];
        let table = render_link_health("link health", &rows);
        assert!(table.contains("link health"));
        assert!(table.contains("SRTT"));
        assert!(table.contains("1.5µs"));
        assert!(table.contains("2.5µs"));
        assert!(table.contains("100.0µs"));
        assert!(table.contains('-'), "unsampled links print a dash");
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    fn chaos_tables_render_fault_statistics() {
        let row = ChaosSweepRow {
            backend: "simnet".into(),
            drop_rate: 0.05,
            exact: true,
            messages_delivered: 123,
            faults_injected: 17,
            retransmits: 9,
            dup_drops: 4,
            elapsed_ms: 2.5,
            per_node: vec![
                NodeFaultStats {
                    rank: 0,
                    rel: tc_core::RelMetrics {
                        retransmits: 9,
                        dup_drops: 0,
                        out_of_order: 2,
                        acks_sent: 0,
                    },
                    ifuncs_executed: 0,
                },
                NodeFaultStats {
                    rank: 1,
                    rel: tc_core::RelMetrics {
                        retransmits: 0,
                        dup_drops: 4,
                        out_of_order: 1,
                        acks_sent: 40,
                    },
                    ifuncs_executed: 25,
                },
            ],
        };
        let table = render_chaos_table("chaos", std::slice::from_ref(&row));
        assert!(table.contains("simnet"));
        assert!(table.contains("5.0%"));
        assert!(table.contains("exact"));
        assert!(table.contains("17"));
        let nodes = render_chaos_nodes(&row);
        assert!(nodes.contains("client"));
        assert!(nodes.contains("srv 1"));
        assert!(nodes.contains("25"));
        assert!(nodes.contains("40"));
    }
}
