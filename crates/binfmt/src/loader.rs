//! Loading binary objects: GOT construction, relocation patching, and the
//! "pure ifunc" fast path.
//!
//! This models the target-side half of the paper's binary ifunc pipeline
//! (Section III-B): when a binary ifunc message arrives, the runtime copies
//! the code into an executable side buffer, reconstructs the Global Offset
//! Table by resolving every external symbol through the local process, and
//! patches the code's GOT references so calls land on the right addresses.
//! If the ifunc is *pure* (no external symbols), patching is skipped and the
//! code is executed directly.

use crate::error::{BinfmtError, Result};
use crate::object::{ObjectFile, RelocKind, SectionKind, SymbolKind};
use std::collections::HashMap;

/// Resolves external symbol names to addresses in the loading process.
///
/// In the real system this is `ld.so` plus the set of shared libraries the
/// ifunc's `.deps` file names; in the reproduction the `tc-jit` dylib
/// registry and the `tc-core` runtime implement it.
pub trait SymbolResolver {
    /// Resolve `symbol` to an address, or `None` when it is unknown.
    fn resolve(&self, symbol: &str) -> Option<u64>;
}

/// A resolver backed by a simple name → address map (useful for tests and
/// for composing resolvers).
#[derive(Debug, Default, Clone)]
pub struct MapResolver {
    map: HashMap<String, u64>,
}

impl MapResolver {
    /// Empty resolver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a symbol.
    pub fn insert(&mut self, name: impl Into<String>, addr: u64) -> &mut Self {
        self.map.insert(name.into(), addr);
        self
    }

    /// Number of known symbols.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no symbols are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl SymbolResolver for MapResolver {
    fn resolve(&self, symbol: &str) -> Option<u64> {
        self.map.get(symbol).copied()
    }
}

/// A resolver that tries several resolvers in order.
pub struct ChainResolver<'a> {
    resolvers: Vec<&'a dyn SymbolResolver>,
}

impl<'a> ChainResolver<'a> {
    /// Build a chain from the given resolvers (earlier wins).
    pub fn new(resolvers: Vec<&'a dyn SymbolResolver>) -> Self {
        ChainResolver { resolvers }
    }
}

impl SymbolResolver for ChainResolver<'_> {
    fn resolve(&self, symbol: &str) -> Option<u64> {
        self.resolvers.iter().find_map(|r| r.resolve(symbol))
    }
}

/// Base address at which the text section of a loaded image is assumed to
/// reside.  Addresses are symbolic in the simulation; distinct bases keep the
/// section address spaces disjoint so mistakes are detectable.
pub const TEXT_BASE: u64 = 0x0100_0000_0000;
/// Base address for the data section of a loaded image.
pub const DATA_BASE: u64 = 0x0200_0000_0000;
/// Base address for the read-only data section of a loaded image.
pub const RODATA_BASE: u64 = 0x0300_0000_0000;

/// The result of loading an object: patched section images, the constructed
/// GOT, and the entry point — the in-memory executable the runtime invokes.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedImage {
    /// Ifunc library name.
    pub name: String,
    /// Triple the image was built for.
    pub triple: String,
    /// Patched text bytes.
    pub text: Vec<u8>,
    /// Patched (writable) data bytes.
    pub data: Vec<u8>,
    /// Read-only data bytes.
    pub rodata: Vec<u8>,
    /// The Global Offset Table: `got[i]` is the resolved address of
    /// `object.got_symbols[i]`.
    pub got: Vec<u64>,
    /// GOT symbol names, parallel to `got` (useful for diagnostics and the
    /// execution engine's reverse lookups).
    pub got_symbols: Vec<String>,
    /// Offset of the entry function within `text`.
    pub entry_offset: u64,
    /// Whether the pure-ifunc fast path was taken (no GOT patching).
    pub pure_fast_path: bool,
}

impl LoadedImage {
    /// Resolved address of the GOT slot for `symbol`, if present.
    pub fn got_address(&self, symbol: &str) -> Option<u64> {
        self.got_symbols
            .iter()
            .position(|s| s == symbol)
            .map(|i| self.got[i])
    }
}

/// Options controlling the loader.
#[derive(Debug, Clone, Copy)]
pub struct LoadOptions {
    /// Triple of the loading process; loading an object built for a different
    /// triple string fails with [`BinfmtError::IncompatibleTarget`].  Binary
    /// compatibility policy (exact string match vs. ISA prefix match) is the
    /// caller's concern; the loader compares what it is given.
    pub strict_triple_check: bool,
    /// Name of the entry symbol (defaults to `"main"`).
    pub entry_symbol: &'static str,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            strict_triple_check: true,
            entry_symbol: "main",
        }
    }
}

/// Load an object into an executable image, resolving external symbols
/// through `resolver` and applying all relocations.
///
/// `host_triple` is the triple string of the loading process.  When
/// `options.strict_triple_check` is set and the object's ISA prefix (the part
/// up to the first `-`) differs from the host's, loading fails — this is the
/// exact failure mode that forces the paper's users to cross-compile binary
/// ifuncs per ISA.
pub fn load_object(
    object: &ObjectFile,
    host_triple: &str,
    resolver: &dyn SymbolResolver,
    options: LoadOptions,
) -> Result<LoadedImage> {
    if options.strict_triple_check {
        let obj_isa = object.triple.split('-').next().unwrap_or("");
        let host_isa = host_triple.split('-').next().unwrap_or("");
        if obj_isa != host_isa {
            return Err(BinfmtError::IncompatibleTarget {
                object_triple: object.triple.clone(),
                host_triple: host_triple.to_string(),
            });
        }
    }

    let entry = object
        .symbols
        .iter()
        .find(|s| s.name == options.entry_symbol && s.kind == SymbolKind::Func)
        .ok_or(BinfmtError::NoEntry)?;

    let mut image = LoadedImage {
        name: object.name.clone(),
        triple: object.triple.clone(),
        text: object.text.bytes.clone(),
        data: object.data.bytes.clone(),
        rodata: object.rodata.bytes.clone(),
        got: Vec::new(),
        got_symbols: object.got_symbols.clone(),
        entry_offset: entry.offset,
        pure_fast_path: object.is_pure(),
    };

    if image.pure_fast_path {
        // Pure ifunc: no external references, no GOT, straight to execution.
        return Ok(image);
    }

    // Build the GOT: resolve every external symbol the object references.
    image.got.reserve(object.got_symbols.len());
    for sym in &object.got_symbols {
        let addr = resolver
            .resolve(sym)
            .ok_or_else(|| BinfmtError::UndefinedSymbol {
                symbol: sym.clone(),
            })?;
        image.got.push(addr);
    }

    // Apply relocations.
    for reloc in &object.relocations {
        let value: u64 = match reloc.kind {
            RelocKind::GotSlot => {
                let slot = object
                    .got_symbols
                    .iter()
                    .position(|s| *s == reloc.symbol)
                    .ok_or_else(|| {
                        BinfmtError::BadRelocation(format!(
                            "GOT relocation for `{}` but the symbol has no GOT slot",
                            reloc.symbol
                        ))
                    })?;
                (slot as u64).wrapping_add(reloc.addend as u64)
            }
            RelocKind::Abs64 => {
                // Local symbols resolve to their section base + offset;
                // otherwise fall back to the external resolver.
                let addr = if let Some(sym) = object.symbol(&reloc.symbol) {
                    section_base(sym.section) + sym.offset
                } else {
                    resolver
                        .resolve(&reloc.symbol)
                        .ok_or_else(|| BinfmtError::UndefinedSymbol {
                            symbol: reloc.symbol.clone(),
                        })?
                };
                addr.wrapping_add(reloc.addend as u64)
            }
        };
        patch_u64(&mut image, reloc.section, reloc.offset, value)?;
    }

    Ok(image)
}

/// Symbolic base address of a section in a loaded image.
pub fn section_base(kind: SectionKind) -> u64 {
    match kind {
        SectionKind::Text => TEXT_BASE,
        SectionKind::Data => DATA_BASE,
        SectionKind::RoData => RODATA_BASE,
    }
}

fn patch_u64(image: &mut LoadedImage, section: SectionKind, offset: u64, value: u64) -> Result<()> {
    let bytes = match section {
        SectionKind::Text => &mut image.text,
        SectionKind::Data => &mut image.data,
        SectionKind::RoData => &mut image.rodata,
    };
    let start = offset as usize;
    let end = start.checked_add(8).ok_or_else(|| {
        BinfmtError::BadRelocation(format!("relocation offset {offset} overflows"))
    })?;
    if end > bytes.len() {
        return Err(BinfmtError::BadRelocation(format!(
            "relocation at {}+{offset} extends past section end ({} bytes)",
            section.name(),
            bytes.len()
        )));
    }
    bytes[start..end].copy_from_slice(&value.to_le_bytes());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Relocation, Symbol};

    fn object_with_got() -> ObjectFile {
        let mut obj = ObjectFile::new("needs_linking", "x86_64-xeon-e5-sim");
        obj.text.bytes = vec![0u8; 64];
        obj.data.bytes = vec![0u8; 32];
        obj.symbols.push(Symbol {
            name: "main".into(),
            section: SectionKind::Text,
            offset: 0,
            kind: SymbolKind::Func,
        });
        obj.symbols.push(Symbol {
            name: "local_table".into(),
            section: SectionKind::Data,
            offset: 16,
            kind: SymbolKind::Object,
        });
        obj.intern_got_symbol("tc_put");
        obj.intern_got_symbol("memcpy");
        obj.relocations.push(Relocation {
            section: SectionKind::Text,
            offset: 8,
            symbol: "tc_put".into(),
            kind: RelocKind::GotSlot,
            addend: 0,
        });
        obj.relocations.push(Relocation {
            section: SectionKind::Text,
            offset: 24,
            symbol: "memcpy".into(),
            kind: RelocKind::GotSlot,
            addend: 0,
        });
        obj.relocations.push(Relocation {
            section: SectionKind::Text,
            offset: 40,
            symbol: "local_table".into(),
            kind: RelocKind::Abs64,
            addend: 4,
        });
        obj.deps.push("libc.so".into());
        obj
    }

    fn resolver() -> MapResolver {
        let mut r = MapResolver::new();
        r.insert("tc_put", 0xdead_0001);
        r.insert("memcpy", 0xdead_0002);
        r
    }

    #[test]
    fn load_resolves_got_and_applies_relocations() {
        let obj = object_with_got();
        let image = load_object(
            &obj,
            "x86_64-xeon-e5-sim",
            &resolver(),
            LoadOptions::default(),
        )
        .unwrap();
        assert!(!image.pure_fast_path);
        assert_eq!(image.got, vec![0xdead_0001, 0xdead_0002]);
        assert_eq!(image.got_address("memcpy"), Some(0xdead_0002));
        assert_eq!(image.got_address("unknown"), None);

        // GOT-slot relocations wrote the slot indices.
        assert_eq!(u64::from_le_bytes(image.text[8..16].try_into().unwrap()), 0);
        assert_eq!(
            u64::from_le_bytes(image.text[24..32].try_into().unwrap()),
            1
        );
        // Abs64 relocation wrote DATA_BASE + 16 + 4.
        assert_eq!(
            u64::from_le_bytes(image.text[40..48].try_into().unwrap()),
            DATA_BASE + 20
        );
    }

    #[test]
    fn undefined_symbol_fails_linking() {
        let obj = object_with_got();
        let mut partial = MapResolver::new();
        partial.insert("tc_put", 1);
        let err =
            load_object(&obj, "x86_64-xeon-e5-sim", &partial, LoadOptions::default()).unwrap_err();
        assert_eq!(
            err,
            BinfmtError::UndefinedSymbol {
                symbol: "memcpy".into()
            }
        );
    }

    #[test]
    fn wrong_isa_rejected() {
        let obj = object_with_got();
        let err = load_object(
            &obj,
            "aarch64-cortex-a72-sim",
            &resolver(),
            LoadOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, BinfmtError::IncompatibleTarget { .. }));
    }

    #[test]
    fn same_isa_different_march_accepted() {
        let obj = object_with_got();
        // Generic x86_64 host can load a Xeon-tuned object: same ISA.
        let image = load_object(
            &obj,
            "x86_64-generic-sim",
            &resolver(),
            LoadOptions::default(),
        );
        assert!(image.is_ok());
    }

    #[test]
    fn pure_object_skips_got() {
        let mut obj = ObjectFile::new("pure", "aarch64-a64fx-sim");
        obj.text.bytes = vec![0u8; 16];
        obj.symbols.push(Symbol {
            name: "main".into(),
            section: SectionKind::Text,
            offset: 0,
            kind: SymbolKind::Func,
        });
        let empty = MapResolver::new();
        let image = load_object(&obj, "aarch64-a64fx-sim", &empty, LoadOptions::default()).unwrap();
        assert!(image.pure_fast_path);
        assert!(image.got.is_empty());
    }

    #[test]
    fn missing_entry_symbol_rejected() {
        let mut obj = ObjectFile::new("noentry", "x86_64-generic-sim");
        obj.text.bytes = vec![0u8; 16];
        let empty = MapResolver::new();
        let err =
            load_object(&obj, "x86_64-generic-sim", &empty, LoadOptions::default()).unwrap_err();
        assert_eq!(err, BinfmtError::NoEntry);
    }

    #[test]
    fn relocation_out_of_bounds_rejected() {
        let mut obj = object_with_got();
        obj.relocations.push(Relocation {
            section: SectionKind::Text,
            offset: 60, // 60 + 8 > 64
            symbol: "tc_put".into(),
            kind: RelocKind::GotSlot,
            addend: 0,
        });
        let err = load_object(
            &obj,
            "x86_64-xeon-e5-sim",
            &resolver(),
            LoadOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, BinfmtError::BadRelocation(_)));
    }

    #[test]
    fn chain_resolver_prefers_earlier() {
        let mut a = MapResolver::new();
        a.insert("x", 1);
        let mut b = MapResolver::new();
        b.insert("x", 2);
        b.insert("y", 3);
        let chain = ChainResolver::new(vec![&a, &b]);
        assert_eq!(chain.resolve("x"), Some(1));
        assert_eq!(chain.resolve("y"), Some(3));
        assert_eq!(chain.resolve("z"), None);
    }

    #[test]
    fn section_bases_are_disjoint() {
        assert_ne!(
            section_base(SectionKind::Text),
            section_base(SectionKind::Data)
        );
        assert_ne!(
            section_base(SectionKind::Data),
            section_base(SectionKind::RoData)
        );
    }
}
