//! Error types for the binary object format.

use std::fmt;

/// Errors produced while encoding, decoding, or loading binary objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinfmtError {
    /// The byte stream is not a valid object file.
    Decode(String),
    /// A relocation or GOT entry references a symbol the resolver does not
    /// know about (the remote-dynamic-linking failure mode).
    UndefinedSymbol {
        /// Name of the missing symbol.
        symbol: String,
    },
    /// A relocation points outside its section.
    BadRelocation(String),
    /// The object targets a different ISA than the loading process.
    IncompatibleTarget {
        /// Triple recorded in the object.
        object_triple: String,
        /// Triple of the loading process.
        host_triple: String,
    },
    /// The object has no entry symbol.
    NoEntry,
}

impl fmt::Display for BinfmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinfmtError::Decode(msg) => write!(f, "object decode failed: {msg}"),
            BinfmtError::UndefinedSymbol { symbol } => {
                write!(
                    f,
                    "undefined symbol `{symbol}` during remote dynamic linking"
                )
            }
            BinfmtError::BadRelocation(msg) => write!(f, "bad relocation: {msg}"),
            BinfmtError::IncompatibleTarget {
                object_triple,
                host_triple,
            } => write!(
                f,
                "binary object built for {object_triple} cannot be loaded on {host_triple}"
            ),
            BinfmtError::NoEntry => write!(f, "object has no entry symbol"),
        }
    }
}

impl std::error::Error for BinfmtError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, BinfmtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_symbol_and_triples() {
        let e = BinfmtError::UndefinedSymbol {
            symbol: "omp_get_num_threads".into(),
        };
        assert!(e.to_string().contains("omp_get_num_threads"));

        let e = BinfmtError::IncompatibleTarget {
            object_triple: "x86_64-xeon-e5-sim".into(),
            host_triple: "aarch64-cortex-a72-sim".into(),
        };
        let s = e.to_string();
        assert!(s.contains("x86_64"));
        assert!(s.contains("aarch64"));
    }
}
