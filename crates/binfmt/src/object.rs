//! The ELF-like object container used by binary ifuncs.
//!
//! A binary ifunc in the paper is built from the `.text` and `.data` sections
//! of a shared library, packed into the message frame together with the
//! metadata needed to patch its Global Offset Table on the target process
//! (Section III-B).  [`ObjectFile`] models exactly that: sections, a symbol
//! table, relocation records that reference external symbols through GOT
//! slots, and the dependency list.  The container is ISA-specific — an object
//! built for an x86-64 host cannot be loaded on an Arm DPU — which is the
//! portability limitation that motivates the bitcode path.

use crate::error::{BinfmtError, Result};

/// Magic bytes of the serialized object format (`TCSO` = Three-Chains Shared
/// Object).
pub const OBJECT_MAGIC: [u8; 4] = *b"TCSO";
/// Current object format version.
pub const OBJECT_VERSION: u16 = 2;

/// Which section a symbol or relocation lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SectionKind {
    /// Executable code.
    Text,
    /// Writable initialised data.
    Data,
    /// Read-only data.
    RoData,
}

impl SectionKind {
    /// All section kinds.
    pub const ALL: [SectionKind; 3] = [SectionKind::Text, SectionKind::Data, SectionKind::RoData];

    /// Stable tag for serialization.
    pub fn tag(self) -> u8 {
        match self {
            SectionKind::Text => 0,
            SectionKind::Data => 1,
            SectionKind::RoData => 2,
        }
    }

    /// Inverse of [`SectionKind::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Self::ALL.get(tag as usize).copied()
    }

    /// Conventional section name.
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Text => ".text",
            SectionKind::Data => ".data",
            SectionKind::RoData => ".rodata",
        }
    }
}

/// Kind of a defined symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolKind {
    /// A function entry point.
    Func,
    /// A data object.
    Object,
}

impl SymbolKind {
    /// Stable tag for serialization.
    pub fn tag(self) -> u8 {
        match self {
            SymbolKind::Func => 0,
            SymbolKind::Object => 1,
        }
    }

    /// Inverse of [`SymbolKind::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(SymbolKind::Func),
            1 => Some(SymbolKind::Object),
            _ => None,
        }
    }
}

/// A symbol defined by the object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Section the symbol is defined in.
    pub section: SectionKind,
    /// Byte offset of the symbol within its section.
    pub offset: u64,
    /// Function or data object.
    pub kind: SymbolKind,
}

/// Relocation kinds supported by the loader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelocKind {
    /// Patch an 8-byte slot with the *index* of the GOT entry for the named
    /// external symbol (the code then loads the resolved address through the
    /// GOT at run time) — the paper's GOT-redirection mechanism.
    GotSlot,
    /// Patch an 8-byte slot with the resolved absolute address of the symbol
    /// (used for intra-object references to data).
    Abs64,
}

impl RelocKind {
    /// Stable tag for serialization.
    pub fn tag(self) -> u8 {
        match self {
            RelocKind::GotSlot => 0,
            RelocKind::Abs64 => 1,
        }
    }

    /// Inverse of [`RelocKind::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(RelocKind::GotSlot),
            1 => Some(RelocKind::Abs64),
            _ => None,
        }
    }
}

/// A relocation record: "patch `section[offset..offset+8]` according to
/// `kind` using `symbol` (+ `addend`)".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relocation {
    /// Section whose bytes get patched.
    pub section: SectionKind,
    /// Byte offset of the 8-byte slot to patch.
    pub offset: u64,
    /// Symbol the relocation refers to.
    pub symbol: String,
    /// Relocation kind.
    pub kind: RelocKind,
    /// Constant added to the resolved value.
    pub addend: i64,
}

/// A section: raw bytes plus an alignment requirement.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Section {
    /// Section contents.
    pub bytes: Vec<u8>,
    /// Required alignment (power of two).
    pub align: u32,
}

/// An ELF-like object file: what a binary ifunc ships over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectFile {
    /// Library (ifunc) name.
    pub name: String,
    /// Target triple string the object was compiled for
    /// (e.g. `"aarch64-a64fx-sim"`); checked against the host at load time.
    pub triple: String,
    /// Executable code.
    pub text: Section,
    /// Writable data.
    pub data: Section,
    /// Read-only data.
    pub rodata: Section,
    /// Defined symbols.
    pub symbols: Vec<Symbol>,
    /// Relocations to apply at load time.
    pub relocations: Vec<Relocation>,
    /// External symbols that need GOT entries (order defines slot indices).
    pub got_symbols: Vec<String>,
    /// Shared-library dependencies to load before execution.
    pub deps: Vec<String>,
}

impl ObjectFile {
    /// Create an empty object for a target triple.
    pub fn new(name: impl Into<String>, triple: impl Into<String>) -> Self {
        ObjectFile {
            name: name.into(),
            triple: triple.into(),
            text: Section {
                bytes: Vec::new(),
                align: 16,
            },
            data: Section {
                bytes: Vec::new(),
                align: 8,
            },
            rodata: Section {
                bytes: Vec::new(),
                align: 8,
            },
            symbols: Vec::new(),
            relocations: Vec::new(),
            got_symbols: Vec::new(),
            deps: Vec::new(),
        }
    }

    /// Access a section by kind.
    pub fn section(&self, kind: SectionKind) -> &Section {
        match kind {
            SectionKind::Text => &self.text,
            SectionKind::Data => &self.data,
            SectionKind::RoData => &self.rodata,
        }
    }

    /// Mutable access to a section by kind.
    pub fn section_mut(&mut self, kind: SectionKind) -> &mut Section {
        match kind {
            SectionKind::Text => &mut self.text,
            SectionKind::Data => &mut self.data,
            SectionKind::RoData => &mut self.rodata,
        }
    }

    /// Find a defined symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Register an external symbol in the GOT, returning its slot index.
    pub fn intern_got_symbol(&mut self, name: &str) -> u32 {
        if let Some(pos) = self.got_symbols.iter().position(|s| s == name) {
            pos as u32
        } else {
            self.got_symbols.push(name.to_string());
            (self.got_symbols.len() - 1) as u32
        }
    }

    /// True when the object references no external symbols and has no
    /// dependencies — the paper's "pure" ifunc, which can skip GOT patching
    /// and go straight to execution.
    pub fn is_pure(&self) -> bool {
        self.got_symbols.is_empty()
            && self.deps.is_empty()
            && self
                .relocations
                .iter()
                .all(|r| r.kind != RelocKind::GotSlot)
    }

    /// Total payload size of the code + data that actually ships in a binary
    /// ifunc message (the `.text` and `.data` sections, as in the paper).
    pub fn shipped_size(&self) -> usize {
        self.text.bytes.len() + self.data.bytes.len() + self.rodata.bytes.len()
    }

    // -- serialization ------------------------------------------------------

    /// Serialize the object into bytes (what the message frame carries).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.shipped_size() + 256);
        out.extend_from_slice(&OBJECT_MAGIC);
        out.extend_from_slice(&OBJECT_VERSION.to_le_bytes());
        write_str(&mut out, &self.name);
        write_str(&mut out, &self.triple);
        for kind in SectionKind::ALL {
            let s = self.section(kind);
            out.extend_from_slice(&s.align.to_le_bytes());
            write_bytes(&mut out, &s.bytes);
        }
        write_u32(&mut out, self.symbols.len() as u32);
        for sym in &self.symbols {
            write_str(&mut out, &sym.name);
            out.push(sym.section.tag());
            out.extend_from_slice(&sym.offset.to_le_bytes());
            out.push(sym.kind.tag());
        }
        write_u32(&mut out, self.relocations.len() as u32);
        for r in &self.relocations {
            out.push(r.section.tag());
            out.extend_from_slice(&r.offset.to_le_bytes());
            write_str(&mut out, &r.symbol);
            out.push(r.kind.tag());
            out.extend_from_slice(&r.addend.to_le_bytes());
        }
        write_u32(&mut out, self.got_symbols.len() as u32);
        for g in &self.got_symbols {
            write_str(&mut out, g);
        }
        write_u32(&mut out, self.deps.len() as u32);
        for d in &self.deps {
            write_str(&mut out, d);
        }
        out
    }

    /// Deserialize an object.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut cur = Cursor { buf: bytes, pos: 0 };
        let magic = cur.take(4)?;
        if magic != OBJECT_MAGIC {
            return Err(BinfmtError::Decode(format!("bad magic {magic:02x?}")));
        }
        let version = u16::from_le_bytes([cur.byte()?, cur.byte()?]);
        if version != OBJECT_VERSION {
            return Err(BinfmtError::Decode(format!(
                "unsupported object version {version}"
            )));
        }
        let name = cur.string()?;
        let triple = cur.string()?;
        let mut obj = ObjectFile::new(name, triple);
        for kind in SectionKind::ALL {
            let align = u32::from_le_bytes(cur.take(4)?.try_into().unwrap());
            let bytes = cur.bytes()?;
            *obj.section_mut(kind) = Section { bytes, align };
        }
        let nsyms = cur.u32()?;
        for _ in 0..nsyms {
            let name = cur.string()?;
            let sect_tag = cur.byte()?;
            let section = SectionKind::from_tag(sect_tag)
                .ok_or_else(|| BinfmtError::Decode(format!("bad section tag {sect_tag}")))?;
            let offset = u64::from_le_bytes(cur.take(8)?.try_into().unwrap());
            let kind_tag = cur.byte()?;
            let kind = SymbolKind::from_tag(kind_tag)
                .ok_or_else(|| BinfmtError::Decode(format!("bad symbol kind {kind_tag}")))?;
            obj.symbols.push(Symbol {
                name,
                section,
                offset,
                kind,
            });
        }
        let nrelocs = cur.u32()?;
        for _ in 0..nrelocs {
            let sect_tag = cur.byte()?;
            let section = SectionKind::from_tag(sect_tag)
                .ok_or_else(|| BinfmtError::Decode(format!("bad section tag {sect_tag}")))?;
            let offset = u64::from_le_bytes(cur.take(8)?.try_into().unwrap());
            let symbol = cur.string()?;
            let kind_tag = cur.byte()?;
            let kind = RelocKind::from_tag(kind_tag)
                .ok_or_else(|| BinfmtError::Decode(format!("bad reloc kind {kind_tag}")))?;
            let addend = i64::from_le_bytes(cur.take(8)?.try_into().unwrap());
            obj.relocations.push(Relocation {
                section,
                offset,
                symbol,
                kind,
                addend,
            });
        }
        let ngot = cur.u32()?;
        for _ in 0..ngot {
            obj.got_symbols.push(cur.string()?);
        }
        let ndeps = cur.u32()?;
        for _ in 0..ndeps {
            obj.deps.push(cur.string()?);
        }
        Ok(obj)
    }
}

// -- tiny serialization helpers ---------------------------------------------

fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_bytes(out: &mut Vec<u8>, b: &[u8]) {
    write_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_bytes(out, s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len().saturating_sub(self.pos) < n {
            return Err(BinfmtError::Decode(format!(
                "truncated object at offset {}",
                self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn byte(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b).map_err(|_| BinfmtError::Decode("invalid UTF-8".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_object() -> ObjectFile {
        let mut obj = ObjectFile::new("tsi", "aarch64-a64fx-sim");
        obj.text.bytes = vec![0xAA; 96];
        obj.data.bytes = vec![0x00; 16];
        obj.rodata.bytes = b"hello".to_vec();
        obj.symbols.push(Symbol {
            name: "main".into(),
            section: SectionKind::Text,
            offset: 0,
            kind: SymbolKind::Func,
        });
        obj.symbols.push(Symbol {
            name: "counter_scratch".into(),
            section: SectionKind::Data,
            offset: 8,
            kind: SymbolKind::Object,
        });
        let slot = obj.intern_got_symbol("tc_return_result");
        obj.relocations.push(Relocation {
            section: SectionKind::Text,
            offset: 40,
            symbol: "tc_return_result".into(),
            kind: RelocKind::GotSlot,
            addend: 0,
        });
        assert_eq!(slot, 0);
        obj.deps.push("libucp.so".into());
        obj
    }

    #[test]
    fn roundtrip() {
        let obj = sample_object();
        let bytes = obj.encode();
        let decoded = ObjectFile::decode(&bytes).unwrap();
        assert_eq!(obj, decoded);
    }

    #[test]
    fn bad_magic_and_truncation_rejected() {
        let obj = sample_object();
        let mut bytes = obj.encode();
        bytes[0] = b'!';
        assert!(ObjectFile::decode(&bytes).is_err());

        let bytes = obj.encode();
        for cut in [3usize, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(ObjectFile::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn got_interning_dedups() {
        let mut obj = ObjectFile::new("x", "x86_64-xeon-e5-sim");
        assert_eq!(obj.intern_got_symbol("a"), 0);
        assert_eq!(obj.intern_got_symbol("b"), 1);
        assert_eq!(obj.intern_got_symbol("a"), 0);
        assert_eq!(obj.got_symbols.len(), 2);
    }

    #[test]
    fn purity_detection() {
        let mut obj = ObjectFile::new("pure", "x86_64-generic-sim");
        obj.text.bytes = vec![1, 2, 3];
        assert!(obj.is_pure());
        obj.intern_got_symbol("memcpy");
        assert!(!obj.is_pure());

        let mut obj2 = ObjectFile::new("deps", "x86_64-generic-sim");
        obj2.deps.push("libomp.so".into());
        assert!(!obj2.is_pure());
    }

    #[test]
    fn shipped_size_counts_all_sections() {
        let obj = sample_object();
        assert_eq!(obj.shipped_size(), 96 + 16 + 5);
    }

    #[test]
    fn symbol_lookup() {
        let obj = sample_object();
        assert!(obj.symbol("main").is_some());
        assert!(obj.symbol("does_not_exist").is_none());
        assert_eq!(obj.symbol("counter_scratch").unwrap().offset, 8);
    }

    #[test]
    fn section_kind_tags_roundtrip() {
        for k in SectionKind::ALL {
            assert_eq!(SectionKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(SectionKind::from_tag(9), None);
        assert_eq!(
            RelocKind::from_tag(RelocKind::Abs64.tag()),
            Some(RelocKind::Abs64)
        );
        assert_eq!(
            SymbolKind::from_tag(SymbolKind::Func.tag()),
            Some(SymbolKind::Func)
        );
    }
}
