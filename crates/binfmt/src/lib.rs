//! # tc-binfmt — ELF-like objects for binary ifuncs
//!
//! The paper's *binary* ifunc representation ships the `.text` and `.data`
//! sections of a pre-compiled shared library and performs remote dynamic
//! linking on the target by reconstructing the Global Offset Table
//! (Section III-B).  This crate models that container and its loader:
//!
//! * [`object::ObjectFile`] — sections, symbols, relocations, GOT symbol
//!   list, dependency list, and a compact wire encoding;
//! * [`loader::load_object`] — the target-side loader: ISA compatibility
//!   check, GOT construction through a [`loader::SymbolResolver`], relocation
//!   patching, and the "pure ifunc" fast path that skips linking entirely.
//!
//! The machine code stored in `.text` is produced by `tc-jit`'s ahead-of-time
//! path; this crate is agnostic to its contents.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod loader;
pub mod object;

pub use error::{BinfmtError, Result};
pub use loader::{
    load_object, section_base, ChainResolver, LoadOptions, LoadedImage, MapResolver,
    SymbolResolver, DATA_BASE, RODATA_BASE, TEXT_BASE,
};
pub use object::{
    ObjectFile, RelocKind, Relocation, Section, SectionKind, Symbol, SymbolKind, OBJECT_MAGIC,
    OBJECT_VERSION,
};
