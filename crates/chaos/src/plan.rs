//! Declarative fault plans.
//!
//! A [`FaultPlan`] is configuration, not machinery: it says *what* should go
//! wrong on which links and when, in backend-neutral units.  Probabilities
//! apply per link traversal; scheduled windows ([`Partition`],
//! [`CrashWindow`]) are expressed in **traversal counts** rather than
//! seconds, because the two cluster backends disagree about what a second is
//! (virtual vs. wall-clock time) but agree exactly on how many messages have
//! crossed a link.

/// Per-link fault probabilities (each in `0.0..=1.0`, applied per traversal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability the message is silently dropped.
    pub drop: f64,
    /// Probability the message is delivered twice.
    pub duplicate: f64,
    /// Probability the message is delayed (simulated backend: extra fabric
    /// latency; threaded backend: held back behind later traffic).
    pub delay: f64,
    /// Probability the message is reordered behind the link's next message.
    pub reorder: f64,
    /// Maximum delay, in abstract units of roughly one fabric latency each
    /// (the backend scales it; `0` disables delay even if `delay > 0`).
    pub max_delay_units: u32,
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults {
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            reorder: 0.0,
            max_delay_units: 4,
        }
    }
}

impl LinkFaults {
    /// True when every probability is zero (the link is fault-free).
    pub fn is_quiet(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.delay == 0.0 && self.reorder == 0.0
    }
}

/// A scheduled network partition: while active, messages between `group_a`
/// and the rest of the cluster are dropped.  The window is per-link: link
/// `(a, b)` is partitioned while its traversal count is in `from..to`, and
/// heals once `to` traversals have been attempted (retransmissions burn
/// through the window, which is what makes healing deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Ranks on one side of the partition (everything else is the other
    /// side).
    pub group_a: Vec<usize>,
    /// First affected traversal (inclusive) of each crossing link.
    pub from: u64,
    /// First unaffected traversal (exclusive) — the heal point.
    pub to: u64,
}

impl Partition {
    /// True when the link `(src, dst)` crosses this partition.
    pub fn crosses(&self, src: usize, dst: usize) -> bool {
        self.group_a.contains(&src) != self.group_a.contains(&dst)
    }
}

/// A node crash-and-restart window: while "down", the node neither receives
/// nor emits messages (they are dropped at the fabric).  The window is
/// counted in traversals touching the node (inbound or outbound), so the
/// restart is reached deterministically as traffic — including
/// retransmissions — keeps arriving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashing rank.
    pub node: usize,
    /// First dropped traversal touching the node (inclusive).
    pub from: u64,
    /// First surviving traversal (exclusive) — the restart point.
    pub to: u64,
}

/// A seeded, declarative fault plan for a whole cluster run.
///
/// ```
/// use tc_chaos::FaultPlan;
/// let plan = FaultPlan::seeded(7)
///     .drop_rate(0.01)
///     .reorder_rate(0.05)
///     .partition(&[2], 4, 12);
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of every per-link decision stream.
    pub seed: u64,
    /// Fault probabilities applied to links without an override.
    pub default_link: LinkFaults,
    /// Per-link `(src, dst)` overrides (directed).
    pub link_overrides: Vec<((usize, usize), LinkFaults)>,
    /// Scheduled partitions.
    pub partitions: Vec<Partition>,
    /// Scheduled node crash windows.
    pub crashes: Vec<CrashWindow>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::seeded(0)
    }
}

impl FaultPlan {
    /// An empty (fault-free) plan with the given seed.  Installing an empty
    /// plan still routes traffic through the reliability layer — useful for
    /// exercising the protocol itself — but injects nothing.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            default_link: LinkFaults::default(),
            link_overrides: Vec::new(),
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Set the default per-traversal drop probability.
    pub fn drop_rate(mut self, p: f64) -> Self {
        self.default_link.drop = p;
        self
    }

    /// Set the default per-traversal duplication probability.
    pub fn duplicate_rate(mut self, p: f64) -> Self {
        self.default_link.duplicate = p;
        self
    }

    /// Set the default per-traversal delay probability.
    pub fn delay_rate(mut self, p: f64) -> Self {
        self.default_link.delay = p;
        self
    }

    /// Set the default per-traversal reorder probability.
    pub fn reorder_rate(mut self, p: f64) -> Self {
        self.default_link.reorder = p;
        self
    }

    /// Override the fault profile of one directed link.
    pub fn link(mut self, src: usize, dst: usize, faults: LinkFaults) -> Self {
        self.link_overrides.push(((src, dst), faults));
        self
    }

    /// Schedule a partition separating `group_a` from the rest for the
    /// traversal window `from..to` of every crossing link.
    pub fn partition(mut self, group_a: &[usize], from: u64, to: u64) -> Self {
        self.partitions.push(Partition {
            group_a: group_a.to_vec(),
            from,
            to,
        });
        self
    }

    /// Schedule a crash-and-restart window for `node` covering the traversal
    /// window `from..to` of traffic touching it.
    pub fn crash(mut self, node: usize, from: u64, to: u64) -> Self {
        self.crashes.push(CrashWindow { node, from, to });
        self
    }

    /// The fault profile of a directed link (override or default).
    pub fn faults_for(&self, src: usize, dst: usize) -> LinkFaults {
        self.link_overrides
            .iter()
            .rev()
            .find(|((s, d), _)| *s == src && *d == dst)
            .map(|(_, f)| *f)
            .unwrap_or(self.default_link)
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.default_link.is_quiet()
            && self.link_overrides.iter().all(|(_, f)| f.is_quiet())
            && self.partitions.is_empty()
            && self.crashes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_and_overrides_win() {
        let noisy = LinkFaults {
            drop: 0.5,
            ..LinkFaults::default()
        };
        let plan = FaultPlan::seeded(3)
            .drop_rate(0.01)
            .link(0, 2, noisy)
            .partition(&[1], 5, 9)
            .crash(2, 0, 4);
        assert_eq!(plan.seed, 3);
        assert_eq!(plan.faults_for(0, 1).drop, 0.01);
        assert_eq!(plan.faults_for(0, 2).drop, 0.5);
        assert!(plan.partitions[0].crosses(0, 1));
        assert!(!plan.partitions[0].crosses(0, 2));
        assert!(!plan.is_empty());
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::seeded(9).is_empty());
        assert!(LinkFaults::default().is_quiet());
    }

    #[test]
    fn later_link_override_wins() {
        let a = LinkFaults {
            drop: 0.1,
            ..LinkFaults::default()
        };
        let b = LinkFaults {
            drop: 0.9,
            ..LinkFaults::default()
        };
        let plan = FaultPlan::seeded(0).link(1, 2, a).link(1, 2, b);
        assert_eq!(plan.faults_for(1, 2).drop, 0.9);
    }
}
