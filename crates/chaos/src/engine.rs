//! The deterministic fault-decision machine.
//!
//! [`ChaosEngine::decide`] is the single choke point both backends consult
//! for every link traversal.  Each directed link owns an independent
//! splitmix64 stream seeded from `(plan.seed, src, dst)` and a traversal
//! counter; a decision always draws the same number of values from the
//! stream regardless of outcome, so the fault schedule of one link never
//! depends on what happened on another.

use crate::plan::FaultPlan;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use tc_simnet::SplitMix64;

/// What kind of fault a decision injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Probabilistic drop.
    Drop,
    /// Probabilistic duplication.
    Duplicate,
    /// Probabilistic delay.
    Delay,
    /// Probabilistic reorder.
    Reorder,
    /// Drop because a scheduled partition is active on the link.
    PartitionDrop,
    /// Drop because an endpoint is inside a crash window.
    CrashDrop,
}

/// The fate of one message on one link traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// False when the message is dropped (see `dropped_by` for why).
    pub deliver: bool,
    /// Why the message was dropped, when it was.
    pub dropped_by: Option<FaultKind>,
    /// Deliver a second copy (only meaningful when `deliver`).
    pub duplicate: bool,
    /// Extra delay in abstract latency units (0 = none).
    pub delay_units: u32,
    /// Reorder this message behind the link's next traffic.
    pub reorder: bool,
}

impl Decision {
    /// The boring decision: deliver exactly once, on time, in order.
    pub const CLEAN: Decision = Decision {
        deliver: true,
        dropped_by: None,
        duplicate: false,
        delay_units: 0,
        reorder: false,
    };

    /// True when this decision injected any fault at all.
    pub fn is_faulty(&self) -> bool {
        !self.deliver || self.duplicate || self.delay_units > 0 || self.reorder
    }
}

/// Cumulative counters of injected faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Total decisions made (= link traversals observed).
    pub decisions: u64,
    /// Probabilistic drops.
    pub drops: u64,
    /// Duplicated deliveries.
    pub duplicates: u64,
    /// Delayed deliveries.
    pub delays: u64,
    /// Reordered deliveries.
    pub reorders: u64,
    /// Drops caused by an active partition.
    pub partition_drops: u64,
    /// Drops caused by a crash window.
    pub crash_drops: u64,
}

impl ChaosStats {
    /// Total faults injected, of any kind.
    pub fn total_injected(&self) -> u64 {
        self.drops
            + self.duplicates
            + self.delays
            + self.reorders
            + self.partition_drops
            + self.crash_drops
    }
}

struct LinkState {
    rng: SplitMix64,
    traversals: u64,
}

/// The deterministic decision machine for one [`FaultPlan`].
#[derive(Debug)]
pub struct ChaosEngine {
    plan: FaultPlan,
    links: HashMap<(usize, usize), LinkState>,
    /// Traversals touching each node (inbound + outbound), for crash
    /// windows.
    node_traffic: HashMap<usize, u64>,
    stats: ChaosStats,
}

impl std::fmt::Debug for LinkState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkState")
            .field("traversals", &self.traversals)
            .finish()
    }
}

fn mix_link_seed(seed: u64, src: usize, dst: usize) -> u64 {
    // One splitmix step over a src/dst tag keeps per-link streams disjoint.
    let mut s = SplitMix64::new(
        seed ^ ((src as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            ^ ((dst as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f)),
    );
    s.next_u64()
}

impl ChaosEngine {
    /// Build the engine for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        ChaosEngine {
            plan,
            links: HashMap::new(),
            node_traffic: HashMap::new(),
            stats: ChaosStats::default(),
        }
    }

    /// The plan this engine executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of the injected-fault counters.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// Decide the fate of the next message crossing the directed link
    /// `(src, dst)`.  Advances the link's traversal counter and both
    /// endpoints' traffic counters.
    pub fn decide(&mut self, src: usize, dst: usize) -> Decision {
        self.stats.decisions += 1;
        let faults = self.plan.faults_for(src, dst);
        let state = self.links.entry((src, dst)).or_insert_with(|| LinkState {
            rng: SplitMix64::new(mix_link_seed(self.plan.seed, src, dst)),
            traversals: 0,
        });
        let n = state.traversals;
        state.traversals += 1;
        // Always draw the same number of values so one fault never shifts
        // the schedule of the others.
        let draw_drop = state.rng.next_u64();
        let draw_dup = state.rng.next_u64();
        let draw_delay = state.rng.next_u64();
        let draw_reorder = state.rng.next_u64();
        let draw_units = state.rng.next_u64();

        let src_traffic = {
            let c = self.node_traffic.entry(src).or_insert(0);
            *c += 1;
            *c - 1
        };
        let dst_traffic = {
            let c = self.node_traffic.entry(dst).or_insert(0);
            *c += 1;
            *c - 1
        };

        // Scheduled faults first: a partitioned or crashed endpoint drops
        // the message regardless of the probabilistic draws.
        for crash in &self.plan.crashes {
            let touched = if crash.node == src {
                Some(src_traffic)
            } else if crash.node == dst {
                Some(dst_traffic)
            } else {
                None
            };
            if let Some(t) = touched {
                if t >= crash.from && t < crash.to {
                    self.stats.crash_drops += 1;
                    return Decision {
                        deliver: false,
                        dropped_by: Some(FaultKind::CrashDrop),
                        ..Decision::CLEAN
                    };
                }
            }
        }
        for p in &self.plan.partitions {
            if p.crosses(src, dst) && n >= p.from && n < p.to {
                self.stats.partition_drops += 1;
                return Decision {
                    deliver: false,
                    dropped_by: Some(FaultKind::PartitionDrop),
                    ..Decision::CLEAN
                };
            }
        }

        let hit = |draw: u64, p: f64| -> bool { p > 0.0 && (draw as f64) < p * (u64::MAX as f64) };
        if hit(draw_drop, faults.drop) {
            self.stats.drops += 1;
            return Decision {
                deliver: false,
                dropped_by: Some(FaultKind::Drop),
                ..Decision::CLEAN
            };
        }
        let duplicate = hit(draw_dup, faults.duplicate);
        let delayed = faults.max_delay_units > 0 && hit(draw_delay, faults.delay);
        let reorder = hit(draw_reorder, faults.reorder);
        let delay_units = if delayed {
            1 + (draw_units % faults.max_delay_units as u64) as u32
        } else {
            0
        };
        if duplicate {
            self.stats.duplicates += 1;
        }
        if delayed {
            self.stats.delays += 1;
        }
        if reorder {
            self.stats.reorders += 1;
        }
        Decision {
            deliver: true,
            dropped_by: None,
            duplicate,
            delay_units,
            reorder,
        }
    }
}

/// A clonable, thread-safe handle to a shared [`ChaosEngine`].
///
/// The threaded backend's envelope filter runs on many node threads at once;
/// the simulated backend is single-threaded but shares the same interface so
/// transports are written once.  All methods lock internally.
#[derive(Clone, Debug)]
pub struct ChaosSession {
    engine: Arc<Mutex<ChaosEngine>>,
}

impl ChaosSession {
    /// Start a session executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        ChaosSession {
            engine: Arc::new(Mutex::new(ChaosEngine::new(plan))),
        }
    }

    /// Decide the fate of the next `(src, dst)` traversal.
    pub fn decide(&self, src: usize, dst: usize) -> Decision {
        self.engine
            .lock()
            .expect("chaos engine poisoned")
            .decide(src, dst)
    }

    /// Snapshot of the injected-fault counters.
    pub fn stats(&self) -> ChaosStats {
        self.engine.lock().expect("chaos engine poisoned").stats()
    }

    /// Clone of the underlying plan.
    pub fn plan(&self) -> FaultPlan {
        self.engine
            .lock()
            .expect("chaos engine poisoned")
            .plan()
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultPlan, LinkFaults};

    fn decisions(engine: &mut ChaosEngine, src: usize, dst: usize, n: usize) -> Vec<Decision> {
        (0..n).map(|_| engine.decide(src, dst)).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::seeded(42).drop_rate(0.2).duplicate_rate(0.1);
        let mut a = ChaosEngine::new(plan.clone());
        let mut b = ChaosEngine::new(plan);
        assert_eq!(decisions(&mut a, 0, 1, 256), decisions(&mut b, 0, 1, 256));
    }

    #[test]
    fn different_links_have_independent_streams() {
        let plan = FaultPlan::seeded(42).drop_rate(0.5);
        let mut a = ChaosEngine::new(plan.clone());
        let mut b = ChaosEngine::new(plan);
        // Interleaving traffic on another link must not shift link (0, 1).
        let solo = decisions(&mut a, 0, 1, 64);
        let mut interleaved = Vec::new();
        for _ in 0..64 {
            let _ = b.decide(0, 2);
            interleaved.push(b.decide(0, 1));
            let _ = b.decide(2, 0);
        }
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn empty_plan_is_always_clean() {
        let mut e = ChaosEngine::new(FaultPlan::seeded(1));
        for d in decisions(&mut e, 0, 3, 128) {
            assert_eq!(d, Decision::CLEAN);
        }
        assert_eq!(e.stats().total_injected(), 0);
        assert_eq!(e.stats().decisions, 128);
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let mut e = ChaosEngine::new(FaultPlan::seeded(7).drop_rate(0.1));
        let ds = decisions(&mut e, 0, 1, 20_000);
        let drops = ds.iter().filter(|d| !d.deliver).count();
        assert!(
            (1_400..2_600).contains(&drops),
            "10% of 20k traversals should drop ~2000, got {drops}"
        );
        assert_eq!(e.stats().drops as usize, drops);
    }

    #[test]
    fn partition_window_opens_and_heals() {
        let plan = FaultPlan::seeded(5).partition(&[1], 3, 6);
        let mut e = ChaosEngine::new(plan);
        let ds = decisions(&mut e, 0, 1, 10);
        for (i, d) in ds.iter().enumerate() {
            let partitioned = (3..6).contains(&(i as u64));
            assert_eq!(!d.deliver, partitioned, "traversal {i}");
            if partitioned {
                assert_eq!(d.dropped_by, Some(FaultKind::PartitionDrop));
            }
        }
        // A link inside group_a's side is unaffected.
        assert!(e.decide(0, 2).deliver);
        assert_eq!(e.stats().partition_drops, 3);
    }

    #[test]
    fn crash_window_blackholes_all_node_traffic() {
        let plan = FaultPlan::seeded(5).crash(2, 0, 4);
        let mut e = ChaosEngine::new(plan);
        // Traffic *touching* node 2 is dropped until 4 traversals passed.
        assert!(!e.decide(0, 2).deliver); // node 2 traffic: 1
        assert!(!e.decide(2, 1).deliver); // 2
        assert!(e.decide(0, 1).deliver); // does not touch node 2
        assert!(!e.decide(1, 2).deliver); // 3
        assert!(!e.decide(0, 2).deliver); // 4 — last dropped
        assert!(e.decide(0, 2).deliver, "restarted after the window");
        assert_eq!(e.stats().crash_drops, 4);
    }

    #[test]
    fn delay_units_respect_bound() {
        let plan = FaultPlan::seeded(11).delay_rate(1.0);
        let mut e = ChaosEngine::new(plan);
        for d in decisions(&mut e, 0, 1, 200) {
            assert!(d.delay_units >= 1 && d.delay_units <= 4, "{d:?}");
        }
        assert_eq!(e.stats().delays, 200);
    }

    #[test]
    fn session_is_shareable_and_counts() {
        let session = ChaosSession::new(FaultPlan::seeded(3).drop_rate(1.0));
        let s2 = session.clone();
        let h = std::thread::spawn(move || {
            for _ in 0..10 {
                assert!(!s2.decide(0, 1).deliver);
            }
        });
        h.join().unwrap();
        for _ in 0..5 {
            let _ = session.decide(1, 0);
        }
        assert_eq!(session.stats().decisions, 15);
        assert_eq!(session.stats().drops, 15);
        assert_eq!(session.plan().default_link.drop, 1.0);
    }

    #[test]
    fn link_override_changes_one_direction_only() {
        let loud = LinkFaults {
            drop: 1.0,
            ..LinkFaults::default()
        };
        let mut e = ChaosEngine::new(FaultPlan::seeded(1).link(0, 1, loud));
        assert!(!e.decide(0, 1).deliver);
        assert!(e.decide(1, 0).deliver);
    }
}
