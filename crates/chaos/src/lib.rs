//! # tc-chaos — the deterministic fault-injection plane
//!
//! The paper's X-RDMA/ifunc pattern assumes a lossless fabric; real fabrics
//! (and the ROADMAP's production ambitions) are not so polite.  This crate
//! defines the *fault model* both cluster backends inject and the reliable
//! delivery layer in `tc-core` must survive:
//!
//! * [`FaultPlan`] — a seeded, declarative description of what goes wrong:
//!   per-link drop / duplicate / delay / reorder probabilities, scheduled
//!   network [`Partition`]s, and node [`CrashWindow`]s;
//! * [`ChaosEngine`] — the deterministic decision machine: given a plan and
//!   a `(src, dst)` link traversal it answers "what happens to this
//!   message?", drawing from a per-link splitmix64 stream so the same plan
//!   produces the same fault schedule on every run;
//! * [`ChaosSession`] — a cheaply clonable, thread-safe handle shared
//!   between a transport's send paths (the simulated event engine injects
//!   faults as virtual-time effects; the threaded backend interposes an
//!   envelope filter), with a [`ChaosStats`] snapshot for reporting.
//!
//! Determinism contract: fault decisions are a pure function of
//! `(plan.seed, src, dst, per-link traversal count)`.  Every traversal of a
//! link — first sends, retransmits, acks — consumes exactly one decision, so
//! a partition window expressed in traversal counts heals the same way on
//! both backends even though their notions of time differ.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod plan;

pub use engine::{ChaosEngine, ChaosSession, ChaosStats, Decision, FaultKind};
pub use plan::{CrashWindow, FaultPlan, LinkFaults, Partition};
