//! CPU profiles: how fast a processing element executes ifuncs, dispatches
//! handlers, and JIT-compiles bitcode.
//!
//! The three profiles that matter for the reproduction are the Fujitsu A64FX
//! (Ookami compute nodes), the Intel Xeon E5-2697A v4 (Thor hosts) and the
//! Arm Cortex-A72 cores of the BlueField-2 DPU (Thor adapters).  The numbers
//! are calibrated against the paper's Tables I–III rather than measured from
//! hardware; see `DESIGN.md` for the substitution rationale.

use crate::time::SimDuration;

/// A processing element's speed parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Effective clock used to convert interpreter cycles to time, in GHz.
    pub clock_ghz: f64,
    /// Fixed overhead of dispatching an Active-Message handler
    /// (the paper's "Lookup+Exec" for the AM mode, minus the kernel itself).
    pub am_dispatch_ns: f64,
    /// Fixed overhead of looking up and launching an already-cached ifunc.
    pub cached_lookup_ns: f64,
    /// Fixed overhead of registering a newly-arrived ifunc (cache-miss path,
    /// excluding JIT compilation which is modelled separately).
    pub uncached_lookup_ns: f64,
    /// Fixed component of a JIT compilation (ORC session setup).
    pub jit_base_ns: f64,
    /// Marginal JIT compilation cost per byte of bitcode.
    pub jit_ns_per_byte: f64,
    /// Fixed cost of loading a binary ifunc (GOT patch + buffer setup);
    /// binary code "arrives ready to be executed" so this is small.
    pub binary_load_ns: f64,
}

impl CpuProfile {
    /// Fujitsu A64FX (Ookami).  Calibrated against Table I: Lookup+Exec
    /// 0.05–0.10 µs, JIT ≈ 6.59 ms for the TSI kernel.  The marginal cost is
    /// expressed per byte of the *selected single-target* bitcode (~2.6 KiB
    /// for the TSI kernel — the paper's 5159 B archive covers two ISAs).
    pub fn a64fx() -> Self {
        CpuProfile {
            name: "Fujitsu A64FX",
            clock_ghz: 1.8,
            am_dispatch_ns: 55.0,
            cached_lookup_ns: 25.0,
            uncached_lookup_ns: 75.0,
            jit_base_ns: 300_000.0,
            jit_ns_per_byte: 2_440.0,
            binary_load_ns: 900.0,
        }
    }

    /// Intel Xeon E5-2697A v4 (Thor hosts).  Calibrated against Table III:
    /// Lookup+Exec 0.01–0.02 µs, JIT ≈ 0.83 ms for the TSI kernel's
    /// single-target bitcode.
    pub fn xeon_e5() -> Self {
        CpuProfile {
            name: "Intel Xeon E5-2697A v4",
            clock_ghz: 2.6,
            am_dispatch_ns: 7.0,
            cached_lookup_ns: 14.0,
            uncached_lookup_ns: 8.0,
            jit_base_ns: 60_000.0,
            jit_ns_per_byte: 300.0,
            binary_load_ns: 250.0,
        }
    }

    /// Arm Cortex-A72 (BlueField-2 DPU cores).  Calibrated against Table II:
    /// Lookup+Exec 0.01–0.04 µs, JIT ≈ 4.50 ms for the TSI kernel's
    /// single-target bitcode.
    pub fn bf2_cortex_a72() -> Self {
        CpuProfile {
            name: "BlueField-2 Cortex-A72",
            clock_ghz: 2.0,
            am_dispatch_ns: 8.0,
            cached_lookup_ns: 8.0,
            uncached_lookup_ns: 30.0,
            jit_base_ns: 180_000.0,
            jit_ns_per_byte: 1_675.0,
            binary_load_ns: 600.0,
        }
    }

    /// Convert a retired interpreter cycle count to execution time.
    pub fn exec_time(&self, cycles: u64) -> SimDuration {
        SimDuration::from_nanos_f64(cycles as f64 / self.clock_ghz)
    }

    /// Predicted JIT compilation time for `bitcode_bytes` at an optimisation
    /// cost factor (see `tc-jit::OptLevel::compile_cost_factor`).
    pub fn jit_time(&self, bitcode_bytes: usize, opt_cost_factor: f64) -> SimDuration {
        SimDuration::from_nanos_f64(
            self.jit_base_ns + self.jit_ns_per_byte * bitcode_bytes as f64 * opt_cost_factor,
        )
    }

    /// Dispatch overhead of an Active-Message handler invocation.
    pub fn am_dispatch(&self) -> SimDuration {
        SimDuration::from_nanos_f64(self.am_dispatch_ns)
    }

    /// Lookup overhead for a cached ifunc.
    pub fn cached_lookup(&self) -> SimDuration {
        SimDuration::from_nanos_f64(self.cached_lookup_ns)
    }

    /// Registration overhead for an uncached ifunc (excluding JIT).
    pub fn uncached_lookup(&self) -> SimDuration {
        SimDuration::from_nanos_f64(self.uncached_lookup_ns)
    }

    /// Load cost for a binary ifunc (GOT patching and buffer setup).
    pub fn binary_load(&self) -> SimDuration {
        SimDuration::from_nanos_f64(self.binary_load_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Size of the single-target TSI bitcode the receiving JIT actually
    /// compiles (the paper's 5159 B archive covers two ISAs, ≈ 2.6 KiB each).
    const TSI_SELECTED_BITCODE_BYTES: usize = 2_580;

    #[test]
    fn jit_times_match_paper_order() {
        // Table I/II/III: A64FX 6.59 ms, BF2 4.50 ms, Xeon 0.83 ms.
        let a64fx = CpuProfile::a64fx().jit_time(TSI_SELECTED_BITCODE_BYTES, 1.0);
        let bf2 = CpuProfile::bf2_cortex_a72().jit_time(TSI_SELECTED_BITCODE_BYTES, 1.0);
        let xeon = CpuProfile::xeon_e5().jit_time(TSI_SELECTED_BITCODE_BYTES, 1.0);
        assert!(a64fx > bf2 && bf2 > xeon);
        assert!(
            (a64fx.as_millis_f64() - 6.59).abs() < 0.7,
            "a64fx {}",
            a64fx
        );
        assert!((bf2.as_millis_f64() - 4.50).abs() < 0.5, "bf2 {}", bf2);
        assert!((xeon.as_millis_f64() - 0.83).abs() < 0.15, "xeon {}", xeon);
    }

    #[test]
    fn exec_time_scales_with_clock() {
        let fast = CpuProfile::xeon_e5();
        let slow = CpuProfile::a64fx();
        assert!(fast.exec_time(10_000) < slow.exec_time(10_000));
    }

    #[test]
    fn lookup_overheads_are_sub_microsecond() {
        for cpu in [
            CpuProfile::a64fx(),
            CpuProfile::xeon_e5(),
            CpuProfile::bf2_cortex_a72(),
        ] {
            assert!(cpu.cached_lookup().as_nanos() < 1_000);
            assert!(cpu.am_dispatch().as_nanos() < 1_000);
            assert!(cpu.uncached_lookup().as_nanos() < 1_000);
            assert!(cpu.binary_load().as_nanos() < 5_000);
        }
    }

    #[test]
    fn opt_factor_scales_jit_time() {
        let cpu = CpuProfile::xeon_e5();
        assert!(cpu.jit_time(5000, 1.35) > cpu.jit_time(5000, 0.6));
    }
}
