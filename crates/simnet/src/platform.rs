//! Testbed platform profiles.
//!
//! The paper evaluates on two clusters (Section IV-F):
//!
//! * **Ookami** — HPE Apollo 80, 174 Fujitsu A64FX FX700 nodes, ConnectX-6
//!   100 Gb/s InfiniBand;
//! * **Thor** — Dell PowerEdge R730 with dual Xeon E5-2697A v4 hosts, each
//!   with an Arm Cortex-A72-based NVIDIA BlueField-2 100 Gb/s DPU.
//!
//! A [`Platform`] bundles the client CPU, the server/DPU CPU and the fabric
//! model, and knows which `tc-bitir` target triples the two sides use.  All
//! calibration constants live in [`crate::cpu`] and [`crate::fabric`].

use crate::cpu::CpuProfile;
use crate::fabric::FabricProfile;

/// Identifier for the three platform configurations the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformId {
    /// Ookami: A64FX client and A64FX servers.
    Ookami,
    /// Thor with the Xeon host as client and BlueField-2 DPUs as servers.
    ThorBf2,
    /// Thor with Xeon hosts on both sides.
    ThorXeon,
}

impl PlatformId {
    /// All platforms.
    pub const ALL: [PlatformId; 3] = [
        PlatformId::Ookami,
        PlatformId::ThorBf2,
        PlatformId::ThorXeon,
    ];
}

/// A complete testbed description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Platform {
    /// Which configuration this is.
    pub id: PlatformId,
    /// Human-readable name used in reports.
    pub name: &'static str,
    /// CPU profile of the client (the process issuing ifuncs / GETs).
    pub client_cpu: CpuProfile,
    /// CPU profile of the servers (the processes receiving and executing
    /// ifuncs — DPU Arm cores in the Thor-BF2 configuration).
    pub server_cpu: CpuProfile,
    /// Fabric model between the participating endpoints.
    pub fabric: FabricProfile,
    /// Canonical target-triple string of the client.
    pub client_triple: &'static str,
    /// Canonical target-triple string of the servers.
    pub server_triple: &'static str,
    /// Number of servers used in the paper's depth-sweep figures for this
    /// platform (32 for Thor-BF2, 64 for Ookami, 16 for Thor-Xeon).
    pub sweep_servers: usize,
}

impl Platform {
    /// The Ookami configuration (Figures 6 and 10).
    pub fn ookami() -> Self {
        Platform {
            id: PlatformId::Ookami,
            name: "Ookami (A64FX client & servers)",
            client_cpu: CpuProfile::a64fx(),
            server_cpu: CpuProfile::a64fx(),
            fabric: FabricProfile::ookami_connectx6(),
            client_triple: "aarch64-a64fx-sim",
            server_triple: "aarch64-a64fx-sim",
            sweep_servers: 64,
        }
    }

    /// The Thor configuration with BlueField-2 DPU servers (Figures 5, 8, 9
    /// and 12; Tables II and V).
    pub fn thor_bf2() -> Self {
        Platform {
            id: PlatformId::ThorBf2,
            name: "Thor (Xeon client, BlueField-2 DPU servers)",
            client_cpu: CpuProfile::xeon_e5(),
            server_cpu: CpuProfile::bf2_cortex_a72(),
            fabric: FabricProfile::thor_bf2_fabric(),
            client_triple: "x86_64-xeon-e5-sim",
            server_triple: "aarch64-cortex-a72-sim",
            sweep_servers: 32,
        }
    }

    /// The Thor configuration with Xeon servers (Figures 7 and 11; Tables III
    /// and VI).
    pub fn thor_xeon() -> Self {
        Platform {
            id: PlatformId::ThorXeon,
            name: "Thor (Xeon client & servers)",
            client_cpu: CpuProfile::xeon_e5(),
            server_cpu: CpuProfile::xeon_e5(),
            fabric: FabricProfile::thor_xeon_fabric(),
            client_triple: "x86_64-xeon-e5-sim",
            server_triple: "x86_64-xeon-e5-sim",
            sweep_servers: 16,
        }
    }

    /// Look a platform up by id.
    pub fn by_id(id: PlatformId) -> Self {
        match id {
            PlatformId::Ookami => Self::ookami(),
            PlatformId::ThorBf2 => Self::thor_bf2(),
            PlatformId::ThorXeon => Self::thor_xeon(),
        }
    }

    /// True when client and servers have different ISAs — the heterogeneous
    /// case where binary ifuncs built on the client cannot run on the servers
    /// and fat-bitcode is required.
    pub fn is_heterogeneous(&self) -> bool {
        let isa = |t: &str| t.split('-').next().unwrap_or("").to_string();
        isa(self.client_triple) != isa(self.server_triple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_platforms_constructible_by_id() {
        for id in PlatformId::ALL {
            let p = Platform::by_id(id);
            assert_eq!(p.id, id);
            assert!(!p.name.is_empty());
            assert!(p.sweep_servers >= 16);
        }
    }

    #[test]
    fn thor_bf2_is_the_heterogeneous_platform() {
        assert!(Platform::thor_bf2().is_heterogeneous());
        assert!(!Platform::ookami().is_heterogeneous());
        assert!(!Platform::thor_xeon().is_heterogeneous());
    }

    #[test]
    fn sweep_server_counts_match_paper_figures() {
        assert_eq!(Platform::thor_bf2().sweep_servers, 32); // Fig. 5
        assert_eq!(Platform::ookami().sweep_servers, 64); // Fig. 6
        assert_eq!(Platform::thor_xeon().sweep_servers, 16); // Fig. 7
    }

    #[test]
    fn dpu_servers_are_slower_than_their_hosts() {
        let thor = Platform::thor_bf2();
        // JIT on the DPU cores must be slower than on the Xeon host.
        assert!(
            thor.server_cpu.jit_time(5159, 1.0) > thor.client_cpu.jit_time(5159, 1.0),
            "BF2 JIT should be slower than Xeon JIT"
        );
    }

    #[test]
    fn triples_parse_as_bitir_targets() {
        // Keep the triple strings in sync with tc-bitir's canonical names.
        for p in [
            Platform::ookami(),
            Platform::thor_bf2(),
            Platform::thor_xeon(),
        ] {
            assert!(p.client_triple.ends_with("-sim"));
            assert!(p.server_triple.ends_with("-sim"));
        }
    }
}
