//! Virtual time.
//!
//! The discrete-event simulation advances a virtual clock measured in
//! nanoseconds.  [`SimTime`] is an absolute instant, [`SimDuration`] a span;
//! both are thin wrappers over `u64` nanoseconds with saturating arithmetic
//! so model code can combine costs without overflow anxiety.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant of virtual time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (floating point, for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the epoch (floating point, for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier` (saturating).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From a floating-point nanosecond count (model outputs); negative or
    /// non-finite values clamp to zero.
    pub fn from_nanos_f64(ns: f64) -> Self {
        if ns.is_finite() && ns > 0.0 {
            SimDuration(ns.round() as u64)
        } else {
            SimDuration(0)
        }
    }

    /// From microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// From milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Nanoseconds in the span.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (floating point).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Milliseconds (floating point).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Seconds (floating point).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating sum of two spans.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = self.saturating_add(rhs);
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} µs", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3} ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3} µs", self.as_micros_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_conversions() {
        let t = SimTime::ZERO + SimDuration::from_micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        let t2 = t + SimDuration::from_millis(1);
        assert_eq!(t2.as_nanos(), 1_005_000);
        assert_eq!((t2 - t).as_nanos(), 1_000_000);
        assert_eq!((t - t2).as_nanos(), 0, "saturating subtraction");
        assert!((t2.as_secs_f64() - 0.001005).abs() < 1e-9);
    }

    #[test]
    fn from_f64_clamps_bad_values() {
        assert_eq!(SimDuration::from_nanos_f64(-5.0).as_nanos(), 0);
        assert_eq!(SimDuration::from_nanos_f64(f64::NAN).as_nanos(), 0);
        assert_eq!(SimDuration::from_nanos_f64(2.6).as_nanos(), 3);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(1_500)), "1.500 µs");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000 ms");
    }

    #[test]
    fn ordering() {
        assert!(SimTime(5) < SimTime(6));
        assert!(SimDuration(10) > SimDuration(2));
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t += SimDuration::from_nanos(100);
        }
        assert_eq!(t.as_nanos(), 1000);
        let mut d = SimDuration::ZERO;
        d += SimDuration::from_micros(1);
        d += SimDuration::from_nanos(500);
        assert_eq!(d.as_nanos(), 1500);
    }
}
