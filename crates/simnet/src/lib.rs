//! # tc-simnet — the simulated testbed: fabric, CPUs, platforms, event engine
//!
//! The paper's evaluation runs on hardware this reproduction does not have
//! (Fujitsu A64FX nodes, Xeon hosts with BlueField-2 DPUs, 100 Gb/s
//! InfiniBand).  This crate is the substitute substrate:
//!
//! * [`time`] — virtual time ([`SimTime`] / [`SimDuration`]);
//! * [`event`] — a deterministic discrete-event queue;
//! * [`fabric`] — an analytic latency / injection-gap model of the RDMA
//!   fabric, calibrated to the paper's measured TSI message sizes and rates;
//! * [`cpu`] — per-CPU execution, dispatch and JIT-speed profiles calibrated
//!   to the paper's overhead-breakdown tables;
//! * [`platform`] — the Ookami and Thor testbed configurations;
//! * [`rand`] — the seeded splitmix64 generator shared by workload
//!   generation and property tests;
//! * [`threaded`] — a real-thread, channel-based transport used by the
//!   cluster API's thread backend to exercise the runtime under genuine
//!   concurrency.
//!
//! The functional behaviour of the framework (what ifuncs do when they run)
//! never depends on this crate; only *when* things happen in virtual time
//! does.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cpu;
pub mod event;
pub mod fabric;
pub mod platform;
pub mod rand;
pub mod threaded;
pub mod time;

pub use cpu::CpuProfile;
pub use event::EventQueue;
pub use fabric::{paper_sizes, FabricOp, FabricProfile};
pub use platform::{Platform, PlatformId};
pub use rand::SplitMix64;
pub use threaded::{
    external_id, external_port, Envelope, EnvelopeFilter, ExternalQueue, Injector, NodeCtx,
    SendStatus, ThreadCluster, ThreadConfig, ThreadMetrics, ThreadedNode, EXTERNAL_SENDER,
    MAX_EXTERNAL_PORTS,
};
pub use time::{SimDuration, SimTime};
