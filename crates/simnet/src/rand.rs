//! A small, dependency-free deterministic PRNG (splitmix64).
//!
//! Used wherever the reproduction needs seeded randomness — pointer-table
//! shuffles in `tc-workloads`, case generation in the property tests — so
//! the stream is defined in exactly one place and stays stable across
//! platforms, keeping figures and test cases reproducible.

/// A splitmix64 generator.  Statistical quality is ample for workload
/// generation; the point is determinism, not cryptography.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` via rejection sampling (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform value in `lo..hi` (hi > lo).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// `len` pseudo-random bytes, where `len` itself is drawn from
    /// `0..=max_len` (the shape property tests want).
    pub fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.below(max_len as u64 + 1) as usize;
        (0..len).map(|_| self.next_u64() as u8).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let mut c = SplitMix64::new(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_stays_in_range_and_covers_it() {
        let mut g = SplitMix64::new(42);
        let mut seen = [false; 7];
        for _ in 0..512 {
            let v = g.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_and_bytes_respect_bounds() {
        let mut g = SplitMix64::new(1);
        for _ in 0..128 {
            let v = g.range(10, 20);
            assert!((10..20).contains(&v));
            assert!(g.bytes(16).len() <= 16);
        }
    }
}
