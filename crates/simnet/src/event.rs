//! The discrete-event engine.
//!
//! A minimal, deterministic discrete-event queue: events are `(time, seq,
//! payload)` triples ordered by time with a monotonically increasing sequence
//! number breaking ties, so two runs over the same inputs always pop events
//! in the same order.  The higher layers (the Three-Chains cluster simulation
//! in `tc-core::sim`) define what the payload means.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            processed: 0,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.  Scheduling in the past is
    /// clamped to "now" (the event fires immediately but after already-queued
    /// events at the current timestamp).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let time = if at < self.now { self.now } else { at };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Schedule `event` after a delay relative to the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Timestamp of the next pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        self.processed += 1;
        Some((s.time, s.event))
    }

    /// Drive the queue until it drains or `max_events` have been processed.
    /// The handler may schedule further events through the queue reference it
    /// receives.  Returns the number of events processed by this call.
    pub fn run<F>(&mut self, max_events: u64, mut handler: F) -> u64
    where
        F: FnMut(&mut Self, SimTime, E),
    {
        let mut count = 0u64;
        while count < max_events {
            let Some((time, event)) = self.pop() else {
                break;
            };
            handler(self, time, event);
            count += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order_with_fifo_ties() {
        let mut q: EventQueue<&'static str> = EventQueue::new();
        q.schedule_at(SimTime(50), "b");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(50), "c"); // same time as "b", scheduled later
        q.schedule_at(SimTime(5), "first");

        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "a", "b", "c"]);
        assert_eq!(q.now(), SimTime(50));
        assert_eq!(q.processed(), 4);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(SimTime(100), 1);
        q.pop();
        assert_eq!(q.now(), SimTime(100));
        q.schedule_at(SimTime(10), 2);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t, SimTime(100), "past event fires at current time");
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(SimTime(1_000), 1);
        q.pop();
        q.schedule_after(SimDuration::from_nanos(500), 2);
        assert_eq!(q.peek_time(), Some(SimTime(1_500)));
    }

    #[test]
    fn run_drives_cascading_events() {
        // Each event n < 5 schedules n+1 100ns later.
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(SimTime(0), 0);
        let mut seen = Vec::new();
        q.run(1_000, |q, _t, n| {
            seen.push(n);
            if n < 5 {
                q.schedule_after(SimDuration::from_nanos(100), n + 1);
            }
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(q.now(), SimTime(500));
        assert!(q.is_empty());
    }

    #[test]
    fn run_respects_max_events() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(SimTime(i), i as u32);
        }
        let n = q.run(3, |_q, _t, _e| {});
        assert_eq!(n, 3);
        assert_eq!(q.len(), 7);
    }

    #[test]
    fn determinism_across_identical_runs() {
        let build = || {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..100u64 {
                q.schedule_at(SimTime(i % 7), i);
            }
            let mut order = Vec::new();
            while let Some((_, e)) = q.pop() {
                order.push(e);
            }
            order
        };
        assert_eq!(build(), build());
    }
}
