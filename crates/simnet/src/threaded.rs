//! A real-concurrency transport: nodes as threads, messages over channels.
//!
//! The discrete-event simulator gives us calibrated *timing*; this module
//! gives us real *parallelism*.  Each node of a [`ThreadCluster`] runs on its
//! own OS thread with an mpsc channel as its receive queue — the analogue
//! of the paper's recommendation that "the target processes should setup a
//! daemon thread that polls the message buffers periodically".  The cluster
//! transport in `tc-core` drives node runtimes over it to show that the
//! Three-Chains state machines (registration caching, recursive forwarding,
//! result return) are correct under genuine concurrency, independent of the
//! virtual-time model.
//!
//! Two properties matter for performance:
//!
//! * **zero-copy payloads** — envelopes carry [`tc_ucx::Bytes`] views, so
//!   handing a message to a channel moves a refcount, not the payload;
//! * **batched draining** — a node thread that wakes up drains everything
//!   queued on its channel (up to a cap) and hands the whole batch to
//!   [`ThreadedNode::on_batch`], paying the wakeup/synchronisation cost once
//!   per burst instead of once per message.
//!
//! Delivery is not silent-lossy: every send reports a [`SendStatus`], and the
//! cluster counts messages that could not be delivered (unknown node id,
//! stopped node) in [`ThreadMetrics`] so transports can surface drops instead
//! of hiding them.  The cluster also tracks how many node-bound messages are
//! enqueued-or-processing ([`ThreadCluster::pending_messages`]), giving
//! drivers a cheap, race-tolerant idleness signal.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tc_ucx::Bytes;

/// Sender id used for messages injected from outside the cluster.
///
/// Equal to [`external_id`]`(0)`: the driver's default identity is external
/// port 0, so single-client code keeps working unchanged.
pub const EXTERNAL_SENDER: usize = usize::MAX;

/// Most external ports a cluster can address.  Ids in
/// `(usize::MAX - MAX_EXTERNAL_PORTS, usize::MAX]` are external; everything
/// below is a node id — far outside any realistic node count.
pub const MAX_EXTERNAL_PORTS: usize = 1024;

/// The envelope id of external port `port` (driver-side endpoint `port`).
/// Port 0 is [`EXTERNAL_SENDER`].
pub const fn external_id(port: usize) -> usize {
    usize::MAX - port
}

/// Inverse of [`external_id`]: `Some(port)` when `id` addresses an external
/// port, `None` for node ids.
pub const fn external_port(id: usize) -> Option<usize> {
    if id > usize::MAX - MAX_EXTERNAL_PORTS {
        Some(usize::MAX - id)
    } else {
        None
    }
}

/// Default for [`ThreadConfig::max_batch`]: most messages a node thread
/// drains per wakeup before handing the batch to the node (bounds per-batch
/// latency under sustained load).
pub const DEFAULT_MAX_BATCH: usize = 128;

/// An interposed envelope filter: sees every envelope entering the fabric
/// (node-to-node, driver-to-node and node-to-driver) *before* it is
/// enqueued, and decides what actually travels.  Returning the envelope
/// unchanged is a pass-through; returning an empty vector absorbs it
/// (reported as [`SendStatus::Filtered`], not counted as a fabric drop);
/// returning several delivers each — which is how fault injection expresses
/// duplication and release of previously held-back traffic.
pub type EnvelopeFilter = Arc<dyn Fn(Envelope) -> Vec<Envelope> + Send + Sync>;

/// Tunables of a [`ThreadCluster`], all defaulted to the former hard-coded
/// behaviour.
#[derive(Clone, Default)]
pub struct ThreadConfig {
    /// Most messages a node thread drains per wakeup (0 = default).
    pub max_batch: usize,
    /// When set, node threads park with this timeout and receive
    /// [`ThreadedNode::on_tick`] callbacks at least this often — the hook
    /// reliability layers use for timeout-based retransmission.
    pub tick: Option<Duration>,
    /// Interposed envelope filter (fault injection).
    pub filter: Option<EnvelopeFilter>,
    /// External ports `0..n` each get a *dedicated* receive queue (taken
    /// with [`ThreadCluster::take_external_queue`]) instead of sharing the
    /// cluster's one external channel — so a driver can park one worker
    /// thread per port and deliveries to different ports never serialize on
    /// a single receiver.  Messages to dedicated ports carry in-flight
    /// accounting like node-bound ones (the consumer acknowledges with
    /// [`ExternalQueue::done`]).  Ports `>= n` keep the shared queue.
    /// Default 0: every port shares the classic single external queue.
    pub dedicated_external_ports: usize,
}

impl std::fmt::Debug for ThreadConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadConfig")
            .field("max_batch", &self.max_batch)
            .field("tick", &self.tick)
            .field("filter", &self.filter.is_some())
            .field("dedicated_external_ports", &self.dedicated_external_ports)
            .finish()
    }
}

impl ThreadConfig {
    fn effective_batch(&self) -> usize {
        if self.max_batch == 0 {
            DEFAULT_MAX_BATCH
        } else {
            self.max_batch
        }
    }
}

/// A message travelling between threaded nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending node id (or [`EXTERNAL_SENDER`]).
    pub from: usize,
    /// Destination node id.
    pub to: usize,
    /// Application-defined tag (the Three-Chains transport uses it to mark
    /// frame types).
    pub tag: u64,
    /// Message bytes (a shared view — moving an envelope copies nothing).
    pub data: Bytes,
    /// Detached payload segment for scatter-gather sends: logically the
    /// message is `data ‖ payload`, but the bulk payload travels as its own
    /// shared view so senders never copy it into the envelope.  Empty for
    /// ordinary sends.
    pub payload: Bytes,
}

impl Envelope {
    /// Total logical size of the message (`data` plus detached payload).
    pub fn total_len(&self) -> usize {
        self.data.len() + self.payload.len()
    }
}

/// Outcome of handing a message to the threaded fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "dropped messages are silent data loss; check or explicitly discard the status"]
pub enum SendStatus {
    /// The message was enqueued on the destination's receive channel.
    Delivered,
    /// No node with the given id exists in this cluster; the message was
    /// dropped (and counted).
    UnknownNode,
    /// The destination node has stopped and its channel is closed; the
    /// message was dropped (and counted).
    Disconnected,
    /// The interposed [`EnvelopeFilter`] absorbed the message (fault
    /// injection); counted separately from fabric drops.
    Filtered,
}

impl SendStatus {
    /// True when the message reached the destination's queue.
    pub fn is_delivered(self) -> bool {
        matches!(self, SendStatus::Delivered)
    }
}

/// Delivery counters shared by every sender of a cluster.
#[derive(Debug, Default)]
struct Counters {
    delivered: AtomicU64,
    dropped_unknown: AtomicU64,
    dropped_disconnected: AtomicU64,
    filtered: AtomicU64,
    /// Node-bound messages enqueued but not yet fully processed.
    in_flight: AtomicU64,
}

/// A snapshot of a cluster's delivery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadMetrics {
    /// Messages successfully enqueued on a destination channel.
    pub delivered: u64,
    /// Messages dropped because the destination node id does not exist.
    pub dropped_unknown: u64,
    /// Messages dropped because the destination node had stopped.
    pub dropped_disconnected: u64,
    /// Messages absorbed by the interposed envelope filter (fault
    /// injection); not part of [`ThreadMetrics::dropped`].
    pub filtered: u64,
}

impl ThreadMetrics {
    /// Total messages dropped for any reason.
    pub fn dropped(&self) -> u64 {
        self.dropped_unknown + self.dropped_disconnected
    }
}

impl Counters {
    fn snapshot(&self) -> ThreadMetrics {
        ThreadMetrics {
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped_unknown: self.dropped_unknown.load(Ordering::Relaxed),
            dropped_disconnected: self.dropped_disconnected.load(Ordering::Relaxed),
            filtered: self.filtered.load(Ordering::Relaxed),
        }
    }

    fn record(&self, status: SendStatus) -> SendStatus {
        let counter = match status {
            SendStatus::Delivered => &self.delivered,
            SendStatus::UnknownNode => &self.dropped_unknown,
            SendStatus::Disconnected => &self.dropped_disconnected,
            SendStatus::Filtered => &self.filtered,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        status
    }
}

enum Control {
    Deliver(Envelope),
    Stop,
}

fn send_control(peers: &[Sender<Control>], counters: &Counters, env: Envelope) -> SendStatus {
    match peers.get(env.to) {
        None => counters.record(SendStatus::UnknownNode),
        Some(tx) => {
            // Count the message as in flight *before* enqueueing so the
            // pending counter never reads zero while work exists.
            counters.in_flight.fetch_add(1, Ordering::SeqCst);
            match tx.send(Control::Deliver(env)) {
                Ok(()) => counters.record(SendStatus::Delivered),
                Err(_) => {
                    counters.in_flight.fetch_sub(1, Ordering::SeqCst);
                    counters.record(SendStatus::Disconnected)
                }
            }
        }
    }
}

/// The shared routing fabric: node channels, the external queues, counters,
/// and the interposed filter.  Every path that can inject an envelope — node
/// contexts, the cluster handle, cloned [`Injector`]s on driver worker
/// threads — goes through one `Router`, so fault filtering and delivery
/// accounting stay uniform no matter which thread sends.
#[derive(Clone)]
struct Router {
    peers: Vec<Sender<Control>>,
    external: Sender<Envelope>,
    /// Dedicated queues of external ports `0..dedicated.len()` (see
    /// [`ThreadConfig::dedicated_external_ports`]); higher ports share the
    /// classic external channel.
    dedicated: Vec<Sender<Envelope>>,
    counters: Arc<Counters>,
    filter: Option<EnvelopeFilter>,
}

impl Router {
    /// Route one envelope to its destination queue: a node channel, a
    /// dedicated external-port queue, or the shared external observer (the
    /// envelope's `to` field tells the driver which port it was for).
    fn route(&self, env: Envelope) -> SendStatus {
        let Some(port) = external_port(env.to) else {
            return send_control(&self.peers, &self.counters, env);
        };
        if let Some(tx) = self.dedicated.get(port) {
            // Dedicated queues carry in-flight accounting like node
            // channels: counted before enqueue, acknowledged by the
            // consumer through `ExternalQueue::done`.
            self.counters.in_flight.fetch_add(1, Ordering::SeqCst);
            return match tx.send(env) {
                Ok(()) => self.counters.record(SendStatus::Delivered),
                Err(_) => {
                    self.counters.in_flight.fetch_sub(1, Ordering::SeqCst);
                    self.counters.record(SendStatus::Disconnected)
                }
            };
        }
        match self.external.send(env) {
            Ok(()) => self.counters.record(SendStatus::Delivered),
            Err(_) => self.counters.record(SendStatus::Disconnected),
        }
    }

    /// Pass an envelope through the interposed filter (if any) and route
    /// whatever survives.  The returned status describes the *original*
    /// envelope: [`SendStatus::Filtered`] when the filter absorbed it, the
    /// first routed envelope's status otherwise.
    fn dispatch(&self, env: Envelope) -> SendStatus {
        let Some(filter) = self.filter.as_ref() else {
            return self.route(env);
        };
        let survivors = filter(env);
        if survivors.is_empty() {
            return self.counters.record(SendStatus::Filtered);
        }
        let mut first = None;
        for e in survivors {
            let status = self.route(e);
            first.get_or_insert(status);
        }
        first.unwrap_or(SendStatus::Filtered)
    }
}

/// Handle through which a node sends messages and inspects the cluster.
pub struct NodeCtx {
    node_id: usize,
    router: Router,
}

impl NodeCtx {
    /// This node's id.
    pub fn node_id(&self) -> usize {
        self.node_id
    }

    /// Number of nodes in the cluster.
    pub fn node_count(&self) -> usize {
        self.router.peers.len()
    }

    /// Send bytes to another node.  Sends to an unknown or stopped node are
    /// dropped, reported through the returned [`SendStatus`] and counted in
    /// the cluster's [`ThreadMetrics`].
    pub fn send(&self, to: usize, tag: u64, data: impl Into<Bytes>) -> SendStatus {
        self.send_vectored(to, tag, data.into(), Bytes::new())
    }

    /// Send a two-segment message (`data ‖ payload`) to another node without
    /// copying the payload: the bulk segment is moved as a shared view.
    pub fn send_vectored(&self, to: usize, tag: u64, data: Bytes, payload: Bytes) -> SendStatus {
        self.router.dispatch(Envelope {
            from: self.node_id,
            to,
            tag,
            data,
            payload,
        })
    }

    /// Send bytes to the external observer (the driving thread), port 0.
    pub fn send_external(&self, tag: u64, data: impl Into<Bytes>) -> SendStatus {
        self.send_external_vectored(tag, data.into(), Bytes::new())
    }

    /// Two-segment send to the external observer (zero-copy payload), port 0.
    pub fn send_external_vectored(&self, tag: u64, data: Bytes, payload: Bytes) -> SendStatus {
        self.send_external_port_vectored(0, tag, data, payload)
    }

    /// Send bytes to external port `port` (a specific driver-side endpoint —
    /// e.g. one of several client runtimes living on the driving thread).
    pub fn send_external_port(&self, port: usize, tag: u64, data: impl Into<Bytes>) -> SendStatus {
        self.send_external_port_vectored(port, tag, data.into(), Bytes::new())
    }

    /// Two-segment send to external port `port` (zero-copy payload).
    pub fn send_external_port_vectored(
        &self,
        port: usize,
        tag: u64,
        data: Bytes,
        payload: Bytes,
    ) -> SendStatus {
        self.router.dispatch(Envelope {
            from: self.node_id,
            to: external_id(port),
            tag,
            data,
            payload,
        })
    }

    /// Snapshot of the cluster-wide delivery counters.
    pub fn metrics(&self) -> ThreadMetrics {
        self.router.counters.snapshot()
    }
}

/// A node running inside a [`ThreadCluster`].
pub trait ThreadedNode: Send {
    /// Called once when the node's thread starts.
    fn on_start(&mut self, _ctx: &NodeCtx) {}

    /// Called for every delivered message.
    fn on_message(&mut self, msg: Envelope, ctx: &NodeCtx);

    /// Called with everything drained from the channel in one wakeup
    /// (FIFO order preserved).  The default processes messages one at a
    /// time; nodes that can amortise per-wakeup work (polling, flushing)
    /// across a burst should override this.
    fn on_batch(&mut self, msgs: Vec<Envelope>, ctx: &NodeCtx) {
        for msg in msgs {
            self.on_message(msg, ctx);
        }
    }

    /// Called at least every [`ThreadConfig::tick`] (when configured),
    /// whether or not traffic arrived — the hook for timeout-driven work
    /// such as retransmission.  Never called when no tick is configured.
    fn on_tick(&mut self, _ctx: &NodeCtx) {}
}

/// A dedicated external-port receive queue, taken from a cluster started
/// with [`ThreadConfig::dedicated_external_ports`] `> 0`.  The owning
/// (driver worker) thread parks on it directly — no polling, no contention
/// with other ports — and acknowledges processed messages with
/// [`ExternalQueue::done`] so [`ThreadCluster::pending_messages`] keeps
/// counting port-bound work as in flight until it is actually handled.
pub struct ExternalQueue {
    port: usize,
    rx: Receiver<Envelope>,
    counters: Arc<Counters>,
}

impl ExternalQueue {
    /// The external port this queue receives for.
    pub fn port(&self) -> usize {
        self.port
    }

    /// Park for the next envelope, up to `timeout`.  `None` on timeout or a
    /// shut-down cluster.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Take an already-queued envelope without blocking.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.rx.try_recv().ok()
    }

    /// Acknowledge `n` received envelopes as fully processed (decrements the
    /// cluster's in-flight count).  Call after handling, not after receiving
    /// — in-flight means enqueued *or processing*.
    pub fn done(&self, n: u64) {
        if n > 0 {
            self.counters.in_flight.fetch_sub(n, Ordering::SeqCst);
        }
    }

    /// Drain and discard everything still queued, acknowledging it (used on
    /// worker shutdown so abandoned messages don't pin the in-flight count).
    pub fn drain(&self) -> u64 {
        let mut n = 0;
        while self.rx.try_recv().is_ok() {
            n += 1;
        }
        self.done(n);
        n
    }
}

/// A cloneable injection handle for driver-side worker threads: envelopes
/// sent through it carry the chosen external port's identity and pass the
/// same interposed filter and delivery accounting as every other send.
/// This is what lets per-client worker threads inject into the fabric
/// without funnelling through the [`ThreadCluster`] handle (which the
/// driving thread owns mutably).
#[derive(Clone)]
pub struct Injector {
    router: Router,
}

impl Injector {
    /// Inject a message carrying external port `port`'s identity.
    pub fn send_from_port(
        &self,
        port: usize,
        to: usize,
        tag: u64,
        data: impl Into<Bytes>,
    ) -> SendStatus {
        self.send_vectored_from_port(port, to, tag, data.into(), Bytes::new())
    }

    /// Two-segment injection from external port `port` (zero-copy payload).
    pub fn send_vectored_from_port(
        &self,
        port: usize,
        to: usize,
        tag: u64,
        data: Bytes,
        payload: Bytes,
    ) -> SendStatus {
        self.router.dispatch(Envelope {
            from: external_id(port),
            to,
            tag,
            data,
            payload,
        })
    }

    /// Node-bound and dedicated-port messages currently enqueued or being
    /// processed (the cluster-wide counter).
    pub fn pending_messages(&self) -> u64 {
        self.router.counters.in_flight.load(Ordering::SeqCst)
    }
}

/// A running cluster of threaded nodes.
pub struct ThreadCluster {
    router: Router,
    external_rx: Receiver<Envelope>,
    /// Dedicated-port receivers not yet taken by a worker thread.
    dedicated_rxs: Vec<Option<Receiver<Envelope>>>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadCluster {
    /// Start `n` nodes with default tunables, constructing each with
    /// `factory(node_id)`.
    pub fn start<N, F>(n: usize, factory: F) -> Self
    where
        N: ThreadedNode + 'static,
        F: Fn(usize) -> N,
    {
        Self::start_with_config(n, ThreadConfig::default(), factory)
    }

    /// Start `n` nodes under explicit [`ThreadConfig`] tunables (batch cap,
    /// tick cadence, interposed envelope filter).
    pub fn start_with_config<N, F>(n: usize, config: ThreadConfig, factory: F) -> Self
    where
        N: ThreadedNode + 'static,
        F: Fn(usize) -> N,
    {
        let channels: Vec<(Sender<Control>, Receiver<Control>)> =
            (0..n).map(|_| channel()).collect();
        let senders: Vec<Sender<Control>> = channels.iter().map(|(tx, _)| tx.clone()).collect();
        let (ext_tx, ext_rx) = channel();
        let counters = Arc::new(Counters::default());
        let max_batch = config.effective_batch();
        let tick = config.tick;
        let mut dedicated_txs = Vec::with_capacity(config.dedicated_external_ports);
        let mut dedicated_rxs = Vec::with_capacity(config.dedicated_external_ports);
        for _ in 0..config.dedicated_external_ports.min(MAX_EXTERNAL_PORTS) {
            let (tx, rx) = channel();
            dedicated_txs.push(tx);
            dedicated_rxs.push(Some(rx));
        }
        let router = Router {
            peers: senders,
            external: ext_tx,
            dedicated: dedicated_txs,
            counters: Arc::clone(&counters),
            filter: config.filter.clone(),
        };

        let mut handles = Vec::with_capacity(n);
        for (node_id, (_, rx)) in channels.into_iter().enumerate() {
            let ctx = NodeCtx {
                node_id,
                router: router.clone(),
            };
            let mut node = factory(node_id);
            let handle = std::thread::Builder::new()
                .name(format!("tc-node-{node_id}"))
                .spawn(move || {
                    node.on_start(&ctx);
                    let mut batch: Vec<Envelope> = Vec::new();
                    let mut last_tick = Instant::now();
                    'run: loop {
                        let ctrl = match tick {
                            None => match rx.recv() {
                                Ok(ctrl) => ctrl,
                                Err(_) => break 'run,
                            },
                            Some(period) => match rx.recv_timeout(period) {
                                Ok(ctrl) => ctrl,
                                Err(RecvTimeoutError::Timeout) => {
                                    node.on_tick(&ctx);
                                    last_tick = Instant::now();
                                    continue 'run;
                                }
                                Err(RecvTimeoutError::Disconnected) => break 'run,
                            },
                        };
                        match ctrl {
                            Control::Deliver(env) => batch.push(env),
                            Control::Stop => break 'run,
                        }
                        // Drain the burst that accumulated while we were
                        // parked (or busy), then process it in one go.
                        let mut stop = false;
                        while batch.len() < max_batch {
                            match rx.try_recv() {
                                Ok(Control::Deliver(env)) => batch.push(env),
                                Ok(Control::Stop) => {
                                    stop = true;
                                    break;
                                }
                                Err(TryRecvError::Empty) => break,
                                Err(TryRecvError::Disconnected) => {
                                    stop = true;
                                    break;
                                }
                            }
                        }
                        let count = batch.len() as u64;
                        node.on_batch(std::mem::take(&mut batch), &ctx);
                        ctx.router
                            .counters
                            .in_flight
                            .fetch_sub(count, Ordering::SeqCst);
                        // A saturated node never hits the park timeout, so
                        // honour the tick cadence between batches too.
                        if let Some(period) = tick {
                            if last_tick.elapsed() >= period {
                                node.on_tick(&ctx);
                                last_tick = Instant::now();
                            }
                        }
                        if stop {
                            break 'run;
                        }
                    }
                    // Anything left queued on a stopping node is no longer
                    // in flight.
                    let leftover = batch.len() as u64
                        + rx.try_iter()
                            .filter(|c| matches!(c, Control::Deliver(_)))
                            .count() as u64;
                    if leftover > 0 {
                        ctx.router
                            .counters
                            .in_flight
                            .fetch_sub(leftover, Ordering::SeqCst);
                    }
                })
                .expect("failed to spawn node thread");
            handles.push(handle);
        }

        ThreadCluster {
            router,
            external_rx: ext_rx,
            dedicated_rxs,
            handles,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.router.peers.len()
    }

    /// Snapshot of the cluster-wide delivery counters.
    pub fn metrics(&self) -> ThreadMetrics {
        self.router.counters.snapshot()
    }

    /// Total messages dropped so far (unknown destination + stopped nodes).
    pub fn dropped_messages(&self) -> u64 {
        self.router.counters.snapshot().dropped()
    }

    /// Node-bound and dedicated-port messages currently enqueued or being
    /// processed.  Zero means every node thread is parked with an empty
    /// queue and every dedicated port is drained — combined with an empty
    /// shared external queue, the cluster is quiescent.
    pub fn pending_messages(&self) -> u64 {
        self.router.counters.in_flight.load(Ordering::SeqCst)
    }

    /// A cloneable [`Injector`] for driver-side worker threads.
    pub fn injector(&self) -> Injector {
        Injector {
            router: self.router.clone(),
        }
    }

    /// Take ownership of dedicated external port `port`'s receive queue
    /// (configured via [`ThreadConfig::dedicated_external_ports`]).  Each
    /// queue can be taken exactly once; `None` if the port has no dedicated
    /// queue or it was already taken.
    pub fn take_external_queue(&mut self, port: usize) -> Option<ExternalQueue> {
        let rx = self.dedicated_rxs.get_mut(port)?.take()?;
        Some(ExternalQueue {
            port,
            rx,
            counters: Arc::clone(&self.router.counters),
        })
    }

    /// Inject a message into the cluster from the driver thread (external
    /// port 0).
    pub fn send(&self, to: usize, tag: u64, data: impl Into<Bytes>) -> SendStatus {
        self.send_vectored(to, tag, data.into(), Bytes::new())
    }

    /// Inject a two-segment message (`data ‖ payload`) without copying the
    /// payload segment (external port 0).
    pub fn send_vectored(&self, to: usize, tag: u64, data: Bytes, payload: Bytes) -> SendStatus {
        self.send_vectored_from_port(0, to, tag, data, payload)
    }

    /// Inject a message carrying the identity of external port `port` —
    /// nodes see `from ==`[`external_id`]`(port)` and can answer the exact
    /// driver-side endpoint that sent it.
    pub fn send_from_port(
        &self,
        port: usize,
        to: usize,
        tag: u64,
        data: impl Into<Bytes>,
    ) -> SendStatus {
        self.send_vectored_from_port(port, to, tag, data.into(), Bytes::new())
    }

    /// Two-segment injection from external port `port`.
    pub fn send_vectored_from_port(
        &self,
        port: usize,
        to: usize,
        tag: u64,
        data: Bytes,
        payload: Bytes,
    ) -> SendStatus {
        self.router.dispatch(Envelope {
            from: external_id(port),
            to,
            tag,
            data,
            payload,
        })
    }

    /// Wait for a message sent to the external observer.  Parks on the
    /// channel and wakes immediately on enqueue (no polling).
    pub fn recv_external(&self, timeout: Duration) -> Option<Envelope> {
        match self.external_rx.recv_timeout(timeout) {
            Ok(env) => Some(env),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Take an already-queued external message without blocking.
    pub fn try_recv_external(&self) -> Option<Envelope> {
        self.external_rx.try_recv().ok()
    }

    /// Collect external messages until `count` have arrived or `timeout`
    /// elapses (whichever comes first).
    pub fn collect_external(&self, count: usize, timeout: Duration) -> Vec<Envelope> {
        let deadline = std::time::Instant::now() + timeout;
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break;
            }
            match self.external_rx.recv_timeout(remaining) {
                Ok(env) => out.push(env),
                Err(_) => break,
            }
        }
        out
    }

    /// Stop all nodes and join their threads.
    pub fn shutdown(self) {
        for tx in &self.router.peers {
            let _ = tx.send(Control::Stop);
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A node that adds its id to any number it receives and forwards the
    /// result to the next node; the last node reports externally.
    struct RelayNode;

    impl ThreadedNode for RelayNode {
        fn on_message(&mut self, msg: Envelope, ctx: &NodeCtx) {
            let mut value = u64::from_le_bytes(msg.data[..8].try_into().unwrap());
            value += ctx.node_id() as u64;
            let next = ctx.node_id() + 1;
            let status = if next < ctx.node_count() {
                ctx.send(next, msg.tag, value.to_le_bytes().to_vec())
            } else {
                ctx.send_external(msg.tag, value.to_le_bytes().to_vec())
            };
            assert!(status.is_delivered());
        }
    }

    #[test]
    fn relay_chain_accumulates_across_threads() {
        let cluster = ThreadCluster::start(8, |_| RelayNode);
        let status = cluster.send(0, 7, 100u64.to_le_bytes().to_vec());
        assert_eq!(status, SendStatus::Delivered);
        let env = cluster
            .recv_external(Duration::from_secs(5))
            .expect("relay result");
        let value = u64::from_le_bytes(env.data[..8].try_into().unwrap());
        assert_eq!(value, 100 + (0..8).sum::<usize>() as u64);
        assert_eq!(env.tag, 7);
        assert_eq!(env.from, 7);
        cluster.shutdown();
    }

    /// A node that counts messages and reports the total on request.
    /// Also counts batches so tests can observe the drain behaviour.
    struct CountingNode {
        count: u64,
        batches: u64,
    }

    impl ThreadedNode for CountingNode {
        fn on_message(&mut self, msg: Envelope, ctx: &NodeCtx) {
            if msg.tag == 0 {
                self.count += 1;
            } else {
                let mut out = Vec::with_capacity(16);
                out.extend_from_slice(&self.count.to_le_bytes());
                out.extend_from_slice(&self.batches.to_le_bytes());
                let _ = ctx.send_external(1, out);
            }
        }

        fn on_batch(&mut self, msgs: Vec<Envelope>, ctx: &NodeCtx) {
            self.batches += 1;
            for msg in msgs {
                self.on_message(msg, ctx);
            }
        }
    }

    #[test]
    fn many_messages_from_many_nodes_all_arrive() {
        let cluster = ThreadCluster::start(4, |_| CountingNode {
            count: 0,
            batches: 0,
        });
        // Node 1..3 each send 50 messages to node 0 — injected externally to
        // keep the test simple but delivered concurrently.
        for _ in 0..150 {
            let _ = cluster.send(0, 0, vec![]);
        }
        // Ask for the count; channel FIFO guarantees the query arrives last.
        let _ = cluster.send(0, 1, vec![]);
        let env = cluster
            .recv_external(Duration::from_secs(5))
            .expect("count");
        assert_eq!(u64::from_le_bytes(env.data[..8].try_into().unwrap()), 150);
        let metrics = cluster.metrics();
        assert_eq!(metrics.dropped(), 0);
        assert!(metrics.delivered >= 151);
        cluster.shutdown();
    }

    #[test]
    fn queued_burst_is_drained_in_few_batches() {
        // Deterministic batching check: the first message makes the node
        // sleep while the driver queues a burst behind it, so the burst is
        // fully enqueued by the time the node wakes — it must then be
        // drained in ceil(151 / MAX_BATCH) + small-change batches, not one
        // wakeup per message.
        struct SleepThenCount(CountingNode);
        impl ThreadedNode for SleepThenCount {
            fn on_message(&mut self, msg: Envelope, ctx: &NodeCtx) {
                if msg.tag == 2 {
                    std::thread::sleep(Duration::from_millis(100));
                } else {
                    self.0.on_message(msg, ctx);
                }
            }
            fn on_batch(&mut self, msgs: Vec<Envelope>, ctx: &NodeCtx) {
                self.0.batches += 1;
                for msg in msgs {
                    self.on_message(msg, ctx);
                }
            }
        }
        let cluster = ThreadCluster::start(1, |_| {
            SleepThenCount(CountingNode {
                count: 0,
                batches: 0,
            })
        });
        let _ = cluster.send(0, 2, vec![]); // park the node in its handler
        for _ in 0..150 {
            let _ = cluster.send(0, 0, vec![]);
        }
        let _ = cluster.send(0, 1, vec![]);
        let env = cluster
            .recv_external(Duration::from_secs(5))
            .expect("count");
        assert_eq!(u64::from_le_bytes(env.data[..8].try_into().unwrap()), 150);
        let batches = u64::from_le_bytes(env.data[8..16].try_into().unwrap());
        // 1 batch for the sleeper + ceil(151/128) = 2 for the burst; allow
        // slack for the burst racing the very start of the sleep.
        assert!(
            (2..=8).contains(&batches),
            "burst of 151 queued messages drained in {batches} batches"
        );
        cluster.shutdown();
    }

    #[test]
    fn sending_to_unknown_node_is_reported_and_counted() {
        let cluster = ThreadCluster::start(2, |_| RelayNode);
        assert_eq!(cluster.send(99, 0, vec![0; 8]), SendStatus::UnknownNode);
        assert_eq!(cluster.node_count(), 2);
        assert_eq!(cluster.dropped_messages(), 1);
        assert_eq!(cluster.metrics().dropped_unknown, 1);
        cluster.shutdown();
    }

    #[test]
    fn collect_external_respects_timeout() {
        let cluster = ThreadCluster::start(2, |_| RelayNode);
        let collected = cluster.collect_external(3, Duration::from_millis(50));
        assert!(collected.is_empty());
        cluster.shutdown();
    }

    #[test]
    fn pending_messages_drains_to_zero() {
        let cluster = ThreadCluster::start(2, |_| CountingNode {
            count: 0,
            batches: 0,
        });
        for _ in 0..32 {
            let _ = cluster.send(0, 0, vec![]);
            let _ = cluster.send(1, 0, vec![]);
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while cluster.pending_messages() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "pending messages never drained"
            );
            std::thread::yield_now();
        }
        assert_eq!(cluster.pending_messages(), 0);
        cluster.shutdown();
    }

    #[test]
    fn filter_can_absorb_duplicate_and_pass() {
        // A filter that drops tag 0, duplicates tag 1, passes the rest.
        let filter: EnvelopeFilter = Arc::new(|env: Envelope| match env.tag {
            0 => vec![],
            1 => vec![env.clone(), env],
            _ => vec![env],
        });
        let cluster = ThreadCluster::start_with_config(
            1,
            ThreadConfig {
                filter: Some(filter),
                ..ThreadConfig::default()
            },
            |_| CountingNode {
                count: 0,
                batches: 0,
            },
        );
        assert_eq!(cluster.send(0, 0, vec![]), SendStatus::Filtered); // absorbed
        for _ in 0..3 {
            assert!(cluster.send(0, 1, vec![]).is_delivered()); // doubled
        }
        // tag 0 counts deliveries; the query tag (2 here) is remapped by the
        // node to "report": CountingNode reports on any tag != 0.
        let _ = cluster.send(0, 2, vec![]);
        let env = cluster
            .recv_external(Duration::from_secs(5))
            .expect("count");
        assert_eq!(
            u64::from_le_bytes(env.data[..8].try_into().unwrap()),
            0, // the three tag-1 sends report, not count
        );
        let metrics = cluster.metrics();
        assert_eq!(metrics.filtered, 1);
        // 3 duplicated sends -> 6 deliveries, +1 query, +external reports.
        assert!(metrics.delivered >= 7);
        cluster.shutdown();
    }

    #[test]
    fn filter_applies_to_external_sends_too() {
        // Absorb everything a node reports outward.
        let filter: EnvelopeFilter = Arc::new(|env: Envelope| {
            if env.to == EXTERNAL_SENDER {
                vec![]
            } else {
                vec![env]
            }
        });
        struct Reporter;
        impl ThreadedNode for Reporter {
            fn on_message(&mut self, msg: Envelope, ctx: &NodeCtx) {
                let _ = ctx.send_external(msg.tag, msg.data);
            }
        }
        let cluster = ThreadCluster::start_with_config(
            1,
            ThreadConfig {
                filter: Some(filter),
                ..ThreadConfig::default()
            },
            |_| Reporter,
        );
        let _ = cluster.send(0, 7, 5u64.to_le_bytes().to_vec());
        assert!(cluster.recv_external(Duration::from_millis(100)).is_none());
        assert!(cluster.metrics().filtered >= 1);
        cluster.shutdown();
    }

    #[test]
    fn configured_tick_fires_without_traffic() {
        struct TickNode;
        impl ThreadedNode for TickNode {
            fn on_message(&mut self, _msg: Envelope, _ctx: &NodeCtx) {}
            fn on_tick(&mut self, ctx: &NodeCtx) {
                let _ = ctx.send_external(99, vec![]);
            }
        }
        let cluster = ThreadCluster::start_with_config(
            1,
            ThreadConfig {
                tick: Some(Duration::from_millis(5)),
                ..ThreadConfig::default()
            },
            |_| TickNode,
        );
        let env = cluster
            .recv_external(Duration::from_secs(5))
            .expect("tick fired with no traffic at all");
        assert_eq!(env.tag, 99);
        cluster.shutdown();
    }

    #[test]
    fn custom_max_batch_bounds_drain() {
        let cluster = ThreadCluster::start_with_config(
            1,
            ThreadConfig {
                max_batch: 4,
                ..ThreadConfig::default()
            },
            |_| CountingNode {
                count: 0,
                batches: 0,
            },
        );
        for _ in 0..64 {
            let _ = cluster.send(0, 0, vec![]);
        }
        let _ = cluster.send(0, 1, vec![]);
        let env = cluster
            .recv_external(Duration::from_secs(5))
            .expect("count");
        assert_eq!(u64::from_le_bytes(env.data[..8].try_into().unwrap()), 64);
        let batches = u64::from_le_bytes(env.data[8..16].try_into().unwrap());
        assert!(
            batches >= 65 / 4,
            "65 messages with max_batch 4 need ≥ 17 batches, saw {batches}"
        );
        cluster.shutdown();
    }

    #[test]
    fn envelopes_share_payload_storage_end_to_end() {
        // A payload injected into the fabric arrives as a view of the same
        // allocation: channels move refcounts, not bytes.
        struct EchoNode;
        impl ThreadedNode for EchoNode {
            fn on_message(&mut self, msg: Envelope, ctx: &NodeCtx) {
                let _ = ctx.send_external(msg.tag, msg.data);
            }
        }
        let cluster = ThreadCluster::start(1, |_| EchoNode);
        let payload = Bytes::from(vec![0x5A; 4096]);
        let _ = cluster.send(0, 3, payload.clone());
        let env = cluster
            .recv_external(Duration::from_secs(5))
            .expect("echo reply");
        assert!(env.data.shares_storage(&payload));
        assert_eq!(env.data, payload);
        cluster.shutdown();
    }

    #[test]
    fn dedicated_ports_receive_independently_and_count_in_flight() {
        // Port 0 and 1 get dedicated queues; port 2 falls through to the
        // shared external queue.  Replies route by destination port, and
        // dedicated-port messages stay "in flight" until acknowledged.
        struct PortEcho;
        impl ThreadedNode for PortEcho {
            fn on_message(&mut self, msg: Envelope, ctx: &NodeCtx) {
                let port = external_port(msg.from).unwrap();
                let _ = ctx.send_external_port(port, msg.tag, msg.data);
            }
        }
        let mut cluster = ThreadCluster::start_with_config(
            1,
            ThreadConfig {
                dedicated_external_ports: 2,
                ..ThreadConfig::default()
            },
            |_| PortEcho,
        );
        let q0 = cluster.take_external_queue(0).expect("port 0 queue");
        let q1 = cluster.take_external_queue(1).expect("port 1 queue");
        assert!(
            cluster.take_external_queue(0).is_none(),
            "a queue can be taken once"
        );
        assert!(cluster.take_external_queue(2).is_none(), "port 2 is shared");
        let injector = cluster.injector();
        let _ = injector.send_from_port(0, 0, 10, vec![0u8]);
        let _ = injector.send_from_port(1, 0, 11, vec![1u8]);
        let _ = cluster.send_from_port(2, 0, 12, vec![2u8]);
        let e0 = q0.recv_timeout(Duration::from_secs(5)).expect("port 0");
        let e1 = q1.recv_timeout(Duration::from_secs(5)).expect("port 1");
        let e2 = cluster
            .recv_external(Duration::from_secs(5))
            .expect("shared queue still works for high ports");
        assert_eq!((e0.tag, e1.tag, e2.tag), (10, 11, 12));
        // Both dedicated deliveries are still in flight until acknowledged.
        // The node's own inbound accounting drains asynchronously (its
        // in-flight decrement lands after `on_message` returns, racing the
        // echo receive above), so wait for it to settle first.
        let settle = |cluster: &ThreadCluster, want: u64| {
            let deadline = Instant::now() + Duration::from_secs(5);
            while cluster.pending_messages() != want && Instant::now() < deadline {
                std::thread::yield_now();
            }
            cluster.pending_messages()
        };
        assert_eq!(settle(&cluster, 2), 2);
        q0.done(1);
        q1.done(1);
        assert_eq!(settle(&cluster, 0), 0);
        cluster.shutdown();
    }

    #[test]
    fn injector_passes_the_interposed_filter() {
        // Worker-thread injections must see the same fault filter as driver
        // sends — absorb everything and check the status + counter.
        let filter: EnvelopeFilter = Arc::new(|_| vec![]);
        let cluster = ThreadCluster::start_with_config(
            1,
            ThreadConfig {
                filter: Some(filter),
                ..ThreadConfig::default()
            },
            |_| RelayNode,
        );
        let injector = cluster.injector();
        assert_eq!(
            injector.send_from_port(3, 0, 0, vec![]),
            SendStatus::Filtered
        );
        assert_eq!(cluster.metrics().filtered, 1);
        cluster.shutdown();
    }

    #[test]
    fn external_ids_roundtrip_and_never_collide_with_nodes() {
        assert_eq!(external_id(0), EXTERNAL_SENDER);
        assert_eq!(external_port(EXTERNAL_SENDER), Some(0));
        for port in [0usize, 1, 7, MAX_EXTERNAL_PORTS - 1] {
            assert_eq!(external_port(external_id(port)), Some(port));
        }
        assert_eq!(external_port(0), None);
        assert_eq!(external_port(1_000_000), None);
        assert_eq!(external_port(usize::MAX - MAX_EXTERNAL_PORTS), None);
    }

    #[test]
    fn ports_carry_sender_identity_both_ways() {
        // A node that answers every message back to the external port it
        // came from, tagged with what it saw as the sender id.
        struct PortEcho;
        impl ThreadedNode for PortEcho {
            fn on_message(&mut self, msg: Envelope, ctx: &NodeCtx) {
                let port = external_port(msg.from).expect("driver send carries a port");
                let _ = ctx.send_external_port(port, msg.tag, msg.data);
            }
        }
        let cluster = ThreadCluster::start(1, |_| PortEcho);
        for port in [0usize, 1, 5] {
            let _ = cluster.send_from_port(port, 0, 40 + port as u64, vec![port as u8]);
        }
        for _ in 0..3 {
            let env = cluster
                .recv_external(Duration::from_secs(5))
                .expect("port echo");
            let port = external_port(env.to).expect("reply addressed to a port");
            assert_eq!(env.tag, 40 + port as u64, "reply came back to its port");
            assert_eq!(env.data[0], port as u8);
        }
        cluster.shutdown();
    }
}
