//! The RDMA fabric model.
//!
//! The paper's evaluation runs over 100 Gb/s InfiniBand with RDMA PUT/GET and
//! UCX active messages.  The reproduction replaces the fabric with an
//! analytic model: a message of `n` bytes delivered by operation class `op`
//! experiences
//!
//! * an end-to-end **latency** `L(op, n) = base(op) + n · per_byte`, and
//! * a sender-side **injection gap** `G(op, n) = gap_base(op) + n · gap_per_byte`
//!   that bounds the achievable message rate when operations are pipelined
//!   (message rate ≈ 1 / G).
//!
//! The distinction matters because the paper reports both latency *and*
//! message rate, and the two are not reciprocal: pipelined small messages
//! achieve far higher rates than 1/latency.  Per-platform constants are
//! calibrated in [`crate::platform`].

use crate::time::SimDuration;

/// Class of fabric operation, used to select base overheads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FabricOp {
    /// One-sided RDMA PUT (used for ifunc message frames).
    Put,
    /// One-sided RDMA GET (used by the GBPC baseline).
    Get,
    /// Two-sided active message (used by the AM baseline).
    ActiveMessage,
}

/// Analytic fabric model for one platform's interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Base one-way latency of a PUT in nanoseconds.
    pub put_base_ns: f64,
    /// Base one-way latency of a GET (includes the response) in nanoseconds.
    pub get_base_ns: f64,
    /// Base one-way latency of an Active Message in nanoseconds.
    pub am_base_ns: f64,
    /// Marginal latency per payload byte in nanoseconds.
    pub per_byte_ns: f64,
    /// Base sender-side injection gap in nanoseconds (PUT/ifunc path).
    pub gap_base_ns: f64,
    /// Marginal injection gap per byte in nanoseconds.
    pub gap_per_byte_ns: f64,
    /// Extra injection gap for Active Messages (handler registration and
    /// two-sided matching overhead on the send path).
    pub am_gap_extra_ns: f64,
}

impl FabricProfile {
    /// End-to-end latency of an operation carrying `bytes` of data.
    pub fn latency(&self, op: FabricOp, bytes: usize) -> SimDuration {
        let base = match op {
            FabricOp::Put => self.put_base_ns,
            FabricOp::Get => self.get_base_ns,
            FabricOp::ActiveMessage => self.am_base_ns,
        };
        SimDuration::from_nanos_f64(base + bytes as f64 * self.per_byte_ns)
    }

    /// Sender-side injection gap (pipelined issue cost) of an operation
    /// carrying `bytes`.
    pub fn injection_gap(&self, op: FabricOp, bytes: usize) -> SimDuration {
        let extra = match op {
            FabricOp::ActiveMessage => self.am_gap_extra_ns,
            _ => 0.0,
        };
        SimDuration::from_nanos_f64(self.gap_base_ns + extra + bytes as f64 * self.gap_per_byte_ns)
    }

    /// Achievable message rate (messages/second) for back-to-back operations
    /// of `bytes` each.
    pub fn message_rate(&self, op: FabricOp, bytes: usize) -> f64 {
        let gap = self.injection_gap(op, bytes).as_nanos() as f64;
        if gap <= 0.0 {
            f64::INFINITY
        } else {
            1.0e9 / gap
        }
    }

    /// InfiniBand ConnectX-6 on the Ookami Apollo 80 system, calibrated to
    /// Table I/IV (A64FX endpoints make small-message costs relatively high).
    pub fn ookami_connectx6() -> Self {
        FabricProfile {
            name: "Ookami ConnectX-6 100Gb/s (A64FX endpoints)",
            put_base_ns: 2_608.0,
            get_base_ns: 2_560.0,
            am_base_ns: 2_485.0,
            per_byte_ns: 0.4652,
            gap_base_ns: 590.0,
            gap_per_byte_ns: 0.3622,
            am_gap_extra_ns: 156.0,
        }
    }

    /// Thor fabric between BlueField-2 DPU endpoints, calibrated to
    /// Table II/V.
    pub fn thor_bf2_fabric() -> Self {
        FabricProfile {
            name: "Thor ConnectX-6/BlueField-2 100Gb/s (DPU endpoints)",
            put_base_ns: 1_842.0,
            get_base_ns: 1_815.0,
            am_base_ns: 1_860.0,
            per_byte_ns: 0.3101,
            gap_base_ns: 755.0,
            gap_per_byte_ns: 0.3167,
            am_gap_extra_ns: 262.0,
        }
    }

    /// Thor fabric between Xeon host endpoints, calibrated to Table III/VI.
    pub fn thor_xeon_fabric() -> Self {
        FabricProfile {
            name: "Thor ConnectX-6 100Gb/s (Xeon endpoints)",
            put_base_ns: 1_500.0,
            get_base_ns: 1_480.0,
            am_base_ns: 1_537.0,
            per_byte_ns: 0.4012,
            gap_base_ns: 135.0,
            gap_per_byte_ns: 0.0686,
            am_gap_extra_ns: 11.0,
        }
    }
}

/// Sizes (in bytes) of the messages the TSI microbenchmark sends, as reported
/// in Section V-A of the paper.  These are used by tests and by the
/// experiment harness to cross-check the frame layer's actual sizes.
pub mod paper_sizes {
    /// A cached bitcode ifunc message (header + 1-byte payload, code elided).
    pub const CACHED_IFUNC_BYTES: usize = 26;
    /// An Active Message request (payload + function index).
    pub const ACTIVE_MESSAGE_BYTES: usize = 33;
    /// An uncached bitcode ifunc message (full frame with fat-bitcode).
    pub const UNCACHED_IFUNC_BYTES: usize = 5_185;
    /// The fat-bitcode portion of the TSI ifunc.
    pub const TSI_BITCODE_BYTES: usize = 5_159;
}

#[cfg(test)]
mod tests {
    use super::paper_sizes::*;
    use super::*;

    #[test]
    fn ookami_latencies_match_table_one() {
        let f = FabricProfile::ookami_connectx6();
        let cached = f.latency(FabricOp::Put, CACHED_IFUNC_BYTES).as_micros_f64();
        let uncached = f
            .latency(FabricOp::Put, UNCACHED_IFUNC_BYTES)
            .as_micros_f64();
        let am = f
            .latency(FabricOp::ActiveMessage, ACTIVE_MESSAGE_BYTES)
            .as_micros_f64();
        assert!((cached - 2.62).abs() < 0.1, "cached {cached}");
        assert!((uncached - 5.02).abs() < 0.2, "uncached {uncached}");
        assert!((am - 2.50).abs() < 0.1, "am {am}");
    }

    #[test]
    fn thor_bf2_latencies_match_table_two() {
        let f = FabricProfile::thor_bf2_fabric();
        assert!((f.latency(FabricOp::Put, CACHED_IFUNC_BYTES).as_micros_f64() - 1.85).abs() < 0.1);
        assert!(
            (f.latency(FabricOp::Put, UNCACHED_IFUNC_BYTES)
                .as_micros_f64()
                - 3.45)
                .abs()
                < 0.2
        );
        assert!(
            (f.latency(FabricOp::ActiveMessage, ACTIVE_MESSAGE_BYTES)
                .as_micros_f64()
                - 1.87)
                .abs()
                < 0.1
        );
    }

    #[test]
    fn thor_xeon_latencies_match_table_three() {
        let f = FabricProfile::thor_xeon_fabric();
        assert!((f.latency(FabricOp::Put, CACHED_IFUNC_BYTES).as_micros_f64() - 1.51).abs() < 0.1);
        assert!(
            (f.latency(FabricOp::Put, UNCACHED_IFUNC_BYTES)
                .as_micros_f64()
                - 3.58)
                .abs()
                < 0.2
        );
    }

    #[test]
    fn message_rates_match_tables_four_to_six() {
        // Table IV: Ookami — AM 1.32 M/s, cached 1.669 M/s, uncached 405 K/s.
        let ookami = FabricProfile::ookami_connectx6();
        let rate = |f: &FabricProfile, op, n| f.message_rate(op, n) / 1.0e6;
        assert!((rate(&ookami, FabricOp::Put, CACHED_IFUNC_BYTES) - 1.669).abs() < 0.2);
        assert!((rate(&ookami, FabricOp::Put, UNCACHED_IFUNC_BYTES) - 0.405).abs() < 0.05);
        assert!((rate(&ookami, FabricOp::ActiveMessage, ACTIVE_MESSAGE_BYTES) - 1.32).abs() < 0.15);

        // Table V: BF2 — AM 0.974, cached 1.311, uncached 0.417 M/s.
        let bf2 = FabricProfile::thor_bf2_fabric();
        assert!((rate(&bf2, FabricOp::Put, CACHED_IFUNC_BYTES) - 1.311).abs() < 0.15);
        assert!((rate(&bf2, FabricOp::Put, UNCACHED_IFUNC_BYTES) - 0.417).abs() < 0.05);
        assert!((rate(&bf2, FabricOp::ActiveMessage, ACTIVE_MESSAGE_BYTES) - 0.974).abs() < 0.1);

        // Table VI: Xeon — AM 6.754, cached 7.302, uncached 2.037 M/s.
        let xeon = FabricProfile::thor_xeon_fabric();
        assert!((rate(&xeon, FabricOp::Put, CACHED_IFUNC_BYTES) - 7.302).abs() < 0.8);
        assert!((rate(&xeon, FabricOp::Put, UNCACHED_IFUNC_BYTES) - 2.037).abs() < 0.25);
        assert!((rate(&xeon, FabricOp::ActiveMessage, ACTIVE_MESSAGE_BYTES) - 6.754).abs() < 0.7);
    }

    #[test]
    fn cached_ifunc_beats_am_on_message_rate_everywhere() {
        // The paper's headline observation for the TSI rate benchmark.
        for f in [
            FabricProfile::ookami_connectx6(),
            FabricProfile::thor_bf2_fabric(),
            FabricProfile::thor_xeon_fabric(),
        ] {
            assert!(
                f.message_rate(FabricOp::Put, CACHED_IFUNC_BYTES)
                    > f.message_rate(FabricOp::ActiveMessage, ACTIVE_MESSAGE_BYTES),
                "{}",
                f.name
            );
        }
    }

    #[test]
    fn latency_monotone_in_size() {
        let f = FabricProfile::thor_xeon_fabric();
        let mut prev = SimDuration::ZERO;
        for n in [0usize, 32, 1024, 4096, 65536] {
            let l = f.latency(FabricOp::Put, n);
            assert!(l >= prev);
            prev = l;
        }
    }
}
