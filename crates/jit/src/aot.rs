//! Ahead-of-time compilation: producing and loading *binary* ifunc objects.
//!
//! The paper's original (Two-Chains) representation ships pre-compiled
//! machine code extracted from a shared library, and performs GOT patching on
//! the target (Section III-B).  This module is that path's toolchain and
//! loader:
//!
//! * [`build_object`] lowers and compiles an IR module for one specific
//!   target and packages the machine code into a [`tc_binfmt::ObjectFile`]:
//!   serialised code in `.text`, globals in `.data`, one GOT slot and
//!   relocation per external symbol, and the dependency list;
//! * [`module_from_image`] recovers the executable [`MachModule`] from a
//!   [`tc_binfmt::LoadedImage`] after the target-side loader has resolved the
//!   GOT.
//!
//! Binary objects are small (tens to hundreds of bytes for simple kernels —
//! compare the multi-kilobyte fat-bitcode) but ISA-locked, which is exactly
//! the trade-off the paper's evaluation explores.

use crate::compile::{lower_and_compile, CompileOptions, Compiled};
use crate::error::{JitError, Result};
use crate::machine::MachModule;
use tc_binfmt::{LoadedImage, ObjectFile, RelocKind, Relocation, SectionKind, Symbol, SymbolKind};
use tc_bitir::{Module, TargetTriple};

/// Build a binary ifunc object for a single target.
pub fn build_object(
    module: &Module,
    target: TargetTriple,
    options: CompileOptions,
) -> Result<ObjectFile> {
    let compiled: Compiled = lower_and_compile(module, target, options)?;
    let mach = &compiled.module;

    let mut obj = ObjectFile::new(mach.name.clone(), target.name());
    obj.deps = mach.deps.clone();

    // .text: the serialised machine module followed by one 8-byte GOT
    // reference slot per external symbol (the slots are what relocations
    // patch; the serialised code itself is never modified by the loader).
    let code_bytes = mach.encode();
    let code_len = code_bytes.len();
    obj.text.bytes = code_bytes;
    for sym in &mach.ext_symbols {
        let slot_offset = obj.text.bytes.len() as u64;
        obj.text.bytes.extend_from_slice(&[0u8; 8]);
        obj.intern_got_symbol(sym);
        obj.relocations.push(Relocation {
            section: SectionKind::Text,
            offset: slot_offset,
            symbol: sym.clone(),
            kind: RelocKind::GotSlot,
            addend: 0,
        });
    }

    // .data: concatenated global initialisers, 8-byte aligned, one symbol each.
    for d in &mach.data {
        let aligned = (obj.data.bytes.len() + 7) & !7;
        obj.data.bytes.resize(aligned, 0);
        obj.symbols.push(Symbol {
            name: d.name.clone(),
            section: SectionKind::Data,
            offset: aligned as u64,
            kind: SymbolKind::Object,
        });
        obj.data.bytes.extend_from_slice(&d.init);
    }

    // Function symbols: the entry (and every other function) nominally lives
    // at offset 0 of .text since the serialised module is one blob; we record
    // distinct offsets inside the blob for diagnostics.
    for (i, f) in mach.functions.iter().enumerate() {
        obj.symbols.push(Symbol {
            name: f.name.clone(),
            section: SectionKind::Text,
            offset: i as u64,
            kind: SymbolKind::Func,
        });
    }
    if obj.symbol("main").is_none() {
        // Still produce an object (library without an entry), but callers
        // that need an ifunc will fail at load time with NoEntry.
    }

    let _ = code_len;
    Ok(obj)
}

/// Recover the executable machine module from a loaded (GOT-patched) image.
pub fn module_from_image(image: &LoadedImage) -> Result<MachModule> {
    if image.text.is_empty() {
        return Err(JitError::Decode("loaded image has empty .text".into()));
    }
    MachModule::decode(&image.text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::OptLevel;
    use crate::engine::{Engine, ExternalHost, Memory, MemoryExt, NoExternals, VecMemory};
    use tc_binfmt::{load_object, LoadOptions, MapResolver};
    use tc_bitir::{BinOp, ModuleBuilder, ScalarType};

    fn tsi_module() -> Module {
        let mut mb = ModuleBuilder::new("tsi_bin");
        {
            let mut f = mb.entry_function();
            let payload = f.param(0);
            let target = f.param(2);
            let delta = f.load(ScalarType::U8, payload, 0);
            let counter = f.load(ScalarType::U64, target, 0);
            let sum = f.bin(BinOp::Add, ScalarType::U64, counter, delta);
            f.store(ScalarType::U64, sum, target, 0);
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        mb.build()
    }

    fn ext_module() -> Module {
        let mut mb = ModuleBuilder::new("with_ext");
        {
            let mut f = mb.entry_function();
            let a = f.const_u64(21);
            let r = f.call_ext("tc_double", vec![a], true).unwrap();
            f.ret(r);
            f.finish();
        }
        mb.build()
    }

    #[test]
    fn binary_object_roundtrips_and_executes() {
        let obj = build_object(
            &tsi_module(),
            TargetTriple::THOR_XEON,
            CompileOptions::default(),
        )
        .unwrap();
        // Wire roundtrip, as the frame would carry it.
        let obj = ObjectFile::decode(&obj.encode()).unwrap();
        assert!(obj.is_pure());

        let image = load_object(
            &obj,
            "x86_64-xeon-e5-sim",
            &MapResolver::new(),
            LoadOptions::default(),
        )
        .unwrap();
        assert!(image.pure_fast_path);

        let mach = module_from_image(&image).unwrap();
        let mut mem = VecMemory::new(0, 4096);
        mem.write(0, &[2]).unwrap();
        mem.write_u64(2048, 40).unwrap();
        Engine::new()
            .run(
                &mach,
                "main",
                &[0, 1, 2048],
                &[],
                &mut mem,
                &mut NoExternals,
            )
            .unwrap();
        assert_eq!(mem.read_u64(2048).unwrap(), 42);
    }

    #[test]
    fn binary_is_much_smaller_than_fat_bitcode() {
        let module = tsi_module();
        let obj =
            build_object(&module, TargetTriple::THOR_XEON, CompileOptions::default()).unwrap();
        let fat = tc_bitir::FatBitcode::from_module_default_targets(&module).unwrap();
        assert!(
            obj.shipped_size() * 4 < fat.encoded_size(),
            "binary ({}) should be far smaller than fat bitcode ({})",
            obj.shipped_size(),
            fat.encoded_size()
        );
    }

    #[test]
    fn external_symbols_get_got_slots_and_relocations() {
        let obj = build_object(
            &ext_module(),
            TargetTriple::THOR_BF2,
            CompileOptions::default(),
        )
        .unwrap();
        assert!(!obj.is_pure());
        assert_eq!(obj.got_symbols, vec!["tc_double".to_string()]);
        assert_eq!(obj.relocations.len(), 1);
        assert_eq!(obj.relocations[0].kind, RelocKind::GotSlot);

        // Loading with a resolver that knows the symbol succeeds and the
        // recovered machine module still calls through the symbol table.
        let mut resolver = MapResolver::new();
        resolver.insert("tc_double", 0x42);
        let image = load_object(
            &obj,
            "aarch64-cortex-a72-sim",
            &resolver,
            LoadOptions::default(),
        )
        .unwrap();
        let mach = module_from_image(&image).unwrap();

        struct Doubler;
        impl ExternalHost for Doubler {
            fn call_external(
                &mut self,
                symbol: &str,
                args: &[u64],
                _mem: &mut dyn Memory,
            ) -> crate::error::Result<u64> {
                assert_eq!(symbol, "tc_double");
                Ok(args[0] * 2)
            }
        }
        let mut mem = VecMemory::new(0, 64);
        let out = Engine::new()
            .run(&mach, "main", &[0, 0, 0], &[], &mut mem, &mut Doubler)
            .unwrap();
        assert_eq!(out.return_value, 42);
    }

    #[test]
    fn loading_on_wrong_isa_fails() {
        let obj = build_object(
            &tsi_module(),
            TargetTriple::THOR_XEON,
            CompileOptions::default(),
        )
        .unwrap();
        let err = load_object(
            &obj,
            "aarch64-a64fx-sim",
            &MapResolver::new(),
            LoadOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            tc_binfmt::BinfmtError::IncompatibleTarget { .. }
        ));
    }

    #[test]
    fn globals_become_data_symbols() {
        let mut mb = ModuleBuilder::new("gdata");
        mb.add_global("tbl", vec![1, 2, 3, 4, 5], false);
        mb.add_global("state", vec![0; 16], true);
        {
            let mut f = mb.entry_function();
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        let obj = build_object(
            &mb.build(),
            TargetTriple::OOKAMI_A64FX,
            CompileOptions {
                opt_level: OptLevel::O1,
                verify: true,
            },
        )
        .unwrap();
        let tbl = obj.symbol("tbl").unwrap();
        let state = obj.symbol("state").unwrap();
        assert_eq!(tbl.section, SectionKind::Data);
        assert_eq!(tbl.offset, 0);
        assert_eq!(state.offset, 8, "second global must be 8-byte aligned");
        assert_eq!(&obj.data.bytes[0..5], &[1, 2, 3, 4, 5]);
    }
}
