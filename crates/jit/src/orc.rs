//! The ORC-like JIT session.
//!
//! [`OrcJit`] is the per-process object that mirrors LLVM's ORC-JIT as the
//! paper uses it (Section III-C/III-D):
//!
//! * it receives *fat-bitcode* archives, extracts the entry matching the
//!   local target triple, verifies and compiles it;
//! * it loads the shared-library dependencies named by the ifunc and resolves
//!   external symbols against them (remote dynamic linking);
//! * it **caches** compiled modules keyed by ifunc name, so re-delivery of an
//!   already-seen ifunc skips compilation entirely — the paper observes that
//!   "LLVM has to do minimal work since it looks up the ifunc from previous
//!   JIT invocations";
//! * it materialises module globals into the node's memory and hands the
//!   execution engine everything it needs to invoke the entry function.

use crate::compile::{compile_module, CompileOptions, Compiled, OptLevel};
use crate::dylib::{DylibHost, DylibRegistry, LoadedDylibs};
use crate::engine::{Engine, ExecOutcome, ExternalHost, Memory};
use crate::error::{JitError, Result};
use std::collections::HashMap;
use std::sync::Arc;
use tc_bitir::{decode_module, FatBitcode, Module, TargetTriple};

/// Base address at which JIT-materialised globals are placed in node memory.
pub const JIT_DATA_BASE: u64 = 0x7000_0000_0000;

/// A compiled, linked, materialised module ready for execution.
#[derive(Debug, Clone)]
pub struct MaterializedModule {
    /// Compilation artefacts (machine code + stats).
    pub compiled: Compiled,
    /// Dependencies loaded for this module.
    pub deps: LoadedDylibs,
    /// Addresses at which the module's data objects were materialised.
    pub data_addrs: Vec<u64>,
    /// Size in bytes of the bitcode this module was compiled from (0 when it
    /// was added as in-memory IR).
    pub bitcode_size: usize,
}

/// Counters describing the JIT session's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JitStats {
    /// Number of modules actually compiled.
    pub compilations: u64,
    /// Number of times an already-compiled module was reused.
    pub cache_hits: u64,
    /// Total bitcode bytes compiled.
    pub bitcode_bytes_compiled: u64,
    /// Number of modules explicitly removed (ifunc de-registration).
    pub removals: u64,
}

/// The ORC-like JIT session owned by each process/node runtime.
pub struct OrcJit {
    target: TargetTriple,
    opt: OptLevel,
    registry: DylibRegistry,
    cache: HashMap<String, Arc<MaterializedModule>>,
    data_cursor: u64,
    stats: JitStats,
    engine: Engine,
}

impl std::fmt::Debug for OrcJit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrcJit")
            .field("target", &self.target)
            .field("opt", &self.opt)
            .field("cached_modules", &self.cache.keys().collect::<Vec<_>>())
            .field("stats", &self.stats)
            .finish()
    }
}

impl OrcJit {
    /// Create a JIT session for the given target with the standard library
    /// registry.
    pub fn new(target: TargetTriple, opt: OptLevel) -> Self {
        Self::with_registry(target, opt, DylibRegistry::with_standard_libs())
    }

    /// Create a JIT session with an explicit dylib registry.
    pub fn with_registry(target: TargetTriple, opt: OptLevel, registry: DylibRegistry) -> Self {
        OrcJit {
            target,
            opt,
            registry,
            cache: HashMap::new(),
            data_cursor: JIT_DATA_BASE,
            stats: JitStats::default(),
            engine: Engine::new(),
        }
    }

    /// The target triple this session compiles for.
    pub fn target(&self) -> TargetTriple {
        self.target
    }

    /// Session statistics.
    pub fn stats(&self) -> JitStats {
        self.stats
    }

    /// Mutable access to the dylib registry (to register extra libraries).
    pub fn registry_mut(&mut self) -> &mut DylibRegistry {
        &mut self.registry
    }

    /// True when a module named `name` is already compiled and cached.
    pub fn contains(&self, name: &str) -> bool {
        self.cache.contains_key(name)
    }

    /// Names of all cached modules.
    pub fn cached_modules(&self) -> Vec<&str> {
        self.cache.keys().map(String::as_str).collect()
    }

    /// Fetch a cached module.
    pub fn get(&self, name: &str) -> Option<Arc<MaterializedModule>> {
        self.cache.get(name).cloned()
    }

    /// Remove a module from the cache (ifunc de-registration).  Returns true
    /// when something was removed.
    pub fn remove(&mut self, name: &str) -> bool {
        let removed = self.cache.remove(name).is_some();
        if removed {
            self.stats.removals += 1;
        }
        removed
    }

    /// Add an ifunc from a fat-bitcode archive: select the bitcode matching
    /// this session's target, decode, compile, link dependencies and
    /// materialise globals into `mem`.
    ///
    /// If a module with the same name is already cached, the cached module is
    /// returned and no compilation happens (cache hit).
    pub fn add_fat_bitcode(
        &mut self,
        fat: &FatBitcode,
        mem: &mut dyn Memory,
    ) -> Result<Arc<MaterializedModule>> {
        if let Some(cached) = self.cache.get(&fat.name) {
            self.stats.cache_hits += 1;
            return Ok(cached.clone());
        }
        let entry = fat.select(self.target)?;
        let bitcode_size = entry.bitcode.len();
        let mut module = decode_module(&entry.bitcode)?;
        // The archive-level deps list is authoritative (it is what ships in
        // the DEPS field); merge it into the module's own list.
        for d in &fat.deps {
            if !module.deps.contains(d) {
                module.deps.push(d.clone());
            }
        }
        self.add_module_internal(module, bitcode_size, mem)
    }

    /// Add an ifunc from raw (single-target) bitcode bytes.
    pub fn add_bitcode(
        &mut self,
        bitcode: &[u8],
        mem: &mut dyn Memory,
    ) -> Result<Arc<MaterializedModule>> {
        let module = decode_module(bitcode)?;
        if let Some(cached) = self.cache.get(&module.name) {
            self.stats.cache_hits += 1;
            return Ok(cached.clone());
        }
        self.add_module_internal(module, bitcode.len(), mem)
    }

    /// Add an ifunc directly from in-memory IR (used by same-process
    /// execution paths and tests).
    pub fn add_module(
        &mut self,
        module: Module,
        mem: &mut dyn Memory,
    ) -> Result<Arc<MaterializedModule>> {
        if let Some(cached) = self.cache.get(&module.name) {
            self.stats.cache_hits += 1;
            return Ok(cached.clone());
        }
        self.add_module_internal(module, 0, mem)
    }

    fn add_module_internal(
        &mut self,
        module: Module,
        bitcode_size: usize,
        mem: &mut dyn Memory,
    ) -> Result<Arc<MaterializedModule>> {
        // Lower if still portable (bitcode shipped from the toolchain is
        // already lowered; IR added in-process may not be).
        let module = if module.triple.is_none() {
            tc_bitir::lower_for_target(&module, self.target)?
        } else {
            module
        };

        // Remote dynamic linking: every dependency must be loadable here.
        let deps = self.registry.load(&module.deps)?;

        let compiled = compile_module(
            &module,
            CompileOptions {
                opt_level: self.opt,
                verify: true,
            },
        )?;

        // Materialise globals into node memory.
        let mut data_addrs = Vec::with_capacity(compiled.module.data.len());
        for d in &compiled.module.data {
            let addr = self.data_cursor;
            mem.write(addr, &d.init)?;
            data_addrs.push(addr);
            let len = (d.init.len() as u64).max(8);
            self.data_cursor += (len + 63) & !63; // 64-byte align the next object
        }

        self.stats.compilations += 1;
        self.stats.bitcode_bytes_compiled += bitcode_size as u64;

        let mat = Arc::new(MaterializedModule {
            compiled,
            deps,
            data_addrs,
            bitcode_size,
        });
        self.cache
            .insert(mat.compiled.module.name.clone(), mat.clone());
        Ok(mat)
    }

    /// Execute a function of a cached module.
    ///
    /// External symbols are resolved against the module's loaded dylibs
    /// first, then against `framework_host` (the Three-Chains runtime).
    pub fn execute(
        &self,
        name: &str,
        func: &str,
        args: &[u64],
        mem: &mut dyn Memory,
        framework_host: &mut dyn ExternalHost,
    ) -> Result<ExecOutcome> {
        let mat = self
            .cache
            .get(name)
            .ok_or_else(|| JitError::UnknownFunction {
                name: format!("{name}::{func}"),
            })?;
        let mut host = DylibHost::with_fallback(&mat.deps, framework_host);
        self.engine.run(
            &mat.compiled.module,
            func,
            args,
            &mat.data_addrs,
            mem,
            &mut host,
        )
    }

    /// Execute the ifunc entry function (`main(payload_ptr, payload_len,
    /// target_ptr)`) of a cached module.
    pub fn execute_entry(
        &self,
        name: &str,
        payload_ptr: u64,
        payload_len: u64,
        target_ptr: u64,
        mem: &mut dyn Memory,
        framework_host: &mut dyn ExternalHost,
    ) -> Result<ExecOutcome> {
        self.execute(
            name,
            Module::ENTRY_NAME,
            &[payload_ptr, payload_len, target_ptr],
            mem,
            framework_host,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MemoryExt, NoExternals, SparseMemory, VecMemory};
    use tc_bitir::{BinOp, ModuleBuilder, ScalarType};

    fn tsi_module(name: &str) -> Module {
        let mut mb = ModuleBuilder::new(name);
        {
            let mut f = mb.entry_function();
            let payload = f.param(0);
            let target = f.param(2);
            let delta = f.load(ScalarType::U8, payload, 0);
            let counter = f.load(ScalarType::U64, target, 0);
            let sum = f.bin(BinOp::Add, ScalarType::U64, counter, delta);
            f.store(ScalarType::U64, sum, target, 0);
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        mb.build()
    }

    fn module_with_global_and_dep() -> Module {
        let mut mb = ModuleBuilder::new("globals");
        mb.add_dep("libc.so");
        let g = mb.add_global("lut", vec![10, 0, 0, 0, 0, 0, 0, 0], false);
        {
            let mut f = mb.entry_function();
            let target = f.param(2);
            let lut = f.global_addr(g);
            let v = f.load(ScalarType::U64, lut, 0);
            f.store(ScalarType::U64, v, target, 0);
            let dst = f.copy(target);
            let src = f.copy(lut);
            let n = f.const_u64(8);
            f.call_ext("memcpy", vec![dst, src, n], true);
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        mb.build()
    }

    #[test]
    fn fat_bitcode_compiles_once_and_caches() {
        let fat = FatBitcode::from_module_default_targets(&tsi_module("tsi")).unwrap();
        let mut jit = OrcJit::new(TargetTriple::OOKAMI_A64FX, OptLevel::O2);
        let mut mem = SparseMemory::new();

        let first = jit.add_fat_bitcode(&fat, &mut mem).unwrap();
        assert_eq!(jit.stats().compilations, 1);
        assert_eq!(jit.stats().cache_hits, 0);
        assert!(first.bitcode_size > 0);

        let second = jit.add_fat_bitcode(&fat, &mut mem).unwrap();
        assert_eq!(jit.stats().compilations, 1, "second add must not recompile");
        assert_eq!(jit.stats().cache_hits, 1);
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn execute_entry_runs_the_kernel() {
        let fat = FatBitcode::from_module_default_targets(&tsi_module("tsi")).unwrap();
        let mut jit = OrcJit::new(TargetTriple::THOR_XEON, OptLevel::O2);
        let mut mem = SparseMemory::new();
        jit.add_fat_bitcode(&fat, &mut mem).unwrap();

        mem.write(0x100, &[7]).unwrap();
        mem.write_u64(0x200, 35).unwrap();
        let out = jit
            .execute_entry("tsi", 0x100, 1, 0x200, &mut mem, &mut NoExternals)
            .unwrap();
        assert_eq!(out.return_value, 0);
        assert_eq!(mem.read_u64(0x200).unwrap(), 42);
    }

    #[test]
    fn globals_materialised_and_dylibs_linked() {
        let mut jit = OrcJit::new(TargetTriple::THOR_XEON, OptLevel::O2);
        let mut mem = SparseMemory::new();
        jit.add_module(module_with_global_and_dep(), &mut mem)
            .unwrap();
        let out = jit
            .execute_entry("globals", 0, 0, 0x500, &mut mem, &mut NoExternals)
            .unwrap();
        assert_eq!(out.return_value, 0);
        assert_eq!(mem.read_u64(0x500).unwrap(), 10);
        // The global itself was materialised at the JIT data base.
        let mat = jit.get("globals").unwrap();
        assert_eq!(mat.data_addrs.len(), 1);
        assert!(mat.data_addrs[0] >= JIT_DATA_BASE);
    }

    #[test]
    fn missing_dependency_fails_to_add() {
        let mut mb = ModuleBuilder::new("needs_omp");
        mb.add_dep("libomp.so");
        {
            let mut f = mb.entry_function();
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        let mut jit = OrcJit::new(TargetTriple::THOR_BF2, OptLevel::O2);
        let mut mem = SparseMemory::new();
        let err = jit.add_module(mb.build(), &mut mem).unwrap_err();
        assert_eq!(
            err,
            JitError::MissingDependency {
                library: "libomp.so".into()
            }
        );
        assert!(!jit.contains("needs_omp"));
    }

    #[test]
    fn missing_target_in_archive_is_reported() {
        let fat = FatBitcode::from_module(&tsi_module("tsi"), &[TargetTriple::THOR_XEON]).unwrap();
        let mut jit = OrcJit::new(TargetTriple::OOKAMI_A64FX, OptLevel::O2);
        let mut mem = SparseMemory::new();
        let err = jit.add_fat_bitcode(&fat, &mut mem).unwrap_err();
        assert!(err.to_string().contains("no entry for target"));
    }

    #[test]
    fn remove_deregisters_and_allows_recompilation() {
        let fat = FatBitcode::from_module_default_targets(&tsi_module("tsi")).unwrap();
        let mut jit = OrcJit::new(TargetTriple::THOR_BF2, OptLevel::O2);
        let mut mem = SparseMemory::new();
        jit.add_fat_bitcode(&fat, &mut mem).unwrap();
        assert!(jit.contains("tsi"));
        assert!(jit.remove("tsi"));
        assert!(!jit.contains("tsi"));
        assert!(!jit.remove("tsi"));
        jit.add_fat_bitcode(&fat, &mut mem).unwrap();
        assert_eq!(jit.stats().compilations, 2);
        assert_eq!(jit.stats().removals, 1);
    }

    #[test]
    fn different_ifuncs_cached_independently() {
        let mut jit = OrcJit::new(TargetTriple::THOR_XEON, OptLevel::O2);
        let mut mem = SparseMemory::new();
        jit.add_module(tsi_module("a"), &mut mem).unwrap();
        jit.add_module(tsi_module("b"), &mut mem).unwrap();
        assert_eq!(jit.stats().compilations, 2);
        let mut names = jit.cached_modules();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn executing_unknown_module_fails() {
        let jit = OrcJit::new(TargetTriple::THOR_XEON, OptLevel::O2);
        let mut mem = VecMemory::new(0, 64);
        let err = jit
            .execute_entry("ghost", 0, 0, 0, &mut mem, &mut NoExternals)
            .unwrap_err();
        assert!(matches!(err, JitError::UnknownFunction { .. }));
    }
}
