//! Compile-time and execution-time cost models.
//!
//! The paper measures JIT compilation of the TSI kernel at 6.59 ms on the
//! A64FX, 4.50 ms on the BlueField-2 DPU cores, and 0.83 ms on the Xeon
//! (Tables I–III) — a one-time cost paid on the first arrival of an uncached
//! bitcode ifunc.  The reproduction cannot measure LLVM, so it *models* the
//! compile time as a function of bitcode size, optimisation level, and a
//! per-platform speed factor, and the execution time as a function of the
//! interpreter's retired cycle count and a per-platform clock.  The platform
//! parameters live in `tc-simnet::platform` so all calibration is in one
//! place; this module defines the formulas.

use crate::compile::OptLevel;

/// Compile-time model: `time_ns = base_ns + ns_per_byte * bytes * opt_factor`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileCostModel {
    /// Fixed per-compilation overhead (ORC session setup, symbol table
    /// construction) in nanoseconds.
    pub base_ns: f64,
    /// Marginal cost per byte of bitcode in nanoseconds.
    pub ns_per_byte: f64,
}

impl CompileCostModel {
    /// Model with explicit parameters.
    pub fn new(base_ns: f64, ns_per_byte: f64) -> Self {
        CompileCostModel {
            base_ns,
            ns_per_byte,
        }
    }

    /// Predicted JIT compile time in nanoseconds for `bitcode_bytes` of input
    /// at the given optimisation level.
    pub fn compile_time_ns(&self, bitcode_bytes: usize, opt: OptLevel) -> f64 {
        self.base_ns + self.ns_per_byte * bitcode_bytes as f64 * opt.compile_cost_factor()
    }
}

/// Execution-time model: `time_ns = cycles / effective_ghz`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecCostModel {
    /// Effective clock in GHz after accounting for the interpreter's coarse
    /// cycle model (i.e. cycles-per-nanosecond).
    pub effective_ghz: f64,
}

impl ExecCostModel {
    /// Model with an explicit effective clock.
    pub fn new(effective_ghz: f64) -> Self {
        ExecCostModel { effective_ghz }
    }

    /// Predicted execution time in nanoseconds for a retired cycle count.
    pub fn exec_time_ns(&self, cycles: u64) -> f64 {
        cycles as f64 / self.effective_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_time_scales_with_size_and_opt() {
        let model = CompileCostModel::new(50_000.0, 1_000.0);
        let small_o0 = model.compile_time_ns(100, OptLevel::O0);
        let small_o3 = model.compile_time_ns(100, OptLevel::O3);
        let big_o0 = model.compile_time_ns(10_000, OptLevel::O0);
        assert!(small_o0 < small_o3);
        assert!(small_o3 < big_o0);
    }

    #[test]
    fn paper_scale_jit_times_are_reachable() {
        // Xeon-like: ~0.83 ms for ~5.2 KiB of bitcode.
        let xeon = CompileCostModel::new(100_000.0, 140.0);
        let t = xeon.compile_time_ns(5159, OptLevel::O2);
        assert!(t > 0.5e6 && t < 1.5e6, "xeon-like JIT time {t} ns");

        // A64FX-like: ~6.6 ms for the same input.
        let a64fx = CompileCostModel::new(400_000.0, 1_200.0);
        let t = a64fx.compile_time_ns(5159, OptLevel::O2);
        assert!(t > 4.0e6 && t < 9.0e6, "a64fx-like JIT time {t} ns");
    }

    #[test]
    fn exec_time_inverse_to_clock() {
        let fast = ExecCostModel::new(2.6);
        let slow = ExecCostModel::new(1.8);
        assert!(fast.exec_time_ns(1000) < slow.exec_time_ns(1000));
        assert_eq!(ExecCostModel::new(1.0).exec_time_ns(500) as u64, 500);
    }
}
