//! # tc-jit — the ORC-JIT analogue: compile, link, cache and execute ifuncs
//!
//! The paper relies on LLVM's ORC-JIT to turn shipped bitcode into runnable
//! machine code on the target process, resolve its shared-library
//! dependencies, cache the result, and execute it.  This crate provides the
//! reproduction's equivalent pipeline:
//!
//! * [`compile`] — instruction selection and light optimisation from
//!   `tc-bitir` IR to [`machine::MachModule`] machine code, including the
//!   µarch specialisation the paper highlights (SVE/AVX2-width vector loops,
//!   LSE vs CAS-loop atomics);
//! * [`machine`] — the lowered instruction set, its cycle cost model and its
//!   compact serialisation (the contents of a binary ifunc's `.text`);
//! * [`engine`] — the execution engine (interpreter) with memory abstraction,
//!   external host calls, fuel limits and cycle accounting;
//! * [`dylib`] — simulated shared libraries and the dependency registry used
//!   for remote dynamic linking;
//! * [`orc`] — the per-process ORC-like session: fat-bitcode intake,
//!   compilation caching, global materialisation, execution;
//! * [`aot`] — the binary-ifunc path: build `tc-binfmt` objects ahead of time
//!   and reload them from GOT-patched images;
//! * [`cost`] — compile-time and execution-time models used by the
//!   discrete-event simulation to charge virtual time.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aot;
pub mod compile;
pub mod cost;
pub mod dylib;
pub mod engine;
pub mod error;
pub mod machine;
pub mod orc;

pub use aot::{build_object, module_from_image};
pub use compile::{
    compile_module, lower_and_compile, CompileOptions, CompileStats, Compiled, OptLevel,
};
pub use cost::{CompileCostModel, ExecCostModel};
pub use dylib::{
    standard_libc, standard_libcounters, standard_libm, Dylib, DylibHost, DylibRegistry, HostFn,
    LoadedDylibs,
};
pub use engine::{
    Engine, ExecLimits, ExecOutcome, ExternalHost, Memory, MemoryExt, NoExternals, SparseMemory,
    VecMemory,
};
pub use error::{JitError, Result};
pub use machine::{DataObject, MachFunction, MachInst, MachModule};
pub use orc::{JitStats, MaterializedModule, OrcJit, JIT_DATA_BASE};
