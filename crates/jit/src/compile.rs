//! Compilation of IR modules into machine code.
//!
//! The compiler is the back-end half of the ORC-JIT analogue: it takes a
//! (target-lowered) [`tc_bitir::Module`], verifies it, runs a handful of
//! optimisation passes controlled by [`OptLevel`], selects instructions based
//! on the module's [`tc_bitir::LowerInfo`] (SIMD lane count, LSE vs CAS-loop
//! atomics) and produces a [`MachModule`] the execution engine can run.
//!
//! The *time* compilation takes on a given CPU is modelled separately in
//! [`crate::cost`]; this module only does the functional work.

use crate::error::Result;
use crate::machine::{DataObject, MachFunction, MachInst, MachModule};
use tc_bitir::{
    AtomicsExt, BinOp, Function, Inst, LowerInfo, Module, ScalarType, TargetTriple, VectorExt,
};

/// Optimisation level, mirroring `-O0`…`-O3`.
///
/// Higher levels perform more work at compile time (captured by the cost
/// model) and emit slightly better code (constant folding, redundant-move
/// elimination, wider vectorisation).  The paper notes that `-O3` *increases*
/// the shipped binary size for trivial kernels — the ablation bench
/// `optlevel_ablation` reproduces that trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum OptLevel {
    /// No optimisation.
    O0,
    /// Cheap cleanups.
    O1,
    /// Standard optimisation (default).
    #[default]
    O2,
    /// Aggressive optimisation.
    O3,
}

impl OptLevel {
    /// All levels, in ascending order.
    pub const ALL: [OptLevel; 4] = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];

    /// Multiplier applied to the compile-time cost model.
    pub fn compile_cost_factor(self) -> f64 {
        match self {
            OptLevel::O0 => 0.6,
            OptLevel::O1 => 0.85,
            OptLevel::O2 => 1.0,
            OptLevel::O3 => 1.35,
        }
    }
}

/// Compiler configuration.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Optimisation level.
    pub opt_level: OptLevel,
    /// Verify the module before compiling (recommended; mirrors LLVM's
    /// verifier being run on bitcode loaded from untrusted sources).
    pub verify: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            opt_level: OptLevel::O2,
            verify: true,
        }
    }
}

/// Statistics describing a single compilation (consumed by the cost model
/// and by the metrics layer in `tc-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileStats {
    /// IR instructions in the input module.
    pub ir_insts: usize,
    /// Machine instructions emitted.
    pub mach_insts: usize,
    /// Instructions removed by optimisation passes.
    pub insts_folded: usize,
    /// Vector instructions whose lane count was widened beyond 1.
    pub vectorised_ops: usize,
}

/// The result of compiling a module.
#[derive(Debug, Clone, PartialEq)]
pub struct Compiled {
    /// The executable machine module.
    pub module: MachModule,
    /// Compilation statistics.
    pub stats: CompileStats,
    /// Options used.
    pub opt_level: OptLevel,
}

/// Compile a lowered IR module into machine code.
///
/// The module should carry a `triple`/`lower_info` (i.e. have been passed
/// through [`tc_bitir::lower_for_target`]); a portable module is accepted and
/// compiled with generic (scalar, CAS-loop) lowering, matching how LLVM would
/// pick a conservative subtarget when none is specified.
pub fn compile_module(module: &Module, options: CompileOptions) -> Result<Compiled> {
    if options.verify {
        tc_bitir::verify_module(module)?;
    }

    let lower_info = module.lower_info.unwrap_or(LowerInfo {
        vector: VectorExt::None,
        atomics: AtomicsExt::CasLoop,
        ptr_bytes: 8,
    });
    let triple_name = module
        .triple
        .map(|t| t.name())
        .unwrap_or_else(|| "portable-sim".to_string());

    let mut stats = CompileStats {
        ir_insts: module.inst_count(),
        ..CompileStats::default()
    };

    let mut functions = Vec::with_capacity(module.functions.len());
    for f in &module.functions {
        functions.push(compile_function(
            f,
            &lower_info,
            options.opt_level,
            &mut stats,
        )?);
    }

    let data = module
        .globals
        .iter()
        .map(|g| DataObject {
            name: g.name.clone(),
            init: g.init.clone(),
            mutable: g.mutable,
        })
        .collect();

    let mach = MachModule {
        name: module.name.clone(),
        triple: triple_name,
        functions,
        ext_symbols: module.ext_symbols.clone(),
        data,
        deps: module.deps.clone(),
    };
    stats.mach_insts = mach.inst_count();

    Ok(Compiled {
        module: mach,
        stats,
        opt_level: options.opt_level,
    })
}

/// Convenience: lower a portable module for `target` and compile it.
pub fn lower_and_compile(
    module: &Module,
    target: TargetTriple,
    options: CompileOptions,
) -> Result<Compiled> {
    let lowered = tc_bitir::lower_for_target(module, target)?;
    compile_module(&lowered, options)
}

fn compile_function(
    f: &Function,
    lower: &LowerInfo,
    opt: OptLevel,
    stats: &mut CompileStats,
) -> Result<MachFunction> {
    let mut blocks = Vec::with_capacity(f.blocks.len());
    for block in &f.blocks {
        let mut insts = Vec::with_capacity(block.insts.len());
        for inst in &block.insts {
            insts.push(select_inst(inst, lower, stats));
        }
        blocks.push(insts);
    }

    if opt >= OptLevel::O1 {
        for block in &mut blocks {
            stats.insts_folded += eliminate_redundant_moves(block);
        }
    }
    if opt >= OptLevel::O2 {
        for block in &mut blocks {
            stats.insts_folded += fold_constant_alu(block);
        }
    }

    Ok(MachFunction {
        name: f.name.clone(),
        num_params: f.params.len() as u32,
        has_ret: f.ret.is_some(),
        num_regs: f.num_regs,
        blocks,
    })
}

/// Instruction selection: IR → machine, applying target specialisation.
fn select_inst(inst: &Inst, lower: &LowerInfo, stats: &mut CompileStats) -> MachInst {
    match inst {
        Inst::Const { dst, ty, bits } => MachInst::Imm {
            dst: dst.0,
            ty: *ty,
            bits: *bits,
        },
        Inst::Move { dst, src } => MachInst::Mov {
            dst: dst.0,
            src: src.0,
        },
        Inst::Bin {
            op,
            ty,
            dst,
            lhs,
            rhs,
        } => MachInst::Alu {
            op: *op,
            ty: *ty,
            dst: dst.0,
            lhs: lhs.0,
            rhs: rhs.0,
        },
        Inst::Un { op, ty, dst, src } => MachInst::AluUn {
            op: *op,
            ty: *ty,
            dst: dst.0,
            src: src.0,
        },
        Inst::Load {
            ty,
            dst,
            addr,
            offset,
        } => MachInst::Ld {
            ty: *ty,
            dst: dst.0,
            addr: addr.0,
            offset: *offset,
        },
        Inst::Store {
            ty,
            src,
            addr,
            offset,
        } => MachInst::St {
            ty: *ty,
            src: src.0,
            addr: addr.0,
            offset: *offset,
        },
        Inst::Atomic {
            op,
            ty,
            dst,
            addr,
            src,
            expected,
        } => MachInst::AtomicRmw {
            op: *op,
            ty: *ty,
            dst: dst.0,
            addr: addr.0,
            src: src.0,
            expected: expected.0,
            lse: lower.atomics == AtomicsExt::Lse,
        },
        Inst::Vec {
            op,
            ty,
            dst_addr,
            a_addr,
            b_addr,
            count,
        } => {
            let lanes = lower.vector.lanes_for(*ty, lower.ptr_bytes);
            if lanes > 1 {
                stats.vectorised_ops += 1;
            }
            MachInst::VecLoop {
                op: *op,
                ty: *ty,
                dst_addr: dst_addr.0,
                a_addr: a_addr.0,
                b_addr: b_addr.0,
                count: count.0,
                lanes,
            }
        }
        Inst::GlobalAddr { dst, global } => MachInst::DataAddr {
            dst: dst.0,
            data_index: global.0,
        },
        Inst::Call { dst, func, args } => MachInst::CallLocal {
            dst: dst.map(|r| r.0),
            func_index: func.0,
            args: args.iter().map(|r| r.0).collect(),
        },
        Inst::CallExt { dst, sym, args } => MachInst::CallSym {
            dst: dst.map(|r| r.0),
            sym_index: sym.0,
            args: args.iter().map(|r| r.0).collect(),
        },
        Inst::Br { target } => MachInst::Jmp { block: target.0 },
        Inst::BrIf {
            cond,
            then_blk,
            else_blk,
        } => MachInst::JmpIf {
            cond: cond.0,
            then_block: then_blk.0,
            else_block: else_blk.0,
        },
        Inst::Ret { value } => MachInst::Ret {
            value: value.map(|r| r.0),
        },
        Inst::Trap { code } => MachInst::Trap { code: *code },
    }
}

/// O1 pass: remove `Mov { dst, src }` where `dst == src`.
fn eliminate_redundant_moves(block: &mut Vec<MachInst>) -> usize {
    let before = block.len();
    block.retain(|inst| !matches!(inst, MachInst::Mov { dst, src } if dst == src));
    before - block.len()
}

/// O2 pass: fold `Imm a; Imm b; Alu dst = a op b` into a single `Imm dst`
/// when both operands are integer immediates defined immediately before the
/// ALU op and not reused later in the block.  This is intentionally a very
/// local peephole — enough to observe "optimisation changes code size", which
/// is the property the paper remarks on, without building a full optimiser.
fn fold_constant_alu(block: &mut Vec<MachInst>) -> usize {
    let mut folded = 0usize;
    let mut i = 2usize;
    while i < block.len() {
        let can_fold = {
            match (&block[i - 2], &block[i - 1], &block[i]) {
                (
                    MachInst::Imm {
                        dst: da,
                        ty: ta,
                        bits: ba,
                    },
                    MachInst::Imm {
                        dst: db,
                        ty: tb,
                        bits: bb,
                    },
                    MachInst::Alu {
                        op,
                        ty,
                        dst,
                        lhs,
                        rhs,
                    },
                ) if lhs == da
                    && rhs == db
                    && ta == ty
                    && tb == ty
                    && !ty.is_float()
                    && !matches!(op, BinOp::Div | BinOp::Rem) =>
                {
                    // Neither immediate register may be used later in the block.
                    let used_later = block[i + 1..]
                        .iter()
                        .any(|inst| inst_reads_reg(inst, *da) || inst_reads_reg(inst, *db));
                    if used_later {
                        None
                    } else {
                        eval_const_int(*op, *ty, *ba, *bb).map(|bits| (*dst, *ty, bits))
                    }
                }
                _ => None,
            }
        };
        if let Some((dst, ty, bits)) = can_fold {
            block.splice(i - 2..=i, [MachInst::Imm { dst, ty, bits }]);
            folded += 2;
            i = i.saturating_sub(2).max(2);
        } else {
            i += 1;
        }
    }
    folded
}

fn inst_reads_reg(inst: &MachInst, reg: u32) -> bool {
    match inst {
        MachInst::Imm { .. }
        | MachInst::DataAddr { .. }
        | MachInst::Jmp { .. }
        | MachInst::Trap { .. } => false,
        MachInst::Mov { src, .. } => *src == reg,
        MachInst::Alu { lhs, rhs, .. } => *lhs == reg || *rhs == reg,
        MachInst::AluUn { src, .. } => *src == reg,
        MachInst::Ld { addr, .. } => *addr == reg,
        MachInst::St { src, addr, .. } => *src == reg || *addr == reg,
        MachInst::AtomicRmw {
            addr,
            src,
            expected,
            ..
        } => *addr == reg || *src == reg || *expected == reg,
        MachInst::VecLoop {
            dst_addr,
            a_addr,
            b_addr,
            count,
            ..
        } => *dst_addr == reg || *a_addr == reg || *b_addr == reg || *count == reg,
        MachInst::CallLocal { args, .. } | MachInst::CallSym { args, .. } => args.contains(&reg),
        MachInst::JmpIf { cond, .. } => *cond == reg,
        MachInst::Ret { value } => *value == Some(reg),
    }
}

fn eval_const_int(op: BinOp, ty: ScalarType, a: u64, b: u64) -> Option<u64> {
    let mask = type_mask(ty);
    let a = a & mask;
    let b = b & mask;
    let result = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinOp::Shr => a.wrapping_shr((b & 63) as u32),
        BinOp::CmpEq => u64::from(a == b),
        BinOp::CmpNe => u64::from(a != b),
        BinOp::CmpLt => u64::from(a < b),
        BinOp::CmpLe => u64::from(a <= b),
        BinOp::CmpGt => u64::from(a > b),
        BinOp::CmpGe => u64::from(a >= b),
        _ => return None,
    };
    Some(result & mask)
}

fn type_mask(ty: ScalarType) -> u64 {
    match ty.size_bytes(8) {
        1 => 0xff,
        2 => 0xffff,
        4 => 0xffff_ffff,
        _ => u64::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::JitError;
    use tc_bitir::{ModuleBuilder, ScalarType, TargetTriple, VecOp};

    fn vec_module() -> Module {
        let mut mb = ModuleBuilder::new("vec");
        {
            let mut f = mb.entry_function();
            let payload = f.param(0);
            let target = f.param(2);
            let count = f.const_u64(64);
            f.vec_op(VecOp::Add, ScalarType::F64, target, payload, payload, count);
            let one = f.const_u64(1);
            f.atomic_fetch_add(ScalarType::U64, target, one);
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        mb.build()
    }

    #[test]
    fn vectorisation_uses_target_width() {
        let m = vec_module();
        let a64fx =
            lower_and_compile(&m, TargetTriple::OOKAMI_A64FX, CompileOptions::default()).unwrap();
        let xeon =
            lower_and_compile(&m, TargetTriple::THOR_XEON, CompileOptions::default()).unwrap();
        let bf2 = lower_and_compile(&m, TargetTriple::THOR_BF2, CompileOptions::default()).unwrap();

        let lanes = |c: &Compiled| {
            c.module.functions[0]
                .blocks
                .iter()
                .flatten()
                .find_map(|i| match i {
                    MachInst::VecLoop { lanes, .. } => Some(*lanes),
                    _ => None,
                })
                .unwrap()
        };
        // f64 lanes: SVE512 → 8, AVX2 → 4, NEON → 2.
        assert_eq!(lanes(&a64fx), 8);
        assert_eq!(lanes(&xeon), 4);
        assert_eq!(lanes(&bf2), 2);
        assert_eq!(a64fx.stats.vectorised_ops, 1);
    }

    #[test]
    fn atomics_flavour_follows_target() {
        let m = vec_module();
        let a64fx =
            lower_and_compile(&m, TargetTriple::OOKAMI_A64FX, CompileOptions::default()).unwrap();
        let bf2 = lower_and_compile(&m, TargetTriple::THOR_BF2, CompileOptions::default()).unwrap();
        let find_lse = |c: &Compiled| {
            c.module.functions[0]
                .blocks
                .iter()
                .flatten()
                .find_map(|i| match i {
                    MachInst::AtomicRmw { lse, .. } => Some(*lse),
                    _ => None,
                })
                .unwrap()
        };
        assert!(find_lse(&a64fx), "A64FX should use LSE atomics");
        assert!(!find_lse(&bf2), "Cortex-A72 profile uses CAS loops");
    }

    #[test]
    fn constant_folding_reduces_inst_count_at_o2() {
        let mut mb = ModuleBuilder::new("fold");
        {
            let mut f = mb.function("f", vec![], Some(ScalarType::I64));
            let a = f.const_i64(40);
            let b = f.const_i64(2);
            let c = f.add_i64(a, b);
            f.ret(c);
            f.finish();
        }
        let m = mb.build();
        let o0 = compile_module(
            &m,
            CompileOptions {
                opt_level: OptLevel::O0,
                verify: true,
            },
        )
        .unwrap();
        let o2 = compile_module(
            &m,
            CompileOptions {
                opt_level: OptLevel::O2,
                verify: true,
            },
        )
        .unwrap();
        assert!(o2.module.inst_count() < o0.module.inst_count());
        assert!(o2.stats.insts_folded >= 2);
        // The folded constant must be correct.
        let has_42 = o2.module.functions[0]
            .blocks
            .iter()
            .flatten()
            .any(|i| matches!(i, MachInst::Imm { bits: 42, .. }));
        assert!(has_42, "folded immediate 42 not found");
    }

    #[test]
    fn folding_respects_later_uses() {
        let mut mb = ModuleBuilder::new("nofold");
        {
            let mut f = mb.function("f", vec![], Some(ScalarType::I64));
            let a = f.const_i64(40);
            let b = f.const_i64(2);
            let c = f.add_i64(a, b);
            let d = f.add_i64(c, a); // `a` used again: folding must not remove it
            f.ret(d);
            f.finish();
        }
        let compiled = compile_module(&mb.build(), CompileOptions::default()).unwrap();
        // All three Imm+Alu chain still evaluates to 82 at run time — we just
        // check the immediates survived.
        let imm_count = compiled.module.functions[0]
            .blocks
            .iter()
            .flatten()
            .filter(|i| matches!(i, MachInst::Imm { .. }))
            .count();
        assert!(imm_count >= 2);
    }

    #[test]
    fn verification_failure_propagates() {
        let mut m = vec_module();
        m.functions[0].blocks[0].insts.pop();
        let err = compile_module(&m, CompileOptions::default()).unwrap_err();
        assert!(matches!(err, JitError::Compile(_)));
    }

    #[test]
    fn portable_module_compiles_with_scalar_fallback() {
        let m = vec_module();
        let compiled = compile_module(&m, CompileOptions::default()).unwrap();
        let lanes = compiled.module.functions[0]
            .blocks
            .iter()
            .flatten()
            .find_map(|i| match i {
                MachInst::VecLoop { lanes, .. } => Some(*lanes),
                _ => None,
            })
            .unwrap();
        assert_eq!(lanes, 1, "portable compile must scalarise");
        assert_eq!(compiled.module.triple, "portable-sim");
    }

    #[test]
    fn opt_cost_factors_monotone() {
        let mut prev = 0.0;
        for lvl in OptLevel::ALL {
            assert!(lvl.compile_cost_factor() > prev);
            prev = lvl.compile_cost_factor();
        }
    }

    #[test]
    fn stats_track_sizes() {
        let m = vec_module();
        let compiled = compile_module(&m, CompileOptions::default()).unwrap();
        assert_eq!(compiled.stats.ir_insts, m.inst_count());
        assert_eq!(compiled.stats.mach_insts, compiled.module.inst_count());
    }
}
