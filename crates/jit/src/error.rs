//! Error types for compilation and execution.

use std::fmt;

/// Errors produced by the JIT compiler, the AOT path, and the execution
/// engine.
#[derive(Debug, Clone, PartialEq)]
pub enum JitError {
    /// The input IR failed verification or could not be compiled.
    Compile(String),
    /// A referenced symbol could not be resolved at link/JIT time.
    UnresolvedSymbol {
        /// The missing symbol.
        symbol: String,
    },
    /// A shared-library dependency is not available on the target.
    MissingDependency {
        /// The missing library name.
        library: String,
    },
    /// The execution engine trapped (division by zero, explicit trap,
    /// out-of-bounds memory access, …).
    Trap {
        /// Human-readable trap description.
        reason: String,
    },
    /// Execution exceeded its fuel budget (runaway ifunc protection).
    OutOfFuel {
        /// Number of instructions that were executed before the engine
        /// stopped.
        executed: u64,
    },
    /// The requested function does not exist in the compiled module.
    UnknownFunction {
        /// Function name.
        name: String,
    },
    /// Machine-code (de)serialization failed.
    Decode(String),
    /// An error bubbled up from an external host call (framework or dylib).
    Host(String),
}

impl fmt::Display for JitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JitError::Compile(msg) => write!(f, "compilation failed: {msg}"),
            JitError::UnresolvedSymbol { symbol } => {
                write!(f, "unresolved symbol `{symbol}`")
            }
            JitError::MissingDependency { library } => {
                write!(f, "missing shared-library dependency `{library}`")
            }
            JitError::Trap { reason } => write!(f, "execution trapped: {reason}"),
            JitError::OutOfFuel { executed } => {
                write!(
                    f,
                    "execution exceeded fuel budget after {executed} instructions"
                )
            }
            JitError::UnknownFunction { name } => write!(f, "unknown function `{name}`"),
            JitError::Decode(msg) => write!(f, "machine code decode failed: {msg}"),
            JitError::Host(msg) => write!(f, "external host call failed: {msg}"),
        }
    }
}

impl std::error::Error for JitError {}

impl From<tc_bitir::BitirError> for JitError {
    fn from(e: tc_bitir::BitirError) -> Self {
        JitError::Compile(e.to_string())
    }
}

impl From<tc_binfmt::BinfmtError> for JitError {
    fn from(e: tc_binfmt::BinfmtError) -> Self {
        match e {
            tc_binfmt::BinfmtError::UndefinedSymbol { symbol } => {
                JitError::UnresolvedSymbol { symbol }
            }
            other => JitError::Compile(other.to_string()),
        }
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, JitError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(JitError::UnresolvedSymbol {
            symbol: "foo".into()
        }
        .to_string()
        .contains("foo"));
        assert!(JitError::OutOfFuel { executed: 7 }
            .to_string()
            .contains('7'));
        assert!(JitError::MissingDependency {
            library: "libomp.so".into()
        }
        .to_string()
        .contains("libomp.so"));
    }

    #[test]
    fn binfmt_undefined_symbol_maps_to_unresolved() {
        let e: JitError = tc_binfmt::BinfmtError::UndefinedSymbol { symbol: "x".into() }.into();
        assert_eq!(e, JitError::UnresolvedSymbol { symbol: "x".into() });
    }
}
