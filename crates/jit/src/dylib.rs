//! Simulated shared libraries and the dependency registry.
//!
//! Bitcode ifuncs in the paper ship a `.deps` file listing the shared
//! libraries they need (e.g. `libomp.so`, `libcrypto.so`); the target runtime
//! loads those libraries and lets ORC-JIT resolve symbols against them.  The
//! reproduction models a library as a named bag of host-implemented functions
//! ([`HostFn`]); the [`DylibRegistry`] is the per-process set of libraries
//! available for loading, and a [`DylibHost`] adapts a set of *loaded*
//! libraries into the execution engine's [`ExternalHost`] interface.

use crate::engine::{ExternalHost, Memory, MemoryExt};
use crate::error::{JitError, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// A host-implemented library function.
///
/// Receives the argument registers and the node memory; returns the function
/// result (0 for void functions).
pub type HostFn = Arc<dyn Fn(&[u64], &mut dyn Memory) -> Result<u64> + Send + Sync>;

/// A simulated shared library: a name plus its exported functions.
#[derive(Clone, Default)]
pub struct Dylib {
    /// Library file name (e.g. `"libm.so"`).
    pub name: String,
    functions: HashMap<String, HostFn>,
}

impl std::fmt::Debug for Dylib {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dylib")
            .field("name", &self.name)
            .field("symbols", &self.functions.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Dylib {
    /// Create an empty library.
    pub fn new(name: impl Into<String>) -> Self {
        Dylib {
            name: name.into(),
            functions: HashMap::new(),
        }
    }

    /// Export a function from this library.
    pub fn export<F>(&mut self, symbol: impl Into<String>, f: F) -> &mut Self
    where
        F: Fn(&[u64], &mut dyn Memory) -> Result<u64> + Send + Sync + 'static,
    {
        self.functions.insert(symbol.into(), Arc::new(f));
        self
    }

    /// Look up an exported function.
    pub fn lookup(&self, symbol: &str) -> Option<&HostFn> {
        self.functions.get(symbol)
    }

    /// Exported symbol names.
    pub fn symbols(&self) -> Vec<&str> {
        self.functions.keys().map(String::as_str).collect()
    }
}

/// The per-process registry of shared libraries available for loading.
#[derive(Debug, Clone, Default)]
pub struct DylibRegistry {
    libs: HashMap<String, Dylib>,
}

impl DylibRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry pre-populated with the standard simulated libraries
    /// ([`standard_libc`], [`standard_libm`]).
    pub fn with_standard_libs() -> Self {
        let mut reg = Self::new();
        reg.register(standard_libc());
        reg.register(standard_libm());
        reg
    }

    /// Register (or replace) a library.
    pub fn register(&mut self, lib: Dylib) {
        self.libs.insert(lib.name.clone(), lib);
    }

    /// True when `name` can be loaded.
    pub fn has(&self, name: &str) -> bool {
        self.libs.contains_key(name)
    }

    /// Names of all registered libraries.
    pub fn names(&self) -> Vec<&str> {
        self.libs.keys().map(String::as_str).collect()
    }

    /// Load the libraries named in `deps`, failing on the first one that is
    /// not available (the paper's "dependency must be present on the target"
    /// requirement).
    pub fn load(&self, deps: &[String]) -> Result<LoadedDylibs> {
        let mut loaded = Vec::with_capacity(deps.len());
        for dep in deps {
            let lib = self
                .libs
                .get(dep)
                .ok_or_else(|| JitError::MissingDependency {
                    library: dep.clone(),
                })?;
            loaded.push(lib.clone());
        }
        Ok(LoadedDylibs { libs: loaded })
    }
}

/// The set of libraries loaded for a particular ifunc, in dependency order.
#[derive(Debug, Clone, Default)]
pub struct LoadedDylibs {
    libs: Vec<Dylib>,
}

impl LoadedDylibs {
    /// Resolve a symbol across the loaded libraries (first match wins).
    pub fn lookup(&self, symbol: &str) -> Option<&HostFn> {
        self.libs.iter().find_map(|l| l.lookup(symbol))
    }

    /// Number of loaded libraries.
    pub fn len(&self) -> usize {
        self.libs.len()
    }

    /// True when no library is loaded.
    pub fn is_empty(&self) -> bool {
        self.libs.is_empty()
    }
}

/// An [`ExternalHost`] that resolves symbols against loaded dylibs and
/// falls back to an inner host (typically the framework runtime) for
/// everything else.
pub struct DylibHost<'a> {
    loaded: &'a LoadedDylibs,
    fallback: Option<&'a mut dyn ExternalHost>,
}

impl<'a> DylibHost<'a> {
    /// Host resolving only against `loaded`.
    pub fn new(loaded: &'a LoadedDylibs) -> Self {
        DylibHost {
            loaded,
            fallback: None,
        }
    }

    /// Host resolving against `loaded` first, then `fallback`.
    pub fn with_fallback(loaded: &'a LoadedDylibs, fallback: &'a mut dyn ExternalHost) -> Self {
        DylibHost {
            loaded,
            fallback: Some(fallback),
        }
    }
}

impl ExternalHost for DylibHost<'_> {
    fn call_external(&mut self, symbol: &str, args: &[u64], mem: &mut dyn Memory) -> Result<u64> {
        if let Some(f) = self.loaded.lookup(symbol) {
            return f(args, mem);
        }
        match &mut self.fallback {
            Some(h) => h.call_external(symbol, args, mem),
            None => Err(JitError::UnresolvedSymbol {
                symbol: symbol.to_string(),
            }),
        }
    }

    fn external_cost(&self, symbol: &str) -> u64 {
        if self.loaded.lookup(symbol).is_some() {
            20
        } else {
            match &self.fallback {
                Some(h) => h.external_cost(symbol),
                None => 0,
            }
        }
    }
}

/// The simulated `libc.so`: `memcpy`, `memset`, `strlen_u64`.
///
/// All functions use the (address, address/byte, length) calling convention
/// over node memory.
pub fn standard_libc() -> Dylib {
    let mut lib = Dylib::new("libc.so");
    lib.export("memcpy", |args, mem| {
        let (dst, src, n) = three_args("memcpy", args)?;
        let mut buf = vec![0u8; n as usize];
        mem.read(src, &mut buf)?;
        mem.write(dst, &buf)?;
        Ok(dst)
    });
    lib.export("memset", |args, mem| {
        let (dst, value, n) = three_args("memset", args)?;
        let buf = vec![value as u8; n as usize];
        mem.write(dst, &buf)?;
        Ok(dst)
    });
    lib.export("strlen_u64", |args, mem| {
        let addr = one_arg("strlen_u64", args)?;
        let mut len = 0u64;
        loop {
            let mut b = [0u8; 1];
            mem.read(addr + len, &mut b)?;
            if b[0] == 0 {
                return Ok(len);
            }
            len += 1;
            if len > 1 << 20 {
                return Err(JitError::Host("strlen_u64 runaway".into()));
            }
        }
    });
    lib
}

/// The simulated `libm.so`: `sqrt`, `fabs`, `pow2` operating on f64 bit
/// patterns passed in registers.
pub fn standard_libm() -> Dylib {
    let mut lib = Dylib::new("libm.so");
    lib.export("sqrt", |args, _mem| {
        let x = f64::from_bits(one_arg("sqrt", args)?);
        Ok(x.sqrt().to_bits())
    });
    lib.export("fabs", |args, _mem| {
        let x = f64::from_bits(one_arg("fabs", args)?);
        Ok(x.abs().to_bits())
    });
    lib.export("pow2", |args, _mem| {
        let x = f64::from_bits(one_arg("pow2", args)?);
        Ok((x * x).to_bits())
    });
    lib
}

/// The simulated `libcounters.so` used by examples: exposes an atomic-style
/// `counter_add(addr, delta)` helper over node memory.
pub fn standard_libcounters() -> Dylib {
    let mut lib = Dylib::new("libcounters.so");
    lib.export("counter_add", |args, mem| {
        if args.len() != 2 {
            return Err(JitError::Host("counter_add expects 2 args".into()));
        }
        let old = mem.read_u64(args[0])?;
        mem.write_u64(args[0], old.wrapping_add(args[1]))?;
        Ok(old)
    });
    lib
}

fn one_arg(name: &str, args: &[u64]) -> Result<u64> {
    if args.len() != 1 {
        return Err(JitError::Host(format!(
            "{name} expects 1 arg, got {}",
            args.len()
        )));
    }
    Ok(args[0])
}

fn three_args(name: &str, args: &[u64]) -> Result<(u64, u64, u64)> {
    if args.len() != 3 {
        return Err(JitError::Host(format!(
            "{name} expects 3 args, got {}",
            args.len()
        )));
    }
    Ok((args[0], args[1], args[2]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::VecMemory;

    #[test]
    fn registry_loads_known_deps_and_rejects_unknown() {
        let reg = DylibRegistry::with_standard_libs();
        assert!(reg.has("libc.so"));
        assert!(reg.has("libm.so"));
        let loaded = reg.load(&["libc.so".into(), "libm.so".into()]).unwrap();
        assert_eq!(loaded.len(), 2);
        assert!(loaded.lookup("memcpy").is_some());
        assert!(loaded.lookup("sqrt").is_some());
        assert!(loaded.lookup("nonexistent").is_none());

        let err = reg.load(&["libomp.so".into()]).unwrap_err();
        assert_eq!(
            err,
            JitError::MissingDependency {
                library: "libomp.so".into()
            }
        );
    }

    #[test]
    fn memcpy_and_memset_work_on_node_memory() {
        let reg = DylibRegistry::with_standard_libs();
        let loaded = reg.load(&["libc.so".into()]).unwrap();
        let mut mem = VecMemory::new(0, 256);
        mem.write(0, b"hello world").unwrap();
        let mut host = DylibHost::new(&loaded);
        host.call_external("memcpy", &[100, 0, 11], &mut mem)
            .unwrap();
        let mut buf = [0u8; 11];
        mem.read(100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");

        host.call_external("memset", &[0, 0xAB, 4], &mut mem)
            .unwrap();
        let mut buf = [0u8; 4];
        mem.read(0, &mut buf).unwrap();
        assert_eq!(buf, [0xAB; 4]);
    }

    #[test]
    fn libm_math_roundtrips_f64_bits() {
        let reg = DylibRegistry::with_standard_libs();
        let loaded = reg.load(&["libm.so".into()]).unwrap();
        let mut mem = VecMemory::new(0, 8);
        let mut host = DylibHost::new(&loaded);
        let r = host
            .call_external("sqrt", &[144.0f64.to_bits()], &mut mem)
            .unwrap();
        assert_eq!(f64::from_bits(r), 12.0);
        let r = host
            .call_external("fabs", &[(-3.5f64).to_bits()], &mut mem)
            .unwrap();
        assert_eq!(f64::from_bits(r), 3.5);
    }

    #[test]
    fn fallback_host_is_consulted_for_unknown_symbols() {
        struct Fallback;
        impl ExternalHost for Fallback {
            fn call_external(
                &mut self,
                symbol: &str,
                _args: &[u64],
                _mem: &mut dyn Memory,
            ) -> Result<u64> {
                if symbol == "tc_node_id" {
                    Ok(3)
                } else {
                    Err(JitError::UnresolvedSymbol {
                        symbol: symbol.into(),
                    })
                }
            }
        }
        let reg = DylibRegistry::with_standard_libs();
        let loaded = reg.load(&["libm.so".into()]).unwrap();
        let mut fb = Fallback;
        let mut host = DylibHost::with_fallback(&loaded, &mut fb);
        let mut mem = VecMemory::new(0, 8);
        assert_eq!(host.call_external("tc_node_id", &[], &mut mem).unwrap(), 3);
        assert!(host.call_external("missing", &[], &mut mem).is_err());
    }

    #[test]
    fn counters_lib_returns_old_value() {
        let lib = standard_libcounters();
        let mut reg = DylibRegistry::new();
        reg.register(lib);
        let loaded = reg.load(&["libcounters.so".into()]).unwrap();
        let mut mem = VecMemory::new(0, 64);
        mem.write_u64(8, 40).unwrap();
        let mut host = DylibHost::new(&loaded);
        let old = host
            .call_external("counter_add", &[8, 2], &mut mem)
            .unwrap();
        assert_eq!(old, 40);
        assert_eq!(mem.read_u64(8).unwrap(), 42);
    }

    #[test]
    fn bad_arity_is_a_host_error() {
        let reg = DylibRegistry::with_standard_libs();
        let loaded = reg.load(&["libc.so".into()]).unwrap();
        let mut mem = VecMemory::new(0, 8);
        let mut host = DylibHost::new(&loaded);
        let err = host.call_external("memcpy", &[1, 2], &mut mem).unwrap_err();
        assert!(matches!(err, JitError::Host(_)));
    }
}
