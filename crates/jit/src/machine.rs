//! The lowered "machine code" representation.
//!
//! Where the real Three-Chains ends up with native machine code emitted by
//! LLVM's back-end, the reproduction lowers IR into a flat, pre-resolved
//! instruction stream ([`MachInst`]) that the execution engine interprets.
//! The important properties carried over from real machine code:
//!
//! * it is *target-specific*: the SIMD lane count and the atomics strategy
//!   are baked in at compile time from the module's [`tc_bitir::LowerInfo`];
//! * external calls are routed through a small symbol table (the GOT
//!   analogue) so they can be rebound per process;
//! * it has a deterministic per-instruction cycle cost, which the
//!   discrete-event simulator uses to charge execution time;
//! * it serialises to a compact byte stream — this is what a *binary* ifunc
//!   ships in its `.text` section.

use crate::error::{JitError, Result};
use tc_bitir::{AtomicOp, BinOp, ScalarType, UnOp, VecOp};

/// A machine register index (virtual; the interpreter keeps a flat frame).
pub type MReg = u32;

/// One lowered machine instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum MachInst {
    /// Load an immediate bit pattern.
    Imm {
        /// Destination register.
        dst: MReg,
        /// Value type.
        ty: ScalarType,
        /// Raw bits.
        bits: u64,
    },
    /// Register copy.
    Mov {
        /// Destination register.
        dst: MReg,
        /// Source register.
        src: MReg,
    },
    /// Binary ALU/FPU operation.
    Alu {
        /// Operator.
        op: BinOp,
        /// Operand type.
        ty: ScalarType,
        /// Destination register.
        dst: MReg,
        /// Left operand.
        lhs: MReg,
        /// Right operand.
        rhs: MReg,
    },
    /// Unary ALU/FPU operation or conversion.
    AluUn {
        /// Operator.
        op: UnOp,
        /// Destination type.
        ty: ScalarType,
        /// Destination register.
        dst: MReg,
        /// Source register.
        src: MReg,
    },
    /// Scalar load.
    Ld {
        /// Value type.
        ty: ScalarType,
        /// Destination register.
        dst: MReg,
        /// Address register.
        addr: MReg,
        /// Byte offset.
        offset: i64,
    },
    /// Scalar store.
    St {
        /// Value type.
        ty: ScalarType,
        /// Source register.
        src: MReg,
        /// Address register.
        addr: MReg,
        /// Byte offset.
        offset: i64,
    },
    /// Atomic read-modify-write, lowered to either a single LSE-style
    /// instruction or a CAS loop depending on the target.
    AtomicRmw {
        /// Operation.
        op: AtomicOp,
        /// Value type.
        ty: ScalarType,
        /// Destination register (old value).
        dst: MReg,
        /// Address register.
        addr: MReg,
        /// Operand register.
        src: MReg,
        /// Expected-value register (CompareSwap only).
        expected: MReg,
        /// True when lowered to a single LSE-style instruction; false means a
        /// CAS loop which costs more cycles.
        lse: bool,
    },
    /// Vectorised element-wise loop over memory, processing `lanes` elements
    /// per machine iteration (the µarch specialisation the paper observes as
    /// SVE / AVX2 emission).
    VecLoop {
        /// Operation.
        op: VecOp,
        /// Element type.
        ty: ScalarType,
        /// Destination base address register.
        dst_addr: MReg,
        /// First source base address register.
        a_addr: MReg,
        /// Second source base address register.
        b_addr: MReg,
        /// Element-count register.
        count: MReg,
        /// Elements processed per iteration (≥ 1).
        lanes: u32,
    },
    /// Materialise the address of a data object (global) by index.
    DataAddr {
        /// Destination register.
        dst: MReg,
        /// Index into the compiled module's data-object table.
        data_index: u32,
    },
    /// Direct call to another function in the same compiled module.
    CallLocal {
        /// Destination register for the return value.
        dst: Option<MReg>,
        /// Index of the callee in the compiled module.
        func_index: u32,
        /// Argument registers.
        args: Vec<MReg>,
    },
    /// Call through the symbol table (external/framework call).
    CallSym {
        /// Destination register for the return value.
        dst: Option<MReg>,
        /// Index into the compiled module's external-symbol table.
        sym_index: u32,
        /// Argument registers.
        args: Vec<MReg>,
    },
    /// Unconditional jump to a block index.
    Jmp {
        /// Target block.
        block: u32,
    },
    /// Conditional jump.
    JmpIf {
        /// Condition register (non-zero = taken).
        cond: MReg,
        /// Target block when taken.
        then_block: u32,
        /// Target block when not taken.
        else_block: u32,
    },
    /// Return.
    Ret {
        /// Returned register, if any.
        value: Option<MReg>,
    },
    /// Trap.
    Trap {
        /// Trap code.
        code: u32,
    },
}

impl MachInst {
    /// Nominal cycle cost of the instruction (vector loops and calls add a
    /// dynamic component at run time).  These are coarse, single-issue-style
    /// costs: what matters for the reproduction is the *relative* cost of
    /// cached execution vs. JIT vs. transmission, not cycle accuracy.
    pub fn base_cycles(&self) -> u64 {
        match self {
            MachInst::Imm { .. } | MachInst::Mov { .. } => 1,
            MachInst::Alu { op, .. } => match op {
                BinOp::Div | BinOp::Rem => 20,
                BinOp::FDiv => 15,
                BinOp::Mul | BinOp::FMul => 3,
                _ => 1,
            },
            MachInst::AluUn { .. } => 1,
            MachInst::Ld { .. } => 4,
            MachInst::St { .. } => 4,
            MachInst::AtomicRmw { lse, .. } => {
                if *lse {
                    8
                } else {
                    20
                }
            }
            MachInst::VecLoop { .. } => 2, // per chunk; engine multiplies by trip count
            MachInst::DataAddr { .. } => 1,
            MachInst::CallLocal { .. } => 4,
            MachInst::CallSym { .. } => 10,
            MachInst::Jmp { .. } | MachInst::JmpIf { .. } => 1,
            MachInst::Ret { .. } => 2,
            MachInst::Trap { .. } => 1,
        }
    }

    /// True if this instruction terminates a block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            MachInst::Jmp { .. }
                | MachInst::JmpIf { .. }
                | MachInst::Ret { .. }
                | MachInst::Trap { .. }
        )
    }
}

/// A compiled function: blocks of machine instructions.
#[derive(Debug, Clone, PartialEq)]
pub struct MachFunction {
    /// Function name.
    pub name: String,
    /// Number of parameters (arrive in registers 0..n).
    pub num_params: u32,
    /// Whether the function returns a value.
    pub has_ret: bool,
    /// Number of virtual registers used.
    pub num_regs: u32,
    /// Basic blocks of machine instructions.
    pub blocks: Vec<Vec<MachInst>>,
}

impl MachFunction {
    /// Total instruction count.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }
}

/// A data object carried alongside the code (lowered module global).
#[derive(Debug, Clone, PartialEq)]
pub struct DataObject {
    /// Symbol name.
    pub name: String,
    /// Initial bytes.
    pub init: Vec<u8>,
    /// Whether stores to it are allowed.
    pub mutable: bool,
}

/// A fully compiled module: the unit the ORC-like JIT caches and the
/// execution engine runs.
#[derive(Debug, Clone, PartialEq)]
pub struct MachModule {
    /// Module (ifunc library) name.
    pub name: String,
    /// Triple string the module was compiled for.
    pub triple: String,
    /// Compiled functions.
    pub functions: Vec<MachFunction>,
    /// External symbols referenced by [`MachInst::CallSym`], in index order.
    pub ext_symbols: Vec<String>,
    /// Data objects referenced by [`MachInst::DataAddr`], in index order.
    pub data: Vec<DataObject>,
    /// Shared-library dependencies that must be loadable before execution.
    pub deps: Vec<String>,
}

impl MachModule {
    /// Find a function index by name.
    pub fn function_index(&self, name: &str) -> Option<u32> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }

    /// Total machine instruction count.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(MachFunction::inst_count).sum()
    }

    // -- serialization (the contents of a binary ifunc's .text) -------------

    /// Serialise the module to a compact byte stream.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = tc_bitir::bitcode::Writer::new();
        w.string(&self.name);
        w.string(&self.triple);
        w.varint(self.ext_symbols.len() as u64);
        for s in &self.ext_symbols {
            w.string(s);
        }
        w.varint(self.deps.len() as u64);
        for d in &self.deps {
            w.string(d);
        }
        w.varint(self.data.len() as u64);
        for d in &self.data {
            w.string(&d.name);
            w.u8(u8::from(d.mutable));
            w.bytes(&d.init);
        }
        w.varint(self.functions.len() as u64);
        for f in &self.functions {
            w.string(&f.name);
            w.varint(u64::from(f.num_params));
            w.u8(u8::from(f.has_ret));
            w.varint(u64::from(f.num_regs));
            w.varint(f.blocks.len() as u64);
            for b in &f.blocks {
                w.varint(b.len() as u64);
                for inst in b {
                    encode_inst(&mut w, inst);
                }
            }
        }
        w.finish()
    }

    /// Deserialise a module previously produced by [`MachModule::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = tc_bitir::bitcode::Reader::new(bytes);
        let map_err = |e: tc_bitir::BitirError| JitError::Decode(e.to_string());
        let name = r.string().map_err(map_err)?;
        let triple = r.string().map_err(map_err)?;
        let nsyms = r.varint().map_err(map_err)? as usize;
        let mut ext_symbols = Vec::with_capacity(nsyms.min(1024));
        for _ in 0..nsyms {
            ext_symbols.push(r.string().map_err(map_err)?);
        }
        let ndeps = r.varint().map_err(map_err)? as usize;
        let mut deps = Vec::with_capacity(ndeps.min(256));
        for _ in 0..ndeps {
            deps.push(r.string().map_err(map_err)?);
        }
        let ndata = r.varint().map_err(map_err)? as usize;
        let mut data = Vec::with_capacity(ndata.min(1024));
        for _ in 0..ndata {
            let name = r.string().map_err(map_err)?;
            let mutable = r.u8().map_err(map_err)? != 0;
            let init = r.bytes().map_err(map_err)?;
            data.push(DataObject {
                name,
                init,
                mutable,
            });
        }
        let nfuncs = r.varint().map_err(map_err)? as usize;
        let mut functions = Vec::with_capacity(nfuncs.min(4096));
        for _ in 0..nfuncs {
            let name = r.string().map_err(map_err)?;
            let num_params = r.varint().map_err(map_err)? as u32;
            let has_ret = r.u8().map_err(map_err)? != 0;
            let num_regs = r.varint().map_err(map_err)? as u32;
            let nblocks = r.varint().map_err(map_err)? as usize;
            let mut blocks = Vec::with_capacity(nblocks.min(4096));
            for _ in 0..nblocks {
                let ninsts = r.varint().map_err(map_err)? as usize;
                let mut insts = Vec::with_capacity(ninsts.min(65536));
                for _ in 0..ninsts {
                    insts.push(decode_inst(&mut r).map_err(|e| JitError::Decode(e.to_string()))?);
                }
                blocks.push(insts);
            }
            functions.push(MachFunction {
                name,
                num_params,
                has_ret,
                num_regs,
                blocks,
            });
        }
        Ok(MachModule {
            name,
            triple,
            functions,
            ext_symbols,
            data,
            deps,
        })
    }
}

// Machine instruction opcodes for serialization.
mod mop {
    pub const IMM: u8 = 1;
    pub const MOV: u8 = 2;
    pub const ALU: u8 = 3;
    pub const ALU_UN: u8 = 4;
    pub const LD: u8 = 5;
    pub const ST: u8 = 6;
    pub const ATOMIC: u8 = 7;
    pub const VEC_LOOP: u8 = 8;
    pub const DATA_ADDR: u8 = 9;
    pub const CALL_LOCAL: u8 = 10;
    pub const CALL_SYM: u8 = 11;
    pub const JMP: u8 = 12;
    pub const JMP_IF: u8 = 13;
    pub const RET: u8 = 14;
    pub const TRAP: u8 = 15;
}

fn encode_inst(w: &mut tc_bitir::bitcode::Writer, inst: &MachInst) {
    match inst {
        MachInst::Imm { dst, ty, bits } => {
            w.u8(mop::IMM);
            w.varint(u64::from(*dst));
            w.u8(ty.tag());
            w.varint(*bits);
        }
        MachInst::Mov { dst, src } => {
            w.u8(mop::MOV);
            w.varint(u64::from(*dst));
            w.varint(u64::from(*src));
        }
        MachInst::Alu {
            op,
            ty,
            dst,
            lhs,
            rhs,
        } => {
            w.u8(mop::ALU);
            w.u8(op.tag());
            w.u8(ty.tag());
            w.varint(u64::from(*dst));
            w.varint(u64::from(*lhs));
            w.varint(u64::from(*rhs));
        }
        MachInst::AluUn { op, ty, dst, src } => {
            w.u8(mop::ALU_UN);
            w.u8(op.tag());
            w.u8(ty.tag());
            w.varint(u64::from(*dst));
            w.varint(u64::from(*src));
        }
        MachInst::Ld {
            ty,
            dst,
            addr,
            offset,
        } => {
            w.u8(mop::LD);
            w.u8(ty.tag());
            w.varint(u64::from(*dst));
            w.varint(u64::from(*addr));
            w.svarint(*offset);
        }
        MachInst::St {
            ty,
            src,
            addr,
            offset,
        } => {
            w.u8(mop::ST);
            w.u8(ty.tag());
            w.varint(u64::from(*src));
            w.varint(u64::from(*addr));
            w.svarint(*offset);
        }
        MachInst::AtomicRmw {
            op,
            ty,
            dst,
            addr,
            src,
            expected,
            lse,
        } => {
            w.u8(mop::ATOMIC);
            w.u8(op.tag());
            w.u8(ty.tag());
            w.varint(u64::from(*dst));
            w.varint(u64::from(*addr));
            w.varint(u64::from(*src));
            w.varint(u64::from(*expected));
            w.u8(u8::from(*lse));
        }
        MachInst::VecLoop {
            op,
            ty,
            dst_addr,
            a_addr,
            b_addr,
            count,
            lanes,
        } => {
            w.u8(mop::VEC_LOOP);
            w.u8(op.tag());
            w.u8(ty.tag());
            w.varint(u64::from(*dst_addr));
            w.varint(u64::from(*a_addr));
            w.varint(u64::from(*b_addr));
            w.varint(u64::from(*count));
            w.varint(u64::from(*lanes));
        }
        MachInst::DataAddr { dst, data_index } => {
            w.u8(mop::DATA_ADDR);
            w.varint(u64::from(*dst));
            w.varint(u64::from(*data_index));
        }
        MachInst::CallLocal {
            dst,
            func_index,
            args,
        } => {
            w.u8(mop::CALL_LOCAL);
            encode_opt_reg(w, dst);
            w.varint(u64::from(*func_index));
            w.varint(args.len() as u64);
            for a in args {
                w.varint(u64::from(*a));
            }
        }
        MachInst::CallSym {
            dst,
            sym_index,
            args,
        } => {
            w.u8(mop::CALL_SYM);
            encode_opt_reg(w, dst);
            w.varint(u64::from(*sym_index));
            w.varint(args.len() as u64);
            for a in args {
                w.varint(u64::from(*a));
            }
        }
        MachInst::Jmp { block } => {
            w.u8(mop::JMP);
            w.varint(u64::from(*block));
        }
        MachInst::JmpIf {
            cond,
            then_block,
            else_block,
        } => {
            w.u8(mop::JMP_IF);
            w.varint(u64::from(*cond));
            w.varint(u64::from(*then_block));
            w.varint(u64::from(*else_block));
        }
        MachInst::Ret { value } => {
            w.u8(mop::RET);
            encode_opt_reg(w, value);
        }
        MachInst::Trap { code } => {
            w.u8(mop::TRAP);
            w.varint(u64::from(*code));
        }
    }
}

fn encode_opt_reg(w: &mut tc_bitir::bitcode::Writer, reg: &Option<MReg>) {
    match reg {
        Some(r) => {
            w.u8(1);
            w.varint(u64::from(*r));
        }
        None => w.u8(0),
    }
}

fn decode_opt_reg(r: &mut tc_bitir::bitcode::Reader<'_>) -> tc_bitir::Result<Option<MReg>> {
    match r.u8()? {
        0 => Ok(None),
        _ => Ok(Some(r.varint()? as MReg)),
    }
}

fn decode_scalar(r: &mut tc_bitir::bitcode::Reader<'_>) -> tc_bitir::Result<ScalarType> {
    let tag = r.u8()?;
    ScalarType::from_tag(tag)
        .ok_or_else(|| tc_bitir::BitirError::Decode(format!("bad scalar tag {tag}")))
}

fn decode_inst(r: &mut tc_bitir::bitcode::Reader<'_>) -> tc_bitir::Result<MachInst> {
    use tc_bitir::BitirError;
    let op = r.u8()?;
    let inst = match op {
        mop::IMM => MachInst::Imm {
            dst: r.varint()? as MReg,
            ty: decode_scalar(r)?,
            bits: r.varint()?,
        },
        mop::MOV => MachInst::Mov {
            dst: r.varint()? as MReg,
            src: r.varint()? as MReg,
        },
        mop::ALU => {
            let tag = r.u8()?;
            let op = BinOp::from_tag(tag)
                .ok_or_else(|| BitirError::Decode(format!("bad binop {tag}")))?;
            MachInst::Alu {
                op,
                ty: decode_scalar(r)?,
                dst: r.varint()? as MReg,
                lhs: r.varint()? as MReg,
                rhs: r.varint()? as MReg,
            }
        }
        mop::ALU_UN => {
            let tag = r.u8()?;
            let op =
                UnOp::from_tag(tag).ok_or_else(|| BitirError::Decode(format!("bad unop {tag}")))?;
            MachInst::AluUn {
                op,
                ty: decode_scalar(r)?,
                dst: r.varint()? as MReg,
                src: r.varint()? as MReg,
            }
        }
        mop::LD => MachInst::Ld {
            ty: decode_scalar(r)?,
            dst: r.varint()? as MReg,
            addr: r.varint()? as MReg,
            offset: r.svarint()?,
        },
        mop::ST => MachInst::St {
            ty: decode_scalar(r)?,
            src: r.varint()? as MReg,
            addr: r.varint()? as MReg,
            offset: r.svarint()?,
        },
        mop::ATOMIC => {
            let tag = r.u8()?;
            let op = AtomicOp::from_tag(tag)
                .ok_or_else(|| BitirError::Decode(format!("bad atomic {tag}")))?;
            MachInst::AtomicRmw {
                op,
                ty: decode_scalar(r)?,
                dst: r.varint()? as MReg,
                addr: r.varint()? as MReg,
                src: r.varint()? as MReg,
                expected: r.varint()? as MReg,
                lse: r.u8()? != 0,
            }
        }
        mop::VEC_LOOP => {
            let tag = r.u8()?;
            let op = VecOp::from_tag(tag)
                .ok_or_else(|| BitirError::Decode(format!("bad vecop {tag}")))?;
            MachInst::VecLoop {
                op,
                ty: decode_scalar(r)?,
                dst_addr: r.varint()? as MReg,
                a_addr: r.varint()? as MReg,
                b_addr: r.varint()? as MReg,
                count: r.varint()? as MReg,
                lanes: r.varint()? as u32,
            }
        }
        mop::DATA_ADDR => MachInst::DataAddr {
            dst: r.varint()? as MReg,
            data_index: r.varint()? as u32,
        },
        mop::CALL_LOCAL => {
            let dst = decode_opt_reg(r)?;
            let func_index = r.varint()? as u32;
            let n = r.varint()? as usize;
            let mut args = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                args.push(r.varint()? as MReg);
            }
            MachInst::CallLocal {
                dst,
                func_index,
                args,
            }
        }
        mop::CALL_SYM => {
            let dst = decode_opt_reg(r)?;
            let sym_index = r.varint()? as u32;
            let n = r.varint()? as usize;
            let mut args = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                args.push(r.varint()? as MReg);
            }
            MachInst::CallSym {
                dst,
                sym_index,
                args,
            }
        }
        mop::JMP => MachInst::Jmp {
            block: r.varint()? as u32,
        },
        mop::JMP_IF => MachInst::JmpIf {
            cond: r.varint()? as MReg,
            then_block: r.varint()? as u32,
            else_block: r.varint()? as u32,
        },
        mop::RET => MachInst::Ret {
            value: decode_opt_reg(r)?,
        },
        mop::TRAP => MachInst::Trap {
            code: r.varint()? as u32,
        },
        other => {
            return Err(BitirError::Decode(format!(
                "unknown machine opcode {other}"
            )))
        }
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_module() -> MachModule {
        MachModule {
            name: "m".into(),
            triple: "x86_64-xeon-e5-sim".into(),
            functions: vec![MachFunction {
                name: "main".into(),
                num_params: 3,
                has_ret: true,
                num_regs: 8,
                blocks: vec![
                    vec![
                        MachInst::Imm {
                            dst: 3,
                            ty: ScalarType::U64,
                            bits: 41,
                        },
                        MachInst::Ld {
                            ty: ScalarType::U64,
                            dst: 4,
                            addr: 2,
                            offset: 0,
                        },
                        MachInst::Alu {
                            op: BinOp::Add,
                            ty: ScalarType::U64,
                            dst: 5,
                            lhs: 3,
                            rhs: 4,
                        },
                        MachInst::JmpIf {
                            cond: 5,
                            then_block: 1,
                            else_block: 1,
                        },
                    ],
                    vec![
                        MachInst::CallSym {
                            dst: Some(6),
                            sym_index: 0,
                            args: vec![5],
                        },
                        MachInst::AtomicRmw {
                            op: AtomicOp::FetchAdd,
                            ty: ScalarType::U64,
                            dst: 7,
                            addr: 2,
                            src: 5,
                            expected: 5,
                            lse: true,
                        },
                        MachInst::Ret { value: Some(7) },
                    ],
                ],
            }],
            ext_symbols: vec!["tc_return_result".into()],
            data: vec![DataObject {
                name: "lut".into(),
                init: vec![9, 8, 7],
                mutable: false,
            }],
            deps: vec!["libc.so".into()],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = sample_module();
        let bytes = m.encode();
        let decoded = MachModule::decode(&bytes).unwrap();
        assert_eq!(m, decoded);
    }

    #[test]
    fn encoded_size_is_small_like_binary_ifuncs() {
        // Binary ifuncs in the paper are tens of bytes for the TSI kernel —
        // two orders of magnitude smaller than fat-bitcode.  Our machine
        // encoding of a small kernel must stay well under a kilobyte.
        let m = sample_module();
        assert!(m.encode().len() < 512, "got {}", m.encode().len());
    }

    #[test]
    fn truncated_stream_rejected() {
        let bytes = sample_module().encode();
        for cut in [1usize, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(MachModule::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn cycle_costs_reflect_operation_class() {
        let cheap = MachInst::Mov { dst: 0, src: 1 };
        let load = MachInst::Ld {
            ty: ScalarType::U64,
            dst: 0,
            addr: 1,
            offset: 0,
        };
        let div = MachInst::Alu {
            op: BinOp::Div,
            ty: ScalarType::U64,
            dst: 0,
            lhs: 1,
            rhs: 2,
        };
        assert!(cheap.base_cycles() < load.base_cycles());
        assert!(load.base_cycles() < div.base_cycles());

        let lse = MachInst::AtomicRmw {
            op: AtomicOp::FetchAdd,
            ty: ScalarType::U64,
            dst: 0,
            addr: 1,
            src: 2,
            expected: 2,
            lse: true,
        };
        let cas = MachInst::AtomicRmw {
            op: AtomicOp::FetchAdd,
            ty: ScalarType::U64,
            dst: 0,
            addr: 1,
            src: 2,
            expected: 2,
            lse: false,
        };
        assert!(lse.base_cycles() < cas.base_cycles());
    }

    #[test]
    fn function_index_lookup() {
        let m = sample_module();
        assert_eq!(m.function_index("main"), Some(0));
        assert_eq!(m.function_index("missing"), None);
        assert_eq!(m.inst_count(), 7);
    }
}
