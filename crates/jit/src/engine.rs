//! The execution engine: an interpreter for compiled machine modules.
//!
//! This is where injected code actually *runs*.  The engine executes
//! [`MachModule`]s against a [`Memory`] (the target node's address space) and
//! an [`ExternalHost`] (the hook through which ifuncs reach framework
//! services such as `tc_send_ifunc`, `tc_put` and `tc_return_result`, plus
//! simulated shared-library functions).  Execution is fully functional —
//! pointer tables are really chased, counters really incremented — while the
//! engine also accounts a deterministic cycle count used by the
//! discrete-event simulator to charge virtual execution time.

use crate::error::{JitError, Result};
use crate::machine::{MachFunction, MachInst, MachModule};
use std::collections::HashMap;
use tc_bitir::{AtomicOp, BinOp, ScalarType, UnOp, VecOp};

/// Byte-addressable memory the engine loads from and stores to.
pub trait Memory {
    /// Read `buf.len()` bytes starting at `addr`.
    fn read(&self, addr: u64, buf: &mut [u8]) -> Result<()>;
    /// Write `data` starting at `addr`.
    fn write(&mut self, addr: u64, data: &[u8]) -> Result<()>;
    /// Total bytes this memory can address (for diagnostics only).
    fn size_hint(&self) -> Option<u64> {
        None
    }
}

/// A flat, vector-backed memory with a configurable base address.
#[derive(Debug, Clone)]
pub struct VecMemory {
    base: u64,
    bytes: Vec<u8>,
}

impl VecMemory {
    /// Create a memory of `size` bytes starting at address `base`.
    pub fn new(base: u64, size: usize) -> Self {
        VecMemory {
            base,
            bytes: vec![0; size],
        }
    }

    /// Base address of the first byte.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the memory has zero size.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Direct slice access (tests and framework plumbing).
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Direct mutable slice access.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    fn offset(&self, addr: u64, len: usize) -> Result<usize> {
        let off = addr.checked_sub(self.base).ok_or_else(|| JitError::Trap {
            reason: format!("address {addr:#x} below memory base {:#x}", self.base),
        })? as usize;
        if off
            .checked_add(len)
            .is_none_or(|end| end > self.bytes.len())
        {
            return Err(JitError::Trap {
                reason: format!(
                    "access of {len} bytes at {addr:#x} exceeds memory of {} bytes at base {:#x}",
                    self.bytes.len(),
                    self.base
                ),
            });
        }
        Ok(off)
    }
}

impl Memory for VecMemory {
    fn read(&self, addr: u64, buf: &mut [u8]) -> Result<()> {
        let off = self.offset(addr, buf.len())?;
        buf.copy_from_slice(&self.bytes[off..off + buf.len()]);
        Ok(())
    }

    fn write(&mut self, addr: u64, data: &[u8]) -> Result<()> {
        let off = self.offset(addr, data.len())?;
        self.bytes[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.bytes.len() as u64)
    }
}

/// A sparse, page-based memory covering the full 64-bit address space.
/// Used for node memories where payload buffers, pointer-table shards and
/// JIT-materialised globals live at widely separated addresses.
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    pages: HashMap<u64, Box<[u8; Self::PAGE_SIZE]>>,
}

impl SparseMemory {
    /// Page size in bytes.
    pub const PAGE_SIZE: usize = 4096;

    /// Create an empty sparse memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of materialised pages (for resource accounting).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn page_of(addr: u64) -> (u64, usize) {
        (
            addr / Self::PAGE_SIZE as u64,
            (addr % Self::PAGE_SIZE as u64) as usize,
        )
    }
}

impl Memory for SparseMemory {
    fn read(&self, addr: u64, buf: &mut [u8]) -> Result<()> {
        let mut done = 0usize;
        while done < buf.len() {
            let (page, off) = Self::page_of(addr + done as u64);
            let chunk = (Self::PAGE_SIZE - off).min(buf.len() - done);
            match self.pages.get(&page) {
                Some(p) => buf[done..done + chunk].copy_from_slice(&p[off..off + chunk]),
                None => buf[done..done + chunk].fill(0),
            }
            done += chunk;
        }
        Ok(())
    }

    fn write(&mut self, addr: u64, data: &[u8]) -> Result<()> {
        let mut done = 0usize;
        while done < data.len() {
            let (page, off) = Self::page_of(addr + done as u64);
            let chunk = (Self::PAGE_SIZE - off).min(data.len() - done);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; Self::PAGE_SIZE]));
            p[off..off + chunk].copy_from_slice(&data[done..done + chunk]);
            done += chunk;
        }
        Ok(())
    }
}

/// Typed scalar reads/writes on any [`Memory`].
pub trait MemoryExt: Memory {
    /// Read a u64.
    fn read_u64(&self, addr: u64) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    /// Write a u64.
    fn write_u64(&mut self, addr: u64, v: u64) -> Result<()> {
        self.write(addr, &v.to_le_bytes())
    }
    /// Read a scalar of the given type, widening into a 64-bit slot
    /// (sign-extended for signed types).
    fn read_scalar(&self, ty: ScalarType, addr: u64) -> Result<u64> {
        let size = ty.size_bytes(8) as usize;
        let mut b = [0u8; 8];
        self.read(addr, &mut b[..size])?;
        let raw = u64::from_le_bytes(b);
        Ok(normalize(ty, raw))
    }
    /// Write the low bytes of a 64-bit slot as a scalar of the given type.
    fn write_scalar(&mut self, ty: ScalarType, addr: u64, bits: u64) -> Result<()> {
        let size = ty.size_bytes(8) as usize;
        self.write(addr, &bits.to_le_bytes()[..size])
    }
}

impl<M: Memory + ?Sized> MemoryExt for M {}

/// Host interface for external calls made by executing code.
///
/// The framework runtime (`tc-core`) implements this to expose UCX-style
/// operations and the recursive-injection API; the dylib registry implements
/// it for libc/libm-style symbols; the two are typically chained.
pub trait ExternalHost {
    /// Invoke `symbol` with `args`, possibly touching `mem`.  Returns the
    /// call's result value (0 for void functions).
    fn call_external(&mut self, symbol: &str, args: &[u64], mem: &mut dyn Memory) -> Result<u64>;

    /// Extra virtual cycles to charge for a call to `symbol` (network
    /// operations initiated by an ifunc are charged by the simulator instead;
    /// the default of 0 is fine for pure host functions).
    fn external_cost(&self, _symbol: &str) -> u64 {
        0
    }
}

/// An [`ExternalHost`] that rejects every call — used for pure ifuncs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoExternals;

impl ExternalHost for NoExternals {
    fn call_external(&mut self, symbol: &str, _args: &[u64], _mem: &mut dyn Memory) -> Result<u64> {
        Err(JitError::UnresolvedSymbol {
            symbol: symbol.to_string(),
        })
    }
}

/// Outcome of executing a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecOutcome {
    /// Value returned by the function (0 when void).
    pub return_value: u64,
    /// Machine instructions retired.
    pub insts_retired: u64,
    /// Virtual cycles consumed (per-instruction base costs plus dynamic
    /// vector-loop and external-call components).
    pub cycles: u64,
}

/// Execution limits.
#[derive(Debug, Clone, Copy)]
pub struct ExecLimits {
    /// Maximum number of machine instructions to retire before aborting.
    pub fuel: u64,
    /// Maximum local call depth.
    pub max_call_depth: u32,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            fuel: 50_000_000,
            max_call_depth: 256,
        }
    }
}

/// The execution engine.  Stateless apart from configuration; all mutable
/// state lives in the memory, the host, and the per-call frames.
#[derive(Debug, Clone, Copy, Default)]
pub struct Engine {
    /// Execution limits applied to every invocation.
    pub limits: ExecLimits,
}

impl Engine {
    /// Engine with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with a specific fuel budget.
    pub fn with_fuel(fuel: u64) -> Self {
        Engine {
            limits: ExecLimits {
                fuel,
                ..ExecLimits::default()
            },
        }
    }

    /// Execute `func_name` from `module` with `args`.
    ///
    /// `data_addrs[i]` must give the address at which the module's `i`-th
    /// data object has been materialised in `mem` (see
    /// [`crate::orc::OrcJit::materialize`]); pass an empty slice for modules
    /// without globals.
    pub fn run(
        &self,
        module: &MachModule,
        func_name: &str,
        args: &[u64],
        data_addrs: &[u64],
        mem: &mut dyn Memory,
        host: &mut dyn ExternalHost,
    ) -> Result<ExecOutcome> {
        let func_index =
            module
                .function_index(func_name)
                .ok_or_else(|| JitError::UnknownFunction {
                    name: func_name.to_string(),
                })?;
        let mut ctx = ExecContext {
            module,
            data_addrs,
            mem,
            host,
            fuel_left: self.limits.fuel,
            max_depth: self.limits.max_call_depth,
            insts: 0,
            cycles: 0,
        };
        let ret = ctx.call_function(func_index, args, 0)?;
        Ok(ExecOutcome {
            return_value: ret,
            insts_retired: ctx.insts,
            cycles: ctx.cycles,
        })
    }
}

struct ExecContext<'a> {
    module: &'a MachModule,
    data_addrs: &'a [u64],
    mem: &'a mut dyn Memory,
    host: &'a mut dyn ExternalHost,
    fuel_left: u64,
    max_depth: u32,
    insts: u64,
    cycles: u64,
}

impl ExecContext<'_> {
    fn call_function(&mut self, func_index: u32, args: &[u64], depth: u32) -> Result<u64> {
        if depth > self.max_depth {
            return Err(JitError::Trap {
                reason: format!("call depth exceeded {}", self.max_depth),
            });
        }
        let func: &MachFunction =
            self.module
                .functions
                .get(func_index as usize)
                .ok_or_else(|| JitError::UnknownFunction {
                    name: format!("#{func_index}"),
                })?;
        if args.len() != func.num_params as usize {
            return Err(JitError::Trap {
                reason: format!(
                    "function `{}` called with {} args, expects {}",
                    func.name,
                    args.len(),
                    func.num_params
                ),
            });
        }
        let mut regs = vec![0u64; func.num_regs.max(func.num_params) as usize];
        regs[..args.len()].copy_from_slice(args);

        let mut block = 0usize;
        loop {
            let insts = func.blocks.get(block).ok_or_else(|| JitError::Trap {
                reason: format!("jump to non-existent block {block} in `{}`", func.name),
            })?;
            let mut next_block: Option<usize> = None;
            for inst in insts {
                if self.fuel_left == 0 {
                    return Err(JitError::OutOfFuel {
                        executed: self.insts,
                    });
                }
                self.fuel_left -= 1;
                self.insts += 1;
                self.cycles += inst.base_cycles();

                match inst {
                    MachInst::Imm { dst, ty, bits } => {
                        regs[*dst as usize] = normalize(*ty, *bits);
                    }
                    MachInst::Mov { dst, src } => {
                        regs[*dst as usize] = regs[*src as usize];
                    }
                    MachInst::Alu {
                        op,
                        ty,
                        dst,
                        lhs,
                        rhs,
                    } => {
                        regs[*dst as usize] =
                            eval_bin(*op, *ty, regs[*lhs as usize], regs[*rhs as usize])?;
                    }
                    MachInst::AluUn { op, ty, dst, src } => {
                        regs[*dst as usize] = eval_un(*op, *ty, regs[*src as usize]);
                    }
                    MachInst::Ld {
                        ty,
                        dst,
                        addr,
                        offset,
                    } => {
                        let a = regs[*addr as usize].wrapping_add(*offset as u64);
                        regs[*dst as usize] = self.mem.read_scalar(*ty, a)?;
                    }
                    MachInst::St {
                        ty,
                        src,
                        addr,
                        offset,
                    } => {
                        let a = regs[*addr as usize].wrapping_add(*offset as u64);
                        self.mem.write_scalar(*ty, a, regs[*src as usize])?;
                    }
                    MachInst::AtomicRmw {
                        op,
                        ty,
                        dst,
                        addr,
                        src,
                        expected,
                        lse: _,
                    } => {
                        let a = regs[*addr as usize];
                        let old = self.mem.read_scalar(*ty, a)?;
                        let operand = regs[*src as usize];
                        let new = match op {
                            AtomicOp::FetchAdd => eval_bin(BinOp::Add, *ty, old, operand)?,
                            AtomicOp::Exchange => operand,
                            AtomicOp::CompareSwap => {
                                if old == normalize(*ty, regs[*expected as usize]) {
                                    operand
                                } else {
                                    old
                                }
                            }
                        };
                        self.mem.write_scalar(*ty, a, new)?;
                        regs[*dst as usize] = old;
                    }
                    MachInst::VecLoop {
                        op,
                        ty,
                        dst_addr,
                        a_addr,
                        b_addr,
                        count,
                        lanes,
                    } => {
                        let n = regs[*count as usize];
                        let elem = u64::from(ty.size_bytes(8));
                        let da = regs[*dst_addr as usize];
                        let aa = regs[*a_addr as usize];
                        let ba = regs[*b_addr as usize];
                        for i in 0..n {
                            let av = self.mem.read_scalar(*ty, aa + i * elem)?;
                            let bv = self.mem.read_scalar(*ty, ba + i * elem)?;
                            let dv = match op {
                                VecOp::Add => eval_bin(vec_add_op(*ty), *ty, av, bv)?,
                                VecOp::Mul => eval_bin(vec_mul_op(*ty), *ty, av, bv)?,
                                VecOp::Fma => {
                                    let prod = eval_bin(vec_mul_op(*ty), *ty, av, bv)?;
                                    let acc = self.mem.read_scalar(*ty, da + i * elem)?;
                                    eval_bin(vec_add_op(*ty), *ty, prod, acc)?
                                }
                            };
                            self.mem.write_scalar(*ty, da + i * elem, dv)?;
                        }
                        // Dynamic cost: one chunk of work per `lanes` elements.
                        let chunks = n.div_ceil(u64::from((*lanes).max(1)));
                        self.cycles += chunks.saturating_mul(inst.base_cycles());
                    }
                    MachInst::DataAddr { dst, data_index } => {
                        let addr = self
                            .data_addrs
                            .get(*data_index as usize)
                            .copied()
                            .ok_or_else(|| JitError::Trap {
                                reason: format!(
                                    "data object #{data_index} not materialised ({} available)",
                                    self.data_addrs.len()
                                ),
                            })?;
                        regs[*dst as usize] = addr;
                    }
                    MachInst::CallLocal {
                        dst,
                        func_index,
                        args,
                    } => {
                        let argv: Vec<u64> = args.iter().map(|r| regs[*r as usize]).collect();
                        let ret = self.call_function(*func_index, &argv, depth + 1)?;
                        if let Some(d) = dst {
                            regs[*d as usize] = ret;
                        }
                    }
                    MachInst::CallSym {
                        dst,
                        sym_index,
                        args,
                    } => {
                        let symbol = self
                            .module
                            .ext_symbols
                            .get(*sym_index as usize)
                            .ok_or_else(|| JitError::Trap {
                                reason: format!("external symbol #{sym_index} out of range"),
                            })?
                            .clone();
                        let argv: Vec<u64> = args.iter().map(|r| regs[*r as usize]).collect();
                        self.cycles += self.host.external_cost(&symbol);
                        let ret = self.host.call_external(&symbol, &argv, self.mem)?;
                        if let Some(d) = dst {
                            regs[*d as usize] = ret;
                        }
                    }
                    MachInst::Jmp { block: b } => {
                        next_block = Some(*b as usize);
                        break;
                    }
                    MachInst::JmpIf {
                        cond,
                        then_block,
                        else_block,
                    } => {
                        next_block = Some(if regs[*cond as usize] != 0 {
                            *then_block as usize
                        } else {
                            *else_block as usize
                        });
                        break;
                    }
                    MachInst::Ret { value } => {
                        return Ok(value.map(|r| regs[r as usize]).unwrap_or(0));
                    }
                    MachInst::Trap { code } => {
                        return Err(JitError::Trap {
                            reason: format!("explicit trap (code {code}) in `{}`", func.name),
                        });
                    }
                }
            }
            match next_block {
                Some(b) => block = b,
                None => {
                    return Err(JitError::Trap {
                        reason: format!(
                            "block {block} of `{}` fell through without terminator",
                            func.name
                        ),
                    })
                }
            }
        }
    }
}

fn vec_add_op(ty: ScalarType) -> BinOp {
    if ty.is_float() {
        BinOp::FAdd
    } else {
        BinOp::Add
    }
}

fn vec_mul_op(ty: ScalarType) -> BinOp {
    if ty.is_float() {
        BinOp::FMul
    } else {
        BinOp::Mul
    }
}

/// Normalise a 64-bit slot to the canonical representation of `ty`
/// (truncate to width, sign-extend signed types back into the slot).
pub fn normalize(ty: ScalarType, bits: u64) -> u64 {
    match ty {
        ScalarType::I8 => bits as u8 as i8 as i64 as u64,
        ScalarType::I16 => bits as u16 as i16 as i64 as u64,
        ScalarType::I32 => bits as u32 as i32 as i64 as u64,
        ScalarType::I64 => bits,
        ScalarType::U8 => u64::from(bits as u8),
        ScalarType::U16 => u64::from(bits as u16),
        ScalarType::U32 => u64::from(bits as u32),
        ScalarType::U64 | ScalarType::Ptr => bits,
        ScalarType::F32 => u64::from((f32::from_bits(bits as u32)).to_bits()),
        ScalarType::F64 => bits,
    }
}

fn to_f64(ty: ScalarType, bits: u64) -> f64 {
    match ty {
        ScalarType::F32 => f64::from(f32::from_bits(bits as u32)),
        _ => f64::from_bits(bits),
    }
}

fn from_f64(ty: ScalarType, v: f64) -> u64 {
    match ty {
        ScalarType::F32 => u64::from((v as f32).to_bits()),
        _ => v.to_bits(),
    }
}

/// Evaluate a binary operation on normalised 64-bit slots.
pub fn eval_bin(op: BinOp, ty: ScalarType, lhs: u64, rhs: u64) -> Result<u64> {
    if op.is_float_only() || (ty.is_float() && op.is_comparison()) {
        let a = to_f64(ty, lhs);
        let b = to_f64(ty, rhs);
        let result = match op {
            BinOp::FAdd => from_f64(ty, a + b),
            BinOp::FSub => from_f64(ty, a - b),
            BinOp::FMul => from_f64(ty, a * b),
            BinOp::FDiv => from_f64(ty, a / b),
            BinOp::CmpEq => u64::from(a == b),
            BinOp::CmpNe => u64::from(a != b),
            BinOp::CmpLt => u64::from(a < b),
            BinOp::CmpLe => u64::from(a <= b),
            BinOp::CmpGt => u64::from(a > b),
            BinOp::CmpGe => u64::from(a >= b),
            _ => {
                return Err(JitError::Trap {
                    reason: format!("operator {op:?} not valid on float type {ty}"),
                })
            }
        };
        return Ok(result);
    }

    let signed = ty.is_signed();
    let a = normalize(ty, lhs);
    let b = normalize(ty, rhs);
    let result = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return Err(JitError::Trap {
                    reason: "integer division by zero".into(),
                });
            }
            if signed {
                ((a as i64).wrapping_div(b as i64)) as u64
            } else {
                a / b
            }
        }
        BinOp::Rem => {
            if b == 0 {
                return Err(JitError::Trap {
                    reason: "integer remainder by zero".into(),
                });
            }
            if signed {
                ((a as i64).wrapping_rem(b as i64)) as u64
            } else {
                a % b
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinOp::Shr => {
            if signed {
                ((a as i64).wrapping_shr((b & 63) as u32)) as u64
            } else {
                a.wrapping_shr((b & 63) as u32)
            }
        }
        BinOp::CmpEq => u64::from(a == b),
        BinOp::CmpNe => u64::from(a != b),
        BinOp::CmpLt => u64::from(if signed {
            (a as i64) < (b as i64)
        } else {
            a < b
        }),
        BinOp::CmpLe => u64::from(if signed {
            (a as i64) <= (b as i64)
        } else {
            a <= b
        }),
        BinOp::CmpGt => u64::from(if signed {
            (a as i64) > (b as i64)
        } else {
            a > b
        }),
        BinOp::CmpGe => u64::from(if signed {
            (a as i64) >= (b as i64)
        } else {
            a >= b
        }),
        BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv => unreachable!(),
    };
    Ok(normalize(ty, result))
}

/// Evaluate a unary operation.
pub fn eval_un(op: UnOp, ty: ScalarType, src: u64) -> u64 {
    match op {
        UnOp::Not => normalize(ty, !src),
        UnOp::Neg => normalize(ty, (src as i64).wrapping_neg() as u64),
        UnOp::FNeg => from_f64(ty, -to_f64(ty, src)),
        UnOp::IntToFloat => from_f64(ty, src as i64 as f64),
        UnOp::FloatToInt => {
            let v = f64::from_bits(src);
            normalize(ty, v as i64 as u64)
        }
        UnOp::IntCast => normalize(ty, src),
        UnOp::FloatCast => {
            // The source is whichever float width the value currently is; we
            // just re-encode at the destination width.
            let as_f64 = if ty == ScalarType::F32 {
                f64::from_bits(src)
            } else {
                f64::from(f32::from_bits(src as u32))
            };
            from_f64(ty, as_f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_module, lower_and_compile, CompileOptions};
    use tc_bitir::{ModuleBuilder, TargetTriple};

    /// Host recording external calls.
    #[derive(Default)]
    struct RecordingHost {
        calls: Vec<(String, Vec<u64>)>,
    }

    impl ExternalHost for RecordingHost {
        fn call_external(
            &mut self,
            symbol: &str,
            args: &[u64],
            _mem: &mut dyn Memory,
        ) -> Result<u64> {
            self.calls.push((symbol.to_string(), args.to_vec()));
            Ok(args.iter().sum())
        }
        fn external_cost(&self, _symbol: &str) -> u64 {
            100
        }
    }

    fn tsi_module() -> tc_bitir::Module {
        let mut mb = ModuleBuilder::new("tsi");
        {
            let mut f = mb.entry_function();
            let payload = f.param(0);
            let target = f.param(2);
            let delta = f.load(ScalarType::U8, payload, 0);
            let counter = f.load(ScalarType::U64, target, 0);
            let sum = f.bin(BinOp::Add, ScalarType::U64, counter, delta);
            f.store(ScalarType::U64, sum, target, 0);
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        mb.build()
    }

    #[test]
    fn tsi_increments_target_counter() {
        let compiled = lower_and_compile(
            &tsi_module(),
            TargetTriple::THOR_XEON,
            CompileOptions::default(),
        )
        .unwrap();
        let mut mem = VecMemory::new(0x1000, 4096);
        // payload at 0x1000 (value 5), target counter at 0x1800 (starts at 37)
        mem.write(0x1000, &[5]).unwrap();
        mem.write_u64(0x1800, 37).unwrap();
        let engine = Engine::new();
        let out = engine
            .run(
                &compiled.module,
                "main",
                &[0x1000, 1, 0x1800],
                &[],
                &mut mem,
                &mut NoExternals,
            )
            .unwrap();
        assert_eq!(out.return_value, 0);
        assert_eq!(mem.read_u64(0x1800).unwrap(), 42);
        assert!(out.insts_retired > 0);
        assert!(out.cycles >= out.insts_retired);
    }

    #[test]
    fn loop_sums_payload_array() {
        // main: sum payload_len u64 values stored at payload_ptr, store at target.
        let mut mb = ModuleBuilder::new("sum");
        {
            let mut f = mb.entry_function();
            let payload = f.param(0);
            let len = f.param(1);
            let target = f.param(2);
            let idx = f.const_u64(0);
            let acc = f.const_u64(0);
            let header = f.new_block();
            let body = f.new_block();
            let done = f.new_block();
            f.br(header);
            f.switch_to(header);
            let cond = f.cmp(BinOp::CmpLt, ScalarType::U64, idx, len);
            f.br_if(cond, body, done);
            f.switch_to(body);
            let eight = f.const_u64(8);
            let off = f.bin(BinOp::Mul, ScalarType::U64, idx, eight);
            let addr = f.bin(BinOp::Add, ScalarType::U64, payload, off);
            let v = f.load(ScalarType::U64, addr, 0);
            let newacc = f.bin(BinOp::Add, ScalarType::U64, acc, v);
            f.assign(acc, newacc);
            let one = f.const_u64(1);
            let newidx = f.bin(BinOp::Add, ScalarType::U64, idx, one);
            f.assign(idx, newidx);
            f.br(header);
            f.switch_to(done);
            f.store(ScalarType::U64, acc, target, 0);
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        let compiled = compile_module(&mb.build(), CompileOptions::default()).unwrap();
        let mut mem = VecMemory::new(0, 4096);
        for i in 0..10u64 {
            mem.write_u64(i * 8, i + 1).unwrap();
        }
        let out = Engine::new()
            .run(
                &compiled.module,
                "main",
                &[0, 10, 2048],
                &[],
                &mut mem,
                &mut NoExternals,
            )
            .unwrap();
        assert_eq!(out.return_value, 0);
        assert_eq!(mem.read_u64(2048).unwrap(), 55);
    }

    #[test]
    fn external_calls_reach_host_and_cost_cycles() {
        let mut mb = ModuleBuilder::new("ext");
        {
            let mut f = mb.entry_function();
            let a = f.const_u64(7);
            let b = f.const_u64(35);
            let r = f.call_ext("tc_return_result", vec![a, b], true).unwrap();
            f.ret(r);
            f.finish();
        }
        let compiled = compile_module(&mb.build(), CompileOptions::default()).unwrap();
        let mut mem = VecMemory::new(0, 64);
        let mut host = RecordingHost::default();
        let out = Engine::new()
            .run(
                &compiled.module,
                "main",
                &[0, 0, 0],
                &[],
                &mut mem,
                &mut host,
            )
            .unwrap();
        assert_eq!(out.return_value, 42);
        assert_eq!(host.calls.len(), 1);
        assert_eq!(host.calls[0].0, "tc_return_result");
        assert_eq!(host.calls[0].1, vec![7, 35]);
        assert!(out.cycles >= 100, "external cost must be charged");
    }

    #[test]
    fn recursion_works_and_depth_is_bounded() {
        // fact(n) = n <= 1 ? 1 : n * fact(n-1)
        let mut mb = ModuleBuilder::new("fact");
        let fact_id = mb.next_func_id();
        {
            let mut f = mb.function("fact", vec![ScalarType::U64], Some(ScalarType::U64));
            let n = f.param(0);
            let one = f.const_u64(1);
            let le = f.cmp(BinOp::CmpLe, ScalarType::U64, n, one);
            let base = f.new_block();
            let rec = f.new_block();
            f.br_if(le, base, rec);
            f.switch_to(base);
            f.ret(one);
            f.switch_to(rec);
            let nm1 = f.sub_i64(n, one);
            let sub = f.call(fact_id, vec![nm1], true).unwrap();
            let prod = f.bin(BinOp::Mul, ScalarType::U64, n, sub);
            f.ret(prod);
            f.finish();
        }
        let compiled = compile_module(&mb.build(), CompileOptions::default()).unwrap();
        let mut mem = VecMemory::new(0, 8);
        let out = Engine::new()
            .run(
                &compiled.module,
                "fact",
                &[10],
                &[],
                &mut mem,
                &mut NoExternals,
            )
            .unwrap();
        assert_eq!(out.return_value, 3_628_800);

        // Depth bound: fact(1000) exceeds max_call_depth of 256.
        let err = Engine::new()
            .run(
                &compiled.module,
                "fact",
                &[1000],
                &[],
                &mut mem,
                &mut NoExternals,
            )
            .unwrap_err();
        assert!(matches!(err, JitError::Trap { .. }));
    }

    #[test]
    fn fuel_limit_stops_infinite_loops() {
        let mut mb = ModuleBuilder::new("spin");
        {
            let mut f = mb.function("spin", vec![], None);
            let blk = f.entry_block();
            f.br(blk);
            f.finish();
        }
        let compiled = compile_module(&mb.build(), CompileOptions::default()).unwrap();
        let mut mem = VecMemory::new(0, 8);
        let err = Engine::with_fuel(10_000)
            .run(
                &compiled.module,
                "spin",
                &[],
                &[],
                &mut mem,
                &mut NoExternals,
            )
            .unwrap_err();
        assert!(matches!(err, JitError::OutOfFuel { .. }));
    }

    #[test]
    fn division_by_zero_traps() {
        let mut mb = ModuleBuilder::new("div0");
        {
            let mut f = mb.function("f", vec![ScalarType::U64], Some(ScalarType::U64));
            let x = f.param(0);
            let zero = f.const_u64(0);
            let q = f.div_u64(x, zero);
            f.ret(q);
            f.finish();
        }
        let compiled = compile_module(&mb.build(), CompileOptions::default()).unwrap();
        let mut mem = VecMemory::new(0, 8);
        let err = Engine::new()
            .run(&compiled.module, "f", &[4], &[], &mut mem, &mut NoExternals)
            .unwrap_err();
        assert!(matches!(err, JitError::Trap { .. }));
    }

    #[test]
    fn out_of_bounds_memory_traps() {
        let compiled = compile_module(&tsi_module(), CompileOptions::default()).unwrap();
        let mut mem = VecMemory::new(0x1000, 64);
        // Target pointer outside the memory.
        let err = Engine::new()
            .run(
                &compiled.module,
                "main",
                &[0x1000, 1, 0x9_0000],
                &[],
                &mut mem,
                &mut NoExternals,
            )
            .unwrap_err();
        assert!(matches!(err, JitError::Trap { .. }));
    }

    #[test]
    fn vector_loop_computes_and_costs_scale_with_lanes() {
        let mut mb = ModuleBuilder::new("vadd");
        {
            let mut f = mb.entry_function();
            let payload = f.param(0);
            let len = f.param(1);
            let target = f.param(2);
            f.vec_op(
                tc_bitir::VecOp::Add,
                ScalarType::F64,
                target,
                payload,
                payload,
                len,
            );
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        let module = mb.build();
        let run = |target: TargetTriple| {
            let compiled = lower_and_compile(&module, target, CompileOptions::default()).unwrap();
            let mut mem = VecMemory::new(0, 8192);
            for i in 0..128u64 {
                mem.write(i * 8, &(i as f64).to_le_bytes()).unwrap();
            }
            let out = Engine::new()
                .run(
                    &compiled.module,
                    "main",
                    &[0, 128, 4096],
                    &[],
                    &mut mem,
                    &mut NoExternals,
                )
                .unwrap();
            let v: f64 = {
                let mut b = [0u8; 8];
                mem.read(4096 + 8 * 3, &mut b).unwrap();
                f64::from_le_bytes(b)
            };
            assert_eq!(v, 6.0); // 3.0 + 3.0
            out.cycles
        };
        let cycles_sve = run(TargetTriple::OOKAMI_A64FX);
        let cycles_neon = run(TargetTriple::THOR_BF2);
        assert!(
            cycles_sve < cycles_neon,
            "wider SIMD must cost fewer cycles ({cycles_sve} vs {cycles_neon})"
        );
    }

    #[test]
    fn signed_unsigned_semantics() {
        assert_eq!(
            eval_bin(BinOp::CmpLt, ScalarType::I32, (-1i64) as u64, 1).unwrap(),
            1
        );
        assert_eq!(
            eval_bin(BinOp::CmpLt, ScalarType::U32, 0xffff_ffff, 1).unwrap(),
            0
        );
        assert_eq!(
            eval_bin(BinOp::Div, ScalarType::I64, (-6i64) as u64, 3).unwrap(),
            (-2i64) as u64
        );
        assert_eq!(
            eval_bin(BinOp::Shr, ScalarType::I8, 0x80, 1).unwrap(),
            normalize(ScalarType::I8, 0xC0)
        );
        assert_eq!(eval_bin(BinOp::Shr, ScalarType::U8, 0x80, 1).unwrap(), 0x40);
    }

    #[test]
    fn float_ops_and_conversions() {
        let a = 2.5f64.to_bits();
        let b = 4.0f64.to_bits();
        let s = eval_bin(BinOp::FMul, ScalarType::F64, a, b).unwrap();
        assert_eq!(f64::from_bits(s), 10.0);
        assert_eq!(eval_bin(BinOp::CmpGt, ScalarType::F64, b, a).unwrap(), 1);
        let i = eval_un(UnOp::FloatToInt, ScalarType::I64, 7.9f64.to_bits());
        assert_eq!(i, 7);
        let f = eval_un(UnOp::IntToFloat, ScalarType::F64, (-3i64) as u64);
        assert_eq!(f64::from_bits(f), -3.0);
    }

    #[test]
    fn sparse_memory_reads_zero_and_roundtrips() {
        let mut mem = SparseMemory::new();
        assert_eq!(mem.read_u64(0xdead_beef_0000).unwrap(), 0);
        mem.write_u64(0xdead_beef_0000, 77).unwrap();
        assert_eq!(mem.read_u64(0xdead_beef_0000).unwrap(), 77);
        // Cross-page write.
        let addr = (SparseMemory::PAGE_SIZE as u64) - 3;
        mem.write(addr, &[1, 2, 3, 4, 5, 6]).unwrap();
        let mut buf = [0u8; 6];
        mem.read(addr, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4, 5, 6]);
        assert!(mem.page_count() >= 2);
    }

    #[test]
    fn unknown_function_is_reported() {
        let compiled = compile_module(&tsi_module(), CompileOptions::default()).unwrap();
        let mut mem = VecMemory::new(0, 64);
        let err = Engine::new()
            .run(
                &compiled.module,
                "nope",
                &[],
                &[],
                &mut mem,
                &mut NoExternals,
            )
            .unwrap_err();
        assert_eq!(
            err,
            JitError::UnknownFunction {
                name: "nope".into()
            }
        );
    }

    #[test]
    fn wrong_arity_traps() {
        let compiled = compile_module(&tsi_module(), CompileOptions::default()).unwrap();
        let mut mem = VecMemory::new(0, 64);
        let err = Engine::new()
            .run(
                &compiled.module,
                "main",
                &[1, 2],
                &[],
                &mut mem,
                &mut NoExternals,
            )
            .unwrap_err();
        assert!(matches!(err, JitError::Trap { .. }));
    }
}
