//! Property tests for per-client completion routing: the `ClaimTable` keyed
//! by `(ClientId, id)` and the `CompletionSet` resolution order on top of it.
//!
//! House style of `prop_frame_cache.rs`: no crates.io in the build
//! environment, so cases are generated from a deterministic splitmix64
//! stream and every assertion carries its case index for reproduction.
//!
//! The property under test is that claim routing is a *permutation*: every
//! absorbed completion is claimable exactly once, only under the client it
//! arrived for, with arrival-order ties preserved — no loss, no duplication,
//! no cross-client delivery, even though different clients use colliding
//! numeric request ids and mailbox slots by construction.

use std::collections::HashMap;
use tc_bitir::TargetTriple;
use tc_core::cluster::{
    ClientRef, ClientRefMut, Cluster, CompletionSet, Transport, TransportMetrics,
};
use tc_core::{
    ClientId, Completion, GetHandle, NativeAmHandler, NodeRuntime, Ready, ResultHandle,
    RuntimeStats,
};
use tc_ucx::{RequestId, WorkerAddr};

const CASES: u64 = 64;

struct Gen(tc_simnet::SplitMix64);

impl Gen {
    fn for_case(case: u64) -> Self {
        Gen(tc_simnet::SplitMix64::new(
            0xC1A1_4000u64.wrapping_add(case.wrapping_mul(0x9e37_79b9)),
        ))
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.0.range(lo, hi)
    }
}

/// One generated completion event with its routing ground truth.
#[derive(Debug, Clone, PartialEq)]
enum Event {
    Get {
        client: usize,
        request: u64,
        byte: u8,
    },
    Put {
        client: usize,
        request: u64,
    },
    Result {
        client: usize,
        slot: u64,
        value: u64,
    },
}

impl Event {
    fn completion(&self) -> Completion {
        match *self {
            Event::Get { request, byte, .. } => Completion::Get {
                request: RequestId(request),
                data: vec![byte; 3].into(),
            },
            Event::Put { request, .. } => Completion::Put {
                request: RequestId(request),
            },
            Event::Result { slot, value, .. } => Completion::Result { slot, value },
        }
    }

    fn client(&self) -> usize {
        match *self {
            Event::Get { client, .. }
            | Event::Put { client, .. }
            | Event::Result { client, .. } => client,
        }
    }
}

/// Generate a random interleaving of completion arrivals for `clients`
/// clients.  Ids are drawn from a *small* range so cross-client collisions
/// are overwhelmingly likely; per-client duplicates are filtered (the
/// transport never delivers the same GET/PUT completion twice, and result
/// overwrites are covered by dedicated unit tests).
fn generate_events(g: &mut Gen, clients: usize, count: usize) -> Vec<Event> {
    let mut seen: HashMap<(usize, u8, u64), ()> = HashMap::new();
    let mut out = Vec::new();
    while out.len() < count {
        let client = g.range(0, clients as u64) as usize;
        let id = g.range(0, 8);
        let (kind, ev) = match g.range(0, 3) {
            0 => (
                0u8,
                Event::Get {
                    client,
                    request: id,
                    byte: (0x10 * (client as u8 + 1)) ^ id as u8,
                },
            ),
            1 => (
                1,
                Event::Put {
                    client,
                    request: id,
                },
            ),
            _ => (
                2,
                Event::Result {
                    client,
                    slot: id,
                    value: (client as u64) << 32 | id,
                },
            ),
        };
        if seen.insert((client, kind, id), ()).is_none() {
            out.push(ev);
        }
    }
    out
}

/// A transport hosting `n` virtual clients whose completion streams are fed
/// by the test.
struct MockTransport {
    clients: Vec<NodeRuntime>,
    queued: Vec<Vec<Completion>>,
}

impl MockTransport {
    fn new(n: usize) -> Self {
        MockTransport {
            clients: (0..n)
                .map(|c| {
                    NodeRuntime::new(
                        WorkerAddr(c as u32),
                        n as u32 + 1,
                        TargetTriple::X86_64_GENERIC,
                    )
                })
                .collect(),
            queued: vec![Vec::new(); n],
        }
    }
}

impl Transport for MockTransport {
    fn backend_name(&self) -> &'static str {
        "mock-multi"
    }
    fn node_count(&self) -> usize {
        self.clients.len() + 1
    }
    fn client_count(&self) -> usize {
        self.clients.len()
    }
    fn client(&self, id: ClientId) -> ClientRef<'_> {
        ClientRef::Direct(&self.clients[id.0])
    }
    fn client_mut(&mut self, id: ClientId) -> ClientRefMut<'_> {
        ClientRefMut::Direct(&mut self.clients[id.0])
    }
    fn deploy_am(&mut self, _name: &str, _handler: NativeAmHandler) -> tc_core::Result<()> {
        Ok(())
    }
    fn flush_client(&mut self, _id: ClientId) -> tc_core::Result<()> {
        Ok(())
    }
    fn step(&mut self) -> tc_core::Result<bool> {
        Ok(false)
    }
    fn take_completions(&mut self, id: ClientId) -> Vec<Completion> {
        std::mem::take(&mut self.queued[id.0])
    }
    fn read_memory(&mut self, _rank: usize, _addr: u64, len: usize) -> tc_core::Result<Vec<u8>> {
        Ok(vec![0; len])
    }
    fn write_memory(&mut self, _rank: usize, _addr: u64, _data: &[u8]) -> tc_core::Result<()> {
        Ok(())
    }
    fn node_stats(&mut self, _rank: usize) -> tc_core::Result<RuntimeStats> {
        Ok(RuntimeStats::default())
    }
    fn metrics(&self) -> TransportMetrics {
        TransportMetrics::default()
    }
}

fn feed(cluster: &mut Cluster<MockTransport>, events: &[Event]) {
    for ev in events {
        let c = ev.client();
        cluster.transport_mut().queued[c].push(ev.completion());
    }
}

/// Mint GET handles for every `(client, request)` pair a case needs.  The
/// only public way to obtain a `GetHandle` is posting, and each client's
/// request ids are dense and monotone — so walk each client's id space once
/// in ascending order and keep the handles the events refer to.
fn mint_get_handles(
    cluster: &mut Cluster<MockTransport>,
    events: &[Event],
) -> HashMap<(usize, u64), GetHandle> {
    let mut wanted: HashMap<usize, Vec<u64>> = HashMap::new();
    for ev in events {
        if let Event::Get {
            client, request, ..
        } = *ev
        {
            wanted.entry(client).or_default().push(request);
        }
    }
    let mut out = HashMap::new();
    for (client, mut requests) in wanted {
        requests.sort_unstable();
        let max = *requests.last().expect("non-empty by construction");
        for _ in 0..=max {
            let h = cluster.post_get_from(ClientId(client), usize::MAX, 0, 0);
            if requests.contains(&h.request().0) {
                out.insert((client, h.request().0), h);
            }
        }
    }
    out
}

/// Claim routing is a permutation: every event claims exactly once under its
/// own (client, id), in any claim order, and nothing is left afterwards.
#[test]
fn claim_routing_is_a_permutation() {
    for case in 0..CASES {
        let mut g = Gen::for_case(case);
        let clients = g.range(2, 5) as usize;
        let count = g.range(4, 24) as usize;
        let events = generate_events(&mut g, clients, count);
        let mut cluster = Cluster::new(MockTransport::new(clients));
        let gets = mint_get_handles(&mut cluster, &events);
        feed(&mut cluster, &events);

        // Claim in a shuffled order, through typed handles.
        let mut order: Vec<usize> = (0..events.len()).collect();
        for i in (1..order.len()).rev() {
            let j = g.range(0, i as u64 + 1) as usize;
            order.swap(i, j);
        }
        for &i in &order {
            match events[i] {
                Event::Get {
                    client,
                    request,
                    byte,
                } => {
                    let h = gets[&(client, request)];
                    let data = cluster
                        .try_claim(&h)
                        .unwrap_or_else(|| panic!("case {case}: GET {i} must claim"));
                    assert_eq!(data[0], byte, "case {case}: GET {i} routed wrong value");
                    assert!(
                        cluster.try_claim(&h).is_none(),
                        "case {case}: GET {i} claims once"
                    );
                }
                Event::Put { client, request } => {
                    // Confirmed-PUT handles can only be built through posting;
                    // claim through the result-of-absorption path instead.
                    let _ = (client, request);
                }
                Event::Result {
                    client,
                    slot,
                    value,
                } => {
                    let h = ResultHandle::for_client_slot(ClientId(client), slot);
                    let got = cluster
                        .try_claim(&h)
                        .unwrap_or_else(|| panic!("case {case}: result {i} must claim"));
                    assert_eq!(got, value, "case {case}: result {i} routed wrong value");
                    assert!(
                        cluster.try_claim(&h).is_none(),
                        "case {case}: result {i} claims once"
                    );
                }
            }
        }
        // Only the (unclaimable-by-handle) PUT events remain.
        let puts = events
            .iter()
            .filter(|e| matches!(e, Event::Put { .. }))
            .count();
        assert_eq!(
            cluster.pending_completions(),
            puts,
            "case {case}: no completions lost or duplicated"
        );
    }
}

/// No cross-client delivery: claims under every *other* client id fail, and
/// the rightful claim still succeeds afterwards.
#[test]
fn wrong_client_claims_always_miss() {
    for case in 0..CASES {
        let mut g = Gen::for_case(case ^ 0xF00D);
        let clients = g.range(2, 5) as usize;
        let count = g.range(4, 16) as usize;
        let events = generate_events(&mut g, clients, count);
        let mut cluster = Cluster::new(MockTransport::new(clients));
        feed(&mut cluster, &events);

        for (i, ev) in events.iter().enumerate() {
            if let Event::Result {
                client,
                slot,
                value,
            } = *ev
            {
                for other in 0..clients {
                    if other == client {
                        continue;
                    }
                    // Unless `other` got its own result on the same slot,
                    // the wrong-client claim must miss.
                    let other_has_same = events.iter().any(|e| {
                        matches!(e, Event::Result { client: c2, slot: s2, .. }
                                 if *c2 == other && *s2 == slot)
                    });
                    if other_has_same {
                        continue;
                    }
                    let h = ResultHandle::for_client_slot(ClientId(other), slot);
                    assert!(
                        cluster.try_claim(&h).is_none(),
                        "case {case}: event {i} must not claim under client {other}"
                    );
                }
                let h = ResultHandle::for_client_slot(ClientId(client), slot);
                assert_eq!(
                    cluster.try_claim(&h),
                    Some(value),
                    "case {case}: event {i} rightful claim"
                );
            }
        }
    }
}

/// Arrival-order ties are preserved: a `CompletionSet` registered over every
/// generated event resolves in exactly the order the completions were
/// absorbed — each client's stream in its own delivery order, client streams
/// drained in client order within one absorb round (the transport exposes
/// *per-client* completion queues; there is no cross-client arrival clock).
#[test]
fn completion_set_resolves_in_arrival_order_across_clients() {
    for case in 0..CASES {
        let mut g = Gen::for_case(case ^ 0xA11);
        let clients = g.range(2, 5) as usize;
        let count = g.range(4, 20) as usize;
        let events = generate_events(&mut g, clients, count);
        let mut cluster = Cluster::new(MockTransport::new(clients));
        let gets = mint_get_handles(&mut cluster, &events);

        let mut set = CompletionSet::new();
        let mut expect = Vec::new();
        for (i, ev) in events.iter().enumerate() {
            match *ev {
                Event::Get {
                    client, request, ..
                } => {
                    let h = gets[&(client, request)];
                    expect.push((set.add_get(h), i));
                }
                Event::Result { client, slot, .. } => {
                    let h = ResultHandle::for_client_slot(ClientId(client), slot);
                    expect.push((set.add_result(h), i));
                }
                // PUT handles only exist via posting; not part of this
                // ordering property.
                Event::Put { .. } => {}
            }
        }
        feed(&mut cluster, &events);

        let mut resolved = Vec::new();
        while let Some((token, ready)) = cluster.poll_any(&mut set) {
            assert!(!matches!(ready, Ready::Deadline), "case {case}");
            resolved.push(token);
        }
        // One absorb round drains client 0's queue, then client 1's, … —
        // so the expected order is client-major, each client's events in
        // their original delivery order.
        let mut expected_order = Vec::new();
        for c in 0..clients {
            for (t, i) in &expect {
                if events[*i].client() == c && !matches!(events[*i], Event::Put { .. }) {
                    expected_order.push(*t);
                }
            }
        }
        assert_eq!(
            resolved, expected_order,
            "case {case}: resolution must follow absorb order exactly"
        );
        assert!(set.is_empty(), "case {case}: every registration resolved");
    }
}

/// The reserved-slot path (PR 4) stays correct per client: allocators skip
/// random per-client reservations, never hand a slot out twice, and other
/// clients' reservations have no effect.
#[test]
fn reserved_slots_are_skipped_per_client() {
    for case in 0..CASES {
        let mut g = Gen::for_case(case ^ 0x5107);
        let clients = g.range(2, 5) as usize;
        let mut cluster = Cluster::new(MockTransport::new(clients));
        let mut reserved: Vec<Vec<u64>> = vec![Vec::new(); clients];
        for _ in 0..g.range(0, 10) {
            let c = g.range(0, clients as u64) as usize;
            let slot = g.range(0, 12);
            cluster.reserve_result_slot_on(ClientId(c), slot);
            reserved[c].push(slot);
        }
        for (c, reserved_here) in reserved.iter().enumerate() {
            let mut handed = Vec::new();
            for _ in 0..10 {
                let h = cluster.result_slot_on(ClientId(c));
                assert_eq!(h.client(), ClientId(c), "case {case}");
                assert!(
                    !reserved_here.contains(&h.slot()),
                    "case {case}: client {c} allocator handed out reserved slot {}",
                    h.slot()
                );
                handed.push(h.slot());
            }
            let mut dedup = handed.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), handed.len(), "case {case}: no slot twice");
            // Exactly the first 10 non-reserved naturals, in order — other
            // clients' reservations must not shift this stream.
            let expect: Vec<u64> = (0..)
                .filter(|s| !reserved_here.contains(s))
                .take(10)
                .collect();
            assert_eq!(handed, expect, "case {case}: client {c} stream");
        }
    }
}
