//! Regression tests for cluster-API bugs fixed alongside the async
//! completion plane, exercised against a minimal mock transport so the
//! failure modes are reachable deterministically.

use tc_bitir::TargetTriple;
use tc_core::cluster::{ClientRef, ClientRefMut, Cluster, Transport, TransportMetrics};
use tc_core::{ClientId, Completion, CoreError, NativeAmHandler, NodeRuntime, RuntimeStats};
use tc_ucx::{RequestId, WorkerAddr};

/// A transport that serves short memory reads and hand-fed completions.
struct MockTransport {
    client: NodeRuntime,
    /// Bytes returned per `read_memory`, regardless of the requested length.
    short_by: usize,
    /// Completions handed to the next `take_completions` call.
    queued: Vec<Completion>,
}

impl MockTransport {
    fn new(short_by: usize) -> Self {
        MockTransport {
            client: NodeRuntime::new(WorkerAddr(0), 2, TargetTriple::X86_64_GENERIC),
            short_by,
            queued: Vec::new(),
        }
    }
}

impl Transport for MockTransport {
    fn backend_name(&self) -> &'static str {
        "mock"
    }
    fn node_count(&self) -> usize {
        2
    }
    fn client(&self, _id: ClientId) -> ClientRef<'_> {
        ClientRef::Direct(&self.client)
    }
    fn client_mut(&mut self, _id: ClientId) -> ClientRefMut<'_> {
        ClientRefMut::Direct(&mut self.client)
    }
    fn deploy_am(&mut self, _name: &str, _handler: NativeAmHandler) -> tc_core::Result<()> {
        Ok(())
    }
    fn flush_client(&mut self, _id: ClientId) -> tc_core::Result<()> {
        Ok(())
    }
    fn step(&mut self) -> tc_core::Result<bool> {
        Ok(false)
    }
    fn take_completions(&mut self, _id: ClientId) -> Vec<Completion> {
        std::mem::take(&mut self.queued)
    }
    fn read_memory(&mut self, _rank: usize, _addr: u64, len: usize) -> tc_core::Result<Vec<u8>> {
        Ok(vec![0xAA; len.saturating_sub(self.short_by)])
    }
    fn write_memory(&mut self, _rank: usize, _addr: u64, _data: &[u8]) -> tc_core::Result<()> {
        Ok(())
    }
    fn node_stats(&mut self, _rank: usize) -> tc_core::Result<RuntimeStats> {
        Ok(RuntimeStats::default())
    }
    fn metrics(&self) -> TransportMetrics {
        TransportMetrics::default()
    }
}

/// REGRESSION: `Cluster::read_u64` used to slice `bytes[..8]` and panic on a
/// transport that returns fewer than 8 bytes; it must surface a typed
/// `CoreError::ShortRead` instead.
#[test]
fn read_u64_returns_typed_error_on_short_read() {
    let mut cluster = Cluster::new(MockTransport::new(3));
    let err = cluster.read_u64(1, 0x40).unwrap_err();
    match err {
        CoreError::ShortRead {
            rank,
            addr,
            wanted,
            got,
        } => {
            assert_eq!((rank, addr, wanted, got), (1, 0x40, 8, 5));
        }
        other => panic!("expected ShortRead, got {other:?}"),
    }
    // A full-width read still works.
    let mut cluster = Cluster::new(MockTransport::new(0));
    assert_eq!(
        cluster.read_u64(1, 0x40).unwrap(),
        u64::from_le_bytes([0xAA; 8])
    );
}

/// REGRESSION: completions returned by `run_until_completions` must stay
/// claimable by a later typed `wait`/`try_claim` (the old implementation
/// `mem::take`-drained them, making the wait time out).
#[test]
fn drained_completions_stay_claimable_through_the_claim_table() {
    let mut transport = MockTransport::new(0);
    transport.queued = vec![
        Completion::Get {
            request: RequestId(5),
            data: vec![1, 2, 3].into(),
        },
        Completion::Result { slot: 9, value: 77 },
    ];
    let mut cluster = Cluster::new(transport);
    // Handle for the queued GET: post nothing, claim through the table.
    let drained = cluster.run_until_completions(2, 10).unwrap();
    assert_eq!(drained.len(), 2);
    // Both completions were "drained" — and both still claim.
    let result = cluster.try_claim(&tc_core::ResultHandle::for_slot(9));
    assert_eq!(result, Some(77));
    assert_eq!(
        cluster.pending_completions(),
        1,
        "the GET is still buffered"
    );
}
