//! Property tests for the wire-facing core pieces: `MessageFrame`
//! encode/decode (including the truncated, code-elided form the caching
//! protocol transmits) and `SenderCache` hit/miss/eviction behaviour.
//!
//! No crates.io access in the build environment, so these run on a small
//! deterministic generator (splitmix64) instead of `proptest`; every
//! assertion carries its case index for reproduction.

use std::collections::HashSet;
use tc_core::{CodeRepr, MessageFrame, SendDecision, SenderCache};
use tc_ucx::WorkerAddr;

const CASES: u64 = 128;

/// Deterministic case generator over the shared splitmix64 stream.
struct Gen(tc_simnet::SplitMix64);

impl Gen {
    fn for_case(case: u64) -> Self {
        Gen(tc_simnet::SplitMix64::new(
            0xF0A1_0000u64.wrapping_add(case.wrapping_mul(0x9e37_79b9)),
        ))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.0.range(lo, hi)
    }

    fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        self.0.bytes(max_len)
    }

    fn ident(&mut self, max_len: usize) -> String {
        let len = self.range(1, max_len as u64 + 1) as usize;
        (0..len)
            .map(|_| (b'a' + (self.range(0, 26) as u8)) as char)
            .collect()
    }

    fn frame(&mut self) -> MessageFrame {
        let repr = if self.next_u64() & 1 == 0 {
            CodeRepr::Bitcode
        } else {
            CodeRepr::Binary
        };
        let deps = (0..self.range(0, 4))
            .map(|_| format!("lib{}.so", self.ident(8)))
            .collect();
        MessageFrame::new(
            self.ident(24),
            repr,
            self.bytes(256),
            self.bytes(4096),
            deps,
        )
    }
}

// --- MessageFrame ----------------------------------------------------------

#[test]
fn full_and_truncated_encodings_roundtrip() {
    for case in 0..CASES {
        let mut g = Gen::for_case(case);
        let frame = g.frame();

        let full = MessageFrame::decode(&frame.encode_full()).unwrap();
        assert!(!full.is_truncated(), "case {case}");
        assert_eq!(full.ifunc_name, frame.ifunc_name, "case {case}");
        assert_eq!(full.repr, frame.repr, "case {case}");
        assert_eq!(full.payload, frame.payload, "case {case}");
        assert_eq!(full.code.as_ref(), Some(&frame.code), "case {case}");
        assert_eq!(full.deps, frame.deps, "case {case}");

        let truncated = MessageFrame::decode(&frame.encode_truncated()).unwrap();
        assert!(truncated.is_truncated(), "case {case}");
        assert_eq!(truncated.ifunc_name, frame.ifunc_name, "case {case}");
        assert_eq!(truncated.repr, frame.repr, "case {case}");
        assert_eq!(truncated.payload, frame.payload, "case {case}");
        assert!(truncated.deps.is_empty(), "case {case}");
    }
}

#[test]
fn truncated_encoding_is_a_strict_prefix_of_the_full_encoding() {
    // "We control what to send by simply passing different message size
    // arguments to the UCP PUT interface" — the truncated frame must be
    // byte-identical to the head of the full frame, not a separate encoding.
    for case in 0..CASES {
        let mut g = Gen::for_case(case);
        let frame = g.frame();
        let full = frame.encode_full();
        let truncated = frame.encode_truncated();
        assert!(truncated.len() < full.len(), "case {case}");
        assert_eq!(&full[..truncated.len()], &truncated[..], "case {case}");
    }
}

#[test]
fn decode_never_panics_on_mutated_or_clipped_frames() {
    for case in 0..CASES {
        let mut g = Gen::for_case(case);
        let frame = g.frame();
        let mut bytes = frame.encode_full().to_vec();

        // Clip at an arbitrary boundary: either an error or (exactly at the
        // truncation point) a truncated decode — never a panic.
        let cut = g.range(0, bytes.len() as u64 + 1) as usize;
        let _ = MessageFrame::decode(&bytes[..cut]);

        // Flip one byte anywhere: must not panic.
        let idx = g.range(0, bytes.len() as u64) as usize;
        bytes[idx] ^= 1 + (g.next_u64() as u8 & 0x7f);
        let _ = MessageFrame::decode(&bytes);
    }
}

// --- SenderCache -----------------------------------------------------------

#[test]
fn cache_ships_code_exactly_once_per_pair_under_random_interleaving() {
    for case in 0..CASES {
        let mut g = Gen::for_case(case);
        let mut cache = SenderCache::new();
        let mut seen: HashSet<(u64, u64)> = HashSet::new();
        let mut fulls = 0u64;
        let mut truncs = 0u64;
        for _ in 0..g.range(1, 128) {
            let ifunc = g.range(0, 5);
            let ep = g.range(0, 7);
            let decision = cache.on_send(&format!("f{ifunc}"), WorkerAddr(ep as u32));
            if seen.insert((ifunc, ep)) {
                fulls += 1;
                assert_eq!(decision, SendDecision::SendFull, "case {case}");
            } else {
                truncs += 1;
                assert_eq!(decision, SendDecision::SendTruncated, "case {case}");
            }
            assert!(cache.would_truncate(&format!("f{ifunc}"), WorkerAddr(ep as u32)));
        }
        assert_eq!(cache.len(), seen.len(), "case {case}");
        assert_eq!(cache.full_sends, fulls, "case {case}");
        assert_eq!(cache.truncated_sends, truncs, "case {case}");
    }
}

#[test]
fn endpoint_eviction_forces_code_resend_only_for_that_endpoint() {
    for case in 0..CASES {
        let mut g = Gen::for_case(case);
        let mut cache = SenderCache::new();
        let endpoints: Vec<u32> = (0..g.range(2, 6)).map(|e| e as u32).collect();
        let ifuncs: Vec<String> = (0..g.range(1, 5)).map(|i| format!("f{i}")).collect();
        for ep in &endpoints {
            for name in &ifuncs {
                let _ = cache.on_send(name, WorkerAddr(*ep));
            }
        }
        let victim = endpoints[g.range(0, endpoints.len() as u64) as usize];
        cache.forget_endpoint(WorkerAddr(victim));

        for ep in &endpoints {
            for name in &ifuncs {
                let expect_trunc = *ep != victim;
                assert_eq!(
                    cache.would_truncate(name, WorkerAddr(*ep)),
                    expect_trunc,
                    "case {case}, ep {ep}, ifunc {name}"
                );
            }
        }
        // The victim's next sends ship code again, exactly once each.
        for name in &ifuncs {
            assert_eq!(
                cache.on_send(name, WorkerAddr(victim)),
                SendDecision::SendFull
            );
            assert_eq!(
                cache.on_send(name, WorkerAddr(victim)),
                SendDecision::SendTruncated
            );
        }
    }
}

#[test]
fn ifunc_eviction_forces_code_resend_on_every_endpoint() {
    for case in 0..CASES {
        let mut g = Gen::for_case(case);
        let mut cache = SenderCache::new();
        let endpoints: Vec<u32> = (0..g.range(2, 6)).map(|e| e as u32).collect();
        let ifuncs: Vec<String> = (0..g.range(2, 5)).map(|i| format!("f{i}")).collect();
        for ep in &endpoints {
            for name in &ifuncs {
                let _ = cache.on_send(name, WorkerAddr(*ep));
            }
        }
        let victim = &ifuncs[g.range(0, ifuncs.len() as u64) as usize];
        cache.forget_ifunc(victim);

        for ep in &endpoints {
            for name in &ifuncs {
                assert_eq!(
                    cache.would_truncate(name, WorkerAddr(*ep)),
                    name != victim,
                    "case {case}, ep {ep}, ifunc {name}"
                );
            }
        }
        assert_eq!(
            cache.len(),
            (ifuncs.len() - 1) * endpoints.len(),
            "case {case}"
        );
    }
}
