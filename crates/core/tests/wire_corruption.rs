//! Wire-format robustness: seeded corruption of encoded envelopes and
//! frames.
//!
//! The chaos plane injects *fabric* faults (drop/dup/reorder); this suite
//! covers the next failure class down — corrupted bytes.  Every decoder on
//! the receive path (`wire::decode_op`, `wire::decode_op_vectored`,
//! `wire::decode_rel_head`, `wire::decode_ack`, `wire::decode_control`,
//! `wire::decode_stats`, `MessageFrame::decode_view`) must return an error
//! for malformed input — never panic, never misindex — because a production
//! fabric will eventually hand it garbage.

use tc_core::cluster::wire;
use tc_core::frame::{CodeRepr, MessageFrame};
use tc_simnet::SplitMix64;
use tc_ucx::{AmHandlerId, Bytes, OutgoingMessage, RequestId, UcpOp, WorkerAddr};

fn sample_messages() -> Vec<OutgoingMessage> {
    let ops = vec![
        UcpOp::Put {
            remote_addr: 0x4000,
            data: vec![7; 48].into(),
        },
        UcpOp::Get {
            remote_addr: 0x80,
            len: 64,
        },
        UcpOp::GetReply {
            request: RequestId(3),
            data: vec![1, 2, 3, 4].into(),
        },
        UcpOp::ActiveMessage {
            handler: AmHandlerId(2),
            payload: vec![9; 16].into(),
        },
        UcpOp::IfuncFrame {
            bytes: vec![0xCD; 96].into(),
        },
    ];
    ops.into_iter()
        .enumerate()
        .map(|(i, op)| OutgoingMessage {
            src: WorkerAddr(0),
            dst: WorkerAddr(1),
            request: RequestId(i as u64),
            op,
        })
        .collect()
}

fn sample_frame() -> MessageFrame {
    MessageFrame::new(
        "corruption_probe",
        CodeRepr::Bitcode,
        vec![1, 2, 3, 4, 5],
        vec![0xAB; 256],
        vec!["libtc.so".to_string(), "libm.so".to_string()],
    )
}

/// Truncate `bytes` to every possible prefix length: each must decode to
/// `Ok` or `Err`, never panic.  Returns how many prefixes decoded `Ok`.
fn truncation_sweep(bytes: &[u8], mut decode: impl FnMut(&[u8]) -> bool) -> usize {
    (0..bytes.len()).filter(|&n| decode(&bytes[..n])).count()
}

#[test]
fn op_decode_survives_every_truncation() {
    for msg in sample_messages() {
        let enc = wire::encode_op(&msg);
        let ok = truncation_sweep(&enc, |b| {
            wire::decode_op(&Bytes::copy_from_slice(b)).is_ok()
        });
        // Some truncations of payload-carrying ops are still structurally
        // valid (a shorter payload); what matters is that none panicked and
        // the full encoding round-trips.
        assert!(wire::decode_op(&enc).is_ok());
        let _ = ok;
    }
}

#[test]
fn op_decode_survives_seeded_bit_flips() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    for msg in sample_messages() {
        let enc = wire::encode_op(&msg).to_vec();
        for _ in 0..200 {
            let mut bad = enc.clone();
            let byte = rng.below(bad.len() as u64) as usize;
            let bit = rng.below(8) as u8;
            bad[byte] ^= 1 << bit;
            // Must not panic; on success the decoded op may simply differ.
            let _ = wire::decode_op(&Bytes::from(bad));
        }
    }
}

#[test]
fn op_decode_rejects_structurally_broken_bodies() {
    // GET body must be exactly 16 bytes.
    let get = wire::encode_op(&OutgoingMessage {
        src: WorkerAddr(0),
        dst: WorkerAddr(1),
        request: RequestId(0),
        op: UcpOp::Get {
            remote_addr: 0,
            len: 8,
        },
    })
    .to_vec();
    assert!(wire::decode_op(&Bytes::from(get[..get.len() - 1].to_vec())).is_err());
    let mut long = get.clone();
    long.push(0);
    assert!(wire::decode_op(&Bytes::from(long)).is_err());
    // Unknown op tag.
    let mut bad_tag = get;
    bad_tag[16] = 0xEE;
    assert!(wire::decode_op(&Bytes::from(bad_tag)).is_err());
    // Shorter than any header.
    for n in 0..17 {
        assert!(wire::decode_op(&Bytes::from(vec![0u8; n])).is_err());
    }
}

#[test]
fn vectored_decode_survives_corrupt_heads() {
    let mut rng = SplitMix64::new(0xBEEF);
    let payload = Bytes::from(vec![0x55u8; 1024]);
    for msg in sample_messages() {
        let (head, _) = wire::encode_op_vectored(&msg);
        for _ in 0..200 {
            let mut bad = head.to_vec();
            if bad.is_empty() {
                continue;
            }
            let byte = rng.below(bad.len() as u64) as usize;
            bad[byte] = rng.next_u64() as u8;
            let _ = wire::decode_op_vectored(&Bytes::from(bad), &payload);
        }
        for n in 0..head.len() {
            let _ = wire::decode_op_vectored(&Bytes::copy_from_slice(&head[..n]), &payload);
        }
    }
}

#[test]
fn frame_decode_view_survives_truncation_and_flips() {
    let frame = sample_frame();
    for enc in [frame.encode_full(), frame.encode_truncated()] {
        // Every truncation: error or ok, never a panic.  The intact
        // encodings must round-trip.
        truncation_sweep(&enc, |b| {
            MessageFrame::decode_view(&Bytes::copy_from_slice(b)).is_ok()
        });
        assert!(MessageFrame::decode_view(&enc).is_ok());

        let mut rng = SplitMix64::new(0xF00D);
        let bytes = enc.to_vec();
        for _ in 0..500 {
            let mut bad = bytes.clone();
            let byte = rng.below(bad.len() as u64) as usize;
            let bit = rng.below(8) as u8;
            bad[byte] ^= 1 << bit;
            let _ = MessageFrame::decode_view(&Bytes::from(bad));
        }
    }
}

#[test]
fn frame_decode_rejects_specific_corruptions() {
    let frame = sample_frame();
    let full = frame.encode_full().to_vec();

    // Bad version byte.
    let mut bad = full.clone();
    bad[0] = 0x7F;
    assert!(MessageFrame::decode_view(&Bytes::from(bad)).is_err());

    // Bad representation tag.
    let mut bad = full.clone();
    bad[1] = 9;
    assert!(MessageFrame::decode_view(&Bytes::from(bad)).is_err());

    // Non-UTF-8 ifunc name (name starts after version+repr+len = 4 bytes).
    let mut bad = full.clone();
    bad[4] = 0xFF;
    bad[5] = 0xFE;
    assert!(MessageFrame::decode_view(&Bytes::from(bad)).is_err());

    // Broken MAGIC delimiter after the payload.
    let name_len = frame.ifunc_name.len();
    let payload_len = 5;
    let magic_at = 1 + 1 + 2 + name_len + 4 + 4 + 2 + payload_len;
    let mut bad = full.clone();
    bad[magic_at] = b'X';
    assert!(MessageFrame::decode_view(&Bytes::from(bad)).is_err());

    // Trailing garbage after the trailer MAGIC.
    let mut bad = full.clone();
    bad.push(0);
    assert!(MessageFrame::decode_view(&Bytes::from(bad)).is_err());

    // Broken trailer MAGIC.
    let mut bad = full;
    let last = bad.len() - 1;
    bad[last] = b'!';
    assert!(MessageFrame::decode_view(&Bytes::from(bad)).is_err());
}

#[test]
fn control_plane_codecs_reject_garbage() {
    let mut rng = SplitMix64::new(0xD00D);
    for _ in 0..500 {
        let junk = rng.bytes(64);
        let _ = wire::decode_control(&junk);
        let _ = wire::decode_stats(&junk);
        let _ = wire::decode_ack(&junk);
        let _ = wire::decode_rel_head(&Bytes::copy_from_slice(&junk));
    }
    assert!(wire::decode_control(&[0; 7]).is_err());
    assert!(wire::decode_stats(&[0; 87]).is_err());
    assert!(wire::decode_ack(&[0; 7]).is_err());
    assert!(wire::decode_rel_head(&Bytes::from(vec![0u8; 15])).is_err());
}

/// The socket backend adds one more decode layer beneath everything above:
/// length-prefixed stream framing.  The same rules apply — truncation,
/// bit-flips and hostile length headers must come back as typed errors (or
/// silent resynchronization-is-impossible `Err`s), never a panic and never
/// an attacker-sized allocation.
mod stream_framing {
    use super::*;
    use std::io::Write as _;
    use std::time::{Duration, Instant};
    use tc_net::{Frame, FrameDecoder, Listener, NetError, SocketSpec, MAX_FRAME_BYTES};

    fn sample_stream() -> Vec<u8> {
        let frames = [
            Frame::new(0, 1, 9, vec![0x11; 32]),
            Frame::with_payload(1, 0, 10, vec![0x22; 40], vec![0x33; 700]),
            Frame::new(2, 3, 104, Vec::new()),
        ];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        stream
    }

    #[test]
    fn stream_truncated_at_every_byte_never_panics() {
        let stream = sample_stream();
        for cut in 0..stream.len() {
            let mut dec = FrameDecoder::new();
            dec.extend(&stream[..cut]);
            // Drain everything decodable; the final state is either "waiting
            // for more bytes" (Ok(None)) or a typed error — never a panic.
            loop {
                match dec.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) => {
                        // A truncation that is not on a frame boundary must
                        // be visible as a mid-frame condition with a byte
                        // count, so a peer close here can be classified.
                        if dec.pending() > 0 {
                            assert!(dec.mid_frame(), "cut at {cut}");
                        }
                        break;
                    }
                    Err(_) => break,
                }
            }
        }
    }

    #[test]
    fn stream_survives_seeded_bit_flips() {
        let stream = sample_stream();
        let mut rng = SplitMix64::new(0x57EA);
        for _ in 0..500 {
            let mut bad = stream.clone();
            let byte = rng.below(bad.len() as u64) as usize;
            let bit = rng.below(8) as u8;
            bad[byte] ^= 1 << bit;
            let mut dec = FrameDecoder::new();
            dec.extend(&bad);
            // Flips in the length prefix shift framing; flips in the body
            // change content.  Either way: frames, Ok(None), or a typed
            // error.  Decoded garbage frames must still hold their invariant
            // (data + payload fit the advertised length).
            loop {
                match dec.next_frame() {
                    Ok(Some(f)) => {
                        assert!(f.data.len() + f.payload.len() <= MAX_FRAME_BYTES);
                    }
                    Ok(None) => break,
                    Err(NetError::FrameTooLarge { len, max }) => {
                        assert!(len > max);
                        break;
                    }
                    Err(NetError::Malformed(_)) => break,
                    Err(other) => panic!("unexpected stream error {other:?}"),
                }
            }
        }
    }

    #[test]
    fn hostile_length_header_is_rejected_without_allocation() {
        // A 4 GiB length claim must cost the decoder nothing beyond the four
        // bytes already buffered: the bound check happens before any
        // frame-sized allocation.
        let mut dec = FrameDecoder::new();
        dec.extend(&u32::MAX.to_le_bytes());
        assert_eq!(dec.pending(), 4, "only the prefix is buffered");
        match dec.next_frame() {
            Err(NetError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, MAX_FRAME_BYTES);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        // Just over the limit is equally dead; just under parses the prefix.
        let mut dec = FrameDecoder::new();
        dec.extend(&((MAX_FRAME_BYTES as u32) + 1).to_le_bytes());
        assert!(matches!(
            dec.next_frame(),
            Err(NetError::FrameTooLarge { .. })
        ));
        let mut dec = FrameDecoder::new();
        dec.extend(&(MAX_FRAME_BYTES as u32).to_le_bytes());
        assert!(
            dec.next_frame().unwrap().is_none(),
            "at the limit: wait for bytes"
        );
    }

    #[test]
    fn inconsistent_inner_lengths_are_malformed() {
        // data_len claiming more than the body holds.
        let f = Frame::new(1, 2, 3, vec![0u8; 16]);
        let mut wire = f.encode();
        wire[20..24].copy_from_slice(&(10_000u32).to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert!(matches!(dec.next_frame(), Err(NetError::Malformed(_))));

        // Length prefix smaller than the fixed header.
        let mut dec = FrameDecoder::new();
        dec.extend(&7u32.to_le_bytes());
        dec.extend(&[0u8; 7]);
        assert!(matches!(dec.next_frame(), Err(NetError::Malformed(_))));
    }

    /// The failure mode the socket backend maps to `CoreError::ShortRead`:
    /// a peer writes part of a frame onto a real socket and dies.  The
    /// reader must classify the close as mid-frame with exact byte counts.
    #[test]
    fn peer_death_mid_frame_on_a_live_socket_is_classified() {
        let path = std::env::temp_dir().join(format!("tc-corrupt-{}.sock", std::process::id()));
        let listener = Listener::bind(&SocketSpec::Unix(path.clone())).unwrap();
        let writer = std::os::unix::net::UnixStream::connect(&path).unwrap();
        let mut reader = loop {
            if let Some(c) = listener.accept().unwrap() {
                break c;
            }
            std::thread::sleep(Duration::from_millis(1));
        };

        let frame = Frame::with_payload(0, 1, 9, vec![4u8; 24], vec![0x5Au8; 512]);
        let wire = frame.encode();
        let cut = wire.len() - 100;
        let mut writer = writer;
        writer.write_all(&wire[..cut]).unwrap();
        drop(writer); // SIGKILL's socket-level signature: EOF mid-frame.

        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        let err = loop {
            match reader.pump_read(&mut got) {
                Ok(()) => {
                    assert!(Instant::now() < deadline, "EOF never surfaced");
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => break e,
            }
        };
        match err {
            NetError::PeerClosed {
                mid_frame: true,
                wanted,
                got: have,
            } => {
                assert_eq!(wanted, 100, "bytes the unfinished frame still needs");
                assert_eq!(have, cut, "bytes that did arrive");
            }
            other => panic!("expected mid-frame PeerClosed, got {other:?}"),
        }
        assert!(got.is_empty(), "no partial frame may be delivered");

        // A clean close on a frame boundary, by contrast, is not mid-frame.
        let writer2 = std::os::unix::net::UnixStream::connect(&path).unwrap();
        let mut reader2 = loop {
            if let Some(c) = listener.accept().unwrap() {
                break c;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        let mut writer2 = writer2;
        writer2.write_all(&wire).unwrap();
        drop(writer2);
        let mut got2 = Vec::new();
        let err2 = loop {
            match reader2.pump_read(&mut got2) {
                Ok(()) => std::thread::sleep(Duration::from_millis(1)),
                Err(e) => break e,
            }
        };
        assert_eq!(got2.len(), 1, "the whole frame arrived before the close");
        assert!(
            matches!(
                err2,
                NetError::PeerClosed {
                    mid_frame: false,
                    ..
                }
            ),
            "boundary close must be clean, got {err2:?}"
        );
    }
}

#[test]
fn reliable_envelope_corruption_is_contained() {
    // Corrupting the reliability prefix yields garbage seq/ack values (the
    // protocol tolerates those — dedup and retransmission are defensive) or
    // an error; corrupting the inner head must surface as a decode error,
    // not a panic.
    let msg = &sample_messages()[0];
    let head = wire::encode_op(msg);
    let wrapped = wire::encode_rel_head(9, 4, &head).to_vec();
    let mut rng = SplitMix64::new(0xACE);
    for _ in 0..500 {
        let mut bad = wrapped.clone();
        let byte = rng.below(bad.len() as u64) as usize;
        bad[byte] = rng.next_u64() as u8;
        if let Ok((_seq, _ack, inner)) = wire::decode_rel_head(&Bytes::from(bad)) {
            let _ = wire::decode_op(&inner);
        }
    }
}
