//! # tc-core — the Three-Chains framework
//!
//! This crate is the reproduction of the paper's primary contribution: a
//! user-space framework for moving *compute and data* between processing
//! elements of a distributed heterogeneous system.
//!
//! * [`ifunc`] — ifunc libraries, the toolchain (fat-bitcode archives and
//!   per-target binary objects), registration and message creation;
//! * [`frame`] — the message frame layout of Figures 2 and 3, including the
//!   truncated (code-elided) encoding the caching protocol transmits;
//! * [`cache`] — the sender-side `(ifunc, endpoint)` code cache;
//! * [`runtime`] — the per-node runtime: polling, auto-registration,
//!   JIT-or-load, invocation, recursive propagation, X-RDMA result return and
//!   the Active-Message baseline;
//! * [`layout`] — node memory-layout conventions (payload staging, target
//!   region, X-RDMA result mailbox, data region);
//! * [`metrics`] — processing outcomes and counters consumed by the cost
//!   model;
//! * [`cluster`] — the unified cluster API: one [`ClusterBuilder`], a
//!   [`Transport`] trait, and two first-class backends (the calibrated
//!   discrete-event simulation and real OS threads) driving the same node
//!   runtimes;
//! * [`sim`] — timing records plus [`ClusterSim`], the simulation-first
//!   facade over the simulated backend — the engine behind every table and
//!   figure reproduction.
//!
//! ## Quick start
//!
//! ```
//! use tc_core::prelude::*;
//! use tc_bitir::{ModuleBuilder, ScalarType, BinOp};
//!
//! // 1. Write an ifunc library (the "C path"): add the payload's first byte
//! //    to a counter behind the target pointer.
//! let mut mb = ModuleBuilder::new("quick_tsi");
//! {
//!     let mut f = mb.entry_function();
//!     let payload = f.param(0);
//!     let target = f.param(2);
//!     let delta = f.load(ScalarType::U8, payload, 0);
//!     let counter = f.load(ScalarType::U64, target, 0);
//!     let sum = f.bin(BinOp::Add, ScalarType::U64, counter, delta);
//!     f.store(ScalarType::U64, sum, target, 0);
//!     let zero = f.const_i64(0);
//!     f.ret(zero);
//!     f.finish();
//! }
//! let module = mb.build();
//!
//! // 2. Run the toolchain and register the library.
//! let library = build_ifunc_library(&module, &ToolchainOptions::default()).unwrap();
//!
//! // 3. Spin up a simulated heterogeneous cluster (Xeon client, DPU servers)
//! //    and inject the ifunc.
//! let mut sim = ClusterSim::new(tc_simnet::Platform::thor_bf2(), 2);
//! let handle = sim.register_on_client(library);
//! let msg = sim.client_mut().create_bitcode_message(handle, vec![5]).unwrap();
//! sim.client_send_ifunc(&msg, 1);
//! sim.run_until_idle(1_000);
//! assert_eq!(sim.node(1).stats.ifuncs_executed, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod cluster;
pub mod error;
pub mod frame;
pub mod ifunc;
pub mod layout;
pub mod metrics;
pub mod runtime;
pub mod sim;

pub use cache::{SendDecision, SenderCache};
pub use cluster::{
    Backend, ChaosStats, ClaimTable, ClientId, Cluster, ClusterBuilder, CompletionHandle,
    CompletionSet, CompletionToken, FaultPlan, GetHandle, LinkFaults, LinkHealth, PutHandle, Ready,
    RelConfig, RelMetrics, ResultHandle, SimTransport, ThreadTransport, ThreadTuning, Transport,
    TransportMetrics,
};
pub use error::{CoreError, Result};
pub use frame::{CodeRepr, DecodedFrame, MessageFrame, FRAME_MAGIC};
pub use ifunc::{
    build_ifunc_library, IfuncHandle, IfuncLibrary, IfuncMessage, IfuncRegistry, ToolchainOptions,
};
pub use metrics::{OutcomeKind, ProcessOutcome, RuntimeStats};
pub use runtime::{AmContext, Completion, HostAction, NativeAmHandler, NodeRuntime};
pub use sim::{ClusterSim, DeliveryRecord, TimingLog};

/// Commonly used items, re-exported for examples and downstream crates.
pub mod prelude {
    pub use crate::cache::{SendDecision, SenderCache};
    pub use crate::cluster::{
        Backend, ChaosStats, ClaimTable, ClientId, Cluster, ClusterBuilder, CompletionHandle,
        CompletionSet, CompletionToken, FaultPlan, GetHandle, LinkFaults, LinkHealth, PutHandle,
        Ready, RelConfig, RelMetrics, ResultHandle, SimTransport, ThreadTransport, ThreadTuning,
        Transport, TransportMetrics,
    };
    pub use crate::error::{CoreError, Result};
    pub use crate::frame::{CodeRepr, MessageFrame};
    pub use crate::ifunc::{
        build_ifunc_library, IfuncHandle, IfuncLibrary, IfuncMessage, IfuncRegistry,
        ToolchainOptions,
    };
    pub use crate::layout::{
        DATA_REGION_BASE, PAYLOAD_STAGING_BASE, RESULT_MAILBOX_BASE, TARGET_REGION_BASE,
    };
    pub use crate::metrics::{OutcomeKind, ProcessOutcome, RuntimeStats};
    pub use crate::runtime::{AmContext, Completion, HostAction, NativeAmHandler, NodeRuntime};
    pub use crate::sim::{ClusterSim, DeliveryRecord, TimingLog};
}
