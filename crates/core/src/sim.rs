//! The timed cluster simulation: node runtimes driven by the discrete-event
//! engine over the calibrated fabric and CPU models.
//!
//! [`ClusterSim`] instantiates one client runtime (rank 0) and `N` server
//! runtimes (ranks 1..=N) on a [`tc_simnet::Platform`], then carries every
//! posted fabric operation through the event queue:
//!
//! * each operation leaves its sender no earlier than the sender's
//!   *injection gap* allows (this is what bounds message rate);
//! * it arrives after the fabric *latency* for its size and class;
//! * handling it on the destination costs virtual CPU time: AM dispatch,
//!   cached-ifunc lookup, JIT compilation (first arrival), binary load, and
//!   the interpreter's cycle count converted at the node's clock;
//! * anything the handled message itself posted (recursive forwards, result
//!   returns, GET replies) departs after that processing completes.
//!
//! Every delivery is appended to a [`TimingLog`] so the benchmark harness can
//! reconstruct the paper's overhead breakdown (transmission / lookup / JIT /
//! execution) without re-instrumenting the runtime.

use crate::error::Result;
use crate::ifunc::{IfuncHandle, IfuncLibrary, IfuncMessage};
use crate::metrics::{OutcomeKind, ProcessOutcome};
use crate::runtime::{Completion, NativeAmHandler, NodeRuntime};
use tc_bitir::TargetTriple;
use tc_jit::OptLevel;
use tc_simnet::{EventQueue, FabricOp, Platform, SimDuration, SimTime};
use tc_ucx::{OutgoingMessage, RequestId, UcpOp, WorkerAddr};

/// One record per delivered-and-processed fabric operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeliveryRecord {
    /// Node that processed the operation.
    pub node: u32,
    /// Virtual time at which the operation arrived.
    pub arrival: SimTime,
    /// Virtual time at which processing finished.
    pub done: SimTime,
    /// What the processing was.
    pub kind: OutcomeKind,
    /// Bytes the operation put on the wire.
    pub wire_bytes: usize,
    /// Fabric latency charged for the operation.
    pub transmission: SimDuration,
    /// Lookup / dispatch overhead charged.
    pub lookup: SimDuration,
    /// JIT compilation time charged (zero unless this was a first arrival of
    /// a bitcode ifunc).
    pub jit: SimDuration,
    /// Binary-load time charged (zero unless this was a first arrival of a
    /// binary ifunc).
    pub binary_load: SimDuration,
    /// Execution time charged for the kernel itself.
    pub exec: SimDuration,
}

impl DeliveryRecord {
    /// Total target-side processing time (lookup + JIT + load + exec).
    pub fn processing(&self) -> SimDuration {
        self.lookup + self.jit + self.binary_load + self.exec
    }

    /// End-to-end time for this operation (transmission + processing).
    pub fn end_to_end(&self) -> SimDuration {
        self.transmission + self.processing()
    }
}

/// The accumulated log of all deliveries in a simulation.
#[derive(Debug, Default, Clone)]
pub struct TimingLog {
    /// Records in processing order.
    pub records: Vec<DeliveryRecord>,
}

impl TimingLog {
    /// Records matching a predicate.
    pub fn matching<'a>(
        &'a self,
        mut pred: impl FnMut(&DeliveryRecord) -> bool + 'a,
    ) -> impl Iterator<Item = &'a DeliveryRecord> + 'a {
        self.records.iter().filter(move |r| pred(r))
    }

    /// The most recent record of a given outcome kind.
    pub fn last_of_kind(&self, kind: OutcomeKind) -> Option<&DeliveryRecord> {
        self.records.iter().rev().find(|r| r.kind == kind)
    }
}

#[derive(Debug)]
struct InFlight {
    msg: OutgoingMessage,
    transmission: SimDuration,
    wire_bytes: usize,
}

/// The timed cluster simulation.
pub struct ClusterSim {
    platform: Platform,
    nodes: Vec<NodeRuntime>,
    queue: EventQueue<InFlight>,
    /// Earliest time each node's CPU is free to process the next arrival.
    node_ready_at: Vec<SimTime>,
    /// Earliest time each node's fabric injection port is free.
    link_ready_at: Vec<SimTime>,
    /// Timing log of every processed delivery.
    pub timings: TimingLog,
    opt_cost_factor: f64,
    errors: Vec<crate::error::CoreError>,
}

impl std::fmt::Debug for ClusterSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSim")
            .field("platform", &self.platform.name)
            .field("nodes", &self.nodes.len())
            .field("now", &self.queue.now())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

impl ClusterSim {
    /// Create a simulation with one client (rank 0) and `servers` server
    /// nodes (ranks 1..=servers) on the given platform.
    pub fn new(platform: Platform, servers: usize) -> Self {
        let total = servers + 1;
        let client_triple = TargetTriple::parse(platform.client_triple)
            .unwrap_or(TargetTriple::X86_64_GENERIC);
        let server_triple = TargetTriple::parse(platform.server_triple)
            .unwrap_or(TargetTriple::AARCH64_GENERIC);
        let nodes = (0..total)
            .map(|i| {
                let triple = if i == 0 { client_triple } else { server_triple };
                NodeRuntime::new(WorkerAddr(i as u32), total as u32, triple)
            })
            .collect();
        ClusterSim {
            platform,
            nodes,
            queue: EventQueue::new(),
            node_ready_at: vec![SimTime::ZERO; total],
            link_ready_at: vec![SimTime::ZERO; total],
            timings: TimingLog::default(),
            opt_cost_factor: OptLevel::O2.compile_cost_factor(),
            errors: Vec::new(),
        }
    }

    /// The platform this simulation models.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Number of nodes (client + servers).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of server nodes.
    pub fn server_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Errors collected from node runtimes during event processing.
    pub fn errors(&self) -> &[crate::error::CoreError] {
        &self.errors
    }

    /// Access a node runtime (0 = client).
    pub fn node(&self, rank: usize) -> &NodeRuntime {
        &self.nodes[rank]
    }

    /// Mutable access to a node runtime (0 = client).
    pub fn node_mut(&mut self, rank: usize) -> &mut NodeRuntime {
        &mut self.nodes[rank]
    }

    /// The client runtime.
    pub fn client(&self) -> &NodeRuntime {
        &self.nodes[0]
    }

    /// Mutable client runtime.
    pub fn client_mut(&mut self) -> &mut NodeRuntime {
        &mut self.nodes[0]
    }

    /// Register an ifunc library on the client, returning its handle.
    pub fn register_on_client(&mut self, library: IfuncLibrary) -> IfuncHandle {
        self.nodes[0].register_library(library)
    }

    /// Predeploy a native Active-Message handler on every node (the AM
    /// baseline requires code presence everywhere).
    pub fn deploy_am_everywhere(&mut self, name: &str, handler: NativeAmHandler) {
        for node in &mut self.nodes {
            node.deploy_am_handler(name.to_string(), handler.clone());
        }
    }

    /// Send an ifunc message from the client to server rank `dst`.
    pub fn client_send_ifunc(&mut self, message: &IfuncMessage, dst: usize) -> usize {
        let bytes = self.nodes[0].send_ifunc(message, WorkerAddr(dst as u32));
        self.flush_node(0);
        bytes
    }

    /// Send an Active Message from the client to server rank `dst`.
    pub fn client_send_am(&mut self, handler: &str, dst: usize, payload: Vec<u8>) -> Result<usize> {
        let size = self.nodes[0].send_am(handler, WorkerAddr(dst as u32), payload)?;
        self.flush_node(0);
        Ok(size)
    }

    /// Post a GET from the client against server rank `dst`.
    pub fn client_get(&mut self, dst: usize, addr: u64, len: u64) -> RequestId {
        let req = self.nodes[0].post_get(WorkerAddr(dst as u32), addr, len);
        self.flush_node(0);
        req
    }

    /// Post a PUT from the client against server rank `dst`.
    pub fn client_put(&mut self, dst: usize, addr: u64, data: Vec<u8>) -> RequestId {
        let req = self.nodes[0].post_put(WorkerAddr(dst as u32), addr, data);
        self.flush_node(0);
        req
    }

    /// Run until the event queue drains or `max_events` have been processed.
    /// Returns the virtual time at the end.
    pub fn run_until_idle(&mut self, max_events: u64) -> SimTime {
        let mut processed = 0u64;
        while processed < max_events {
            if !self.step() {
                break;
            }
            processed += 1;
        }
        self.queue.now()
    }

    /// Run until the client has accumulated `count` completions (GET results
    /// or X-RDMA results), the queue drains, or `max_events` is exceeded.
    /// Returns the completions collected (possibly fewer than requested).
    pub fn run_until_client_completions(
        &mut self,
        count: usize,
        max_events: u64,
    ) -> Vec<Completion> {
        let mut collected = Vec::new();
        collected.extend(self.nodes[0].take_completions());
        let mut processed = 0u64;
        while collected.len() < count && processed < max_events {
            if !self.step() {
                break;
            }
            processed += 1;
            collected.extend(self.nodes[0].take_completions());
        }
        collected
    }

    /// Process a single event.  Returns false when the queue is empty.
    fn step(&mut self) -> bool {
        let Some((arrival, inflight)) = self.queue.pop() else {
            return false;
        };
        let InFlight {
            msg,
            transmission,
            wire_bytes,
        } = inflight;
        let dst = msg.dst.index();
        if dst >= self.nodes.len() {
            return true; // misaddressed message: dropped
        }
        self.nodes[dst].deliver(msg);

        // The destination CPU picks the message up when it is free.
        let start = self.node_ready_at[dst].max(arrival);
        let outcomes = self.nodes[dst].poll(usize::MAX);
        let mut finish = start;
        for outcome in outcomes {
            match outcome {
                Ok(o) => {
                    let record = self.charge(dst, arrival, finish, transmission, wire_bytes, &o);
                    finish = record.done;
                    self.timings.records.push(record);
                }
                Err(e) => self.errors.push(e),
            }
        }
        self.node_ready_at[dst] = finish;
        // Whatever the processing posted departs after processing completes.
        self.flush_node_at(dst, finish);
        true
    }

    /// Convert a processing outcome into charged virtual time.
    fn charge(
        &self,
        node: usize,
        arrival: SimTime,
        start: SimTime,
        transmission: SimDuration,
        wire_bytes: usize,
        outcome: &ProcessOutcome,
    ) -> DeliveryRecord {
        let cpu = if node == 0 {
            self.platform.client_cpu
        } else {
            self.platform.server_cpu
        };
        let (lookup, jit, binary_load) = match outcome.kind {
            OutcomeKind::AmExecuted => (cpu.am_dispatch(), SimDuration::ZERO, SimDuration::ZERO),
            OutcomeKind::IfuncExecutedCached => {
                (cpu.cached_lookup(), SimDuration::ZERO, SimDuration::ZERO)
            }
            OutcomeKind::IfuncExecutedFirstArrival => {
                let jit = outcome
                    .jit_bitcode_bytes
                    .map(|b| cpu.jit_time(b, self.opt_cost_factor))
                    .unwrap_or(SimDuration::ZERO);
                let load = if outcome.binary_loaded {
                    cpu.binary_load()
                } else {
                    SimDuration::ZERO
                };
                (cpu.uncached_lookup(), jit, load)
            }
            // Pure data-path operations: a small fixed handling cost.
            _ => (SimDuration::from_nanos(20), SimDuration::ZERO, SimDuration::ZERO),
        };
        let exec = cpu.exec_time(outcome.exec_cycles);
        let done = start + lookup + jit + binary_load + exec;
        DeliveryRecord {
            node: node as u32,
            arrival,
            done,
            kind: outcome.kind,
            wire_bytes,
            transmission,
            lookup,
            jit,
            binary_load,
            exec,
        }
    }

    /// Pick up everything node `rank` has posted and schedule its delivery,
    /// assuming the sends are issued "now".
    fn flush_node(&mut self, rank: usize) {
        self.flush_node_at(rank, self.queue.now());
    }

    fn flush_node_at(&mut self, rank: usize, earliest: SimTime) {
        let outgoing = self.nodes[rank].take_outgoing();
        for msg in outgoing {
            let wire_bytes = msg.op.wire_size();
            let class = match &msg.op {
                UcpOp::Get { .. } => FabricOp::Get,
                UcpOp::ActiveMessage { .. } => FabricOp::ActiveMessage,
                _ => FabricOp::Put,
            };
            let fabric = self.platform.fabric;
            let gap = fabric.injection_gap(class, wire_bytes);
            let latency = fabric.latency(class, wire_bytes);
            let depart = self.link_ready_at[rank].max(earliest);
            self.link_ready_at[rank] = depart + gap;
            let arrival = depart + latency;
            self.queue.schedule_at(
                arrival,
                InFlight {
                    msg,
                    transmission: latency,
                    wire_bytes,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ifunc::{build_ifunc_library, ToolchainOptions};
    use crate::layout::TARGET_REGION_BASE;
    use std::sync::Arc;
    use tc_bitir::{BinOp, Module, ModuleBuilder, ScalarType};
    use tc_jit::MemoryExt;

    fn tsi_module() -> Module {
        let mut mb = ModuleBuilder::new("tsi");
        {
            let mut f = mb.entry_function();
            let payload = f.param(0);
            let target = f.param(2);
            let delta = f.load(ScalarType::U8, payload, 0);
            let counter = f.load(ScalarType::U64, target, 0);
            let sum = f.bin(BinOp::Add, ScalarType::U64, counter, delta);
            f.store(ScalarType::U64, sum, target, 0);
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        mb.build()
    }

    fn sim_with_tsi(platform: Platform, servers: usize) -> (ClusterSim, IfuncHandle) {
        let mut sim = ClusterSim::new(platform, servers);
        let lib = build_ifunc_library(&tsi_module(), &ToolchainOptions::default()).unwrap();
        let handle = sim.register_on_client(lib);
        (sim, handle)
    }

    #[test]
    fn uncached_then_cached_latency_shape_matches_paper() {
        let (mut sim, handle) = sim_with_tsi(Platform::thor_xeon(), 1);
        sim.node_mut(1).memory.write_u64(TARGET_REGION_BASE, 0).unwrap();
        let msg = sim.client_mut().create_bitcode_message(handle, vec![1]).unwrap();

        // First (uncached) send: transmission of the full frame + JIT.
        sim.client_send_ifunc(&msg, 1);
        sim.run_until_idle(1_000);
        let first = *sim
            .timings
            .last_of_kind(OutcomeKind::IfuncExecutedFirstArrival)
            .expect("first arrival record");
        assert!(first.jit.as_millis_f64() > 0.3, "JIT time {:?}", first.jit);
        assert!(first.transmission.as_micros_f64() > 2.0);

        // Second (cached) send: truncated frame, no JIT, µs-scale end-to-end.
        sim.client_send_ifunc(&msg, 1);
        sim.run_until_idle(1_000);
        let cached = *sim
            .timings
            .last_of_kind(OutcomeKind::IfuncExecutedCached)
            .expect("cached record");
        assert_eq!(cached.jit, SimDuration::ZERO);
        assert!(cached.transmission < first.transmission);
        assert!(cached.end_to_end().as_micros_f64() < 3.0);
        // Both sends actually incremented the counter.
        assert_eq!(sim.node(1).memory.read_u64(TARGET_REGION_BASE).unwrap(), 2);
    }

    #[test]
    fn injection_gap_bounds_message_rate() {
        let (mut sim, handle) = sim_with_tsi(Platform::thor_xeon(), 1);
        let msg = sim.client_mut().create_bitcode_message(handle, vec![1]).unwrap();
        // Prime the cache.
        sim.client_send_ifunc(&msg, 1);
        sim.run_until_idle(1_000);
        let start = sim.now();

        let n = 200usize;
        for _ in 0..n {
            sim.client_send_ifunc(&msg, 1);
        }
        sim.run_until_idle(100_000);
        let elapsed = (sim.now() - start).as_secs_f64();
        let rate = n as f64 / elapsed;
        // Thor Xeon cached-bitcode rate is ~7.3 M msg/s in the paper; the
        // pipelined rate here must land in the right order of magnitude
        // (latency would only allow ~0.65 M/s, so this also checks that the
        // gap — not the latency — is what bounds throughput).
        assert!(rate > 2.0e6, "rate {rate}");
        assert!(rate < 20.0e6, "rate {rate}");
    }

    #[test]
    fn am_baseline_runs_through_the_simulator() {
        let (mut sim, _handle) = sim_with_tsi(Platform::thor_bf2(), 2);
        let handler: NativeAmHandler = Arc::new(|ctx, payload| {
            let delta = u64::from(payload.first().copied().unwrap_or(0));
            let old = ctx.memory.read_u64(TARGET_REGION_BASE).unwrap_or(0);
            let _ = ctx.memory.write_u64(TARGET_REGION_BASE, old + delta);
            25
        });
        sim.deploy_am_everywhere("tsi_am", handler);
        sim.client_send_am("tsi_am", 2, vec![9]).unwrap();
        sim.run_until_idle(100);
        assert_eq!(sim.node(2).memory.read_u64(TARGET_REGION_BASE).unwrap(), 9);
        let rec = sim.timings.last_of_kind(OutcomeKind::AmExecuted).unwrap();
        assert!(rec.end_to_end().as_micros_f64() < 3.0);
        assert!(sim.errors().is_empty());
    }

    #[test]
    fn get_roundtrip_latency_is_two_transfers() {
        let (mut sim, _handle) = sim_with_tsi(Platform::thor_xeon(), 1);
        sim.node_mut(1)
            .memory
            .write_u64(crate::layout::DATA_REGION_BASE, 777)
            .unwrap();
        let start = sim.now();
        sim.client_get(1, crate::layout::DATA_REGION_BASE, 8);
        let completions = sim.run_until_client_completions(1, 10_000);
        assert_eq!(completions.len(), 1);
        let rtt = (sim.now() - start).as_micros_f64();
        // One GET + one reply over a ~1.5 µs fabric: 3–4 µs round trip.
        assert!(rtt > 2.5 && rtt < 6.0, "rtt {rtt}");
    }

    #[test]
    fn heterogeneous_platform_jit_is_slower_on_dpu() {
        let (mut sim_bf2, h1) = sim_with_tsi(Platform::thor_bf2(), 1);
        let msg = sim_bf2.client_mut().create_bitcode_message(h1, vec![1]).unwrap();
        sim_bf2.client_send_ifunc(&msg, 1);
        sim_bf2.run_until_idle(1_000);
        let bf2_jit = sim_bf2
            .timings
            .last_of_kind(OutcomeKind::IfuncExecutedFirstArrival)
            .unwrap()
            .jit;

        let (mut sim_xeon, h2) = sim_with_tsi(Platform::thor_xeon(), 1);
        let msg = sim_xeon.client_mut().create_bitcode_message(h2, vec![1]).unwrap();
        sim_xeon.client_send_ifunc(&msg, 1);
        sim_xeon.run_until_idle(1_000);
        let xeon_jit = sim_xeon
            .timings
            .last_of_kind(OutcomeKind::IfuncExecutedFirstArrival)
            .unwrap()
            .jit;

        assert!(
            bf2_jit.as_nanos() > 3 * xeon_jit.as_nanos(),
            "DPU JIT ({bf2_jit}) must be several times slower than Xeon JIT ({xeon_jit})"
        );
    }

    #[test]
    fn misaddressed_messages_are_dropped_without_panic() {
        let (mut sim, handle) = sim_with_tsi(Platform::ookami(), 1);
        let msg = sim.client_mut().create_bitcode_message(handle, vec![1]).unwrap();
        sim.client_send_ifunc(&msg, 17); // no such rank
        sim.run_until_idle(100);
        assert!(sim.errors().is_empty());
        assert_eq!(sim.node(1).stats.ifuncs_executed, 0);
    }
}
