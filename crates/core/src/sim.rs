//! Timing records and the classic [`ClusterSim`] facade over the simulated
//! backend of the cluster API.
//!
//! The discrete-event engine itself lives in
//! [`crate::cluster::SimTransport`]; this module keeps:
//!
//! * [`DeliveryRecord`] / [`TimingLog`] — one record per
//!   delivered-and-processed fabric operation, decomposed the way the paper
//!   decomposes end-to-end latency (transmission / lookup / JIT / execution);
//! * [`ClusterSim`] — a thin convenience wrapper over
//!   [`Cluster<SimTransport>`](crate::cluster::Cluster) preserving the
//!   original simulation-first API (`client_send_ifunc`, `run_until_idle`,
//!   direct node access) used throughout the workloads and the benchmark
//!   harness.

use crate::cluster::{Cluster, ClusterBuilder, SimTransport};
use crate::error::Result;
use crate::ifunc::{IfuncHandle, IfuncLibrary, IfuncMessage};
use crate::metrics::OutcomeKind;
use crate::runtime::{Completion, NativeAmHandler, NodeRuntime};
use tc_simnet::{Platform, SimDuration, SimTime};
use tc_ucx::RequestId;

/// One record per delivered-and-processed fabric operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeliveryRecord {
    /// Node that processed the operation.
    pub node: u32,
    /// Virtual time at which the operation arrived.
    pub arrival: SimTime,
    /// Virtual time at which processing finished.
    pub done: SimTime,
    /// What the processing was.
    pub kind: OutcomeKind,
    /// Bytes the operation put on the wire.
    pub wire_bytes: usize,
    /// Fabric latency charged for the operation.
    pub transmission: SimDuration,
    /// Lookup / dispatch overhead charged.
    pub lookup: SimDuration,
    /// JIT compilation time charged (zero unless this was a first arrival of
    /// a bitcode ifunc).
    pub jit: SimDuration,
    /// Binary-load time charged (zero unless this was a first arrival of a
    /// binary ifunc).
    pub binary_load: SimDuration,
    /// Execution time charged for the kernel itself.
    pub exec: SimDuration,
}

impl DeliveryRecord {
    /// Total target-side processing time (lookup + JIT + load + exec).
    pub fn processing(&self) -> SimDuration {
        self.lookup + self.jit + self.binary_load + self.exec
    }

    /// End-to-end time for this operation (transmission + processing).
    pub fn end_to_end(&self) -> SimDuration {
        self.transmission + self.processing()
    }
}

/// The accumulated log of all deliveries in a simulation.
#[derive(Debug, Default, Clone)]
pub struct TimingLog {
    /// Records in processing order.
    pub records: Vec<DeliveryRecord>,
}

impl TimingLog {
    /// Records matching a predicate.
    pub fn matching<'a>(
        &'a self,
        mut pred: impl FnMut(&DeliveryRecord) -> bool + 'a,
    ) -> impl Iterator<Item = &'a DeliveryRecord> + 'a {
        self.records.iter().filter(move |r| pred(r))
    }

    /// The most recent record of a given outcome kind.
    pub fn last_of_kind(&self, kind: OutcomeKind) -> Option<&DeliveryRecord> {
        self.records.iter().rev().find(|r| r.kind == kind)
    }
}

/// The timed cluster simulation: a thin wrapper over
/// [`Cluster<SimTransport>`](crate::cluster::Cluster) with the original
/// simulation-first method names.
pub struct ClusterSim {
    inner: Cluster<SimTransport>,
}

impl std::fmt::Debug for ClusterSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSim")
            .field("platform", &self.platform().name)
            .field("nodes", &self.node_count())
            .field("now", &self.now())
            .finish()
    }
}

impl ClusterSim {
    /// Create a simulation with one client (rank 0) and `servers` server
    /// nodes (ranks 1..=servers) on the given platform.
    pub fn new(platform: Platform, servers: usize) -> Self {
        ClusterSim {
            inner: ClusterBuilder::new()
                .platform(platform)
                .servers(servers)
                .build_sim(),
        }
    }

    /// View this simulation as the unified cluster API.
    pub fn cluster(&self) -> &Cluster<SimTransport> {
        &self.inner
    }

    /// Mutable view as the unified cluster API.
    pub fn cluster_mut(&mut self) -> &mut Cluster<SimTransport> {
        &mut self.inner
    }

    /// The platform this simulation models.
    pub fn platform(&self) -> &Platform {
        self.inner.transport().platform()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.transport().now()
    }

    /// Timing log of every processed delivery.
    pub fn timings(&self) -> &TimingLog {
        self.inner.transport().timings()
    }

    /// Number of nodes (client + servers).
    pub fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    /// Number of server nodes.
    pub fn server_count(&self) -> usize {
        self.inner.server_count()
    }

    /// Errors collected from node runtimes during event processing.
    pub fn errors(&self) -> &[crate::error::CoreError] {
        self.inner.transport().errors()
    }

    /// Access a node runtime (0 = client).
    pub fn node(&self, rank: usize) -> &NodeRuntime {
        self.inner.transport().node(rank)
    }

    /// Mutable access to a node runtime (0 = client).
    pub fn node_mut(&mut self, rank: usize) -> &mut NodeRuntime {
        self.inner.transport_mut().node_mut(rank)
    }

    /// The client runtime.  (The simulated backend owns its runtimes on the
    /// driving thread, so this is a plain borrow, not a cross-thread guard.)
    pub fn client(&self) -> &NodeRuntime {
        self.inner.transport().node(0)
    }

    /// Mutable client runtime.
    pub fn client_mut(&mut self) -> &mut NodeRuntime {
        self.inner.transport_mut().node_mut(0)
    }

    /// Register an ifunc library on the client, returning its handle.
    pub fn register_on_client(&mut self, library: IfuncLibrary) -> IfuncHandle {
        self.inner.register_ifunc(library)
    }

    /// Predeploy a native Active-Message handler on every node (the AM
    /// baseline requires code presence everywhere).
    pub fn deploy_am_everywhere(&mut self, name: &str, handler: NativeAmHandler) {
        self.inner
            .deploy_am(name, handler)
            .expect("AM deployment on the simulated backend cannot fail");
    }

    /// Send an ifunc message from the client to server rank `dst`.
    pub fn client_send_ifunc(&mut self, message: &IfuncMessage, dst: usize) -> usize {
        self.inner
            .send_ifunc(message, dst)
            .expect("simulated sends cannot fail")
    }

    /// Send an Active Message from the client to server rank `dst`.
    pub fn client_send_am(
        &mut self,
        handler: &str,
        dst: usize,
        payload: impl Into<tc_ucx::Bytes>,
    ) -> Result<usize> {
        self.inner.send_am(handler, dst, payload)
    }

    /// Post a GET from the client against server rank `dst`.
    pub fn client_get(&mut self, dst: usize, addr: u64, len: u64) -> RequestId {
        self.inner
            .get(dst, addr, len)
            .expect("simulated GETs cannot fail to post")
            .request()
    }

    /// Post a PUT from the client against server rank `dst`.  A
    /// [`tc_ucx::Bytes`] argument is posted zero-copy.
    pub fn client_put(
        &mut self,
        dst: usize,
        addr: u64,
        data: impl Into<tc_ucx::Bytes>,
    ) -> RequestId {
        self.inner
            .put(dst, addr, data)
            .expect("simulated puts cannot fail")
    }

    /// Run until the event queue drains or `max_events` have been processed.
    /// Returns the virtual time at the end.
    pub fn run_until_idle(&mut self, max_events: u64) -> SimTime {
        self.inner
            .run_until_idle(max_events)
            .expect("simulated stepping cannot fail");
        self.now()
    }

    /// Run until the client has accumulated `count` completions (GET results
    /// or X-RDMA results), the queue drains, or `max_events` is exceeded.
    /// Returns the completions collected (possibly fewer than requested).
    pub fn run_until_client_completions(
        &mut self,
        count: usize,
        max_events: u64,
    ) -> Vec<Completion> {
        self.inner
            .run_until_completions(count, max_events)
            .expect("simulated stepping cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ifunc::{build_ifunc_library, ToolchainOptions};
    use crate::layout::TARGET_REGION_BASE;
    use std::sync::Arc;
    use tc_bitir::{BinOp, Module, ModuleBuilder, ScalarType};
    use tc_jit::MemoryExt;

    fn tsi_module() -> Module {
        let mut mb = ModuleBuilder::new("tsi");
        {
            let mut f = mb.entry_function();
            let payload = f.param(0);
            let target = f.param(2);
            let delta = f.load(ScalarType::U8, payload, 0);
            let counter = f.load(ScalarType::U64, target, 0);
            let sum = f.bin(BinOp::Add, ScalarType::U64, counter, delta);
            f.store(ScalarType::U64, sum, target, 0);
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        mb.build()
    }

    fn sim_with_tsi(platform: Platform, servers: usize) -> (ClusterSim, IfuncHandle) {
        let mut sim = ClusterSim::new(platform, servers);
        let lib = build_ifunc_library(&tsi_module(), &ToolchainOptions::default()).unwrap();
        let handle = sim.register_on_client(lib);
        (sim, handle)
    }

    #[test]
    fn uncached_then_cached_latency_shape_matches_paper() {
        let (mut sim, handle) = sim_with_tsi(Platform::thor_xeon(), 1);
        sim.node_mut(1)
            .memory
            .write_u64(TARGET_REGION_BASE, 0)
            .unwrap();
        let msg = sim
            .client_mut()
            .create_bitcode_message(handle, vec![1])
            .unwrap();

        // First (uncached) send: transmission of the full frame + JIT.
        sim.client_send_ifunc(&msg, 1);
        sim.run_until_idle(1_000);
        let first = *sim
            .timings()
            .last_of_kind(OutcomeKind::IfuncExecutedFirstArrival)
            .expect("first arrival record");
        assert!(first.jit.as_millis_f64() > 0.3, "JIT time {:?}", first.jit);
        assert!(first.transmission.as_micros_f64() > 2.0);

        // Second (cached) send: truncated frame, no JIT, µs-scale end-to-end.
        sim.client_send_ifunc(&msg, 1);
        sim.run_until_idle(1_000);
        let cached = *sim
            .timings()
            .last_of_kind(OutcomeKind::IfuncExecutedCached)
            .expect("cached record");
        assert_eq!(cached.jit, SimDuration::ZERO);
        assert!(cached.transmission < first.transmission);
        assert!(cached.end_to_end().as_micros_f64() < 3.0);
        // Both sends actually incremented the counter.
        assert_eq!(sim.node(1).memory.read_u64(TARGET_REGION_BASE).unwrap(), 2);
    }

    #[test]
    fn injection_gap_bounds_message_rate() {
        let (mut sim, handle) = sim_with_tsi(Platform::thor_xeon(), 1);
        let msg = sim
            .client_mut()
            .create_bitcode_message(handle, vec![1])
            .unwrap();
        // Prime the cache.
        sim.client_send_ifunc(&msg, 1);
        sim.run_until_idle(1_000);
        let start = sim.now();

        let n = 200usize;
        for _ in 0..n {
            sim.client_send_ifunc(&msg, 1);
        }
        sim.run_until_idle(100_000);
        let elapsed = (sim.now() - start).as_secs_f64();
        let rate = n as f64 / elapsed;
        // Thor Xeon cached-bitcode rate is ~7.3 M msg/s in the paper; the
        // pipelined rate here must land in the right order of magnitude
        // (latency would only allow ~0.65 M/s, so this also checks that the
        // gap — not the latency — is what bounds throughput).
        assert!(rate > 2.0e6, "rate {rate}");
        assert!(rate < 20.0e6, "rate {rate}");
    }

    #[test]
    fn am_baseline_runs_through_the_simulator() {
        let (mut sim, _handle) = sim_with_tsi(Platform::thor_bf2(), 2);
        let handler: NativeAmHandler = Arc::new(|ctx, payload| {
            let delta = u64::from(payload.first().copied().unwrap_or(0));
            let old = ctx.memory.read_u64(TARGET_REGION_BASE).unwrap_or(0);
            let _ = ctx.memory.write_u64(TARGET_REGION_BASE, old + delta);
            25
        });
        sim.deploy_am_everywhere("tsi_am", handler);
        sim.client_send_am("tsi_am", 2, vec![9]).unwrap();
        sim.run_until_idle(100);
        assert_eq!(sim.node(2).memory.read_u64(TARGET_REGION_BASE).unwrap(), 9);
        let rec = sim.timings().last_of_kind(OutcomeKind::AmExecuted).unwrap();
        assert!(rec.end_to_end().as_micros_f64() < 3.0);
        assert!(sim.errors().is_empty());
    }

    #[test]
    fn get_roundtrip_latency_is_two_transfers() {
        let (mut sim, _handle) = sim_with_tsi(Platform::thor_xeon(), 1);
        sim.node_mut(1)
            .memory
            .write_u64(crate::layout::DATA_REGION_BASE, 777)
            .unwrap();
        let start = sim.now();
        sim.client_get(1, crate::layout::DATA_REGION_BASE, 8);
        let completions = sim.run_until_client_completions(1, 10_000);
        assert_eq!(completions.len(), 1);
        let rtt = (sim.now() - start).as_micros_f64();
        // One GET + one reply over a ~1.5 µs fabric: 3–4 µs round trip.
        assert!(rtt > 2.5 && rtt < 6.0, "rtt {rtt}");
    }

    #[test]
    fn heterogeneous_platform_jit_is_slower_on_dpu() {
        let (mut sim_bf2, h1) = sim_with_tsi(Platform::thor_bf2(), 1);
        let msg = sim_bf2
            .client_mut()
            .create_bitcode_message(h1, vec![1])
            .unwrap();
        sim_bf2.client_send_ifunc(&msg, 1);
        sim_bf2.run_until_idle(1_000);
        let bf2_jit = sim_bf2
            .timings()
            .last_of_kind(OutcomeKind::IfuncExecutedFirstArrival)
            .unwrap()
            .jit;

        let (mut sim_xeon, h2) = sim_with_tsi(Platform::thor_xeon(), 1);
        let msg = sim_xeon
            .client_mut()
            .create_bitcode_message(h2, vec![1])
            .unwrap();
        sim_xeon.client_send_ifunc(&msg, 1);
        sim_xeon.run_until_idle(1_000);
        let xeon_jit = sim_xeon
            .timings()
            .last_of_kind(OutcomeKind::IfuncExecutedFirstArrival)
            .unwrap()
            .jit;

        assert!(
            bf2_jit.as_nanos() > 3 * xeon_jit.as_nanos(),
            "DPU JIT ({bf2_jit}) must be several times slower than Xeon JIT ({xeon_jit})"
        );
    }

    #[test]
    fn misaddressed_messages_are_dropped_without_panic() {
        let (mut sim, handle) = sim_with_tsi(Platform::ookami(), 1);
        let msg = sim
            .client_mut()
            .create_bitcode_message(handle, vec![1])
            .unwrap();
        sim.client_send_ifunc(&msg, 17); // no such rank
        sim.run_until_idle(100);
        assert!(sim.errors().is_empty());
        assert_eq!(sim.node(1).stats.ifuncs_executed, 0);
        // The drop is visible in the transport metrics, not silent.
        assert_eq!(sim.cluster().metrics().messages_dropped, 1);
    }
}
