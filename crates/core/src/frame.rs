//! Ifunc message frames.
//!
//! The wire layout follows Figures 2 and 3 of the paper: a fixed HEADER, the
//! user PAYLOAD, a MAGIC delimiter, then the code section (BINARY for binary
//! ifuncs, BITCODE + DEPS for bitcode ifuncs) and a trailing MAGIC.  The
//! caching protocol exploits the layout: the frame is always *constructed* in
//! full, but when the sender knows the target has already registered this
//! ifunc type it simply transmits a prefix of the frame that stops after the
//! first MAGIC — "we control what to send by simply passing different message
//! size arguments to the UCP PUT interface".  The receiver decides how to
//! interpret what arrived by checking its own registration table, not by
//! trusting the sender.

use crate::error::{CoreError, Result};
use tc_ucx::{BufPool, Bytes};

/// The MAGIC delimiter bytes (one before the code section, one after it).
pub const FRAME_MAGIC: [u8; 4] = *b"3CMG";
/// Frame format version.
pub const FRAME_VERSION: u8 = 2;

/// Code representation carried by a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeRepr {
    /// LLVM-bitcode-analogue (fat-bitcode archive).
    Bitcode,
    /// Pre-compiled machine code (ELF-like object).
    Binary,
}

impl CodeRepr {
    /// Stable tag for serialization.
    pub fn tag(self) -> u8 {
        match self {
            CodeRepr::Bitcode => 0,
            CodeRepr::Binary => 1,
        }
    }

    /// Inverse of [`CodeRepr::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(CodeRepr::Bitcode),
            1 => Some(CodeRepr::Binary),
            _ => None,
        }
    }

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            CodeRepr::Bitcode => "bitcode",
            CodeRepr::Binary => "binary",
        }
    }
}

/// A fully materialised ifunc message frame.
///
/// The user creates one per logical message; it is never modified by sending
/// (so it can be re-sent to other endpoints), and the caching layer chooses
/// how much of its encoding actually travels.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageFrame {
    /// Ifunc library name (the registration key).
    pub ifunc_name: String,
    /// Code representation of the code section.
    pub repr: CodeRepr,
    /// User payload handed to the ifunc entry function on the target.
    pub payload: Bytes,
    /// Encoded code section (fat-bitcode archive or binary object bytes).
    /// A shared view: constructing frames from a library or a received
    /// frame copies nothing.
    pub code: Bytes,
    /// Shared-library dependency names (bitcode frames only; binary objects
    /// embed their own dependency list).
    pub deps: Vec<String>,
}

impl MessageFrame {
    /// Construct a frame.
    pub fn new(
        ifunc_name: impl Into<String>,
        repr: CodeRepr,
        payload: impl Into<Bytes>,
        code: impl Into<Bytes>,
        deps: Vec<String>,
    ) -> Self {
        MessageFrame {
            ifunc_name: ifunc_name.into(),
            repr,
            payload: payload.into(),
            code: code.into(),
            deps,
        }
    }

    fn header_size(&self) -> usize {
        // version + repr + name len + name + payload len + code len + deps
        // count.
        1 + 1 + 2 + self.ifunc_name.len() + 4 + 4 + 2
    }

    fn write_header(&self, w: &mut tc_ucx::PoolWriter) {
        w.put_u8(FRAME_VERSION);
        w.put_u8(self.repr.tag());
        let name = self.ifunc_name.as_bytes();
        w.put_u16_le(name.len() as u16);
        w.put_slice(name);
        w.put_u32_le(self.payload.len() as u32);
        w.put_u32_le(self.code.len() as u32);
        w.put_u16_le(self.deps.len() as u16);
    }

    /// Encode the *full* frame into a pooled buffer:
    /// HEADER | PAYLOAD | MAGIC | CODE | DEPS | MAGIC.
    pub fn encode_full_with(&self, pool: &mut BufPool) -> Bytes {
        let mut w = pool.acquire(self.full_size());
        self.write_header(&mut w);
        w.put_slice(&self.payload);
        w.put_slice(&FRAME_MAGIC);
        w.put_slice(&self.code);
        for d in &self.deps {
            let b = d.as_bytes();
            w.put_u16_le(b.len() as u16);
            w.put_slice(b);
        }
        w.put_slice(&FRAME_MAGIC);
        w.freeze(pool)
    }

    /// Encode the *truncated* frame into a pooled buffer: everything up to
    /// and including the first MAGIC — sent when the target has already
    /// cached this ifunc type, so the code section and trailer are elided.
    pub fn encode_truncated_with(&self, pool: &mut BufPool) -> Bytes {
        let mut w = pool.acquire(self.truncated_size());
        self.write_header(&mut w);
        w.put_slice(&self.payload);
        w.put_slice(&FRAME_MAGIC);
        w.freeze(pool)
    }

    /// Encode the full frame with this thread's encode pool.
    pub fn encode_full(&self) -> Bytes {
        tc_ucx::bytes::with_pool(|pool| self.encode_full_with(pool))
    }

    /// Encode the truncated frame with this thread's encode pool.
    pub fn encode_truncated(&self) -> Bytes {
        tc_ucx::bytes::with_pool(|pool| self.encode_truncated_with(pool))
    }

    /// Size in bytes of the full encoding (computed, not materialised).
    pub fn full_size(&self) -> usize {
        self.truncated_size()
            + self.code.len()
            + self.deps.iter().map(|d| 2 + d.len()).sum::<usize>()
            + FRAME_MAGIC.len()
    }

    /// Size in bytes of the truncated encoding (computed, not materialised).
    pub fn truncated_size(&self) -> usize {
        self.header_size() + self.payload.len() + FRAME_MAGIC.len()
    }

    /// Decode a frame from a borrowed slice.  The payload and code of the
    /// returned [`DecodedFrame`] are copied out of `bytes` (one copy each);
    /// prefer [`MessageFrame::decode_view`] on the receive path, which
    /// borrows sub-views of the shared buffer and copies nothing.
    pub fn decode(bytes: &[u8]) -> Result<DecodedFrame> {
        let layout = FrameLayout::parse(bytes)?;
        Ok(DecodedFrame {
            ifunc_name: layout.ifunc_name,
            repr: layout.repr,
            payload: Bytes::copy_from_slice(&bytes[layout.payload]),
            code: layout.code.map(|r| Bytes::copy_from_slice(&bytes[r])),
            deps: layout.deps,
        })
    }

    /// Decode a frame as zero-copy views into a shared receive buffer: the
    /// payload and code sections of the result alias `bytes`' allocation.
    pub fn decode_view(bytes: &Bytes) -> Result<DecodedFrame> {
        let layout = FrameLayout::parse(bytes)?;
        Ok(DecodedFrame {
            ifunc_name: layout.ifunc_name,
            repr: layout.repr,
            payload: bytes.slice(layout.payload),
            code: layout.code.map(|r| bytes.slice(r)),
            deps: layout.deps,
        })
    }
}

/// Parsed offsets of one encoded frame: byte ranges for the bulk sections,
/// decoded values for the small ones.  Computed once; both the copying and
/// the zero-copy decoders are thin wrappers over it.
struct FrameLayout {
    ifunc_name: String,
    repr: CodeRepr,
    payload: std::ops::Range<usize>,
    code: Option<std::ops::Range<usize>>,
    deps: Vec<String>,
}

impl FrameLayout {
    fn parse(bytes: &[u8]) -> Result<FrameLayout> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            if bytes.len() < *pos + n {
                return Err(CoreError::Frame(format!(
                    "truncated header: need {n} bytes at offset {pos}",
                    pos = *pos
                )));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };

        let version = take(&mut pos, 1)?[0];
        if version != FRAME_VERSION {
            return Err(CoreError::Frame(format!(
                "unsupported frame version {version}"
            )));
        }
        let repr_tag = take(&mut pos, 1)?[0];
        let repr = CodeRepr::from_tag(repr_tag)
            .ok_or_else(|| CoreError::Frame(format!("bad code representation tag {repr_tag}")))?;
        let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
        let name = std::str::from_utf8(take(&mut pos, name_len)?)
            .map_err(|_| CoreError::Frame("ifunc name is not UTF-8".into()))?
            .to_string();
        let payload_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let code_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let deps_count = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
        let payload_start = pos;
        take(&mut pos, payload_len)?;
        let payload = payload_start..pos;
        let magic = take(&mut pos, 4)?;
        if magic != FRAME_MAGIC {
            return Err(CoreError::Frame(
                "missing payload/code MAGIC delimiter".into(),
            ));
        }

        if pos == bytes.len() {
            // Truncated frame: code section elided by the sender-side cache.
            return Ok(FrameLayout {
                ifunc_name: name,
                repr,
                payload,
                code: None,
                deps: Vec::new(),
            });
        }

        let code_start = pos;
        take(&mut pos, code_len)?;
        let code = code_start..pos;
        let mut deps = Vec::with_capacity(deps_count);
        for _ in 0..deps_count {
            let dlen = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
            let dep = std::str::from_utf8(take(&mut pos, dlen)?)
                .map_err(|_| CoreError::Frame("dependency name is not UTF-8".into()))?
                .to_string();
            deps.push(dep);
        }
        let trailer = take(&mut pos, 4)?;
        if trailer != FRAME_MAGIC {
            return Err(CoreError::Frame("missing trailer MAGIC delimiter".into()));
        }
        if pos != bytes.len() {
            return Err(CoreError::Frame(format!(
                "{} trailing bytes after trailer MAGIC",
                bytes.len() - pos
            )));
        }
        Ok(FrameLayout {
            ifunc_name: name,
            repr,
            payload,
            code: Some(code),
            deps,
        })
    }
}

/// A decoded frame as seen by the receiver.  Produced by
/// [`MessageFrame::decode_view`] its bulk sections are zero-copy views of
/// the receive buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedFrame {
    /// Ifunc library name.
    pub ifunc_name: String,
    /// Code representation.
    pub repr: CodeRepr,
    /// User payload.
    pub payload: Bytes,
    /// Code section bytes; `None` when the sender elided them (cached path).
    pub code: Option<Bytes>,
    /// Dependency names (empty for truncated frames).
    pub deps: Vec<String>,
}

impl DecodedFrame {
    /// True when the code section was elided by the sender.
    pub fn is_truncated(&self) -> bool {
        self.code.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> MessageFrame {
        MessageFrame::new(
            "tsi",
            CodeRepr::Bitcode,
            vec![1],
            vec![0xAB; 5000],
            vec!["libc.so".to_string(), "libm.so".to_string()],
        )
    }

    #[test]
    fn full_roundtrip() {
        let f = frame();
        let decoded = MessageFrame::decode(&f.encode_full()).unwrap();
        assert_eq!(decoded.ifunc_name, "tsi");
        assert_eq!(decoded.repr, CodeRepr::Bitcode);
        assert_eq!(decoded.payload, vec![1]);
        assert_eq!(decoded.code.as_deref(), Some(&[0xABu8; 5000][..]));
        assert_eq!(decoded.deps.len(), 2);
        assert!(!decoded.is_truncated());
    }

    #[test]
    fn truncated_roundtrip() {
        let f = frame();
        let decoded = MessageFrame::decode(&f.encode_truncated()).unwrap();
        assert!(decoded.is_truncated());
        assert_eq!(decoded.payload, vec![1]);
        assert!(decoded.deps.is_empty());
    }

    #[test]
    fn truncated_is_dramatically_smaller() {
        // Paper: 26 bytes cached vs 5185 bytes uncached for the TSI ifunc.
        let f = frame();
        assert!(f.truncated_size() < 64);
        assert!(f.full_size() > 5000);
        assert!(f.full_size() > f.truncated_size() * 50);
    }

    #[test]
    fn truncated_size_close_to_paper_for_one_byte_payload() {
        // Header (1+1+2+3 name) + lens (4+4+2) + payload (1) + magic (4) = 22
        // for a 3-character name — the same order as the paper's 26 bytes.
        let f = MessageFrame::new("tsi", CodeRepr::Bitcode, vec![7], vec![0; 5159], vec![]);
        let sz = f.truncated_size();
        assert!((20..=34).contains(&sz), "truncated size {sz}");
    }

    #[test]
    fn corrupt_magic_rejected() {
        let f = frame();
        let mut bytes = f.encode_full().to_vec();
        // Find and damage the first MAGIC (right after header+payload).
        let hdr = f.truncated_size();
        bytes[hdr - 1] ^= 0xff;
        assert!(MessageFrame::decode(&bytes).is_err());
    }

    #[test]
    fn bad_version_and_repr_rejected() {
        let f = frame();
        let mut bytes = f.encode_full().to_vec();
        bytes[0] = 99;
        assert!(MessageFrame::decode(&bytes).is_err());

        let mut bytes = f.encode_full().to_vec();
        bytes[1] = 9;
        assert!(MessageFrame::decode(&bytes).is_err());
    }

    #[test]
    fn truncation_in_the_middle_rejected() {
        let f = frame();
        let bytes = f.encode_full();
        // Anything between the truncated length and the full length is a
        // malformed frame (decode must not panic and must error).
        for cut in [
            f.truncated_size() + 1,
            f.truncated_size() + 100,
            bytes.len() - 1,
        ] {
            assert!(MessageFrame::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let f = frame();
        let mut bytes = f.encode_full().to_vec();
        bytes.push(0);
        assert!(MessageFrame::decode(&bytes).is_err());
    }

    #[test]
    fn decode_view_borrows_payload_and_code_zero_copy() {
        let f = frame();
        let encoded = f.encode_full();
        let decoded = MessageFrame::decode_view(&encoded).unwrap();
        assert!(decoded.payload.shares_storage(&encoded));
        assert!(decoded.code.as_ref().unwrap().shares_storage(&encoded));
        assert_eq!(decoded.payload, f.payload);
        assert_eq!(decoded.code.as_ref().unwrap(), &f.code);

        let truncated = f.encode_truncated();
        let decoded = MessageFrame::decode_view(&truncated).unwrap();
        assert!(decoded.is_truncated());
        assert!(decoded.payload.shares_storage(&truncated));
    }

    #[test]
    fn computed_sizes_match_encodings() {
        let f = frame();
        assert_eq!(f.full_size(), f.encode_full().len());
        assert_eq!(f.truncated_size(), f.encode_truncated().len());
    }

    #[test]
    fn binary_repr_frames_work_too() {
        let f = MessageFrame::new(
            "two_chains",
            CodeRepr::Binary,
            vec![9; 16],
            vec![1; 75],
            vec![],
        );
        let decoded = MessageFrame::decode(&f.encode_full()).unwrap();
        assert_eq!(decoded.repr, CodeRepr::Binary);
        assert_eq!(decoded.code.unwrap().len(), 75);
    }

    #[test]
    fn empty_payload_and_empty_code_frames() {
        let f = MessageFrame::new("noop", CodeRepr::Bitcode, vec![], vec![], vec![]);
        let full = MessageFrame::decode(&f.encode_full()).unwrap();
        assert!(!full.is_truncated());
        assert_eq!(full.code.unwrap().len(), 0);
        let trunc = MessageFrame::decode(&f.encode_truncated()).unwrap();
        assert!(trunc.is_truncated());
    }
}
