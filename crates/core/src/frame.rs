//! Ifunc message frames.
//!
//! The wire layout follows Figures 2 and 3 of the paper: a fixed HEADER, the
//! user PAYLOAD, a MAGIC delimiter, then the code section (BINARY for binary
//! ifuncs, BITCODE + DEPS for bitcode ifuncs) and a trailing MAGIC.  The
//! caching protocol exploits the layout: the frame is always *constructed* in
//! full, but when the sender knows the target has already registered this
//! ifunc type it simply transmits a prefix of the frame that stops after the
//! first MAGIC — "we control what to send by simply passing different message
//! size arguments to the UCP PUT interface".  The receiver decides how to
//! interpret what arrived by checking its own registration table, not by
//! trusting the sender.

use crate::error::{CoreError, Result};

/// The MAGIC delimiter bytes (one before the code section, one after it).
pub const FRAME_MAGIC: [u8; 4] = *b"3CMG";
/// Frame format version.
pub const FRAME_VERSION: u8 = 2;

/// Code representation carried by a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeRepr {
    /// LLVM-bitcode-analogue (fat-bitcode archive).
    Bitcode,
    /// Pre-compiled machine code (ELF-like object).
    Binary,
}

impl CodeRepr {
    /// Stable tag for serialization.
    pub fn tag(self) -> u8 {
        match self {
            CodeRepr::Bitcode => 0,
            CodeRepr::Binary => 1,
        }
    }

    /// Inverse of [`CodeRepr::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(CodeRepr::Bitcode),
            1 => Some(CodeRepr::Binary),
            _ => None,
        }
    }

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            CodeRepr::Bitcode => "bitcode",
            CodeRepr::Binary => "binary",
        }
    }
}

/// A fully materialised ifunc message frame.
///
/// The user creates one per logical message; it is never modified by sending
/// (so it can be re-sent to other endpoints), and the caching layer chooses
/// how much of its encoding actually travels.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageFrame {
    /// Ifunc library name (the registration key).
    pub ifunc_name: String,
    /// Code representation of the code section.
    pub repr: CodeRepr,
    /// User payload handed to the ifunc entry function on the target.
    pub payload: Vec<u8>,
    /// Encoded code section (fat-bitcode archive or binary object bytes).
    pub code: Vec<u8>,
    /// Shared-library dependency names (bitcode frames only; binary objects
    /// embed their own dependency list).
    pub deps: Vec<String>,
}

impl MessageFrame {
    /// Construct a frame.
    pub fn new(
        ifunc_name: impl Into<String>,
        repr: CodeRepr,
        payload: Vec<u8>,
        code: Vec<u8>,
        deps: Vec<String>,
    ) -> Self {
        MessageFrame {
            ifunc_name: ifunc_name.into(),
            repr,
            payload,
            code,
            deps,
        }
    }

    fn header_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.ifunc_name.len());
        out.push(FRAME_VERSION);
        out.push(self.repr.tag());
        let name = self.ifunc_name.as_bytes();
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.code.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.deps.len() as u16).to_le_bytes());
        out
    }

    /// Encode the *full* frame: HEADER | PAYLOAD | MAGIC | CODE | DEPS | MAGIC.
    pub fn encode_full(&self) -> Vec<u8> {
        let mut out = self.header_bytes();
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&FRAME_MAGIC);
        out.extend_from_slice(&self.code);
        for d in &self.deps {
            let b = d.as_bytes();
            out.extend_from_slice(&(b.len() as u16).to_le_bytes());
            out.extend_from_slice(b);
        }
        out.extend_from_slice(&FRAME_MAGIC);
        out
    }

    /// Encode the *truncated* frame sent when the target has already cached
    /// this ifunc type: everything up to and including the first MAGIC, i.e.
    /// the code section and trailer are elided.
    pub fn encode_truncated(&self) -> Vec<u8> {
        let mut out = self.header_bytes();
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&FRAME_MAGIC);
        out
    }

    /// Size in bytes of the full encoding.
    pub fn full_size(&self) -> usize {
        self.encode_full().len()
    }

    /// Size in bytes of the truncated encoding.
    pub fn truncated_size(&self) -> usize {
        self.encode_truncated().len()
    }

    /// Decode a frame from received bytes.  Returns the frame contents plus a
    /// flag saying whether the code section was present (full frame) or
    /// elided (truncated frame).
    pub fn decode(bytes: &[u8]) -> Result<DecodedFrame> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            if bytes.len() < *pos + n {
                return Err(CoreError::Frame(format!(
                    "truncated header: need {n} bytes at offset {pos}",
                    pos = *pos
                )));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };

        let version = take(&mut pos, 1)?[0];
        if version != FRAME_VERSION {
            return Err(CoreError::Frame(format!(
                "unsupported frame version {version}"
            )));
        }
        let repr_tag = take(&mut pos, 1)?[0];
        let repr = CodeRepr::from_tag(repr_tag)
            .ok_or_else(|| CoreError::Frame(format!("bad code representation tag {repr_tag}")))?;
        let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
        let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
            .map_err(|_| CoreError::Frame("ifunc name is not UTF-8".into()))?;
        let payload_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let code_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let deps_count = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
        let payload = take(&mut pos, payload_len)?.to_vec();
        let magic = take(&mut pos, 4)?;
        if magic != FRAME_MAGIC {
            return Err(CoreError::Frame(
                "missing payload/code MAGIC delimiter".into(),
            ));
        }

        if pos == bytes.len() {
            // Truncated frame: code section elided by the sender-side cache.
            return Ok(DecodedFrame {
                ifunc_name: name,
                repr,
                payload,
                code: None,
                deps: Vec::new(),
            });
        }

        let code = take(&mut pos, code_len)?.to_vec();
        let mut deps = Vec::with_capacity(deps_count);
        for _ in 0..deps_count {
            let dlen = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
            let dep = String::from_utf8(take(&mut pos, dlen)?.to_vec())
                .map_err(|_| CoreError::Frame("dependency name is not UTF-8".into()))?;
            deps.push(dep);
        }
        let trailer = take(&mut pos, 4)?;
        if trailer != FRAME_MAGIC {
            return Err(CoreError::Frame("missing trailer MAGIC delimiter".into()));
        }
        if pos != bytes.len() {
            return Err(CoreError::Frame(format!(
                "{} trailing bytes after trailer MAGIC",
                bytes.len() - pos
            )));
        }
        Ok(DecodedFrame {
            ifunc_name: name,
            repr,
            payload,
            code: Some(code),
            deps,
        })
    }
}

/// A decoded frame as seen by the receiver.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedFrame {
    /// Ifunc library name.
    pub ifunc_name: String,
    /// Code representation.
    pub repr: CodeRepr,
    /// User payload.
    pub payload: Vec<u8>,
    /// Code section bytes; `None` when the sender elided them (cached path).
    pub code: Option<Vec<u8>>,
    /// Dependency names (empty for truncated frames).
    pub deps: Vec<String>,
}

impl DecodedFrame {
    /// True when the code section was elided by the sender.
    pub fn is_truncated(&self) -> bool {
        self.code.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> MessageFrame {
        MessageFrame::new(
            "tsi",
            CodeRepr::Bitcode,
            vec![1],
            vec![0xAB; 5000],
            vec!["libc.so".into(), "libm.so".into()],
        )
    }

    #[test]
    fn full_roundtrip() {
        let f = frame();
        let decoded = MessageFrame::decode(&f.encode_full()).unwrap();
        assert_eq!(decoded.ifunc_name, "tsi");
        assert_eq!(decoded.repr, CodeRepr::Bitcode);
        assert_eq!(decoded.payload, vec![1]);
        assert_eq!(decoded.code.as_deref(), Some(&[0xABu8; 5000][..]));
        assert_eq!(decoded.deps.len(), 2);
        assert!(!decoded.is_truncated());
    }

    #[test]
    fn truncated_roundtrip() {
        let f = frame();
        let decoded = MessageFrame::decode(&f.encode_truncated()).unwrap();
        assert!(decoded.is_truncated());
        assert_eq!(decoded.payload, vec![1]);
        assert!(decoded.deps.is_empty());
    }

    #[test]
    fn truncated_is_dramatically_smaller() {
        // Paper: 26 bytes cached vs 5185 bytes uncached for the TSI ifunc.
        let f = frame();
        assert!(f.truncated_size() < 64);
        assert!(f.full_size() > 5000);
        assert!(f.full_size() > f.truncated_size() * 50);
    }

    #[test]
    fn truncated_size_close_to_paper_for_one_byte_payload() {
        // Header (1+1+2+3 name) + lens (4+4+2) + payload (1) + magic (4) = 22
        // for a 3-character name — the same order as the paper's 26 bytes.
        let f = MessageFrame::new("tsi", CodeRepr::Bitcode, vec![7], vec![0; 5159], vec![]);
        let sz = f.truncated_size();
        assert!((20..=34).contains(&sz), "truncated size {sz}");
    }

    #[test]
    fn corrupt_magic_rejected() {
        let f = frame();
        let mut bytes = f.encode_full();
        // Find and damage the first MAGIC (right after header+payload).
        let hdr = f.encode_truncated().len();
        bytes[hdr - 1] ^= 0xff;
        assert!(MessageFrame::decode(&bytes).is_err());
    }

    #[test]
    fn bad_version_and_repr_rejected() {
        let f = frame();
        let mut bytes = f.encode_full();
        bytes[0] = 99;
        assert!(MessageFrame::decode(&bytes).is_err());

        let mut bytes = f.encode_full();
        bytes[1] = 9;
        assert!(MessageFrame::decode(&bytes).is_err());
    }

    #[test]
    fn truncation_in_the_middle_rejected() {
        let f = frame();
        let bytes = f.encode_full();
        // Anything between the truncated length and the full length is a
        // malformed frame (decode must not panic and must error).
        for cut in [
            f.truncated_size() + 1,
            f.truncated_size() + 100,
            bytes.len() - 1,
        ] {
            assert!(MessageFrame::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let f = frame();
        let mut bytes = f.encode_full();
        bytes.push(0);
        assert!(MessageFrame::decode(&bytes).is_err());
    }

    #[test]
    fn binary_repr_frames_work_too() {
        let f = MessageFrame::new(
            "two_chains",
            CodeRepr::Binary,
            vec![9; 16],
            vec![1; 75],
            vec![],
        );
        let decoded = MessageFrame::decode(&f.encode_full()).unwrap();
        assert_eq!(decoded.repr, CodeRepr::Binary);
        assert_eq!(decoded.code.unwrap().len(), 75);
    }

    #[test]
    fn empty_payload_and_empty_code_frames() {
        let f = MessageFrame::new("noop", CodeRepr::Bitcode, vec![], vec![], vec![]);
        let full = MessageFrame::decode(&f.encode_full()).unwrap();
        assert!(!full.is_truncated());
        assert_eq!(full.code.unwrap().len(), 0);
        let trunc = MessageFrame::decode(&f.encode_truncated()).unwrap();
        assert!(trunc.is_truncated());
    }
}
