//! Error types for the Three-Chains core framework.

use std::fmt;

/// Errors surfaced by the ifunc framework.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A message frame could not be decoded.
    Frame(String),
    /// An ifunc name is not registered where it was expected to be.
    UnknownIfunc {
        /// The ifunc library name.
        name: String,
    },
    /// The receiver got a truncated (code-elided) frame for an ifunc it has
    /// never seen — the caching protocol's failure mode when sender and
    /// receiver state diverge.
    TruncatedWithoutRegistration {
        /// The ifunc library name.
        name: String,
    },
    /// Building the ifunc library (toolchain step) failed.
    Toolchain(String),
    /// JIT compilation, linking or execution failed on the target.
    Jit(String),
    /// Loading a binary ifunc failed on the target.
    BinaryLoad(String),
    /// The requested Active Message handler is not predeployed on the target.
    UnknownAmHandler {
        /// Handler name.
        name: String,
    },
    /// A simulation-level invariant was violated (bad node id, etc.).
    Sim(String),
    /// A cluster transport failed to move or decode a message, or a node
    /// reported a failure through the transport's error channel.
    Transport(String),
    /// Waiting for a completion gave up: the transport went quiescent (or hit
    /// its step budget) without the expected completion arriving.
    WaitTimeout {
        /// Description of what was being waited for.
        what: String,
    },
    /// A peer process closed its connection (or was killed) outside a
    /// graceful shutdown — the cross-process analogue of a node death.
    PeerDisconnected {
        /// Rank of the vanished peer.
        rank: usize,
        /// What the socket layer observed.
        detail: String,
    },
    /// A memory read through a transport yielded fewer bytes than requested
    /// (e.g. [`crate::cluster::Cluster::read_u64`] against a transport that
    /// could not serve the full width).
    ShortRead {
        /// Node the read addressed.
        rank: usize,
        /// Address of the read.
        addr: u64,
        /// Bytes requested.
        wanted: usize,
        /// Bytes the transport actually returned.
        got: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Frame(msg) => write!(f, "ifunc frame error: {msg}"),
            CoreError::UnknownIfunc { name } => write!(f, "ifunc `{name}` is not registered"),
            CoreError::TruncatedWithoutRegistration { name } => write!(
                f,
                "received a code-elided frame for ifunc `{name}` which was never registered here"
            ),
            CoreError::Toolchain(msg) => write!(f, "ifunc toolchain error: {msg}"),
            CoreError::Jit(msg) => write!(f, "target-side JIT error: {msg}"),
            CoreError::BinaryLoad(msg) => write!(f, "binary ifunc load error: {msg}"),
            CoreError::UnknownAmHandler { name } => {
                write!(
                    f,
                    "active-message handler `{name}` is not predeployed on this node"
                )
            }
            CoreError::Sim(msg) => write!(f, "cluster simulation error: {msg}"),
            CoreError::Transport(msg) => write!(f, "cluster transport error: {msg}"),
            CoreError::WaitTimeout { what } => {
                write!(f, "timed out waiting for completion: {what}")
            }
            CoreError::PeerDisconnected { rank, detail } => {
                write!(f, "peer rank {rank} disconnected: {detail}")
            }
            CoreError::ShortRead {
                rank,
                addr,
                wanted,
                got,
            } => write!(
                f,
                "short read on rank {rank} at {addr:#x}: wanted {wanted} bytes, got {got}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<tc_bitir::BitirError> for CoreError {
    fn from(e: tc_bitir::BitirError) -> Self {
        CoreError::Toolchain(e.to_string())
    }
}

impl From<tc_jit::JitError> for CoreError {
    fn from(e: tc_jit::JitError) -> Self {
        CoreError::Jit(e.to_string())
    }
}

impl From<tc_binfmt::BinfmtError> for CoreError {
    fn from(e: tc_binfmt::BinfmtError) -> Self {
        CoreError::BinaryLoad(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let e: CoreError = tc_bitir::BitirError::Decode("bad".into()).into();
        assert!(e.to_string().contains("bad"));
        let e: CoreError = tc_jit::JitError::UnresolvedSymbol {
            symbol: "puts".into(),
        }
        .into();
        assert!(e.to_string().contains("puts"));
        let e: CoreError = tc_binfmt::BinfmtError::UndefinedSymbol { symbol: "x".into() }.into();
        assert!(matches!(e, CoreError::BinaryLoad(_)));
    }

    #[test]
    fn display_mentions_names() {
        assert!(CoreError::UnknownIfunc { name: "tsi".into() }
            .to_string()
            .contains("tsi"));
        assert!(CoreError::UnknownAmHandler {
            name: "chase".into()
        }
        .to_string()
        .contains("chase"));
    }
}
