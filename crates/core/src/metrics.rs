//! Processing outcomes and runtime counters.
//!
//! The runtime reports *what happened* (an ifunc was JIT-compiled, a cached
//! ifunc was launched, an AM handler ran, …) together with the raw quantities
//! a cost model needs (bitcode bytes compiled, interpreter cycles retired).
//! The discrete-event simulator converts those into virtual time using the
//! platform's CPU profile, which keeps all calibration outside the runtime —
//! the same split the paper uses when it decomposes end-to-end latency into
//! transmission, lookup, JIT and execution (Tables I–III).

/// What kind of work handling one delivered message involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// A one-sided PUT was applied to local memory.
    PutApplied,
    /// A confirmed PUT was applied to local memory and its ack was posted.
    PutConfirmed,
    /// A previously posted confirmed PUT's ack arrived locally.
    PutAckReceived,
    /// A GET request was served (reply posted).
    GetServed,
    /// A previously posted GET completed locally.
    GetCompleted,
    /// A predeployed Active-Message handler executed.
    AmExecuted,
    /// An ifunc executed from the local code cache (truncated or re-sent
    /// frame, no compilation).
    IfuncExecutedCached,
    /// An ifunc arrived as a full frame, was registered/compiled, then
    /// executed.
    IfuncExecutedFirstArrival,
}

/// The runtime's report about handling one delivered message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessOutcome {
    /// What happened.
    pub kind: OutcomeKind,
    /// Interpreter cycles retired by ifunc/AM execution (0 otherwise).
    pub exec_cycles: u64,
    /// Bytes of bitcode that were JIT-compiled (None when no JIT ran).
    pub jit_bitcode_bytes: Option<usize>,
    /// True when a binary ifunc was loaded (GOT patch + buffer setup).
    pub binary_loaded: bool,
    /// Number of follow-on actions (recursive ifunc sends, PUTs, result
    /// returns) the handled message emitted.
    pub actions_emitted: usize,
    /// Payload bytes delivered to the executed code (0 when nothing ran).
    pub payload_bytes: usize,
}

impl ProcessOutcome {
    /// An outcome with no execution component.
    pub fn passive(kind: OutcomeKind) -> Self {
        ProcessOutcome {
            kind,
            exec_cycles: 0,
            jit_bitcode_bytes: None,
            binary_loaded: false,
            actions_emitted: 0,
            payload_bytes: 0,
        }
    }
}

/// Cumulative counters kept by each node runtime.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Ifunc frames received with the code section present.
    pub full_frames_received: u64,
    /// Ifunc frames received with the code section elided.
    pub truncated_frames_received: u64,
    /// Ifunc executions (both cached and first-arrival).
    pub ifuncs_executed: u64,
    /// JIT compilations performed.
    pub jit_compilations: u64,
    /// Binary ifunc loads performed.
    pub binary_loads: u64,
    /// Active-Message handler executions.
    pub ams_executed: u64,
    /// GET requests served for remote clients.
    pub gets_served: u64,
    /// One-sided PUTs applied to local memory.
    pub puts_applied: u64,
    /// Ifunc frames sent (full).
    pub ifunc_full_sends: u64,
    /// Ifunc frames sent (truncated).
    pub ifunc_truncated_sends: u64,
    /// Total bytes posted to the fabric by this node.
    pub bytes_sent: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_outcome_has_no_costs() {
        let o = ProcessOutcome::passive(OutcomeKind::PutApplied);
        assert_eq!(o.exec_cycles, 0);
        assert_eq!(o.jit_bitcode_bytes, None);
        assert!(!o.binary_loaded);
        assert_eq!(o.actions_emitted, 0);
    }

    #[test]
    fn stats_default_to_zero() {
        let s = RuntimeStats::default();
        assert_eq!(s.ifuncs_executed, 0);
        assert_eq!(s.bytes_sent, 0);
    }
}
