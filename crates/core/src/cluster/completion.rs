//! The async completion plane: indexed completion claiming and
//! poll/select-style multiplexing over heterogeneous handles.
//!
//! The paper's X-RDMA story depends on keeping many one-sided operations and
//! result mailboxes in flight at once.  Three pieces make that scale:
//!
//! * [`ClaimTable`] — the client-side buffer of arrived-but-unclaimed
//!   completions, indexed by request id / mailbox slot *and* threaded on an
//!   arrival queue, so claiming one of hundreds of outstanding operations
//!   is a hash lookup plus an O(1) amortized queue pop — not the linear
//!   `Vec<Completion>` scan (quadratic across a pipelined run) it replaces;
//! * [`CompletionSet`] — a registration set of heterogeneous handles
//!   ([`GetHandle`], [`ResultHandle`], [`PutHandle`]), each with an optional
//!   per-handle deadline, indexed by completion key so readiness checks
//!   never scan the registrations; driven by
//!   [`Cluster::wait_any`](super::Cluster::wait_any) /
//!   [`wait_all`](super::Cluster::wait_all) /
//!   [`poll_any`](super::Cluster::poll_any);
//! * [`Ready`] — the typed outcome `wait_any` hands back together with the
//!   registering [`CompletionToken`].
//!
//! The table also powers the fixed
//! [`Cluster::run_until_completions`](super::Cluster::run_until_completions)
//! contract: completions returned from that call stay *claimable* by later
//! typed waits until something actually claims them.

use super::{ClientId, CompletionHandle, GetHandle, ResultHandle};
use crate::runtime::Completion;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use tc_ucx::{Bytes, RequestId};

/// What a pending completion is keyed by — the join point between the claim
/// table's arrivals and a [`CompletionSet`]'s registrations.  Every key
/// carries the owning [`ClientId`]: request ids and mailbox slots are
/// per-client spaces (each client runtime allocates its own), so two clients
/// posting concurrently produce *colliding* numeric ids that must never
/// claim each other's completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(super) enum ClaimKey {
    Get(ClientId, u64),
    Put(ClientId, u64),
    Result(ClientId, u64),
}

/// One arrived-but-unclaimed completion value.
#[derive(Debug, Clone)]
struct Arrived<V> {
    /// Global arrival order (used for fairness in `wait_any`).
    seq: u64,
    /// True once the completion was handed out by `run_until_completions`
    /// (it stays claimable, but is not returned or counted again).
    observed: bool,
    value: V,
}

/// Indexed buffer of completions that reached a client but have not been
/// claimed by a typed handle yet.
///
/// Keys are what handles wait on: `(client, GET request id)`,
/// `(client, confirmed-PUT request id)`, `(client, result-mailbox slot)` —
/// always qualified by the owning [`ClientId`], so completions of different
/// clients are routed independently even when their numeric ids collide.
/// Claiming is O(1), and one arrival queue shared across all clients keeps
/// first-arrived fairness O(1) amortized; with hundreds of operations
/// outstanding this is the difference between linear and quadratic
/// completion draining.
#[derive(Debug, Default)]
pub struct ClaimTable {
    gets: HashMap<(ClientId, u64), Arrived<Bytes>>,
    puts: HashMap<(ClientId, u64), Arrived<()>>,
    results: HashMap<(ClientId, u64), Arrived<u64>>,
    /// Pending keys in arrival order (entries whose completion was since
    /// claimed are pruned lazily).
    arrivals: VecDeque<ClaimKey>,
    /// Unclaimed completions not yet handed out by `run_until_completions`
    /// (maintained incrementally so the wait loops check it in O(1)).
    fresh: usize,
    seq: SeqSource,
}

/// Where a table draws its arrival-order numbers from.  A standalone table
/// numbers arrivals locally; a shard of a [`ClaimShards`] draws from the
/// counter shared by every shard, so arrival order stays globally comparable
/// even when different client threads absorb concurrently.
#[derive(Debug)]
enum SeqSource {
    Local(u64),
    Shared(Arc<AtomicU64>),
}

impl Default for SeqSource {
    fn default() -> Self {
        SeqSource::Local(0)
    }
}

impl SeqSource {
    fn next(&mut self) -> u64 {
        match self {
            SeqSource::Local(n) => {
                let seq = *n;
                *n += 1;
                seq
            }
            SeqSource::Shared(counter) => counter.fetch_add(1, Ordering::Relaxed),
        }
    }
}

impl ClaimTable {
    /// A table that numbers arrivals from a counter shared with other
    /// tables — the shard constructor used by [`ClaimShards`].
    fn sharing_seq(counter: &Arc<AtomicU64>) -> Self {
        ClaimTable {
            seq: SeqSource::Shared(Arc::clone(counter)),
            ..ClaimTable::default()
        }
    }

    /// Fold a batch of one client's transport completions into the table.
    ///
    /// A result slot holds at most one unclaimed value per client (the
    /// mailbox slot is a single 16-byte record; a second arrival before the
    /// first claim is an overwrite: the entry takes the new value and counts
    /// as a *fresh* arrival again, though it keeps its original position in
    /// the arrival queue).  Duplicate confirmed-PUT acks collapse onto the
    /// first.
    pub fn absorb(&mut self, client: ClientId, completions: Vec<Completion>) {
        self.compact_arrivals();
        for c in completions {
            let seq = self.seq.next();
            match c {
                Completion::Get { request, data } => {
                    if let std::collections::hash_map::Entry::Vacant(v) =
                        self.gets.entry((client, request.0))
                    {
                        v.insert(Arrived {
                            seq,
                            observed: false,
                            value: data,
                        });
                        self.arrivals.push_back(ClaimKey::Get(client, request.0));
                        self.fresh += 1;
                    }
                }
                Completion::Put { request } => {
                    if let std::collections::hash_map::Entry::Vacant(v) =
                        self.puts.entry((client, request.0))
                    {
                        v.insert(Arrived {
                            seq,
                            observed: false,
                            value: (),
                        });
                        self.arrivals.push_back(ClaimKey::Put(client, request.0));
                        self.fresh += 1;
                    }
                }
                Completion::Result { slot, value } => match self.results.get_mut(&(client, slot)) {
                    Some(existing) => {
                        // A reused slot delivered a new record: it is a new
                        // completion, even if the previous one was already
                        // handed out by `run_until_completions`.
                        existing.value = value;
                        existing.seq = seq;
                        if existing.observed {
                            existing.observed = false;
                            self.fresh += 1;
                        }
                    }
                    None => {
                        self.results.insert(
                            (client, slot),
                            Arrived {
                                seq,
                                observed: false,
                                value,
                            },
                        );
                        self.arrivals.push_back(ClaimKey::Result(client, slot));
                        self.fresh += 1;
                    }
                },
            }
        }
    }

    fn is_pending(&self, key: ClaimKey) -> bool {
        match key {
            ClaimKey::Get(c, r) => self.gets.contains_key(&(c, r)),
            ClaimKey::Put(c, r) => self.puts.contains_key(&(c, r)),
            ClaimKey::Result(c, s) => self.results.contains_key(&(c, s)),
        }
    }

    /// Sweep stale (already-claimed) arrival records once the queue holds
    /// more stale entries than live ones.  Claims through typed
    /// `wait`/`try_claim` never walk the queue, so without this a
    /// wait-only driver would grow `arrivals` without bound; amortised over
    /// `absorb`, the queue stays within 2× the pending completions.
    fn compact_arrivals(&mut self) {
        if self.arrivals.len() > 32 && self.arrivals.len() > 2 * self.len() {
            let arrivals = std::mem::take(&mut self.arrivals);
            self.arrivals = arrivals
                .into_iter()
                .filter(|&k| self.is_pending(k))
                .collect();
        }
    }

    /// The earliest-arrived pending key accepted by `wanted`.  Stale
    /// (claimed) records are popped eagerly at the front and swept from the
    /// interior by [`ClaimTable::compact_arrivals`]; entries that are
    /// pending but not wanted (e.g. observed completions no handle waits on
    /// yet) are skipped without being dropped.
    pub(super) fn earliest_pending(
        &mut self,
        mut wanted: impl FnMut(ClaimKey) -> bool,
    ) -> Option<ClaimKey> {
        // Pop claimed records off the front (O(1)); interior stale entries
        // are just skipped — `compact_arrivals` reclaims them in bulk.
        while let Some(&key) = self.arrivals.front() {
            if self.is_pending(key) {
                break;
            }
            self.arrivals.pop_front();
        }
        let mut i = 0;
        while i < self.arrivals.len() {
            let key = self.arrivals[i];
            if self.is_pending(key) && wanted(key) {
                return Some(key);
            }
            i += 1;
        }
        None
    }

    /// Arrival-order number of a pending key, if present.
    fn seq_of(&self, key: ClaimKey) -> Option<u64> {
        match key {
            ClaimKey::Get(c, r) => self.gets.get(&(c, r)).map(|a| a.seq),
            ClaimKey::Put(c, r) => self.puts.get(&(c, r)).map(|a| a.seq),
            ClaimKey::Result(c, s) => self.results.get(&(c, s)).map(|a| a.seq),
        }
    }

    /// Like [`ClaimTable::earliest_pending`] but paired with the key's
    /// arrival-order number, so shards can compare candidates globally.
    pub(super) fn earliest_pending_seq(
        &mut self,
        wanted: impl FnMut(ClaimKey) -> bool,
    ) -> Option<(u64, ClaimKey)> {
        let key = self.earliest_pending(wanted)?;
        let seq = self.seq_of(key).expect("earliest_pending keys are pending");
        Some((seq, key))
    }

    fn note_claimed(fresh: &mut usize, observed: bool) {
        if !observed {
            *fresh -= 1;
        }
    }

    /// Remove and return one client's GET completion.
    pub fn claim_get(&mut self, client: ClientId, request: RequestId) -> Option<Bytes> {
        self.gets.remove(&(client, request.0)).map(|a| {
            Self::note_claimed(&mut self.fresh, a.observed);
            a.value
        })
    }

    /// Remove and return one client's confirmed-PUT completion.
    pub fn claim_put(&mut self, client: ClientId, request: RequestId) -> Option<()> {
        self.puts.remove(&(client, request.0)).map(|a| {
            Self::note_claimed(&mut self.fresh, a.observed);
            a.value
        })
    }

    /// Remove and return one client's X-RDMA result completion.
    pub fn claim_result(&mut self, client: ClientId, slot: u64) -> Option<u64> {
        self.results.remove(&(client, slot)).map(|a| {
            Self::note_claimed(&mut self.fresh, a.observed);
            a.value
        })
    }

    /// Arrival order of a pending GET completion, if present.
    pub fn get_arrival(&self, client: ClientId, request: RequestId) -> Option<u64> {
        self.gets.get(&(client, request.0)).map(|a| a.seq)
    }

    /// Arrival order of a pending confirmed-PUT completion, if present.
    pub fn put_arrival(&self, client: ClientId, request: RequestId) -> Option<u64> {
        self.puts.get(&(client, request.0)).map(|a| a.seq)
    }

    /// Arrival order of a pending result completion, if present.
    pub fn result_arrival(&self, client: ClientId, slot: u64) -> Option<u64> {
        self.results.get(&(client, slot)).map(|a| a.seq)
    }

    /// Number of unclaimed completions (observed or not).
    pub fn len(&self) -> usize {
        self.gets.len() + self.puts.len() + self.results.len()
    }

    /// True when no completion is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of unclaimed completions that have not yet been handed out by
    /// `run_until_completions` (O(1): the wait loops check it per step).
    pub fn fresh_len(&self) -> usize {
        self.fresh
    }

    /// Snapshot the not-yet-observed completions in arrival order, marking
    /// them observed.  They remain claimable by typed handles.  (The
    /// returned [`Completion`] values carry the per-client numeric ids; on a
    /// multi-client cluster use typed handles to keep the client attribution.)
    pub fn take_fresh(&mut self) -> Vec<Completion> {
        let mut out = self.take_fresh_seq();
        out.sort_by_key(|(seq, _)| *seq);
        out.into_iter().map(|(_, c)| c).collect()
    }

    /// [`ClaimTable::take_fresh`] with arrival-order numbers attached and no
    /// sorting — shards merge-sort across tables instead.
    fn take_fresh_seq(&mut self) -> Vec<(u64, Completion)> {
        let mut out: Vec<(u64, Completion)> = Vec::new();
        for (&(_, request), a) in self.gets.iter_mut().filter(|(_, a)| !a.observed) {
            a.observed = true;
            out.push((
                a.seq,
                Completion::Get {
                    request: RequestId(request),
                    data: a.value.clone(),
                },
            ));
        }
        for (&(_, request), a) in self.puts.iter_mut().filter(|(_, a)| !a.observed) {
            a.observed = true;
            out.push((
                a.seq,
                Completion::Put {
                    request: RequestId(request),
                },
            ));
        }
        for (&(_, slot), a) in self.results.iter_mut().filter(|(_, a)| !a.observed) {
            a.observed = true;
            out.push((
                a.seq,
                Completion::Result {
                    slot,
                    value: a.value,
                },
            ));
        }
        self.fresh = 0;
        out
    }
}

/// The sharded claim table: one [`ClaimTable`] per client behind its own
/// mutex, numbering arrivals from one shared counter.
///
/// Sharding by [`ClientId`] is exact, not probabilistic — every claim key is
/// qualified by its owning client, so a completion's shard is a direct index
/// and cross-shard claims cannot exist.  The per-shard mutexes mean a client
/// worker thread depositing completions contends only with waiters touching
/// *that* client, never with another client's hot claim path; the shared
/// arrival counter keeps `wait_any` first-arrived fairness globally
/// meaningful even though different shards absorb concurrently.
///
/// Locking discipline: at most one shard lock is held at a time, always
/// acquired and released within a single method — so there is no lock-order
/// hazard between shards, and producers (transport worker threads) can never
/// deadlock against consumers (the user thread driving the wait loops).
#[derive(Debug)]
pub struct ClaimShards {
    shards: Vec<Mutex<ClaimTable>>,
}

impl ClaimShards {
    /// A sharded table with one shard per client (at least one).
    pub fn new(clients: usize) -> Self {
        let counter = Arc::new(AtomicU64::new(0));
        ClaimShards {
            shards: (0..clients.max(1))
                .map(|_| Mutex::new(ClaimTable::sharing_seq(&counter)))
                .collect(),
        }
    }

    /// Number of shards (clients the table was sized for).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn lock(&self, shard: usize) -> MutexGuard<'_, ClaimTable> {
        // A shard is only poisoned if a thread panicked mid-`absorb`; the
        // table's invariants are per-entry, so recover rather than cascade.
        self.shards[shard]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Lock and return one client's shard.
    pub fn shard(&self, client: ClientId) -> MutexGuard<'_, ClaimTable> {
        self.lock(client.0)
    }

    /// Fold a batch of one client's transport completions into its shard.
    /// Callable from any thread; blocks only on that client's shard lock.
    pub fn absorb(&self, client: ClientId, completions: Vec<Completion>) {
        if completions.is_empty() {
            return;
        }
        self.shard(client).absorb(client, completions);
    }

    /// Total unclaimed completions across all shards (observed or not).
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.lock(i).len()).sum()
    }

    /// True when no completion is pending in any shard.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total not-yet-observed completions across all shards.
    pub fn fresh_len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.lock(i).fresh_len())
            .sum()
    }

    /// Snapshot the not-yet-observed completions of every shard in global
    /// arrival order, marking them observed (they stay claimable).
    pub fn take_fresh(&self) -> Vec<Completion> {
        let mut out: Vec<(u64, Completion)> = Vec::new();
        for i in 0..self.shards.len() {
            out.extend(self.lock(i).take_fresh_seq());
        }
        out.sort_by_key(|(seq, _)| *seq);
        out.into_iter().map(|(_, c)| c).collect()
    }
}

/// Typed handle for a *confirmed* one-sided PUT
/// ([`Cluster::put_confirmed`](super::Cluster::put_confirmed)): the
/// destination applies the write and acknowledges it through the transport,
/// so waiting on this handle means the bytes are durably in remote memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutHandle {
    pub(super) client: ClientId,
    pub(super) request: RequestId,
    /// The server rank the PUT targets — the ack can only ever come from
    /// there, so a crashed target resolves the handle as
    /// [`Ready::PeerLost`].
    pub(super) target: usize,
}

impl PutHandle {
    /// The underlying request id.
    pub fn request(&self) -> RequestId {
        self.request
    }

    /// The client the confirmed PUT was posted from.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// The server rank the confirmed PUT targets.
    pub fn target(&self) -> usize {
        self.target
    }
}

impl CompletionHandle for PutHandle {
    type Output = ();

    fn try_claim(&self, claims: &ClaimShards) -> Option<()> {
        claims
            .shard(self.client)
            .claim_put(self.client, self.request)
    }

    fn ready_at(&self, claims: &ClaimShards) -> Option<u64> {
        claims
            .shard(self.client)
            .put_arrival(self.client, self.request)
    }

    fn describe(&self) -> String {
        format!(
            "confirmed PUT (client {}, request {})",
            self.client.0, self.request.0
        )
    }
}

/// Opaque identifier of one registration in a [`CompletionSet`], returned by
/// the `add_*` methods and echoed by `wait_any`/`wait_all` so the driver can
/// map readiness back to whatever it associated with the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompletionToken(pub u64);

/// What a registered handle resolved to.
#[derive(Debug, Clone, PartialEq)]
pub enum Ready {
    /// A GET completed; the fetched bytes.
    Get(Bytes),
    /// An X-RDMA result arrived; the returned value.
    Result(u64),
    /// A confirmed PUT was applied remotely and acknowledged.
    Put,
    /// The handle's deadline expired (or the transport went quiescent with
    /// the deadline armed) before the completion arrived.  The registration
    /// is removed; the completion, should it still arrive, stays claimable
    /// through the claim table.
    Deadline,
    /// The server rank the operation was pinned to failed terminally (dead
    /// with no recovery pending), so the completion can never arrive.  The
    /// registration is removed; carries the lost rank.  Only GETs and
    /// confirmed PUTs are pinned to a rank — result mailboxes can be filled
    /// from anywhere and resolve through deadlines instead.
    PeerLost(u32),
}

/// Deadline state of one registration.  Relative deadlines are resolved to
/// absolute transport-clock instants the first time the set is driven (the
/// set itself holds no clock — virtual nanoseconds on the simulated backend,
/// wall-clock nanoseconds on the threaded one).
#[derive(Debug, Clone, Copy)]
enum DeadlineState {
    Relative(u64),
    Absolute(u64),
}

#[derive(Debug, Clone, Copy)]
enum Registered {
    Get(GetHandle),
    Result(ResultHandle),
    Put(PutHandle),
}

impl Registered {
    fn key(&self) -> ClaimKey {
        match self {
            Registered::Get(h) => ClaimKey::Get(h.client(), h.request().0),
            Registered::Result(h) => ClaimKey::Result(h.client(), h.slot()),
            Registered::Put(h) => ClaimKey::Put(h.client(), h.request().0),
        }
    }

    fn describe(&self) -> String {
        match self {
            Registered::Get(h) => h.describe(),
            Registered::Result(h) => h.describe(),
            Registered::Put(h) => h.describe(),
        }
    }
}

#[derive(Debug)]
struct SetEntry {
    target: Registered,
    deadline: Option<DeadlineState>,
}

/// Tokens registered for one completion key.  Almost every key has exactly
/// one registration; the single-token representation avoids a heap
/// allocation per outstanding operation on the hot path.
#[derive(Debug)]
enum Tokens {
    One(u64),
    Many(BTreeSet<u64>),
}

impl Tokens {
    fn insert(&mut self, token: u64) {
        match self {
            Tokens::One(existing) => {
                let mut set = BTreeSet::new();
                set.insert(*existing);
                set.insert(token);
                *self = Tokens::Many(set);
            }
            Tokens::Many(set) => {
                set.insert(token);
            }
        }
    }

    /// Lowest registered token (duplicates resolve earliest-token-first).
    fn first(&self) -> u64 {
        match self {
            Tokens::One(t) => *t,
            Tokens::Many(set) => *set.iter().next().expect("Many is never empty"),
        }
    }

    /// Remove `token`; true when the key has no registrations left.
    fn remove(&mut self, token: u64) -> bool {
        match self {
            Tokens::One(t) => *t == token,
            Tokens::Many(set) => {
                set.remove(&token);
                if set.len() == 1 {
                    *self = Tokens::One(*set.iter().next().unwrap());
                }
                false
            }
        }
    }
}

/// A poll/select-style registration set of heterogeneous completion handles.
///
/// Register handles with [`CompletionSet::add_get`] /
/// [`add_result`](CompletionSet::add_result) /
/// [`add_put`](CompletionSet::add_put) (optionally arming a per-handle
/// deadline with [`deadline`](CompletionSet::deadline)), then drive the set
/// with [`Cluster::wait_any`](super::Cluster::wait_any) — first ready wins,
/// ties broken by completion arrival order — or
/// [`Cluster::wait_all`](super::Cluster::wait_all).
///
/// Registrations are indexed by completion key, so resolving one of
/// hundreds of outstanding operations costs a queue pop and two hash
/// operations, independent of the set size.
///
/// Registering the *same* underlying handle twice is allowed but the
/// completion is claimed exactly once: the earliest registration receives
/// it, the duplicate only resolves through its deadline or the final
/// timeout.
#[derive(Debug, Default)]
pub struct CompletionSet {
    entries: HashMap<u64, SetEntry>,
    /// Registration index: completion key → tokens waiting on it (ordered,
    /// so duplicate registrations resolve earliest-token-first).
    index: HashMap<ClaimKey, Tokens>,
    /// Registrations with an armed deadline (resolve/expiry scans touch
    /// only these).
    deadlined: BTreeSet<u64>,
    next_token: u64,
}

impl CompletionSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registrations still waiting.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn push(&mut self, target: Registered) -> CompletionToken {
        let token = self.next_token;
        self.next_token += 1;
        match self.index.entry(target.key()) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Tokens::One(token));
            }
            std::collections::hash_map::Entry::Occupied(mut o) => o.get_mut().insert(token),
        }
        self.entries.insert(
            token,
            SetEntry {
                target,
                deadline: None,
            },
        );
        CompletionToken(token)
    }

    /// Register a GET handle.
    pub fn add_get(&mut self, handle: GetHandle) -> CompletionToken {
        self.push(Registered::Get(handle))
    }

    /// Register an X-RDMA result handle.
    pub fn add_result(&mut self, handle: ResultHandle) -> CompletionToken {
        self.push(Registered::Result(handle))
    }

    /// Register a confirmed-PUT handle.
    pub fn add_put(&mut self, handle: PutHandle) -> CompletionToken {
        self.push(Registered::Put(handle))
    }

    /// Arm (or re-arm) a per-handle deadline, `nanos` transport-clock
    /// nanoseconds from the moment the set is next driven.  On the simulated
    /// backend the clock is virtual time; on the threaded backend it is
    /// wall-clock time.  Returns false when the token is no longer
    /// registered.
    pub fn deadline(&mut self, token: CompletionToken, nanos: u64) -> bool {
        match self.entries.get_mut(&token.0) {
            Some(e) => {
                e.deadline = Some(DeadlineState::Relative(nanos));
                self.deadlined.insert(token.0);
                true
            }
            None => false,
        }
    }

    /// Deregister a token without resolving it.  Returns false when it was
    /// not registered.
    pub fn remove(&mut self, token: CompletionToken) -> bool {
        let Some(entry) = self.entries.remove(&token.0) else {
            return false;
        };
        self.unindex(token.0, &entry);
        true
    }

    fn unindex(&mut self, token: u64, entry: &SetEntry) {
        let key = entry.target.key();
        if let Some(tokens) = self.index.get_mut(&key) {
            if tokens.remove(token) {
                self.index.remove(&key);
            }
        }
        self.deadlined.remove(&token);
    }

    fn take_entry(&mut self, token: u64) -> SetEntry {
        let entry = self.entries.remove(&token).expect("token is registered");
        self.unindex(token, &entry);
        entry
    }

    /// Resolve relative deadlines against the transport clock.  Called by
    /// the cluster's wait loops before checking expiry; touches only
    /// deadline-armed registrations.
    pub(super) fn resolve_deadlines(&mut self, now: u64) {
        for &token in &self.deadlined {
            let e = self.entries.get_mut(&token).expect("deadlined ⊆ entries");
            if let Some(DeadlineState::Relative(d)) = e.deadline {
                e.deadline = Some(DeadlineState::Absolute(now.saturating_add(d)));
            }
        }
    }

    /// True when any registration has an armed deadline.
    pub(super) fn has_deadlines(&self) -> bool {
        !self.deadlined.is_empty()
    }

    /// Claim the ready entry whose completion arrived earliest, if any.
    ///
    /// Scans every shard for its earliest wanted pending key (one shard
    /// lock at a time) and picks the global minimum by the shared arrival
    /// counter — so first-arrived fairness is preserved across shards
    /// exactly as it was on the unsharded table.  The set itself is owned
    /// by the waiting thread; only the shard locks are contended.
    pub(super) fn claim_earliest(
        &mut self,
        claims: &ClaimShards,
    ) -> Option<(CompletionToken, Ready)> {
        let index = &self.index;
        let mut best: Option<(u64, ClaimKey)> = None;
        for shard in 0..claims.shard_count() {
            let candidate = claims
                .lock(shard)
                .earliest_pending_seq(|k| index.contains_key(&k));
            if let Some((seq, key)) = candidate {
                if best.map(|(b, _)| seq < b).unwrap_or(true) {
                    best = Some((seq, key));
                }
            }
        }
        let (_, key) = best?;
        let token = self.index[&key].first();
        let entry = self.take_entry(token);
        let ready = match entry.target {
            Registered::Get(h) => Ready::Get(h.try_claim(claims).expect("ready GET claims")),
            Registered::Result(h) => {
                Ready::Result(h.try_claim(claims).expect("ready result claims"))
            }
            Registered::Put(h) => {
                h.try_claim(claims).expect("ready PUT claims");
                Ready::Put
            }
        };
        Some((CompletionToken(token), ready))
    }

    /// Remove and return the earliest-registered entry pinned to one of the
    /// `failed` ranks, together with that rank.  Pinned registrations (GETs
    /// and confirmed PUTs) can only complete from their target server, so a
    /// terminally failed target means the wait can never succeed; result
    /// registrations are not pinned and never resolve this way.
    pub(super) fn take_peer_lost(&mut self, failed: &[usize]) -> Option<(CompletionToken, usize)> {
        let mut best: Option<(u64, usize)> = None;
        for (&token, e) in &self.entries {
            let target = match &e.target {
                Registered::Get(h) => h.target,
                Registered::Put(h) => h.target,
                Registered::Result(_) => continue,
            };
            if failed.contains(&target) && best.map(|(b, _)| token < b).unwrap_or(true) {
                best = Some((token, target));
            }
        }
        let (token, rank) = best?;
        self.take_entry(token);
        Some((CompletionToken(token), rank))
    }

    /// Remove and return the entry with the earliest expired deadline, if
    /// any is at or past `now`.
    pub(super) fn take_expired(&mut self, now: u64) -> Option<CompletionToken> {
        let mut best: Option<(u64, u64)> = None;
        for &token in &self.deadlined {
            if let Some(DeadlineState::Absolute(at)) =
                self.entries.get(&token).and_then(|e| e.deadline)
            {
                if at <= now && best.map(|(b, _)| at < b).unwrap_or(true) {
                    best = Some((at, token));
                }
            }
        }
        let (_, token) = best?;
        self.take_entry(token);
        Some(CompletionToken(token))
    }

    /// Remove and return the deadline-armed entry whose deadline is
    /// earliest, regardless of the clock — used when the transport goes
    /// quiescent, at which point an armed deadline can never be beaten by a
    /// completion.  (Unresolved relative deadlines sort after resolved
    /// absolute ones; ties break on the lower token.)
    pub(super) fn take_any_deadlined(&mut self) -> Option<CompletionToken> {
        let mut best: Option<(u64, u64)> = None;
        for &token in &self.deadlined {
            let at = match self.entries.get(&token).and_then(|e| e.deadline) {
                Some(DeadlineState::Absolute(at)) => at,
                Some(DeadlineState::Relative(_)) | None => u64::MAX,
            };
            if best.map(|(b, _)| at < b).unwrap_or(true) {
                best = Some((at, token));
            }
        }
        let (_, token) = best?;
        self.take_entry(token);
        Some(CompletionToken(token))
    }

    /// Description of the still-registered handles, for timeout errors.
    pub(super) fn describe(&self) -> String {
        let mut tokens: Vec<u64> = self.entries.keys().copied().collect();
        tokens.sort_unstable();
        let mut parts: Vec<String> = tokens
            .iter()
            .take(4)
            .map(|t| self.entries[t].target.describe())
            .collect();
        if self.entries.len() > 4 {
            parts.push(format!("… {} more", self.entries.len() - 4));
        }
        format!("any of [{}]", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: ClientId = ClientId::PRIMARY;
    const C1: ClientId = ClientId(1);

    fn get_completion(id: u64, byte: u8) -> Completion {
        Completion::Get {
            request: RequestId(id),
            data: vec![byte; 4].into(),
        }
    }

    #[test]
    fn claim_table_indexes_by_request_and_slot() {
        let mut t = ClaimTable::default();
        t.absorb(
            C0,
            vec![
                get_completion(7, 1),
                Completion::Result { slot: 3, value: 30 },
                Completion::Put {
                    request: RequestId(9),
                },
            ],
        );
        assert_eq!(t.len(), 3);
        assert!(t.claim_get(C0, RequestId(8)).is_none());
        assert_eq!(t.claim_get(C0, RequestId(7)).unwrap()[0], 1);
        assert!(
            t.claim_get(C0, RequestId(7)).is_none(),
            "claims are one-shot"
        );
        assert_eq!(t.claim_result(C0, 3), Some(30));
        assert_eq!(t.claim_put(C0, RequestId(9)), Some(()));
        assert!(t.is_empty());
    }

    #[test]
    fn claims_never_cross_clients_even_on_colliding_ids() {
        // Each client runtime allocates its own request ids and mailbox
        // slots, so numeric collisions across clients are the *normal* case
        // — the table must treat (client, id) as the key.
        let mut t = ClaimTable::default();
        t.absorb(C0, vec![get_completion(7, 1)]);
        t.absorb(C1, vec![get_completion(7, 2)]);
        t.absorb(C0, vec![Completion::Result { slot: 4, value: 40 }]);
        t.absorb(C1, vec![Completion::Result { slot: 4, value: 41 }]);
        assert_eq!(t.len(), 4, "colliding ids coexist across clients");
        assert_eq!(t.claim_get(C1, RequestId(7)).unwrap()[0], 2);
        assert_eq!(t.claim_get(C0, RequestId(7)).unwrap()[0], 1);
        assert_eq!(t.claim_result(C0, 4), Some(40));
        assert!(t.claim_result(C0, 4).is_none(), "no double delivery");
        assert_eq!(t.claim_result(C1, 4), Some(41));
        assert!(t.is_empty());
    }

    #[test]
    fn arrival_order_is_preserved_across_kinds() {
        let mut t = ClaimTable::default();
        t.absorb(
            C0,
            vec![
                Completion::Result { slot: 0, value: 1 },
                get_completion(1, 2),
            ],
        );
        t.absorb(
            C0,
            vec![Completion::Put {
                request: RequestId(2),
            }],
        );
        assert!(t.result_arrival(C0, 0).unwrap() < t.get_arrival(C0, RequestId(1)).unwrap());
        assert!(
            t.get_arrival(C0, RequestId(1)).unwrap() < t.put_arrival(C0, RequestId(2)).unwrap()
        );
        // The arrival queue yields pending keys oldest-first.
        assert_eq!(t.earliest_pending(|_| true), Some(ClaimKey::Result(C0, 0)));
        t.claim_result(C0, 0);
        assert_eq!(t.earliest_pending(|_| true), Some(ClaimKey::Get(C0, 1)));
        // Selective matching skips (but keeps) non-matching pending keys.
        assert_eq!(
            t.earliest_pending(|k| matches!(k, ClaimKey::Put(..))),
            Some(ClaimKey::Put(C0, 2))
        );
        assert_eq!(t.earliest_pending(|_| true), Some(ClaimKey::Get(C0, 1)));
    }

    #[test]
    fn result_slot_overwrite_keeps_latest_value() {
        let mut t = ClaimTable::default();
        t.absorb(C0, vec![Completion::Result { slot: 5, value: 1 }]);
        t.absorb(C0, vec![Completion::Result { slot: 5, value: 2 }]);
        assert_eq!(t.len(), 1, "a mailbox slot holds one record");
        assert_eq!(t.fresh_len(), 1);
        assert_eq!(t.claim_result(C0, 5), Some(2));
        assert_eq!(t.fresh_len(), 0);
    }

    #[test]
    fn arrivals_queue_is_bounded_under_wait_only_claims() {
        // Typed `wait`-style claims never walk the arrival queue; the
        // compaction in `absorb` must still keep it proportional to the
        // pending completions, not to the lifetime op count.
        let mut t = ClaimTable::default();
        for id in 0..10_000u64 {
            t.absorb(C0, vec![get_completion(id, 0)]);
            assert!(t.claim_get(C0, RequestId(id)).is_some());
        }
        assert!(t.is_empty());
        assert!(
            t.arrivals.len() <= 64,
            "stale arrival records must be swept, got {}",
            t.arrivals.len()
        );
    }

    #[test]
    fn reused_slot_counts_as_fresh_again_after_take_fresh() {
        // A second result on a reused slot must be returned by the next
        // `run_until_completions` even though the first was already handed
        // out (and never claimed).
        let mut t = ClaimTable::default();
        t.absorb(C0, vec![Completion::Result { slot: 5, value: 1 }]);
        assert_eq!(t.take_fresh().len(), 1);
        assert_eq!(t.fresh_len(), 0);
        t.absorb(C0, vec![Completion::Result { slot: 5, value: 2 }]);
        assert_eq!(t.fresh_len(), 1, "the overwrite is a new completion");
        let fresh = t.take_fresh();
        assert_eq!(fresh, vec![Completion::Result { slot: 5, value: 2 }]);
        assert_eq!(t.claim_result(C0, 5), Some(2), "still claimable afterwards");
    }

    #[test]
    fn take_fresh_marks_observed_but_keeps_claimable() {
        let mut t = ClaimTable::default();
        t.absorb(C0, vec![get_completion(1, 9), get_completion(2, 8)]);
        let fresh = t.take_fresh();
        assert_eq!(fresh.len(), 2);
        assert!(matches!(&fresh[0], Completion::Get { request, .. } if request.0 == 1));
        assert_eq!(t.fresh_len(), 0, "observed completions are not re-counted");
        assert_eq!(t.len(), 2, "…but they stay claimable");
        assert!(t.take_fresh().is_empty());
        assert!(t.claim_get(C0, RequestId(2)).is_some());
    }

    #[test]
    fn set_claims_in_arrival_order_and_duplicates_wait() {
        let claims = ClaimShards::new(1);
        let mut set = CompletionSet::new();
        let g = GetHandle {
            client: C0,
            request: RequestId(4),
            target: 1,
        };
        let t1 = set.add_get(g);
        let t2 = set.add_get(g); // duplicate registration of the same handle
        let t3 = set.add_result(ResultHandle::for_slot(1));
        claims.absorb(
            C0,
            vec![
                Completion::Result { slot: 1, value: 11 },
                get_completion(4, 5),
            ],
        );
        // The result arrived first, so it wins even though the GET is also
        // ready and registered earlier.
        let (tok, ready) = set.claim_earliest(&claims).unwrap();
        assert_eq!(tok, t3);
        assert_eq!(ready, Ready::Result(11));
        // The first GET registration claims the data…
        let (tok, ready) = set.claim_earliest(&claims).unwrap();
        assert_eq!(tok, t1);
        assert!(matches!(ready, Ready::Get(d) if d[0] == 5));
        // …and the duplicate stays unresolved.
        assert!(set.claim_earliest(&claims).is_none());
        assert_eq!(set.len(), 1);
        assert!(set.remove(t2));
        assert!(set.is_empty());
    }

    #[test]
    fn wait_any_fairness_survives_sharding() {
        // Registration order and shard index both disagree with arrival
        // order; the shared arrival counter must be the only tiebreak, so
        // the sharded table resolves exactly like the unsharded one did.
        let claims = ClaimShards::new(3);
        let mut set = CompletionSet::new();
        let handle = |c: usize| GetHandle {
            client: ClientId(c),
            request: RequestId(1),
            target: 1,
        };
        let t2 = set.add_get(handle(2));
        let t0 = set.add_get(handle(0));
        let t1 = set.add_get(handle(1));
        claims.absorb(ClientId(1), vec![get_completion(1, 0)]);
        claims.absorb(ClientId(2), vec![get_completion(1, 0)]);
        claims.absorb(ClientId(0), vec![get_completion(1, 0)]);
        let order: Vec<CompletionToken> =
            std::iter::from_fn(|| set.claim_earliest(&claims).map(|(tok, _)| tok)).collect();
        assert_eq!(
            order,
            vec![t1, t2, t0],
            "global arrival order wins, not shard index or token order"
        );
        assert!(claims.is_empty());
    }

    #[test]
    fn sharded_claims_survive_concurrent_producers_and_racing_waiters() {
        // N producer threads absorb colliding per-client id spaces while
        // 2×N waiter threads race to claim them: every completion must be
        // observed exactly once (the claim count reaching the absorb count
        // with empty shards proves no loss; a double-observe would overshoot
        // the target and trip the final assertions).
        const CLIENTS: usize = 4;
        const PER_CLIENT: u64 = 500;
        const TARGET: u64 = (CLIENTS as u64) * PER_CLIENT;
        let shards = Arc::new(ClaimShards::new(CLIENTS));
        let claimed = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::new();
        for c in 0..CLIENTS {
            let shards = Arc::clone(&shards);
            threads.push(std::thread::spawn(move || {
                // Ids 0..PER_CLIENT collide numerically across every client.
                for id in 0..PER_CLIENT {
                    shards.absorb(
                        ClientId(c),
                        vec![Completion::Get {
                            request: RequestId(id),
                            data: vec![c as u8; 2].into(),
                        }],
                    );
                }
            }));
        }
        for c in 0..CLIENTS {
            for _ in 0..2 {
                // Two waiters per client race for the same id space.
                let shards = Arc::clone(&shards);
                let claimed = Arc::clone(&claimed);
                threads.push(std::thread::spawn(move || {
                    let mut passes = 0u64;
                    while claimed.load(Ordering::Relaxed) < TARGET {
                        for id in 0..PER_CLIENT {
                            let got = shards
                                .shard(ClientId(c))
                                .claim_get(ClientId(c), RequestId(id));
                            if let Some(data) = got {
                                assert_eq!(data[0], c as u8, "cross-client claim leak");
                                claimed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        passes += 1;
                        assert!(passes < 1_000_000, "lost completion: waiters spinning dry");
                        std::thread::yield_now();
                    }
                }));
            }
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(
            claimed.load(Ordering::Relaxed),
            TARGET,
            "every completion observed exactly once"
        );
        assert!(shards.is_empty(), "no completion left behind");
    }

    #[test]
    fn peer_lost_takes_pinned_registrations_only() {
        let mut set = CompletionSet::new();
        let t_get = set.add_get(GetHandle {
            client: C0,
            request: RequestId(1),
            target: 2,
        });
        let t_put = set.add_put(PutHandle {
            client: C0,
            request: RequestId(2),
            target: 3,
        });
        let t_res = set.add_result(ResultHandle::for_slot(7));
        // Rank 1 lost nothing registered; result registrations are never
        // pinned, so losing every rank still leaves the result waiting.
        assert_eq!(set.take_peer_lost(&[1]), None);
        assert_eq!(set.take_peer_lost(&[3]), Some((t_put, 3)));
        assert_eq!(set.take_peer_lost(&[2, 3]), Some((t_get, 2)));
        assert_eq!(set.take_peer_lost(&[1, 2, 3]), None);
        assert!(set.remove(t_res));
        assert!(set.is_empty());
    }

    #[test]
    fn quiescence_resolves_the_earliest_deadline_first() {
        let mut set = CompletionSet::new();
        let t_late = set.add_result(ResultHandle::for_slot(1));
        let t_early = set.add_result(ResultHandle::for_slot(2));
        set.deadline(t_late, 10_000);
        set.deadline(t_early, 100);
        set.resolve_deadlines(0);
        // The lower token has the *later* deadline; quiescence must still
        // resolve the earlier deadline first.
        assert_eq!(set.take_any_deadlined(), Some(t_early));
        assert_eq!(set.take_any_deadlined(), Some(t_late));
        assert_eq!(set.take_any_deadlined(), None);
    }

    #[test]
    fn deadlines_resolve_relative_to_first_drive() {
        let mut set = CompletionSet::new();
        let t = set.add_result(ResultHandle::for_slot(9));
        assert!(set.deadline(t, 100));
        assert!(set.has_deadlines());
        set.resolve_deadlines(1_000);
        assert!(set.take_expired(1_099).is_none());
        assert_eq!(set.take_expired(1_100), Some(t));
        assert!(set.take_expired(u64::MAX).is_none());
        assert!(!set.has_deadlines());
    }
}
